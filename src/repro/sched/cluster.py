"""Cluster model: homogeneous nodes under one global power bound."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SchedulerError
from repro.hardware.node import ComputeNode
from repro.util.units import watts

__all__ = ["Cluster", "NodeSlot"]


@dataclass
class NodeSlot:
    """One node's scheduling state: busy flag and the power charged to it."""

    node: ComputeNode
    busy: bool = False
    charged_w: float = 0.0
    running_job_id: int | None = None


@dataclass
class Cluster:
    """A set of nodes sharing a global power bound.

    The cluster tracks *charged* power — what the scheduler has committed,
    which (thanks to COORD's surplus reporting) can be less than what jobs
    requested.  ``node_factory`` builds fresh nodes so control-plane state
    never leaks across constructions.
    """

    node_factory: Callable[[], ComputeNode]
    n_nodes: int
    global_bound_w: float
    slots: list[NodeSlot] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ConfigurationError(f"n_nodes must be > 0, got {self.n_nodes}")
        # watts() alone admits 0.0, under which no job can ever be
        # charged — reject the whole non-positive range with one typed
        # error (NaN fails the > comparison too).
        watts(self.global_bound_w, "global_bound_w")
        if not self.global_bound_w > 0.0:
            raise ConfigurationError(
                f"global_bound_w must be > 0, got {self.global_bound_w}"
            )
        self.slots = [NodeSlot(self.node_factory()) for _ in range(self.n_nodes)]

    # ------------------------------------------------------------------
    # power accounting
    # ------------------------------------------------------------------
    @property
    def charged_w(self) -> float:
        """Total power currently committed across nodes."""
        return sum(s.charged_w for s in self.slots)

    @property
    def headroom_w(self) -> float:
        """Uncommitted power under the global bound."""
        return self.global_bound_w - self.charged_w

    def free_slot(self) -> NodeSlot | None:
        """An idle node, or ``None`` when all are busy."""
        for slot in self.slots:
            if not slot.busy:
                return slot
        return None

    def free_slots(self, k: int) -> list[NodeSlot] | None:
        """``k`` idle nodes, or ``None`` when fewer are available."""
        idle = [slot for slot in self.slots if not slot.busy]
        return idle[:k] if len(idle) >= k else None

    def charge(self, slot: NodeSlot, power_w: float, job_id: int) -> None:
        """Commit power to a node for a job."""
        power_w = watts(power_w, "power_w")
        if slot.busy:
            raise SchedulerError(
                f"node {slot.node.name} already runs job {slot.running_job_id}"
            )
        if power_w > self.headroom_w + 1e-9:
            raise SchedulerError(
                f"charging {power_w:.1f} W exceeds headroom {self.headroom_w:.1f} W"
            )
        slot.busy = True
        slot.charged_w = power_w
        slot.running_job_id = job_id

    def release(self, slot: NodeSlot) -> float:
        """Free a node, returning the power it held."""
        if not slot.busy:
            raise SchedulerError(f"node {slot.node.name} is not busy")
        freed = slot.charged_w
        slot.busy = False
        slot.charged_w = 0.0
        slot.running_job_id = None
        return freed
