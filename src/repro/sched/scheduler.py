"""The power-bounded batch scheduler.

Implements the control loop the paper sketches for higher-level power
scheduling (Sections 5.1 and 8):

1. jobs arrive with a requested power budget;
2. admission profiles the workload (cached — profiling is lightweight and
   application-specific, not per-job) and consults
   :func:`~repro.core.budget.advise_budget`:

   * grants above the application's maximum demand are *trimmed* and the
     surplus stays in the global pool ("the unused power should be
     reclaimed by the system for other uses");
   * grants below the productive threshold wait for headroom rather than
     run unproductively, and are rejected outright if no feasible grant
     could ever satisfy them;

3. COORD distributes the granted budget across the node's domains;
4. completion events free node and power, unblocking the queue.

Scheduling is FCFS with conservative in-order admission (no backfill), so
job starvation cannot occur; time advances over simulated execution times
from the node model.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Optional, Union

from repro.core.budget import BudgetVerdict, advise_budget
from repro.core.coord import coord_cpu
from repro.core.critical import CpuCriticalPowers
from repro.core.parallel import MemoCache, SweepEngine, default_engine, fingerprint
from repro.core.profiler import profile_cpu_workload
from repro.errors import SchedulerError
from repro.perfmodel.executor import execute_on_host
from repro.sched.cluster import Cluster, NodeSlot
from repro.sched.events import (
    BudgetResplit,
    EventLoop,
    EventObserver,
    JobArrival,
    JobCompletion,
    NodeWakeup,
)
from repro.sched.job import Job, JobRecord, JobState

__all__ = ["PowerBoundedScheduler", "PredictKey", "SchedulerStats"]


@dataclass(frozen=True)
class PredictKey:
    """Typed cache key for runtime predictions.

    Keyed on the workload's *characterization fingerprint*, not its object
    identity or name alone: two jobs submitting same-named workloads with
    different phase characterizations (e.g. scaled problem sizes) predict
    independently, and a mutated characterization can never be served a
    stale prediction.
    """

    workload_name: str
    workload_fp: str
    budget_w: float


@dataclass(frozen=True)
class SchedulerStats:
    """Aggregate outcome of a scheduling run."""

    n_completed: int
    n_rejected: int
    makespan_s: float
    total_energy_j: float
    mean_wait_s: float
    reclaimed_w_total: float
    peak_charged_w: float

    @property
    def throughput_jobs_per_hour(self) -> float:
        if self.makespan_s <= 0.0:
            return 0.0
        return self.n_completed / (self.makespan_s / 3600.0)


class PowerBoundedScheduler:
    """Power-bounded batch scheduler over a simulated cluster.

    ``order`` selects the admission order:

    * ``"fcfs"`` (default) — by submit time; no starvation by construction;
    * ``"sjf"`` — shortest predicted job first (predicted with one model
      run per application at its requested budget).  The order is fixed at
      queue time, so long jobs are delayed but never starved.

    Both orders admit strictly head-first (no backfill), so the power
    bound and node count are the only things that gate progress.
    """

    def __init__(
        self,
        cluster: Cluster,
        order: str = "fcfs",
        engine: SweepEngine | None = None,
    ) -> None:
        if order not in ("fcfs", "sjf"):
            raise SchedulerError(f"order must be 'fcfs' or 'sjf', got {order!r}")
        self.cluster = cluster
        self.order = order
        self.records: dict[int, JobRecord] = {}
        self._engine = engine if engine is not None else default_engine()
        self._profile_cache: dict[str, CpuCriticalPowers] = {}
        # Thread-safe typed-key map so parallel callers never race on dict
        # writes; the model runs behind it memoize into the shared engine.
        self._predict_cache: MemoCache = MemoCache(maxsize=1024)
        self._pending: list[JobRecord] = []
        self._seq = itertools.count()
        self.reclaimed_w_total = 0.0
        self.peak_charged_w = 0.0
        # Per-run policy state, reset by _begin_run(): the simulated
        # clock (owned by the policy, not the event loop — stale
        # completions must not advance it), stat accumulators, and the
        # slot-identity -> index map completions are keyed by.
        self._now = 0.0
        self._total_energy_j = 0.0
        self._makespan_s = 0.0
        self._slot_index: dict[int, int] = {}

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> JobRecord:
        """Queue a job; returns its mutable scheduling record."""
        if job.workload.device != "cpu":
            raise SchedulerError(
                f"job {job.job_id}: the batch scheduler runs host workloads; "
                f"got device {job.workload.device!r}"
            )
        if job.job_id in self.records:
            raise SchedulerError(f"duplicate job id {job.job_id}")
        record = JobRecord(job=job)
        self.records[job.job_id] = record
        self._pending.append(record)
        record.log(f"submitted at t={job.submit_time_s:.1f}s requesting "
                   f"{job.requested_budget_w:.0f} W")
        return record

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _critical(self, record: JobRecord) -> CpuCriticalPowers:
        name = record.job.workload.name
        if name not in self._profile_cache:
            slot = self.cluster.slots[0]
            self._profile_cache[name] = profile_cpu_workload(
                slot.node.cpu, slot.node.dram, record.job.workload
            )
        return self._profile_cache[name]

    def _predict_elapsed_s(self, record: JobRecord) -> float:
        """Model-predicted runtime at the job's requested per-node budget."""
        wl = record.job.workload
        key = PredictKey(
            workload_name=wl.name,
            workload_fp=fingerprint(wl.phases),
            budget_w=float(record.job.requested_budget_w),
        )

        def compute() -> float:
            critical = self._critical(record)
            decision = coord_cpu(critical, record.job.requested_budget_w)
            if not decision.accepted:
                return float("inf")
            node = self.cluster.slots[0].node
            result = self._engine.execute_host(
                node.cpu, node.dram, wl.phases,
                decision.allocation.proc_w, decision.allocation.mem_w,
            )
            return result.elapsed_s

        return self._predict_cache.get_or_compute(key, compute)  # type: ignore[return-value]

    def _queue_key(
        self, record: JobRecord
    ) -> Union[tuple[float, float, int], tuple[float, int]]:
        """Ordering key among currently *available* jobs.

        SJF can starve long jobs under a continuous stream of short ones;
        FCFS cannot.  The trade-off is the user's via ``order``.
        """
        if self.order == "sjf":
            return (
                self._predict_elapsed_s(record),
                record.job.submit_time_s,
                record.job.job_id,
            )
        return (record.job.submit_time_s, record.job.job_id)

    def _try_start(self, record: JobRecord, now_s: float) -> tuple[NodeSlot, float] | None:
        """Attempt admission; returns (primary slot, finish) or ``None``.

        Multi-node jobs acquire all their nodes atomically with the same
        per-node grant (weak scaling: identical per-node work, so a single
        per-node simulation times the whole job).
        """
        k = record.job.n_nodes
        slots = self.cluster.free_slots(k)
        if slots is None:
            return None
        critical = self._critical(record)
        grant = min(record.job.requested_budget_w, self.cluster.headroom_w / k)
        advice = advise_budget(critical, grant)
        if advice.verdict is BudgetVerdict.REJECT:
            # Could a larger grant ever help?  Only if the request itself
            # (under an empty cluster) clears the threshold.
            feasible = min(
                record.job.requested_budget_w, self.cluster.global_bound_w / k
            )
            if feasible < critical.productive_threshold_w:
                record.state = JobState.REJECTED
                record.reject_reason = (
                    f"per-node budget {feasible:.0f} W below productive "
                    f"threshold {critical.productive_threshold_w:.0f} W"
                )
                record.log(record.reject_reason)
                return None
            record.log(
                f"holding at t={now_s:.1f}s: per-node headroom {grant:.0f} W "
                f"below threshold {critical.productive_threshold_w:.0f} W"
            )
            return None
        if advice.verdict is BudgetVerdict.ACCEPT_WITH_SURPLUS:
            reclaimed = advice.surplus_w
            grant -= reclaimed
            self.reclaimed_w_total += reclaimed * k
            record.log(f"trimmed per-node grant by surplus {reclaimed:.0f} W")

        decision = coord_cpu(critical, grant)
        if not decision.accepted:  # pragma: no cover - advice gate precedes
            raise SchedulerError(f"COORD rejected an advised budget {grant:.0f} W")
        slot_index = {id(s): i for i, s in enumerate(self.cluster.slots)}
        for slot in slots:
            self.cluster.charge(slot, grant, record.job.job_id)
        self.peak_charged_w = max(self.peak_charged_w, self.cluster.charged_w)
        primary = slots[0]
        result = execute_on_host(
            primary.node.cpu,
            primary.node.dram,
            record.job.workload.phases,
            decision.allocation.proc_w,
            decision.allocation.mem_w,
            rapl=primary.node.rapl,
        )
        record.state = JobState.RUNNING
        record.node_name = primary.node.name
        record.slot_indices = [slot_index[id(s)] for s in slots]
        record.granted_budget_w = grant
        record.allocation = decision.allocation
        record.start_time_s = now_s
        record.performance = record.job.workload.performance(result) * k
        record.energy_j = result.energy_j * k
        finish = now_s + result.elapsed_s
        record.log(
            f"started at t={now_s:.1f}s on {k} node(s) with "
            f"{decision.allocation} per node (finish t={finish:.1f}s)"
        )
        return primary, finish

    # ------------------------------------------------------------------
    # event-driven run: the scheduler is a hook policy on the event core
    # ------------------------------------------------------------------
    def run(self, *, observer: Optional[EventObserver] = None) -> SchedulerStats:
        """Run the cluster until the queue drains; returns aggregate stats.

        Drives :class:`~repro.sched.events.EventLoop` with the scheduler
        itself as the hook policy.  Bit-for-bit equivalent to
        :meth:`run_legacy` (the pre-event-core loop, kept as the oracle
        for the differential battery in ``tests/test_fleet.py``): same
        `JobRecord` histories, same stats, same log lines.  ``observer``
        receives every dispatched event — the property tests use it to
        check bound/ordering invariants at event boundaries.
        """
        loop = EventLoop(self, observer=observer)
        self._begin_run()
        for record in self._pending:
            loop.schedule(
                JobArrival(record.job.submit_time_s, job_id=record.job.job_id)
            )
        loop.run()
        return self._collect_stats()

    def _begin_run(self) -> None:
        """Reset per-run policy state (clock, accumulators, slot map)."""
        self._pending.sort(key=lambda r: (r.job.submit_time_s, r.job.job_id))
        self._now = 0.0
        self._total_energy_j = 0.0
        self._makespan_s = 0.0
        self._slot_index = {id(s): i for i, s in enumerate(self.cluster.slots)}

    def _collect_stats(self) -> SchedulerStats:
        completed = [r for r in self.records.values() if r.state is JobState.COMPLETED]
        rejected = [r for r in self.records.values() if r.state is JobState.REJECTED]
        waits = [r.wait_time_s for r in completed]
        return SchedulerStats(
            n_completed=len(completed),
            n_rejected=len(rejected),
            makespan_s=self._makespan_s,
            total_energy_j=self._total_energy_j,
            mean_wait_s=sum(waits) / len(waits) if waits else 0.0,
            reclaimed_w_total=self.reclaimed_w_total,
            peak_charged_w=self.peak_charged_w,
        )

    def _admit_available(self, loop: EventLoop) -> None:
        """Head-first admission sweep over the jobs that have arrived.

        Exactly the legacy loops' ``admit_pending`` closure: ordered by
        the selected policy, stopping at the first job that must wait so
        the policy order is never bypassed (no backfill).  Availability
        is judged against the policy clock over the *full* pending list
        (not arrival-event firing), so a completion-time sweep admits
        same-instant arrivals just as the legacy loop did.
        """
        while True:
            available = [
                r for r in self._pending if r.job.submit_time_s <= self._now
            ]
            if not available:
                break
            record = min(available, key=self._queue_key)
            started = self._try_start(record, self._now)
            if record.state is JobState.REJECTED:
                self._pending.remove(record)
                continue
            if started is None:
                break
            slot, finish = started
            self._push_completion(loop, self._slot_index[id(slot)], finish)
            self._pending.remove(record)

    def _push_completion(self, loop: EventLoop, slot_idx: int, finish: float) -> None:
        """Queue the completion for an admitted job (subclasses re-time)."""
        loop.schedule(JobCompletion(finish, slot=slot_idx, epoch=0))

    def _complete(self, event: JobCompletion) -> JobRecord:
        """Terminal bookkeeping for a live completion (legacy verbatim)."""
        slot = self.cluster.slots[event.slot]
        job_id = slot.running_job_id
        assert job_id is not None
        record = self.records[job_id]
        record.state = JobState.COMPLETED
        record.finish_time_s = event.time_s
        self._total_energy_j += record.energy_j
        self._makespan_s = max(self._makespan_s, event.time_s)
        for slot_idx in record.slot_indices:
            self.cluster.release(self.cluster.slots[slot_idx])
        record.log(f"completed at t={event.time_s:.1f}s")
        return record

    # -- SchedulerHooks ------------------------------------------------
    def on_arrival(self, loop: EventLoop, event: JobArrival) -> None:
        """Sweep only when the cluster is idle.

        The legacy loop admits arrivals lazily — at completion pops and
        idle-advances, never mid-run — so a busy-cluster arrival must
        wait for the next completion sweep.  An idle-cluster arrival is
        the legacy idle-advance (``now = min future submit``); idle
        sweeps can never log "holding" (with nothing running the grant
        equals the feasibility bound), so dispatching one sweep per
        arrival instead of one per distinct time is log-invisible.
        """
        if any(slot.busy for slot in self.cluster.slots):
            return
        self._now = max(self._now, event.time_s)
        self._admit_available(loop)

    def on_completion(self, loop: EventLoop, event: JobCompletion) -> None:
        self._now = max(self._now, event.time_s)
        self._complete(event)
        self._admit_available(loop)

    def on_resplit(self, loop: EventLoop, event: BudgetResplit) -> None:
        """The static schedulers never re-split; fleet policies do."""

    def on_wakeup(self, loop: EventLoop, event: NodeWakeup) -> None:
        """No wake-up callbacks in the static schedulers."""

    def on_drain(self, loop: EventLoop) -> bool:
        """Nothing queued: reject the unschedulable head, legacy-style."""
        if not self._pending:
            return False
        self._admit_available(loop)
        if loop.queue:
            return True
        if not self._pending:
            return False
        head = min(self._pending, key=self._queue_key)
        self._pending.remove(head)
        head.state = JobState.REJECTED
        head.reject_reason = (
            "unschedulable: no running job will ever free enough power"
        )
        head.log(head.reject_reason)
        return True

    # ------------------------------------------------------------------
    # legacy loop — the bit-for-bit oracle for the differential battery
    # ------------------------------------------------------------------
    def run_legacy(self) -> SchedulerStats:
        """The pre-event-core hand-rolled loop, kept verbatim as oracle."""
        events: list[tuple[float, int, int]] = []  # (finish, seq, slot index)
        slot_index = {id(s): i for i, s in enumerate(self.cluster.slots)}
        self._pending.sort(key=lambda r: (r.job.submit_time_s, r.job.job_id))
        now = 0.0
        total_energy = 0.0
        makespan = 0.0

        def admit_pending() -> None:
            nonlocal now
            # Head-first admission among the jobs that have arrived,
            # ordered by the selected policy; stop at the first that must
            # wait so the policy order is never bypassed (no backfill).
            while True:
                available = [
                    r for r in self._pending if r.job.submit_time_s <= now
                ]
                if not available:
                    break
                record = min(available, key=self._queue_key)
                started = self._try_start(record, now)
                if record.state is JobState.REJECTED:
                    self._pending.remove(record)
                    continue
                if started is None:
                    break
                slot, finish = started
                heapq.heappush(events, (finish, next(self._seq), slot_index[id(slot)]))
                self._pending.remove(record)

        while self._pending or events:
            admit_pending()
            if not events:
                if self._pending:
                    future = [r for r in self._pending
                              if r.job.submit_time_s > now and r.state is JobState.PENDING]
                    if not future:
                        # Head-of-line job can never start: nothing running,
                        # nothing arriving — treat as rejected to avoid hanging.
                        head = min(self._pending, key=self._queue_key)
                        self._pending.remove(head)
                        head.state = JobState.REJECTED
                        head.reject_reason = (
                            "unschedulable: no running job will ever free "
                            "enough power"
                        )
                        head.log(head.reject_reason)
                        continue
                    now = min(r.job.submit_time_s for r in future)
                    continue
                break
            finish, _, idx = heapq.heappop(events)
            now = max(now, finish)
            slot = self.cluster.slots[idx]
            job_id = slot.running_job_id
            assert job_id is not None
            record = self.records[job_id]
            record.state = JobState.COMPLETED
            record.finish_time_s = finish
            total_energy += record.energy_j
            makespan = max(makespan, finish)
            for slot_idx in record.slot_indices:
                self.cluster.release(self.cluster.slots[slot_idx])
            record.log(f"completed at t={finish:.1f}s")

        completed = [r for r in self.records.values() if r.state is JobState.COMPLETED]
        rejected = [r for r in self.records.values() if r.state is JobState.REJECTED]
        waits = [r.wait_time_s for r in completed]
        return SchedulerStats(
            n_completed=len(completed),
            n_rejected=len(rejected),
            makespan_s=makespan,
            total_energy_j=total_energy,
            mean_wait_s=sum(waits) / len(waits) if waits else 0.0,
            reclaimed_w_total=self.reclaimed_w_total,
            peak_charged_w=self.peak_charged_w,
        )
