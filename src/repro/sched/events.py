"""The discrete-event core of the batch schedulers and the fleet simulator.

The paper positions node-level COORD as the foundation of a cluster-wide
power scheduler (Sections 5.1 and 8).  Scaling that loop past a handful
of nodes needs a proper discrete-event simulation — jobs arriving from
traces, periodic cluster-wide budget re-splits, wake-me-up-at callbacks —
rather than the hand-rolled ``while pending or events`` loops the
schedulers grew up with.  This module is that core:

* four **typed events** — :class:`JobArrival`, :class:`JobCompletion`,
  :class:`BudgetResplit`, :class:`NodeWakeup` — with a fixed same-
  timestamp dispatch order (completions release power before arrivals
  are admitted; re-splits see the post-completion state);
* :class:`EventQueue` — a heap ordered by ``(time, kind, push order)``,
  so simultaneous events of one kind dispatch FIFO and replay is exactly
  deterministic;
* :class:`SchedulerHooks` — the pluggable policy surface.  The legacy
  :class:`~repro.sched.scheduler.PowerBoundedScheduler` and
  :class:`~repro.sched.rebalance.RebalancingScheduler` are hook policies
  on this core (their pre-event-core loops survive as ``run_legacy()``,
  the bit-for-bit oracle the differential battery in ``tests/test_fleet
  .py`` compares against), and :class:`~repro.sched.fleet.FleetSimulator`
  drives thousands of nodes through the same four hooks;
* :class:`EventLoop` — pops events in order and dispatches them.  The
  loop never advances a clock itself: hooks own simulated time (a stale,
  epoch-mismatched completion must *not* advance the legacy schedulers'
  clock), while the queue guarantees pop order is non-decreasing in
  timestamp regardless.

An optional per-event ``observer`` receives every dispatched event after
its hook returns — the property-test battery uses it to assert global
invariants (monotone dispatch order, the power bound holding at every
event boundary) without touching policy internals.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Union

from repro.errors import SchedulerError

__all__ = [
    "BudgetResplit",
    "Event",
    "EventKind",
    "EventLoop",
    "EventQueue",
    "JobArrival",
    "JobCompletion",
    "NodeWakeup",
    "SchedulerHooks",
]


class EventKind(enum.IntEnum):
    """Event types, in same-timestamp dispatch order.

    Completions release nodes and power before anything else happening at
    the same instant; budget re-splits then rebalance the survivors; only
    then are same-instant arrivals admitted against the settled state;
    wake-ups run last.  This ordering is what makes the event-driven
    re-expression of the legacy schedulers bit-for-bit faithful: their
    hand-rolled loops popped completions before considering newly
    arrived jobs at the same timestamp.
    """

    COMPLETION = 0
    RESPLIT = 1
    ARRIVAL = 2
    WAKEUP = 3


@dataclass(frozen=True)
class Event:
    """Base event: a simulated timestamp plus a kind tag."""

    time_s: float

    #: Overridden by each concrete event type.
    kind: EventKind = field(init=False, default=EventKind.WAKEUP)

    def __post_init__(self) -> None:
        time_s = float(self.time_s)
        if math.isnan(time_s) or math.isinf(time_s) or time_s < 0.0:
            raise SchedulerError(
                f"event time must be finite and >= 0, got {self.time_s!r}"
            )


@dataclass(frozen=True)
class JobArrival(Event):
    """A job reaches the scheduler at its submit time."""

    kind: EventKind = field(init=False, default=EventKind.ARRIVAL)
    job_id: int = -1


@dataclass(frozen=True)
class JobCompletion(Event):
    """A running job's (possibly re-timed) finish.

    ``epoch`` implements lazy invalidation: policies that re-time a
    running job (boosts, budget re-splits) bump the slot's epoch and push
    a fresh completion; a popped completion whose epoch no longer matches
    the slot's is stale and must be ignored by the hook.
    """

    kind: EventKind = field(init=False, default=EventKind.COMPLETION)
    slot: int = -1
    epoch: int = 0


@dataclass(frozen=True)
class BudgetResplit(Event):
    """A periodic cluster-wide budget re-split point."""

    kind: EventKind = field(init=False, default=EventKind.RESPLIT)
    interval_s: float = 0.0


@dataclass(frozen=True)
class NodeWakeup(Event):
    """A wake-me-up-at callback (tagged so policies can multiplex)."""

    kind: EventKind = field(init=False, default=EventKind.WAKEUP)
    tag: str = ""


class EventQueue:
    """A deterministic min-heap of events.

    Ordering is ``(time_s, kind, push order)``: earliest first, then the
    :class:`EventKind` dispatch priority, then FIFO among exact ties — so
    a run is a pure function of the push sequence.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self.pushed = 0
        self.popped = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> None:
        """Queue an event for dispatch."""
        heapq.heappush(
            self._heap, (event.time_s, int(event.kind), next(self._seq), event)
        )
        self.pushed += 1

    def pop(self) -> Event:
        """Remove and return the next event; raises when empty."""
        if not self._heap:
            raise SchedulerError("pop from an empty event queue")
        self.popped += 1
        return heapq.heappop(self._heap)[3]

    def peek(self) -> Optional[Event]:
        """The next event without removing it, or ``None`` when empty."""
        return self._heap[0][3] if self._heap else None


class SchedulerHooks(Protocol):
    """The pluggable policy surface of the event core.

    A policy receives every dispatched event through the hook matching
    its kind, plus :meth:`on_drain` when the queue runs dry while the
    policy may still hold undispatched work (jobs that can never start,
    a re-split chain to terminate, ...).  Hooks push follow-up events
    through the loop they are handed; simulated time is whatever the
    policy derives from the events it accepts.
    """

    def on_arrival(self, loop: "EventLoop", event: JobArrival) -> None:
        """A job reached its submit time."""

    def on_completion(self, loop: "EventLoop", event: JobCompletion) -> None:
        """A (possibly stale — check the epoch) completion fired."""

    def on_resplit(self, loop: "EventLoop", event: BudgetResplit) -> None:
        """A periodic budget re-split point fired."""

    def on_wakeup(self, loop: "EventLoop", event: NodeWakeup) -> None:
        """A wake-me-up-at callback fired."""

    def on_drain(self, loop: "EventLoop") -> bool:
        """The queue is empty.  Return ``True`` to keep the loop alive
        (the policy made progress or queued new events), ``False`` to
        end the run."""


#: Observer signature: called with each event after its hook returned.
EventObserver = Callable[["EventLoop", Event], None]


class EventLoop:
    """Pops events in deterministic order and dispatches them to hooks.

    The loop tracks ``last_dispatched_s`` purely as an ordering witness
    (the queue guarantees it never decreases); policies keep their own
    clocks because not every event advances simulated time — a stale
    completion is dispatched, detected, and discarded without the
    schedulers' ``now`` moving.
    """

    def __init__(
        self,
        hooks: SchedulerHooks,
        *,
        observer: Optional[EventObserver] = None,
    ) -> None:
        self.queue = EventQueue()
        self.hooks = hooks
        self.observer = observer
        self.last_dispatched_s = 0.0
        self.n_dispatched = 0

    def schedule(self, event: Event) -> None:
        """Queue an event (alias for ``queue.push`` that reads as intent)."""
        self.queue.push(event)

    def wake_me_up_at(self, time_s: float, tag: str = "") -> None:
        """Schedule a :class:`NodeWakeup` callback (batsim idiom)."""
        self.schedule(NodeWakeup(time_s, tag=tag))

    def _dispatch(self, event: Event) -> None:
        if event.time_s < self.last_dispatched_s:  # pragma: no cover - heap law
            raise SchedulerError(
                f"event at t={event.time_s} dispatched after "
                f"t={self.last_dispatched_s}"
            )
        self.last_dispatched_s = event.time_s
        if isinstance(event, JobCompletion):
            self.hooks.on_completion(self, event)
        elif isinstance(event, BudgetResplit):
            self.hooks.on_resplit(self, event)
        elif isinstance(event, JobArrival):
            self.hooks.on_arrival(self, event)
        elif isinstance(event, NodeWakeup):
            self.hooks.on_wakeup(self, event)
        else:  # pragma: no cover - the four kinds are closed
            raise SchedulerError(f"undispatchable event {event!r}")
        self.n_dispatched += 1
        if self.observer is not None:
            self.observer(self, event)

    def run(self) -> int:
        """Dispatch until the queue drains and the policy yields.

        Returns the number of events dispatched.  The queue may be
        refilled by hooks (completions for admitted jobs, the next
        re-split in a chain) and by :meth:`SchedulerHooks.on_drain`
        returning ``True`` after queueing recovery work.
        """
        while True:
            if not self.queue:
                if not self.hooks.on_drain(self):
                    return self.n_dispatched
                continue
            self._dispatch(self.queue.pop())
