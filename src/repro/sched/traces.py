"""Seeded synthetic arrival traces for the fleet simulator.

Three generators cover the arrival regimes cluster power managers are
evaluated against:

* :func:`poisson_trace` — memoryless arrivals at a constant rate (the
  steady-state baseline);
* :func:`bursty_trace` — tight bursts separated by exponential gaps
  (campaign submissions, workflow fan-outs);
* :func:`diurnal_trace` — a sinusoidally modulated rate with a fixed
  period, sampled by thinning (day/night load swings).

Every generator is a pure function of its arguments: the same seed
replays the identical trace, which the property battery in
``tests/test_fleet.py`` pins.  Budgets are drawn from a small set of
discrete levels rather than a continuum — real users ask for round
numbers, and the fleet's allocation rounds stay cache-friendly when the
distinct (workload, budget) space is small.

The on-disk format is line-oriented and versioned::

    # repro-trace v1
    job_id,workload,budget_w,submit_time_s

:func:`write_trace`/:func:`read_trace` round-trip bit-for-bit: times and
budgets are emitted with 6 decimal places and the generators round to
the same grid, so a trace re-read from disk replays identically.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence, Union

from repro.errors import ConfigurationError

__all__ = [
    "TraceJob",
    "bursty_trace",
    "diurnal_trace",
    "poisson_trace",
    "read_trace",
    "write_trace",
]

#: Format marker written as the first line of every trace file.
TRACE_HEADER = "# repro-trace v1"

#: Default workload mix: one memory-bound, one balanced, one compute-bound
#: application from the CPU suite, so traces exercise distinct COORD
#: splits without enumerating the whole registry.
DEFAULT_WORKLOADS: tuple[str, ...] = ("ft", "mg", "cg")

#: Default requested-budget levels (per node, watts).
DEFAULT_BUDGET_LEVELS: tuple[float, ...] = (80.0, 120.0, 160.0, 200.0, 260.0)


@dataclass(frozen=True)
class TraceJob:
    """One arrival in a fleet trace.

    Deliberately lighter than :class:`~repro.sched.job.Job`: the
    workload is a registry *name* (resolved once by the simulator, not
    per job) and there is no multi-node field — the fleet schedules
    single-node jobs, matching the paper's per-node COORD granularity.
    """

    job_id: int
    workload: str
    budget_w: float
    submit_time_s: float

    def __post_init__(self) -> None:
        if not self.workload:
            raise ConfigurationError(f"job {self.job_id}: empty workload name")
        if not math.isfinite(self.budget_w) or self.budget_w <= 0.0:
            raise ConfigurationError(
                f"job {self.job_id}: budget_w must be finite and > 0, "
                f"got {self.budget_w!r}"
            )
        if not math.isfinite(self.submit_time_s) or self.submit_time_s < 0.0:
            raise ConfigurationError(
                f"job {self.job_id}: submit_time_s must be finite and >= 0, "
                f"got {self.submit_time_s!r}"
            )


def _round_grid(value: float) -> float:
    """Snap to the 6-decimal grid the file format preserves exactly."""
    return round(value, 6)


def _draw_jobs(
    arrival_times: Iterable[float],
    rng: random.Random,
    workloads: Sequence[str],
    budget_levels: Sequence[float],
) -> tuple[TraceJob, ...]:
    if not workloads:
        raise ConfigurationError("workloads must be a non-empty sequence")
    if not budget_levels:
        raise ConfigurationError("budget_levels must be a non-empty sequence")
    jobs = []
    for job_id, t in enumerate(arrival_times):
        jobs.append(
            TraceJob(
                job_id=job_id,
                workload=rng.choice(list(workloads)),
                budget_w=_round_grid(float(rng.choice(list(budget_levels)))),
                submit_time_s=_round_grid(t),
            )
        )
    return tuple(jobs)


def _check_n_jobs(n_jobs: int) -> None:
    if n_jobs <= 0:
        raise ConfigurationError(f"n_jobs must be > 0, got {n_jobs}")


def poisson_trace(
    *,
    n_jobs: int,
    rate_per_s: float,
    seed: int,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    budget_levels: Sequence[float] = DEFAULT_BUDGET_LEVELS,
) -> tuple[TraceJob, ...]:
    """Memoryless arrivals: exponential inter-arrival times at a fixed rate."""
    _check_n_jobs(n_jobs)
    if not rate_per_s > 0.0:
        raise ConfigurationError(f"rate_per_s must be > 0, got {rate_per_s}")
    rng = random.Random(seed)
    times = []
    t = 0.0
    for _ in range(n_jobs):
        t += rng.expovariate(rate_per_s)
        times.append(t)
    return _draw_jobs(times, rng, workloads, budget_levels)


def bursty_trace(
    *,
    n_jobs: int,
    burst_size: int,
    gap_s: float,
    seed: int,
    spread_s: float = 1.0,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    budget_levels: Sequence[float] = DEFAULT_BUDGET_LEVELS,
) -> tuple[TraceJob, ...]:
    """Bursts of ~``burst_size`` jobs separated by exponential gaps.

    Each burst lands within ``spread_s`` seconds (jobs inside a burst are
    near-simultaneous), and burst starts are a Poisson process with mean
    spacing ``gap_s`` — the campaign-submission pattern that stresses
    admission ordering and power headroom hardest.
    """
    _check_n_jobs(n_jobs)
    if burst_size <= 0:
        raise ConfigurationError(f"burst_size must be > 0, got {burst_size}")
    if not gap_s > 0.0 or spread_s < 0.0:
        raise ConfigurationError(
            f"gap_s must be > 0 and spread_s >= 0, got {gap_s}, {spread_s}"
        )
    rng = random.Random(seed)
    times: list[float] = []
    burst_start = 0.0
    while len(times) < n_jobs:
        burst_start += rng.expovariate(1.0 / gap_s)
        # 1..2*burst_size jobs per burst, mean ~ burst_size.
        count = rng.randint(1, 2 * burst_size)
        for _ in range(min(count, n_jobs - len(times))):
            times.append(burst_start + rng.uniform(0.0, spread_s))
    times.sort()
    return _draw_jobs(times, rng, workloads, budget_levels)


def diurnal_trace(
    *,
    n_jobs: int,
    base_rate_per_s: float,
    peak_rate_per_s: float,
    period_s: float,
    seed: int,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    budget_levels: Sequence[float] = DEFAULT_BUDGET_LEVELS,
) -> tuple[TraceJob, ...]:
    """Sinusoidally modulated arrivals sampled by thinning.

    The instantaneous rate swings between ``base_rate_per_s`` and
    ``peak_rate_per_s`` with period ``period_s``; candidate arrivals are
    drawn at the peak rate and accepted with probability rate(t)/peak
    (Lewis-Shedler thinning), so the accepted process has exactly the
    modulated intensity.
    """
    _check_n_jobs(n_jobs)
    if not 0.0 < base_rate_per_s <= peak_rate_per_s:
        raise ConfigurationError(
            f"need 0 < base_rate_per_s <= peak_rate_per_s, got "
            f"{base_rate_per_s}, {peak_rate_per_s}"
        )
    if not period_s > 0.0:
        raise ConfigurationError(f"period_s must be > 0, got {period_s}")
    rng = random.Random(seed)
    mid = (base_rate_per_s + peak_rate_per_s) / 2.0
    amplitude = (peak_rate_per_s - base_rate_per_s) / 2.0
    times = []
    t = 0.0
    while len(times) < n_jobs:
        t += rng.expovariate(peak_rate_per_s)
        rate = mid + amplitude * math.sin(2.0 * math.pi * t / period_s)
        if rng.random() * peak_rate_per_s <= rate:
            times.append(t)
    return _draw_jobs(times, rng, workloads, budget_levels)


# ---------------------------------------------------------------------------
# the trace file format
# ---------------------------------------------------------------------------

def write_trace(path: Union[str, Path], jobs: Sequence[TraceJob]) -> Path:
    """Write a trace file; returns the path written."""
    out = Path(path)
    lines = [TRACE_HEADER, "# job_id,workload,budget_w,submit_time_s"]
    for job in jobs:
        lines.append(
            f"{job.job_id},{job.workload},{job.budget_w:.6f},"
            f"{job.submit_time_s:.6f}"
        )
    out.write_text("\n".join(lines) + "\n")
    return out


def read_trace(path: Union[str, Path]) -> tuple[TraceJob, ...]:
    """Parse a trace file; raises :class:`ConfigurationError` on bad input."""
    src = Path(path)
    try:
        text = src.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace {src}: {exc}") from exc
    lines = text.splitlines()
    if not lines or lines[0].strip() != TRACE_HEADER:
        raise ConfigurationError(
            f"{src}: not a repro trace (missing '{TRACE_HEADER}' header)"
        )
    jobs = []
    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(",")
        if len(parts) != 4:
            raise ConfigurationError(
                f"{src}:{lineno}: expected 4 comma-separated fields, "
                f"got {len(parts)}"
            )
        try:
            job = TraceJob(
                job_id=int(parts[0]),
                workload=parts[1].strip(),
                budget_w=float(parts[2]),
                submit_time_s=float(parts[3]),
            )
        except (ValueError, ConfigurationError) as exc:
            raise ConfigurationError(f"{src}:{lineno}: {exc}") from exc
        jobs.append(job)
    return tuple(jobs)
