"""Fleet-scale power-coordinated cluster simulation.

The paper's Section 5.1/8 vision — node-level COORD as the foundation of
a cluster-wide power scheduler — needs more than the small static
clusters of :mod:`repro.sched.scheduler`: trace-driven arrivals,
periodic cluster-wide budget re-splits (FastCap-style fair capping), and
thousands of heterogeneous nodes.  :class:`FleetSimulator` is that
layer, built as a hook policy on :mod:`repro.sched.events`.

Scale comes from three structural decisions:

* **Quantized grants.**  Every grant lives on a per-(profile, workload)
  lattice of ``grant_quantum_w`` multiples spanning the workload's
  productive threshold to its maximum useful demand.  The distinct
  allocation space collapses from a continuum to a few dozen points per
  pair, so model executions memoize almost perfectly.
* **Batched allocation rounds.**  At every scheduling point the round
  collects all admissible (job, node) assignments, groups them by
  (profile, workload), and resolves each group through one prepared
  :meth:`~repro.core.parallel.SweepEngine.host_subgrid` executor — a
  1000-node round is a handful of vectorized kernel passes (one per
  group), not 1000 scalar sweeps.  Under an armed fault plan the
  executor transparently falls back to the scalar path, faults and all.
* **Lazy invalidation.**  Budget re-splits re-time running jobs by
  bumping a per-node epoch and pushing a fresh completion; stale
  completions are detected and discarded, never processed.

The re-split policy is water-filling fair sharing: every running job is
first guaranteed its lattice floor (its quantized productive threshold
— feasible by construction, since each was admitted at or above it),
then the remaining cluster budget is distributed one equal share at a
time in node order, capped at each workload's maximum useful demand.
Grants can shrink as well as grow between intervals; re-timing scales
the job's remaining work by the old/new modeled rate, exactly the
rebalancer's boost arithmetic.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.coord import coord_cpu
from repro.core.critical import CpuCriticalPowers
from repro.core.parallel import SubgridExecutor, SweepEngine, default_engine
from repro.core.profiler import profile_cpu_workload
from repro.errors import ConfigurationError, SchedulerError
from repro.hardware.node import ComputeNode
from repro.hardware.platforms import haswell_node, ivybridge_node
from repro.sched.events import (
    BudgetResplit,
    EventLoop,
    EventObserver,
    JobArrival,
    JobCompletion,
    NodeWakeup,
)
from repro.sched.job import JobState
from repro.sched.traces import TraceJob
from repro.workloads.base import Workload
from repro.workloads.cpu_suite import cpu_workload

__all__ = ["FleetNode", "FleetRecord", "FleetSimulator", "FleetStats", "PROFILES"]

#: Node profiles the fleet can cycle over (name -> platform factory).
PROFILES: dict[str, Callable[[], ComputeNode]] = {
    "ivybridge": ivybridge_node,
    "haswell": haswell_node,
}


@dataclass(slots=True)
class FleetNode:
    """One node's mutable scheduling state (deliberately tiny: the fleet
    holds thousands of these, so the heavyweight platform model lives
    once per *profile*, not per node)."""

    index: int
    profile: str
    job_id: Optional[int] = None
    grant_w: float = 0.0
    epoch: int = 0

    @property
    def busy(self) -> bool:
        return self.job_id is not None


@dataclass(slots=True)
class FleetRecord:
    """Per-job outcome record (compact: no event-log list at 100k jobs)."""

    job: TraceJob
    state: JobState = JobState.PENDING
    node_index: Optional[int] = None
    profile: Optional[str] = None
    grant_w: float = 0.0
    start_s: Optional[float] = None
    finish_s: Optional[float] = None
    elapsed_s: float = 0.0
    energy_j: float = 0.0
    n_retimes: int = 0
    reject_reason: Optional[str] = None

    @property
    def wait_s(self) -> float:
        if self.start_s is None:
            raise ConfigurationError(f"job {self.job.job_id} never started")
        return self.start_s - self.job.submit_time_s


@dataclass(frozen=True)
class FleetStats:
    """Aggregate outcome of a fleet run."""

    n_nodes: int
    n_jobs: int
    n_completed: int
    n_rejected: int
    makespan_s: float
    total_energy_j: float
    mean_wait_s: float
    peak_charged_w: float
    n_resplits: int
    n_retimed: int
    n_missed_budget: int
    n_rounds: int
    n_kernel_passes: int
    n_events: int

    @property
    def throughput_jobs_per_hour(self) -> float:
        if self.makespan_s <= 0.0:
            return 0.0
        return self.n_completed / (self.makespan_s / 3600.0)


@dataclass(eq=False)
class _AllocSpec:
    """Precomputed allocation lattice for one (profile, workload) pair."""

    critical: CpuCriticalPowers
    lattice_w: list[float]  # ascending grant_quantum_w multiples
    executor: SubgridExecutor
    rows_run: int = 0

    def row_at_or_below(self, value_w: float) -> Optional[int]:
        """Largest lattice row with watts <= value, or None below floor."""
        i = bisect.bisect_right(self.lattice_w, value_w) - 1
        return i if i >= 0 else None


#: (record, node, spec, lattice row) — one admission in a round.
_Assignment = tuple[FleetRecord, FleetNode, "_AllocSpec", int]


class FleetSimulator:
    """Event-driven power-coordinated scheduler over a heterogeneous fleet.

    Parameters
    ----------
    trace:
        Arrivals (see :mod:`repro.sched.traces`); single-node jobs.
    n_nodes:
        Fleet size; node ``i`` takes ``profiles[i % len(profiles)]``.
    global_bound_w:
        Cluster-wide power bound shared by all grants.
    profiles:
        Names from :data:`PROFILES` to cycle nodes over.
    resplit_interval_s:
        Period of the water-filling budget re-split; ``0`` disables it.
    grant_quantum_w:
        Lattice step for grants (power-of-two watts keep the charged-
        power accounting exact in floating point).
    engine:
        Shared :class:`~repro.core.parallel.SweepEngine`; defaults to
        the process-wide default engine.
    """

    def __init__(
        self,
        trace: Sequence[TraceJob],
        *,
        n_nodes: int,
        global_bound_w: float,
        profiles: Sequence[str] = ("ivybridge", "haswell"),
        resplit_interval_s: float = 0.0,
        grant_quantum_w: float = 8.0,
        engine: Optional[SweepEngine] = None,
    ) -> None:
        if n_nodes <= 0:
            raise ConfigurationError(f"n_nodes must be > 0, got {n_nodes}")
        if not global_bound_w > 0.0:
            raise ConfigurationError(
                f"global_bound_w must be > 0, got {global_bound_w}"
            )
        if not grant_quantum_w > 0.0:
            raise ConfigurationError(
                f"grant_quantum_w must be > 0, got {grant_quantum_w}"
            )
        if resplit_interval_s < 0.0:
            raise ConfigurationError(
                f"resplit_interval_s must be >= 0, got {resplit_interval_s}"
            )
        if not profiles:
            raise ConfigurationError("profiles must be non-empty")
        unknown = sorted(set(profiles) - set(PROFILES))
        if unknown:
            raise ConfigurationError(
                f"unknown profiles {unknown}; available: {sorted(PROFILES)}"
            )
        seen = set()
        for job in trace:
            if job.job_id in seen:
                raise ConfigurationError(f"duplicate job id {job.job_id} in trace")
            seen.add(job.job_id)
        self.trace = tuple(trace)
        self.global_bound_w = float(global_bound_w)
        self.resplit_interval_s = float(resplit_interval_s)
        self.grant_quantum_w = float(grant_quantum_w)
        self._engine = engine if engine is not None else default_engine()
        self._platforms: dict[str, ComputeNode] = {
            name: PROFILES[name]() for name in dict.fromkeys(profiles)
        }
        profile_cycle = list(dict.fromkeys(profiles))
        self.nodes = [
            FleetNode(index=i, profile=profile_cycle[i % len(profile_cycle)])
            for i in range(n_nodes)
        ]
        self.records: dict[int, FleetRecord] = {
            job.job_id: FleetRecord(job=job) for job in self.trace
        }
        self._workloads: dict[str, Workload] = {}
        for job in self.trace:
            if job.workload not in self._workloads:
                try:
                    self._workloads[job.workload] = cpu_workload(job.workload)
                except Exception as exc:
                    raise ConfigurationError(
                        f"trace references unknown workload {job.workload!r}"
                    ) from exc
        self._specs: dict[tuple[str, str], _AllocSpec] = {}
        # Run state.
        self._free: list[int] = []
        self._arrived: list[FleetRecord] = []  # FIFO (appended in time order)
        self._arrived_head = 0
        self._arrivals_left = 0
        self._resplit_armed = False
        self.charged_w = 0.0
        self.peak_charged_w = 0.0
        self._now = 0.0
        self._makespan_s = 0.0
        self._total_energy_j = 0.0
        self._n_completed = 0
        self._n_rejected = 0
        self.n_resplits = 0
        self.n_retimed = 0
        self.n_missed_budget = 0
        self.n_rounds = 0
        self.n_kernel_passes = 0

    # ------------------------------------------------------------------
    # allocation lattice
    # ------------------------------------------------------------------
    def _spec(self, profile: str, workload_name: str) -> _AllocSpec:
        key = (profile, workload_name)
        spec = self._specs.get(key)
        if spec is not None:
            return spec
        node = self._platforms[profile]
        workload = self._workloads[workload_name]
        critical = profile_cpu_workload(node.cpu, node.dram, workload)
        q = self.grant_quantum_w
        lo = -(-critical.productive_threshold_w // q) * q  # ceil to lattice
        hi = -(-critical.max_demand_w // q) * q
        lattice: list[float] = []
        proc: list[float] = []
        mem: list[float] = []
        w = lo
        while w <= hi + 1e-9:
            decision = coord_cpu(critical, w)
            if decision.accepted:
                lattice.append(w)
                proc.append(decision.allocation.proc_w)
                mem.append(decision.allocation.mem_w)
            w += q
        if not lattice:
            raise SchedulerError(
                f"no feasible grant lattice for {workload_name!r} on "
                f"{profile!r} (threshold {critical.productive_threshold_w:.0f} W)"
            )
        executor = self._engine.host_subgrid(
            node.cpu, node.dram, workload.phases, proc, mem
        )
        spec = _AllocSpec(critical=critical, lattice_w=lattice, executor=executor)
        self._specs[key] = spec
        return spec

    # ------------------------------------------------------------------
    # the allocation round
    # ------------------------------------------------------------------
    @property
    def headroom_w(self) -> float:
        return self.global_bound_w - self.charged_w

    def _allocation_round(self, loop: EventLoop) -> None:
        """Admit head-first, then resolve all admissions in one batched
        pass per (profile, workload) group through the prepared subgrid
        executors — the whole-fleet vectorized round."""
        self.n_rounds += 1
        assignments: list[_Assignment] = []
        while self._arrived_head < len(self._arrived) and self._free:
            record = self._arrived[self._arrived_head]
            node = self.nodes[self._free[0]]  # min-heap: lowest index first
            spec = self._spec(node.profile, record.job.workload)
            row = spec.row_at_or_below(
                min(record.job.budget_w, self.headroom_w)
            )
            if row is None:
                if spec.row_at_or_below(
                    min(record.job.budget_w, self.global_bound_w)
                ) is None:
                    # No lattice point under the request even on an empty
                    # cluster: the ask sits below the productive threshold.
                    record.state = JobState.REJECTED
                    record.reject_reason = (
                        f"requested {record.job.budget_w:.0f} W below the "
                        f"productive floor "
                        f"{spec.lattice_w[0]:.0f} W on {node.profile}"
                    )
                    self._n_rejected += 1
                    self._arrived_head += 1
                    continue
                # Power-blocked: a free node exists but headroom cannot
                # fund the head productively.  No backfill — hold.
                self.n_missed_budget += 1
                break
            grant = spec.lattice_w[row]
            heapq.heappop(self._free)
            self.charged_w += grant
            self.peak_charged_w = max(self.peak_charged_w, self.charged_w)
            node.job_id = record.job.job_id
            node.grant_w = grant
            record.state = JobState.RUNNING
            record.node_index = node.index
            record.profile = node.profile
            record.grant_w = grant
            record.start_s = self._now
            assignments.append((record, node, spec, row))
            self._arrived_head += 1
        if self._arrived_head > 4096 and self._arrived_head == len(self._arrived):
            del self._arrived[: self._arrived_head]
            self._arrived_head = 0
        if not assignments:
            return
        for spec, group in self._group_by_spec(assignments).items():
            results = spec.executor.run([row for (_, _, _, row) in group])
            spec.rows_run += len(group)
            self.n_kernel_passes += 1
            for (record, node, _, _), result in zip(group, results):
                record.elapsed_s = result.elapsed_s
                record.energy_j = result.energy_j
                finish = self._now + result.elapsed_s
                record.finish_s = finish
                node.epoch += 1
                loop.schedule(
                    JobCompletion(finish, slot=node.index, epoch=node.epoch)
                )
        if self.resplit_interval_s > 0.0 and not self._resplit_armed:
            self._resplit_armed = True
            loop.schedule(
                BudgetResplit(
                    self._now + self.resplit_interval_s,
                    interval_s=self.resplit_interval_s,
                )
            )

    @staticmethod
    def _group_by_spec(
        assignments: list[_Assignment],
    ) -> dict[_AllocSpec, list[_Assignment]]:
        groups: dict[_AllocSpec, list[_Assignment]] = {}
        for entry in assignments:
            groups.setdefault(entry[2], []).append(entry)
        return groups

    # ------------------------------------------------------------------
    # the water-filling budget re-split
    # ------------------------------------------------------------------
    def _resplit(self, loop: EventLoop) -> None:
        """Re-split the cluster budget fairly across running jobs."""
        self.n_resplits += 1
        busy = [n for n in self.nodes if n.busy]
        if not busy:
            return
        q = self.grant_quantum_w
        specs: dict[int, _AllocSpec] = {}
        floors: dict[int, float] = {}
        caps: dict[int, float] = {}
        for node in busy:
            assert node.job_id is not None
            record = self.records[node.job_id]
            spec = self._spec(node.profile, record.job.workload)
            specs[node.index] = spec
            floors[node.index] = spec.lattice_w[0]
            cap_row = spec.row_at_or_below(record.job.budget_w)
            assert cap_row is not None  # admitted => feasible
            caps[node.index] = spec.lattice_w[cap_row]
        grants = dict(floors)
        remaining = self.global_bound_w - sum(grants.values())
        # Admitted grants were all >= their floors and summed under the
        # bound, so the floors fit; distribute the leftover one equal
        # lattice share at a time, node order breaking the remainder.
        active = [n.index for n in busy if grants[n.index] < caps[n.index]]
        while remaining >= q - 1e-9 and active:
            share = (remaining / len(active)) // q * q
            if share < q:
                for idx in active:
                    if remaining < q - 1e-9:
                        break
                    grants[idx] += q
                    remaining -= q
                break
            progressed = False
            for idx in active:
                take = min(caps[idx] - grants[idx], share)
                grants[idx] += take
                remaining -= take
                progressed = progressed or take > 0.0
            active = [i for i in active if grants[i] < caps[i] - 1e-9]
            if not progressed:  # pragma: no cover - active filter advances
                break
        retimes: list[_Assignment] = []
        for node in busy:
            new_grant = min(grants[node.index], caps[node.index])
            if abs(new_grant - node.grant_w) < q / 2.0:
                continue
            assert node.job_id is not None
            record = self.records[node.job_id]
            spec = specs[node.index]
            row = spec.row_at_or_below(new_grant)
            assert row is not None
            self.charged_w += new_grant - node.grant_w
            node.grant_w = new_grant
            record.grant_w = new_grant
            retimes.append((record, node, spec, row))
        self.peak_charged_w = max(self.peak_charged_w, self.charged_w)
        if not retimes:
            return
        for spec, group in self._group_by_spec(retimes).items():
            results = spec.executor.run([row for (_, _, _, row) in group])
            spec.rows_run += len(group)
            self.n_kernel_passes += 1
            for (record, node, _, _), result in zip(group, results):
                assert record.finish_s is not None
                remaining_s = max(0.0, record.finish_s - self._now)
                # Remaining work scales with the modeled rate ratio —
                # the rebalancer's boost arithmetic, shrink or grow.
                new_finish = self._now + remaining_s * (
                    result.elapsed_s / record.elapsed_s
                )
                record.elapsed_s = result.elapsed_s
                record.energy_j = result.energy_j
                record.finish_s = new_finish
                record.n_retimes += 1
                self.n_retimed += 1
                node.epoch += 1
                loop.schedule(
                    JobCompletion(new_finish, slot=node.index, epoch=node.epoch)
                )

    # ------------------------------------------------------------------
    # SchedulerHooks
    # ------------------------------------------------------------------
    def on_arrival(self, loop: EventLoop, event: JobArrival) -> None:
        self._now = max(self._now, event.time_s)
        self._arrivals_left -= 1
        record = self.records[event.job_id]
        self._arrived.append(record)
        if self._free:
            self._allocation_round(loop)

    def on_completion(self, loop: EventLoop, event: JobCompletion) -> None:
        node = self.nodes[event.slot]
        if node.epoch != event.epoch:
            return  # stale: the job was re-timed by a budget re-split
        self._now = max(self._now, event.time_s)
        assert node.job_id is not None
        record = self.records[node.job_id]
        record.state = JobState.COMPLETED
        record.finish_s = event.time_s
        self._n_completed += 1
        self._total_energy_j += record.energy_j
        self._makespan_s = max(self._makespan_s, event.time_s)
        self.charged_w -= node.grant_w
        node.job_id = None
        node.grant_w = 0.0
        heapq.heappush(self._free, node.index)
        if self._arrived_head < len(self._arrived):
            self._allocation_round(loop)

    def on_resplit(self, loop: EventLoop, event: BudgetResplit) -> None:
        self._now = max(self._now, event.time_s)
        self._resplit_armed = False
        self._resplit(loop)
        # Freed/shrunk power may admit held jobs at this boundary.
        if self._arrived_head < len(self._arrived) and self._free:
            self._allocation_round(loop)
        if any(n.busy for n in self.nodes):
            self._resplit_armed = True
            loop.schedule(
                BudgetResplit(
                    event.time_s + self.resplit_interval_s,
                    interval_s=self.resplit_interval_s,
                )
            )

    def on_wakeup(self, loop: EventLoop, event: NodeWakeup) -> None:
        """No wake-up callbacks in the fleet policy (hook kept for API)."""

    def on_drain(self, loop: EventLoop) -> bool:
        """Arrived jobs that survive a drained queue can never start."""
        if self._arrived_head >= len(self._arrived):
            return False
        record = self._arrived[self._arrived_head]
        self._arrived_head += 1
        record.state = JobState.REJECTED
        record.reject_reason = (
            "unschedulable: no running job will ever free enough power"
        )
        self._n_rejected += 1
        return True

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def run(self, *, observer: Optional[EventObserver] = None) -> FleetStats:
        """Drive the whole trace; returns aggregate fleet statistics."""
        loop = EventLoop(self, observer=observer)
        self._free = [n.index for n in self.nodes]
        heapq.heapify(self._free)
        self._arrivals_left = len(self.trace)
        for job in sorted(self.trace, key=lambda j: (j.submit_time_s, j.job_id)):
            loop.schedule(JobArrival(job.submit_time_s, job_id=job.job_id))
        n_events = loop.run()
        waits = [
            r.wait_s
            for r in self.records.values()
            if r.state is JobState.COMPLETED
        ]
        return FleetStats(
            n_nodes=len(self.nodes),
            n_jobs=len(self.trace),
            n_completed=self._n_completed,
            n_rejected=self._n_rejected,
            makespan_s=self._makespan_s,
            total_energy_j=self._total_energy_j,
            mean_wait_s=sum(waits) / len(waits) if waits else 0.0,
            peak_charged_w=self.peak_charged_w,
            n_resplits=self.n_resplits,
            n_retimed=self.n_retimed,
            n_missed_budget=self.n_missed_budget,
            n_rounds=self.n_rounds,
            n_kernel_passes=self.n_kernel_passes,
            n_events=n_events,
        )
