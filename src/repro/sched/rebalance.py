"""Dynamic power rebalancing across running jobs (extension).

The FCFS scheduler grants each job a fixed budget for its lifetime; watts
freed by a completion sit idle until the next admission.  Production power
managers (GEOPM and kin) instead *rebalance*: redistribute freed power to
jobs that are still running, speeding them up mid-flight.

:class:`RebalancingScheduler` adds that loop to the batch scheduler: at
every completion event, pending admissions are served first (so boosting
never delays an admission available *at that instant*), then running jobs
whose grant sits below their maximum demand are boosted with the leftover
headroom, COORD is re-run at the new grant, and the job's remaining
execution is re-timed at the new rate — the node-level equivalent of the
paper's "returning the excessive budget to an upper level scheduler",
closed into a loop.

Boosts are **non-preemptive**: a boosted job holds its extra watts until
it completes, so a job *arriving after* a boost can find less headroom
than under plain FCFS and start marginally later.  In exchange, boosted
jobs complete sooner; across mixed queues the makespan effect is strongly
net-positive (see the ``cluster`` experiment), but a sub-percent
regression on an individual arrival pattern is possible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

from repro.core.coord import coord_cpu
from repro.core.elasticity import power_elasticity
from repro.core.parallel import SweepEngine
from repro.errors import SchedulerError
from repro.perfmodel.executor import execute_on_host
from repro.sched.cluster import Cluster, NodeSlot
from repro.sched.events import EventLoop, JobCompletion
from repro.sched.job import JobState
from repro.sched.scheduler import PowerBoundedScheduler, SchedulerStats

__all__ = ["RebalanceStats", "RebalancingScheduler"]

#: Don't bother re-programming caps for less than this much extra power.
_MIN_UPLIFT_W = 4.0


@dataclass(frozen=True)
class RebalanceStats(SchedulerStats):
    """Scheduler stats plus rebalancing activity."""

    n_boosts: int = 0
    boosted_w_total: float = 0.0


class RebalancingScheduler(PowerBoundedScheduler):
    """Power-bounded scheduler with completion-time power rebalancing.

    ``boost_order`` selects who gets freed watts first:

    * ``"fcfs"`` (default) — oldest running job first (fairness);
    * ``"elasticity"`` — the job whose marginal performance per watt is
      highest (throughput; see :mod:`repro.core.elasticity`).
    """

    def __init__(
        self,
        cluster: Cluster,
        order: str = "fcfs",
        boost_order: str = "fcfs",
        engine: Optional[SweepEngine] = None,
    ) -> None:
        super().__init__(cluster, order=order, engine=engine)
        if boost_order not in ("fcfs", "elasticity"):
            raise SchedulerError(
                f"boost_order must be 'fcfs' or 'elasticity', got {boost_order!r}"
            )
        self.boost_order = boost_order
        self.n_boosts = 0
        self.boosted_w_total = 0.0
        # Per-run re-timing state (reset by _begin_run): slot -> live
        # completion epoch, and slot -> currently scheduled finish.
        self._epoch: dict[int, int] = {}
        self._finish_by_slot: dict[int, float] = {}

    # ------------------------------------------------------------------
    # boosting
    # ------------------------------------------------------------------
    def _boost_priority(self, pair: tuple[int, NodeSlot]) -> float:
        """Sort key for elasticity-ordered boosting (most elastic first)."""
        _, slot = pair
        assert slot.running_job_id is not None
        record = self.records[slot.running_job_id]
        if record.job.n_nodes > 1:
            return 0.0  # multi-node jobs are not boosted; rank last
        critical = self._critical(record)
        estimate = power_elasticity(
            slot.node.cpu, slot.node.dram, record.job.workload,
            critical, record.granted_budget_w,
        )
        return -estimate.per_watt

    def _boost_running(
        self,
        now_s: float,
        finish_by_slot: dict[int, float],
    ) -> list[tuple[int, float]]:
        """Give freed headroom to running jobs; returns re-timed finishes.

        Jobs are boosted in start order (FCFS fairness) up to their
        profiled maximum demand.  A boost re-runs COORD at the new grant
        and rescales the job's remaining time by the old/new rate ratio.
        """
        updates: list[tuple[int, float]] = []
        busy = [
            (i, slot) for i, slot in enumerate(self.cluster.slots) if slot.busy
        ]
        if self.boost_order == "elasticity":
            busy.sort(key=self._boost_priority)
        else:

            def _start_key(pair: tuple[int, NodeSlot]) -> float:
                job_id = pair[1].running_job_id
                assert job_id is not None
                started = self.records[job_id].start_time_s
                assert started is not None
                return started

            busy.sort(key=_start_key)
        for idx, slot in busy:
            assert slot.running_job_id is not None
            record = self.records[slot.running_job_id]
            if record.job.n_nodes > 1:
                # Multi-node jobs would need a synchronized multi-slot
                # boost; left to a future refinement.
                continue
            critical = self._critical(record)
            headroom = self.cluster.headroom_w
            uplift = min(
                headroom, critical.max_demand_w - record.granted_budget_w
            )
            if uplift < _MIN_UPLIFT_W:
                continue
            new_grant = record.granted_budget_w + uplift
            decision = coord_cpu(critical, new_grant)
            if not decision.accepted:  # pragma: no cover - grants only grow
                continue
            old_perf = record.performance
            result = execute_on_host(
                slot.node.cpu,
                slot.node.dram,
                record.job.workload.phases,
                decision.allocation.proc_w,
                decision.allocation.mem_w,
            )
            new_perf = record.job.workload.performance(result)
            if new_perf <= old_perf * 1.001:
                continue  # the extra watts buy nothing (already saturated)
            # Charge the uplift and re-time the remaining work.
            slot.charged_w += uplift
            self.peak_charged_w = max(self.peak_charged_w, self.cluster.charged_w)
            old_finish = finish_by_slot[idx]
            remaining = max(0.0, old_finish - now_s)
            new_finish = now_s + remaining * (old_perf / new_perf)
            record.granted_budget_w = new_grant
            record.allocation = decision.allocation
            record.performance = new_perf
            record.log(
                f"boosted at t={now_s:.1f}s by {uplift:.0f} W -> "
                f"{decision.allocation} (finish {old_finish:.1f}s -> "
                f"{new_finish:.1f}s)"
            )
            self.n_boosts += 1
            self.boosted_w_total += uplift
            updates.append((idx, new_finish))
        return updates

    # ------------------------------------------------------------------
    # event-core hooks: boosts become re-timed completions, invalidated
    # lazily through the event epochs
    # ------------------------------------------------------------------
    def _begin_run(self) -> None:
        super()._begin_run()
        self._epoch = {}
        self._finish_by_slot = {}

    def _collect_stats(self) -> RebalanceStats:
        base = super()._collect_stats()
        return RebalanceStats(
            n_completed=base.n_completed,
            n_rejected=base.n_rejected,
            makespan_s=base.makespan_s,
            total_energy_j=base.total_energy_j,
            mean_wait_s=base.mean_wait_s,
            reclaimed_w_total=base.reclaimed_w_total,
            peak_charged_w=base.peak_charged_w,
            n_boosts=self.n_boosts,
            boosted_w_total=self.boosted_w_total,
        )

    def _push_completion(self, loop: EventLoop, slot_idx: int, finish: float) -> None:
        """Re-timable completion: bump the slot epoch, record the finish."""
        self._epoch[slot_idx] = self._epoch.get(slot_idx, 0) + 1
        self._finish_by_slot[slot_idx] = finish
        loop.schedule(
            JobCompletion(finish, slot=slot_idx, epoch=self._epoch[slot_idx])
        )

    def on_completion(self, loop: EventLoop, event: JobCompletion) -> None:
        if self._epoch.get(event.slot) != event.epoch:
            # Stale: the job was re-timed by a boost.  The legacy loop
            # popped these without advancing its clock, then re-ran the
            # top-of-loop admission sweep at the *old* now — replicate
            # both (the sweep at the stale clock is idempotent).
            self._admit_available(loop)
            return
        self._now = max(self._now, event.time_s)
        self._complete(event)
        del self._finish_by_slot[event.slot]
        # Freed power: queue progress first (pending admissions see
        # exactly the power the base scheduler would offer them), then
        # boost the survivors with whatever headroom is left, then the
        # legacy top-of-loop sweep before the next event dispatch.
        self._admit_available(loop)
        for boost_idx, new_finish in self._boost_running(
            self._now, self._finish_by_slot
        ):
            self._push_completion(loop, boost_idx, new_finish)
        self._admit_available(loop)

    # ------------------------------------------------------------------
    # legacy loop — the bit-for-bit oracle for the differential battery
    # (same skeleton as the base class, plus boost events and lazy
    # invalidation of re-timed completions)
    # ------------------------------------------------------------------
    def run_legacy(self) -> RebalanceStats:
        events: list[tuple[float, int, int, int]] = []  # (finish, seq, slot, epoch)
        slot_index = {id(s): i for i, s in enumerate(self.cluster.slots)}
        epoch: dict[int, int] = {}
        finish_by_slot: dict[int, float] = {}
        self._pending.sort(key=lambda r: (r.job.submit_time_s, r.job.job_id))
        now = 0.0
        total_energy = 0.0
        makespan = 0.0

        def push(idx: int, finish: float) -> None:
            epoch[idx] = epoch.get(idx, 0) + 1
            finish_by_slot[idx] = finish
            heapq.heappush(events, (finish, next(self._seq), idx, epoch[idx]))

        def admit_pending() -> None:
            while True:
                available = [
                    r for r in self._pending if r.job.submit_time_s <= now
                ]
                if not available:
                    break
                record = min(available, key=self._queue_key)
                started = self._try_start(record, now)
                if record.state is JobState.REJECTED:
                    self._pending.remove(record)
                    continue
                if started is None:
                    break
                slot, finish = started
                push(slot_index[id(slot)], finish)
                self._pending.remove(record)

        while self._pending or events:
            admit_pending()
            if not events:
                if self._pending:
                    future = [
                        r for r in self._pending
                        if r.job.submit_time_s > now and r.state is JobState.PENDING
                    ]
                    if not future:
                        head = min(self._pending, key=self._queue_key)
                        self._pending.remove(head)
                        head.state = JobState.REJECTED
                        head.reject_reason = (
                            "unschedulable: no running job will ever free "
                            "enough power"
                        )
                        head.log(head.reject_reason)
                        continue
                    now = min(r.job.submit_time_s for r in future)
                    continue
                break
            finish, _, idx, ev_epoch = heapq.heappop(events)
            if epoch.get(idx) != ev_epoch:
                continue  # stale completion: the job was re-timed by a boost
            now = max(now, finish)
            slot = self.cluster.slots[idx]
            job_id = slot.running_job_id
            assert job_id is not None
            record = self.records[job_id]
            record.state = JobState.COMPLETED
            record.finish_time_s = finish
            # Energy: approximate with the final-rate run's energy (the
            # boosted configuration dominates the job's lifetime).
            total_energy += record.energy_j
            makespan = max(makespan, finish)
            for slot_idx in record.slot_indices:
                self.cluster.release(self.cluster.slots[slot_idx])
            del finish_by_slot[idx]
            record.log(f"completed at t={finish:.1f}s")
            # Freed power: queue progress first (pending admissions see
            # exactly the power the base scheduler would offer them), then
            # boost the survivors with whatever headroom is left — this
            # ordering guarantees rebalancing never delays an admission.
            admit_pending()
            for boost_idx, new_finish in self._boost_running(now, finish_by_slot):
                push(boost_idx, new_finish)

        completed = [r for r in self.records.values() if r.state is JobState.COMPLETED]
        rejected = [r for r in self.records.values() if r.state is JobState.REJECTED]
        waits = [r.wait_time_s for r in completed]
        return RebalanceStats(
            n_completed=len(completed),
            n_rejected=len(rejected),
            makespan_s=makespan,
            total_energy_j=total_energy,
            mean_wait_s=sum(waits) / len(waits) if waits else 0.0,
            reclaimed_w_total=self.reclaimed_w_total,
            peak_charged_w=self.peak_charged_w,
            n_boosts=self.n_boosts,
            boosted_w_total=self.boosted_w_total,
        )
