"""Multi-tenant co-scheduling under one node power bound (extension).

The paper's future work points at "multi-task and multi-tenant systems".
This module implements the natural first step on the node model: space-
partition the node (cores and memory bandwidth) between two jobs, split the
node's power budget across the partitions, and coordinate each partition
with COORD.  A small search over partition fractions picks the best
combination by *weighted speedup* (each job's throughput normalized to its
solo run on the whole node at the full budget — the standard co-scheduling
metric).

Partitioning model: a fraction ``f`` of the node gives a tenant ``f`` of
the cores, ``f`` of the idle/background power (its share of the fixed
infrastructure), ``f`` of the dynamic power range, and ``f`` of the memory
bandwidth and access power — i.e. proportional hardware slicing, the
behaviour of core pinning plus memory-bandwidth partitioning.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.budget import BudgetVerdict, advise_budget
from repro.core.coord import coord_cpu
from repro.core.critical import CpuCriticalPowers
from repro.core.profiler import profile_cpu_workload
from repro.errors import ConfigurationError, SchedulerError
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.perfmodel.executor import execute_on_host
from repro.util.units import check_fraction, watts
from repro.workloads.base import Workload

__all__ = [
    "CoScheduleResult",
    "TenantOutcome",
    "coschedule_pair",
    "partition_host",
    "split_budget",
]


def partition_host(
    cpu: CpuDomain,
    dram: DramDomain,
    core_fraction: float,
    bw_fraction: float | None = None,
) -> tuple[CpuDomain, DramDomain]:
    """A hardware slice of a host node.

    ``core_fraction`` of the cores (at least one) with proportional power
    envelopes, and ``bw_fraction`` of the memory system (defaults to the
    core share).  Asymmetric slices are the whole point of co-scheduling:
    a compute-bound tenant trades its bandwidth share for the memory-bound
    tenant's core share, and both run closer to their solo speeds.
    """
    check_fraction(core_fraction, "core_fraction")
    if not 0.0 < core_fraction < 1.0:
        raise ConfigurationError(
            f"core_fraction must be in (0, 1), got {core_fraction}"
        )
    if bw_fraction is None:
        bw_fraction = core_fraction
    check_fraction(bw_fraction, "bw_fraction")
    if not 0.0 < bw_fraction < 1.0:
        raise ConfigurationError(f"bw_fraction must be in (0, 1), got {bw_fraction}")
    n_cores = max(1, round(cpu.n_cores * core_fraction))
    core_share = n_cores / cpu.n_cores
    cpu_part = CpuDomain(
        name=f"{cpu.name}-slice",
        n_cores=n_cores,
        pstates=cpu.pstates,
        idle_power_w=cpu.idle_power_w * core_share,
        max_dynamic_w=cpu.max_dynamic_w * core_share,
        duty_min=cpu.duty_min,
        duty_steps=cpu.duty_steps,
        flops_per_core_cycle=cpu.flops_per_core_cycle,
    )
    dram_part = DramDomain(
        name=f"{dram.name}-slice",
        background_w=dram.background_w * bw_fraction,
        max_access_w=dram.max_access_w * bw_fraction,
        peak_bw_gbps=dram.peak_bw_gbps * bw_fraction,
        min_level=dram.min_level,
        level_steps=dram.level_steps,
    )
    return cpu_part, dram_part


def split_budget(
    critical_a: CpuCriticalPowers,
    critical_b: CpuCriticalPowers,
    total_w: float,
) -> tuple[float, float] | None:
    """Split a node budget between two tenants' partitions.

    Demand-proportional above the productive thresholds: each tenant gets
    its threshold first, the remainder is split in proportion to the
    dynamic demand above threshold.  Returns ``None`` when the budget
    cannot cover both thresholds — the pair should not be co-scheduled.
    """
    total_w = watts(total_w, "total_w")
    thr_a = critical_a.productive_threshold_w
    thr_b = critical_b.productive_threshold_w
    if total_w < thr_a + thr_b:
        return None
    want_a = max(0.0, critical_a.max_demand_w - thr_a)
    want_b = max(0.0, critical_b.max_demand_w - thr_b)
    headroom = total_w - thr_a - thr_b
    if want_a + want_b <= 0.0:
        extra_a = headroom / 2.0
    else:
        extra_a = headroom * want_a / (want_a + want_b)
    budget_a = min(thr_a + extra_a, critical_a.max_demand_w)
    budget_b = min(thr_b + (headroom - extra_a), critical_b.max_demand_w)
    return budget_a, budget_b


@dataclass(frozen=True)
class TenantOutcome:
    """One tenant's result inside a co-scheduled configuration."""

    workload_name: str
    core_fraction: float
    bw_fraction: float
    budget_w: float
    performance: float
    solo_performance: float

    @property
    def normalized_progress(self) -> float:
        """Throughput relative to running alone on the whole node/budget."""
        return self.performance / self.solo_performance


@dataclass(frozen=True)
class CoScheduleResult:
    """The best co-scheduled configuration found."""

    tenant_a: TenantOutcome
    tenant_b: TenantOutcome
    total_budget_w: float

    @property
    def weighted_speedup(self) -> float:
        """Sum of normalized progress — > 1 means co-running beats
        time-sharing the node between the two jobs."""
        return (
            self.tenant_a.normalized_progress + self.tenant_b.normalized_progress
        )


def _solo_performance(
    cpu: CpuDomain, dram: DramDomain, workload: Workload, budget_w: float
) -> float:
    critical = profile_cpu_workload(cpu, dram, workload)
    decision = coord_cpu(critical, budget_w)
    alloc = decision.allocation
    result = execute_on_host(cpu, dram, workload.phases, alloc.proc_w, alloc.mem_w)
    return workload.performance(result)


def coschedule_pair(
    cpu: CpuDomain,
    dram: DramDomain,
    workload_a: Workload,
    workload_b: Workload,
    budget_w: float,
    *,
    fractions: tuple[float, ...] = (0.25, 0.5, 0.75),
    bw_fractions: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8),
) -> CoScheduleResult:
    """Search core/bandwidth partitions for the best weighted speedup.

    The grid is two-dimensional: core share and bandwidth share are
    traded independently, so a compute-bound tenant can take most of the
    cores while leaving the bandwidth to a memory-bound tenant.

    Raises :class:`~repro.errors.SchedulerError` when no partition lets
    both tenants clear their productive thresholds — the budget only
    supports one job at a time.
    """
    budget_w = watts(budget_w, "budget_w")
    if not fractions or not bw_fractions:
        raise ConfigurationError("need at least one partition fraction")
    solo_a = _solo_performance(cpu, dram, workload_a, budget_w)
    solo_b = _solo_performance(cpu, dram, workload_b, budget_w)

    best: CoScheduleResult | None = None
    for fraction, bw_fraction in itertools.product(fractions, bw_fractions):
        cpu_a, dram_a = partition_host(cpu, dram, fraction, bw_fraction)
        cpu_b, dram_b = partition_host(cpu, dram, 1.0 - fraction, 1.0 - bw_fraction)
        crit_a = profile_cpu_workload(cpu_a, dram_a, workload_a)
        crit_b = profile_cpu_workload(cpu_b, dram_b, workload_b)
        budgets = split_budget(crit_a, crit_b, budget_w)
        if budgets is None:
            continue
        budget_a, budget_b = budgets
        if advise_budget(crit_a, budget_a).verdict is BudgetVerdict.REJECT:
            continue
        if advise_budget(crit_b, budget_b).verdict is BudgetVerdict.REJECT:
            continue
        alloc_a = coord_cpu(crit_a, budget_a).allocation
        alloc_b = coord_cpu(crit_b, budget_b).allocation
        result_a = execute_on_host(
            cpu_a, dram_a, workload_a.phases, alloc_a.proc_w, alloc_a.mem_w
        )
        result_b = execute_on_host(
            cpu_b, dram_b, workload_b.phases, alloc_b.proc_w, alloc_b.mem_w
        )
        candidate = CoScheduleResult(
            tenant_a=TenantOutcome(
                workload_name=workload_a.name,
                core_fraction=fraction,
                bw_fraction=bw_fraction,
                budget_w=budget_a,
                performance=workload_a.performance(result_a),
                solo_performance=solo_a,
            ),
            tenant_b=TenantOutcome(
                workload_name=workload_b.name,
                core_fraction=1.0 - fraction,
                bw_fraction=1.0 - bw_fraction,
                budget_w=budget_b,
                performance=workload_b.performance(result_b),
                solo_performance=solo_b,
            ),
            total_budget_w=budget_w,
        )
        if best is None or candidate.weighted_speedup > best.weighted_speedup:
            best = candidate
    if best is None:
        raise SchedulerError(
            f"budget {budget_w:.0f} W cannot host both workloads productively; "
            "run them one at a time"
        )
    return best
