"""Power-bounded batch scheduling (extension).

The paper positions node-level coordination as the foundation for
higher-level power scheduling: nodes request an appropriate budget,
enforce it with COORD, and return surplus to the upper-level scheduler
(Sections 5.1 and 8).  This package implements that loop as a miniature
Slurm-like batch system over simulated nodes:

* :class:`~repro.sched.job.Job` — a workload plus a budget request;
* :class:`~repro.sched.cluster.Cluster` — nodes sharing one global bound;
* :class:`~repro.sched.scheduler.PowerBoundedScheduler` — admission via
  COORD (refusing unproductive budgets), allocation, surplus reclaim, and
  event-driven completion.
"""

from repro.sched.job import Job, JobRecord, JobState
from repro.sched.cluster import Cluster, NodeSlot
from repro.sched.scheduler import PowerBoundedScheduler, PredictKey, SchedulerStats
from repro.sched.coschedule import (
    CoScheduleResult,
    TenantOutcome,
    coschedule_pair,
    partition_host,
    split_budget,
)
from repro.sched.rebalance import RebalanceStats, RebalancingScheduler

__all__ = [
    "Cluster",
    "CoScheduleResult",
    "Job",
    "JobRecord",
    "JobState",
    "NodeSlot",
    "PowerBoundedScheduler",
    "PredictKey",
    "RebalanceStats",
    "RebalancingScheduler",
    "SchedulerStats",
    "TenantOutcome",
    "coschedule_pair",
    "partition_host",
    "split_budget",
]
