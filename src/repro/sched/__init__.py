"""Power-bounded batch scheduling (extension).

The paper positions node-level coordination as the foundation for
higher-level power scheduling: nodes request an appropriate budget,
enforce it with COORD, and return surplus to the upper-level scheduler
(Sections 5.1 and 8).  This package implements that loop as a miniature
Slurm-like batch system over simulated nodes:

* :class:`~repro.sched.job.Job` — a workload plus a budget request;
* :class:`~repro.sched.cluster.Cluster` — nodes sharing one global bound;
* :class:`~repro.sched.scheduler.PowerBoundedScheduler` — admission via
  COORD (refusing unproductive budgets), allocation, surplus reclaim, and
  event-driven completion.

Everything runs on the discrete-event core in :mod:`repro.sched.events`
(typed events, deterministic queue, pluggable hooks); the legacy
schedulers are hook policies on it, and :mod:`repro.sched.fleet` scales
the same loop to thousands of heterogeneous nodes driven by the seeded
synthetic traces of :mod:`repro.sched.traces`.
"""

from repro.sched.job import Job, JobRecord, JobState
from repro.sched.cluster import Cluster, NodeSlot
from repro.sched.events import (
    BudgetResplit,
    Event,
    EventKind,
    EventLoop,
    EventQueue,
    JobArrival,
    JobCompletion,
    NodeWakeup,
    SchedulerHooks,
)
from repro.sched.scheduler import PowerBoundedScheduler, PredictKey, SchedulerStats
from repro.sched.coschedule import (
    CoScheduleResult,
    TenantOutcome,
    coschedule_pair,
    partition_host,
    split_budget,
)
from repro.sched.fleet import FleetNode, FleetRecord, FleetSimulator, FleetStats
from repro.sched.rebalance import RebalanceStats, RebalancingScheduler
from repro.sched.traces import (
    TraceJob,
    bursty_trace,
    diurnal_trace,
    poisson_trace,
    read_trace,
    write_trace,
)

__all__ = [
    "BudgetResplit",
    "Cluster",
    "CoScheduleResult",
    "Event",
    "EventKind",
    "EventLoop",
    "EventQueue",
    "FleetNode",
    "FleetRecord",
    "FleetSimulator",
    "FleetStats",
    "Job",
    "JobArrival",
    "JobCompletion",
    "JobRecord",
    "JobState",
    "NodeSlot",
    "NodeWakeup",
    "PowerBoundedScheduler",
    "PredictKey",
    "RebalanceStats",
    "RebalancingScheduler",
    "SchedulerHooks",
    "SchedulerStats",
    "TenantOutcome",
    "TraceJob",
    "bursty_trace",
    "coschedule_pair",
    "diurnal_trace",
    "partition_host",
    "poisson_trace",
    "read_trace",
    "split_budget",
    "write_trace",
]
