"""Jobs for the power-bounded batch scheduler."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.allocation import PowerAllocation
from repro.errors import ConfigurationError
from repro.util.units import watts
from repro.workloads.base import Workload

__all__ = ["Job", "JobRecord", "JobState"]


class JobState(enum.Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    REJECTED = "rejected"


@dataclass(frozen=True)
class Job:
    """A batch job: one workload, one or more nodes, a per-node budget ask.

    ``requested_budget_w`` is the *per-node* budget the user asked for;
    the scheduler may grant less (down to the workload's productive
    threshold) or trim the grant to the profiled maximum demand and
    reclaim the rest.  ``n_nodes`` > 1 models a weak-scaled job: every
    node runs the same per-node workload under the same per-node grant,
    so elapsed time matches the single-node run and throughput scales
    with the node count.
    """

    job_id: int
    workload: Workload
    requested_budget_w: float
    submit_time_s: float = 0.0
    n_nodes: int = 1

    def __post_init__(self) -> None:
        watts(self.requested_budget_w, "requested_budget_w")
        if self.submit_time_s < 0.0:
            raise ConfigurationError(
                f"submit_time_s must be >= 0, got {self.submit_time_s}"
            )
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {self.n_nodes}")


@dataclass
class JobRecord:
    """Mutable scheduling record for one job."""

    job: Job
    state: JobState = JobState.PENDING
    node_name: str | None = None
    slot_indices: list[int] = field(default_factory=list)
    granted_budget_w: float = 0.0
    allocation: PowerAllocation | None = None
    start_time_s: float | None = None
    finish_time_s: float | None = None
    performance: float = 0.0
    energy_j: float = 0.0
    reject_reason: str | None = None
    events: list[str] = field(default_factory=list)

    @property
    def wait_time_s(self) -> float:
        """Queueing delay (valid once started)."""
        if self.start_time_s is None:
            raise ConfigurationError(f"job {self.job.job_id} never started")
        return self.start_time_s - self.job.submit_time_s

    @property
    def turnaround_s(self) -> float:
        """Submit-to-finish latency (valid once finished)."""
        if self.finish_time_s is None:
            raise ConfigurationError(f"job {self.job.job_id} never finished")
        return self.finish_time_s - self.job.submit_time_s

    def log(self, message: str) -> None:
        """Append an event-trace line (reports, debugging)."""
        self.events.append(message)
