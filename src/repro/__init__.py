"""repro — cross-component power coordination on power-bounded systems.

A full reproduction of Ge et al., *The Case for Cross-Component Power
Coordination on Power Bounded Systems* (ICPP 2016), as a Python library:

* calibrated hardware models of the paper's four platforms with RAPL- and
  NVML-style control planes (:mod:`repro.hardware`);
* a roofline-with-stalls execution model under power caps
  (:mod:`repro.perfmodel`);
* the paper's benchmark suites, characterized and (where meaningful)
  executable (:mod:`repro.workloads`);
* the contribution itself — scenario taxonomy, critical power values,
  lightweight profiling, and the COORD heuristics (:mod:`repro.core`);
* a power-bounded batch scheduler built on COORD (:mod:`repro.sched`);
* an experiment harness regenerating every figure and table
  (:mod:`repro.experiments`).

Quickstart::

    from repro import (
        ivybridge_node, cpu_workload, profile_cpu_workload, coord_cpu,
        execute_on_host,
    )

    node = ivybridge_node()
    workload = cpu_workload("stream")
    critical = profile_cpu_workload(node.cpu, node.dram, workload)
    decision = coord_cpu(critical, budget_w=208.0)
    result = execute_on_host(
        node.cpu, node.dram, workload.phases,
        decision.allocation.proc_w, decision.allocation.mem_w,
    )
    print(workload.performance(result), workload.metric_unit)
"""

from repro.errors import (
    BudgetTooSmallError,
    ConfigurationError,
    ConvergenceError,
    FaultError,
    FaultPlanError,
    InfeasibleBudgetError,
    PowerBoundError,
    ProfilingError,
    ReproError,
    SchedulerError,
    SweepError,
    UnitError,
    UnknownPlatformError,
    UnknownWorkloadError,
    WorkerRetryExhaustedError,
)
from repro.faults import (
    DegradationReport,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    use_faults,
)
from repro.hardware import (
    ComputeNode,
    CpuDomain,
    DramDomain,
    GpuCard,
    NvmlDevice,
    RaplInterface,
    get_platform,
    haswell_node,
    ivybridge_node,
    list_platforms,
    titan_v_card,
    titan_xp_card,
)
from repro.perfmodel import (
    ExecutionResult,
    Phase,
    execute_on_gpu,
    execute_on_host,
)
from repro.workloads import (
    Workload,
    WorkloadClass,
    cpu_workload,
    get_workload,
    gpu_workload,
    list_cpu_workloads,
    list_gpu_workloads,
    list_workloads,
    synthetic_workload,
)
from repro.core import (
    CoordDecision,
    CoordStatus,
    CpuCriticalPowers,
    GpuCriticalPowers,
    PowerAllocation,
    Scenario,
    advise_budget,
    classify_cpu,
    classify_gpu,
    coord_cpu,
    coord_gpu,
    cpu_budget_curve,
    gpu_budget_curve,
    SweepEngine,
    use_engine,
    memory_first_allocation,
    oracle_allocation,
    profile_cpu_workload,
    profile_gpu_workload,
    sweep_cpu_allocations,
    sweep_gpu_allocations,
)
from repro.sched import Cluster, Job, PowerBoundedScheduler
from repro.experiments import list_experiments, run_experiment

__version__ = "1.0.0"

__all__ = [
    "BudgetTooSmallError",
    "Cluster",
    "ComputeNode",
    "ConfigurationError",
    "ConvergenceError",
    "CoordDecision",
    "CoordStatus",
    "CpuCriticalPowers",
    "CpuDomain",
    "DegradationReport",
    "DramDomain",
    "ExecutionResult",
    "FaultError",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "GpuCard",
    "GpuCriticalPowers",
    "InfeasibleBudgetError",
    "Job",
    "NvmlDevice",
    "Phase",
    "PowerAllocation",
    "PowerBoundError",
    "PowerBoundedScheduler",
    "ProfilingError",
    "RaplInterface",
    "ReproError",
    "Scenario",
    "SchedulerError",
    "SweepEngine",
    "SweepError",
    "UnitError",
    "UnknownPlatformError",
    "UnknownWorkloadError",
    "WorkerRetryExhaustedError",
    "Workload",
    "WorkloadClass",
    "__version__",
    "advise_budget",
    "classify_cpu",
    "classify_gpu",
    "coord_cpu",
    "coord_gpu",
    "cpu_budget_curve",
    "cpu_workload",
    "execute_on_gpu",
    "execute_on_host",
    "get_platform",
    "get_workload",
    "gpu_budget_curve",
    "gpu_workload",
    "haswell_node",
    "ivybridge_node",
    "list_cpu_workloads",
    "list_experiments",
    "list_gpu_workloads",
    "list_platforms",
    "list_workloads",
    "memory_first_allocation",
    "oracle_allocation",
    "profile_cpu_workload",
    "profile_gpu_workload",
    "run_experiment",
    "sweep_cpu_allocations",
    "sweep_gpu_allocations",
    "synthetic_workload",
    "titan_v_card",
    "titan_xp_card",
    "use_engine",
    "use_faults",
]
