"""The process-wide fault injector.  # shared-state

A :class:`FaultInjector` binds a :class:`~repro.faults.plan.FaultPlan` to
per-site call counters and answers, deterministically, "does a fault fire
at this call?".  Instrumented modules never import plans or schedules —
they call :func:`active` (cheap: one lock-free-read-equivalent under a
lock) and consult the injector only when one is armed, so the disarmed
hot path stays byte-for-byte the pre-fault behavior.

Arming is process-global because the injection points live deep inside
the hardware and engine layers where threading a handle through every
signature would distort the public API the paper-facing code uses.  The
global is guarded by a lock and the canonical entry point is the
:func:`use_faults` context manager, which restores the previous injector
on exit even when the body raises.
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional

from contextlib import contextmanager

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec, fire_draw, noise_draw

__all__ = [
    "FAULTS_ENV_VAR",
    "FaultEvent",
    "FaultInjector",
    "active",
    "arm",
    "disarm",
    "use_faults",
]

#: Environment variable the CLI resolves into a global fault plan.
FAULTS_ENV_VAR = "REPRO_FAULTS"


class FaultEvent:
    """One fault firing: which spec fired, where, at which call."""

    __slots__ = ("site", "kind", "spec_index", "call_index", "amplitude")

    def __init__(
        self,
        site: str,
        kind: FaultKind,
        spec_index: int,
        call_index: int,
        amplitude: float,
    ) -> None:
        self.site = site
        self.kind = kind
        self.spec_index = int(spec_index)
        self.call_index = int(call_index)
        self.amplitude = float(amplitude)

    def __repr__(self) -> str:
        return (
            f"FaultEvent(site={self.site!r}, kind={self.kind.value!r}, "
            f"spec_index={self.spec_index}, call_index={self.call_index}, "
            f"amplitude={self.amplitude})"
        )


class FaultInjector:
    """Deterministic firing engine for one fault plan.

    Thread-safe: per-site call counters and the event log are guarded by
    an internal lock so a pool-backed sweep can consult one injector from
    many threads without double-counting calls.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        self._fires: dict[int, int] = {}
        self._events: list[FaultEvent] = []

    # ------------------------------------------------------------------
    # firing decisions
    # ------------------------------------------------------------------
    def check(self, site: str) -> Optional[FaultEvent]:
        """Advance ``site``'s call counter; return the firing, if any.

        At most one spec fires per call (the lowest-indexed armed spec
        wins) so instrumented code handles a single fault mode per
        operation — matching how a real failed read presents.
        """
        with self._lock:
            call_index = self._calls.get(site, 0)
            self._calls[site] = call_index + 1
            for spec_index, spec in self.plan.specs_for(site):
                if not self._should_fire(spec_index, spec, call_index):
                    continue
                self._fires[spec_index] = self._fires.get(spec_index, 0) + 1
                event = FaultEvent(
                    site, spec.kind, spec_index, call_index, spec.amplitude
                )
                self._events.append(event)
                return event
            return None

    def _should_fire(self, spec_index: int, spec: FaultSpec, call_index: int) -> bool:
        if spec.max_fires is not None:
            if self._fires.get(spec_index, 0) >= spec.max_fires:
                return False
        if call_index in spec.at_calls:
            return True
        if spec.probability > 0.0:
            draw = fire_draw(self.plan.seed, spec.site, spec_index, call_index)
            return draw < spec.probability
        return False

    def noise(self, site: str, call_index: int) -> float:
        """Deterministic uniform in ``[-1, 1)`` keyed to the plan seed."""
        return noise_draw(self.plan.seed, site, call_index)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def events(self) -> tuple[FaultEvent, ...]:
        """Every fault fired so far, in firing order."""
        with self._lock:
            return tuple(self._events)

    def calls(self, site: str) -> int:
        """How many times ``site`` has been consulted."""
        with self._lock:
            return self._calls.get(site, 0)

    def reset(self) -> None:
        """Zero all counters and drop the event log (plan unchanged)."""
        with self._lock:
            self._calls.clear()
            self._fires.clear()
            self._events.clear()


# ---------------------------------------------------------------------------
# process-global arming
# ---------------------------------------------------------------------------

_ACTIVE_LOCK = threading.Lock()
_ACTIVE: Optional[FaultInjector] = None


def active() -> Optional[FaultInjector]:
    """The currently armed injector, or None when faults are disarmed.

    This is the only call on the disarmed hot path; instrumented modules
    guard every fault branch on its result being non-None.
    """
    with _ACTIVE_LOCK:
        return _ACTIVE


def arm(plan_or_injector: FaultPlan | FaultInjector) -> FaultInjector:
    """Arm a fault plan process-wide; returns the installed injector."""
    global _ACTIVE
    injector = (
        plan_or_injector
        if isinstance(plan_or_injector, FaultInjector)
        else FaultInjector(plan_or_injector)
    )
    with _ACTIVE_LOCK:
        _ACTIVE = injector
    return injector


def disarm() -> None:
    """Disarm fault injection process-wide."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = None


@contextmanager
def use_faults(plan_or_injector: FaultPlan | FaultInjector) -> Iterator[FaultInjector]:
    """Arm a plan for the duration of a block, restoring the prior state.

    >>> with use_faults(plan) as injector:
    ...     sweep = cpu_budget_curve(...)
    ...     fired = injector.events()
    """
    global _ACTIVE
    injector = (
        plan_or_injector
        if isinstance(plan_or_injector, FaultInjector)
        else FaultInjector(plan_or_injector)
    )
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = injector
    try:
        yield injector
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE = previous
