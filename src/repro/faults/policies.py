"""Resilience policy primitives shared by the instrumented layers.

Two building blocks cover every transient-fault response in the stack:

* :func:`retry_transient` — bounded re-attempt of an operation that can
  raise :class:`~repro.errors.TransientReadError` (meter counter reads,
  NVML queries, sweep-task execution).  Backoff is *simulated*: the
  schedule is recorded in the degradation report but the library never
  sleeps, because wall-clock time is part of the simulation, not the
  host.
* :func:`strict_majority` — majority vote over repeated measurements
  (the profiler's noise defense).  Only a value that wins an outright
  majority of bit-identical samples is trusted; anything weaker is a
  typed degradation, never a silently averaged guess.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, TypeVar

from repro.errors import TransientReadError
from repro.faults.report import DegradationReport

__all__ = ["backoff_schedule_s", "retry_transient", "strict_majority"]

T = TypeVar("T")


def backoff_schedule_s(base_s: float, attempts: int) -> tuple[float, ...]:
    """The simulated exponential backoff delays for ``attempts`` retries."""
    return tuple(base_s * (2.0**i) for i in range(max(0, attempts)))


def retry_transient(
    operation: Callable[[], T],
    *,
    site: str,
    max_attempts: int,
    report: Optional[DegradationReport] = None,
    backoff_base_s: float = 0.0,
) -> T:
    """Run ``operation``, retrying transient read failures.

    Re-raises the last :class:`~repro.errors.TransientReadError` once the
    attempt budget is exhausted; the caller wraps it in the site-specific
    terminal error (``MeterReadError``, ``NvmlReadError``, ...).  When a
    retry succeeds the recovery is recorded in ``report`` but does *not*
    taint it: the recovered value is the clean value.
    """
    attempts = max(1, int(max_attempts))
    last: Optional[TransientReadError] = None
    for attempt in range(attempts):
        try:
            value = operation()
        except TransientReadError as exc:
            last = exc
            continue
        if attempt > 0 and report is not None:
            delays = backoff_schedule_s(backoff_base_s, attempt)
            report.record(
                site,
                "retried",
                attempts=attempt + 1,
                detail=(
                    f"recovered after {attempt} transient failure(s); "
                    f"simulated backoff {sum(delays):.4g}s"
                ),
            )
        return value
    assert last is not None
    raise last


def strict_majority(samples: Sequence[T], *, total: int | None = None) -> Optional[T]:
    """The value holding a strict majority of ``samples``, or None.

    Equality is exact (bit-identical floats), which is the point: under
    the NOISE fault model the clean value repeats exactly while each
    noisy draw is distinct, so a strict majority certifies the clean
    measurement and anything short of it is untrustworthy.  ``total``
    raises the bar when some attempts produced no sample at all (an
    errored repeat still counts against the majority).
    """
    if not samples:
        return None
    threshold = max(len(samples), total or 0) // 2
    counts: dict[T, int] = {}
    for sample in samples:
        counts[sample] = counts.get(sample, 0) + 1
        if counts[sample] > threshold:
            return sample
    return None
