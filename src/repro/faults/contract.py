"""The chaos contract: clean-vs-faulted differential checks.

This module operationalizes the headline invariant of :mod:`repro.faults`:
under *any* fault plan, every public API either returns a result that is
bit-identical to the clean run or surfaces a typed degradation (a
:class:`~repro.errors.FaultError` subclass or a
:class:`~repro.faults.report.DegradationReport` marked ``degraded``).
Silent drift — a different answer with no typed signal — is the one
forbidden outcome.

:func:`run_chaos` runs a battery of named checks.  Each check executes an
operation twice from identical freshly-built state: once disarmed (the
oracle) and once under a fresh injector for the plan, then classifies the
faulted outcome:

``identical``
    bit-equal to the clean run (recovered faults allowed, not tainting);
``degraded``
    a typed, flagged degradation report accompanied the result;
``typed-error``
    the operation raised a :class:`~repro.errors.FaultError`;
``violation``
    anything else — silent drift or an untyped exception.

The battery covers both hardware registries (RAPL/CPU and NVML/GPU), the
sweep engine's worker path, the resilience wrappers, and the disk cache's
quarantine-and-rebuild recovery.  ``repro chaos`` and the chaos test
suite both drive this entry point, so the CLI exit code and the tests
enforce the same contract.
"""

from __future__ import annotations

import dataclasses
import tempfile
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

import numpy as np

from repro.core.diskcache import DiskCache
from repro.core.parallel import SweepEngine
from repro.core.sweep import cpu_budget_curve, gpu_budget_curve
from repro.errors import FaultError, FaultPlanError
from repro.experiments.fig9 import CPU_BUDGETS_W, GPU_CAPS_W
from repro.faults.injector import FaultInjector, active, arm, disarm, use_faults
from repro.faults.plan import FaultPlan
from repro.faults.report import DegradationReport
from repro.faults.resilience import (
    coordinate_cpu_resilient,
    coordinate_gpu_resilient,
    online_shift_resilient,
)
from repro.hardware.meter import RaplPowerMeter
from repro.hardware.nvml import NvmlDevice
from repro.hardware.platforms import ivybridge_node, titan_xp_card
from repro.hardware.rapl import RaplDomainName, RaplInterface
from repro.perfmodel.executor import execute_on_host
from repro.perfmodel.power_trace import sample_power_trace
from repro.workloads import get_workload, list_cpu_workloads, list_gpu_workloads

__all__ = ["ChaosCheck", "ChaosReport", "run_chaos"]

#: Classification outcomes a check can produce.
_OUTCOMES = ("identical", "degraded", "typed-error", "violation")


@dataclass(frozen=True)
class ChaosCheck:
    """One clean-vs-faulted differential comparison."""

    name: str
    outcome: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        """True unless the degradation contract was violated."""
        return self.outcome != "violation"

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "outcome": self.outcome, "detail": self.detail}


@dataclass(frozen=True)
class ChaosReport:
    """The full battery's verdict for one fault plan."""

    plan: FaultPlan
    scale: str
    checks: tuple[ChaosCheck, ...]

    @property
    def ok(self) -> bool:
        """True when no check violated the degradation contract."""
        return all(check.ok for check in self.checks)

    @property
    def violations(self) -> tuple[ChaosCheck, ...]:
        return tuple(check for check in self.checks if not check.ok)

    def to_dict(self) -> dict[str, Any]:
        return {
            "scale": self.scale,
            "ok": self.ok,
            "plan": self.plan.to_dict(),
            "checks": [check.to_dict() for check in self.checks],
        }

    def summary(self) -> str:
        lines = [
            f"chaos contract: {'OK' if self.ok else 'VIOLATED'} "
            f"({len(self.checks)} check(s), scale={self.scale})"
        ]
        for check in self.checks:
            lines.append(f"  [{check.outcome:>11}] {check.name}"
                         + (f" — {check.detail}" if check.detail else ""))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# battery configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Scale:
    """Grid sizes for one battery scale."""

    cpu_workloads: tuple[str, ...]
    gpu_workloads: tuple[str, ...]
    budgets_w: tuple[float, ...]
    caps_w: tuple[float, ...]
    step_w: float
    freq_stride: int


def _scale_config(scale: str) -> _Scale:
    if scale == "smoke":
        return _Scale(
            cpu_workloads=("stream",),
            gpu_workloads=tuple(list_gpu_workloads()[:1]),
            budgets_w=(176.0, 240.0),
            caps_w=(150.0,),
            step_w=16.0,
            freq_stride=8,
        )
    if scale == "fig9":
        return _Scale(
            cpu_workloads=tuple(list_cpu_workloads()),
            gpu_workloads=tuple(list_gpu_workloads()),
            budgets_w=CPU_BUDGETS_W,
            caps_w=GPU_CAPS_W,
            step_w=8.0,
            freq_stride=4,
        )
    raise FaultPlanError(f"unknown chaos scale {scale!r} (use 'smoke' or 'fig9')")


def _equal(a: Any, b: Any) -> bool:
    """Bit-exact structural equality, including NaN-safe array compares.

    Dataclass ``__eq__`` chokes on numpy-array fields (truth-value
    ambiguity), and ``np.array_equal`` treats NaN as unequal to itself —
    neither is the bit-identity the contract talks about, so arrays are
    compared by shape, dtype, and raw bytes.
    """
    if a is b:
        return True
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.shape == b.shape
            and a.dtype == b.dtype
            and a.tobytes() == b.tobytes()
        )
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        if type(a) is not type(b):
            return False
        return all(
            _equal(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    if isinstance(a, dict):
        return (
            isinstance(b, dict)
            and a.keys() == b.keys()
            and all(_equal(value, b[key]) for key, value in a.items())
        )
    if isinstance(a, (list, tuple)):
        return (
            type(a) is type(b)
            and len(a) == len(b)
            and all(_equal(x, y) for x, y in zip(a, b))
        )
    return bool(a == b)


@contextmanager
def _disarmed() -> Iterator[None]:
    """Run a block with fault injection off, restoring the prior injector."""
    previous = active()
    disarm()
    try:
        yield
    finally:
        if previous is not None:
            arm(previous)


def _run_check(
    name: str,
    op: Callable[[], tuple[Any, DegradationReport | None]],
    plan: FaultPlan,
) -> ChaosCheck:
    """Execute ``op`` clean then faulted; classify against the contract.

    ``op`` must build all mutable state internally (engines, RAPL
    counters, caches) so the two legs start identical; it returns the
    comparable value plus the degradation report it collected, if any.
    """
    with _disarmed():
        clean, _ = op()
    try:
        with use_faults(FaultInjector(plan)):
            faulted, report = op()
    except FaultError as exc:
        return ChaosCheck(name, "typed-error", f"{type(exc).__name__}: {exc}")
    except Exception as exc:  # noqa: BLE001 - the contract forbids these
        return ChaosCheck(
            name, "violation", f"untyped {type(exc).__name__}: {exc}"
        )
    if report is not None and report.degraded:
        return ChaosCheck(name, "degraded", report.summary())
    if _equal(faulted, clean):
        detail = ""
        if report is not None and report.events:
            detail = f"recovered cleanly ({report.summary()})"
        return ChaosCheck(name, "identical", detail)
    return ChaosCheck(
        name,
        "violation",
        "faulted result drifted from the clean run with no typed degradation",
    )


# ---------------------------------------------------------------------------
# the battery
# ---------------------------------------------------------------------------


def _check_cpu_sweep(plan: FaultPlan, cfg: _Scale) -> ChaosCheck:
    """Budget curves through the sweep engine (worker + cache sites)."""
    node = ivybridge_node()

    def op() -> tuple[Any, DegradationReport | None]:
        engine = SweepEngine(n_jobs=1)
        curves = {
            name: cpu_budget_curve(
                node.cpu,
                node.dram,
                get_workload(name),
                cfg.budgets_w,
                step_w=cfg.step_w,
                engine=engine,
            )
            for name in cfg.cpu_workloads
        }
        return curves, None

    return _run_check("cpu.sweep-curve", op, plan)


def _check_gpu_sweep(plan: FaultPlan, cfg: _Scale) -> ChaosCheck:
    card = titan_xp_card()
    caps = tuple(c for c in cfg.caps_w if card.min_cap_w <= c <= card.max_cap_w)

    def op() -> tuple[Any, DegradationReport | None]:
        engine = SweepEngine(n_jobs=1)
        curves = {
            name: gpu_budget_curve(
                card,
                get_workload(name),
                caps,
                freq_stride=cfg.freq_stride,
                engine=engine,
            )
            for name in cfg.gpu_workloads
        }
        return curves, None

    return _run_check("gpu.sweep-curve", op, plan)


def _check_cpu_coordinate(plan: FaultPlan, cfg: _Scale) -> ChaosCheck:
    node = ivybridge_node()
    budget = cfg.budgets_w[0]

    def op() -> tuple[Any, DegradationReport | None]:
        merged = DegradationReport()
        decisions = {}
        for name in cfg.cpu_workloads:
            decision, report = coordinate_cpu_resilient(
                node.cpu, node.dram, get_workload(name), budget
            )
            decisions[name] = decision
            merged.merge(report)
        return decisions, merged

    return _run_check("cpu.coordinate", op, plan)


def _check_gpu_coordinate(plan: FaultPlan, cfg: _Scale) -> ChaosCheck:
    card = titan_xp_card()
    cap = next(
        (c for c in cfg.caps_w if card.min_cap_w <= c <= card.max_cap_w),
        card.max_cap_w,
    )

    def op() -> tuple[Any, DegradationReport | None]:
        merged = DegradationReport()
        decisions = {}
        for name in cfg.gpu_workloads:
            decision, report = coordinate_gpu_resilient(
                card, get_workload(name), cap
            )
            decisions[name] = decision
            merged.merge(report)
        return decisions, merged

    return _run_check("gpu.coordinate", op, plan)


def _check_online_shift(plan: FaultPlan, cfg: _Scale) -> ChaosCheck:
    node = ivybridge_node()
    budget = cfg.budgets_w[0]

    def op() -> tuple[Any, DegradationReport | None]:
        merged = DegradationReport()
        results = {}
        for name in cfg.cpu_workloads:
            result, report = online_shift_resilient(
                node.cpu, node.dram, get_workload(name), budget
            )
            results[name] = result
            merged.merge(report)
        return results, merged

    return _run_check("online.shift", op, plan)


def _check_meter(plan: FaultPlan, cfg: _Scale) -> ChaosCheck:
    """The RAPL measurement path: counter faults against a replayed trace."""
    node = ivybridge_node()
    wl = get_workload(cfg.cpu_workloads[0])
    result = execute_on_host(
        node.cpu, node.dram, wl.phases, cfg.budgets_w[0] * 0.6, cfg.budgets_w[0] * 0.4
    )
    trace = sample_power_trace(result, dt_s=0.01)

    def op() -> tuple[Any, DegradationReport | None]:
        rapl = RaplInterface()
        meter = RaplPowerMeter(rapl, RaplDomainName.PACKAGE, poll_interval_s=0.1)
        report = DegradationReport()
        readings = meter.observe_trace(trace, "proc", report=report)
        return readings, report

    return _run_check("meter.observe", op, plan)


def _check_nvml(plan: FaultPlan, cfg: _Scale) -> ChaosCheck:
    card = titan_xp_card()

    def op() -> tuple[Any, DegradationReport | None]:
        device = NvmlDevice(card)
        report = DegradationReport()
        values = (
            device.read_power_limit_w(report=report),
            device.read_mem_clock_offset_mhz(report=report),
        )
        return values, report

    return _run_check("nvml.read", op, plan)


def _check_diskcache(plan: FaultPlan, cfg: _Scale) -> ChaosCheck:
    """Write-fault roundtrip: poisoned segments may miss, never lie.

    Classification is bespoke: a reloading process must see either the
    stored value (bit-exact) or a miss for every key — a *wrong* value is
    the violation.  Misses mean the fault landed and the quarantine-and-
    rebuild recovery recomputes them elsewhere, which is a degradation,
    not a contract breach.
    """
    node = ivybridge_node()
    wl = get_workload(cfg.cpu_workloads[0])
    budget = cfg.budgets_w[0]
    stored = {
        ("chaos", i): execute_on_host(
            node.cpu, node.dram, wl.phases, budget - 16.0 * i, 16.0 * (i + 1)
        )
        for i in range(4)
    }

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        with use_faults(FaultInjector(plan)):
            writer = DiskCache(tmp, quarantine=True)
            for key, value in stored.items():
                writer.store(key, value)
                writer.flush()  # one segment per record: independent targets
        with _disarmed():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                reader = DiskCache(tmp, quarantine=True)
                wrong = []
                missing = []
                for key, value in stored.items():
                    hit, got = reader.lookup(key)
                    if not hit:
                        missing.append(key)
                    elif got != value:
                        wrong.append(key)
                rebuilt = reader.rebuild()
        if wrong:
            return ChaosCheck(
                "diskcache.roundtrip",
                "violation",
                f"{len(wrong)} reloaded record(s) differ from what was stored",
            )
        if missing:
            return ChaosCheck(
                "diskcache.roundtrip",
                "degraded",
                f"{len(missing)} of {len(stored)} record(s) lost to poisoned "
                f"segments; {rebuilt} record(s) republished by rebuild()",
            )
        return ChaosCheck(
            "diskcache.roundtrip",
            "identical",
            f"all {len(stored)} record(s) survived; store rebuilt to {rebuilt}",
        )


_BATTERY: tuple[Callable[[FaultPlan, _Scale], ChaosCheck], ...] = (
    _check_cpu_sweep,
    _check_gpu_sweep,
    _check_cpu_coordinate,
    _check_gpu_coordinate,
    _check_online_shift,
    _check_meter,
    _check_nvml,
    _check_diskcache,
)


def run_chaos(plan: FaultPlan, *, scale: str = "smoke") -> ChaosReport:
    """Run the full chaos battery for ``plan``; never raises on faults.

    ``scale`` picks the grid: ``"smoke"`` is the CI-sized battery,
    ``"fig9"`` sweeps the paper's Figure 9 budgets and caps on both
    registries.  The returned report's :attr:`~ChaosReport.ok` is the
    contract verdict (the CLI turns it into the exit code).
    """
    cfg = _scale_config(scale)
    checks = tuple(check(plan, cfg) for check in _BATTERY)
    return ChaosReport(plan=plan, scale=scale, checks=checks)
