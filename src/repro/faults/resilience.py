"""Graceful degradation for the paper-facing coordination APIs.

These wrappers are the fault-aware front doors to profiling, COORD, and
the online controller.  Each returns ``(result, DegradationReport)`` and
upholds the degradation contract:

* with no injector armed they delegate straight to the clean
  implementation and return an empty report — zero-cost disarm;
* under an armed plan the result is either bit-identical to the clean
  run (recovered faults are recorded but do not taint the report) or the
  report is marked ``degraded`` / a :class:`~repro.errors.FaultError`
  is raised — a silently wrong allocation is never an outcome.

The profiling defense is a strict-majority vote: the profile is repeated
``plan.profile_repeats`` times and only a bit-identical majority is
trusted.  Under the NOISE model each perturbed sample is distinct (draws
are keyed to unique call indices) while clean samples repeat exactly, so
a strict majority certifies the clean profile; anything weaker raises
:class:`~repro.errors.ProfilingDegradedError`.
"""

from __future__ import annotations

from typing import Any

from repro.core.coord import CoordDecision, coord_cpu
from repro.core.coord_gpu import coord_gpu
from repro.core.critical import CpuCriticalPowers, GpuCriticalPowers
from repro.core.online import OnlineShiftResult, online_power_shift
from repro.core.profiler import profile_cpu_workload, profile_gpu_workload
from repro.errors import FaultError, ProfilingDegradedError, ReproError
from repro.faults.injector import FaultInjector, active
from repro.faults.policies import strict_majority
from repro.faults.report import DegradationReport
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.hardware.gpu import GpuCard
from repro.workloads.base import Workload

__all__ = [
    "coordinate_cpu_resilient",
    "coordinate_gpu_resilient",
    "online_shift_resilient",
    "profile_cpu_resilient",
    "profile_gpu_resilient",
]


def _site_events(injector: FaultInjector, site: str) -> int:
    return sum(1 for event in injector.events() if event.site == site)


def _sample_profiles(profile: Any, repeats: int) -> tuple[list[Any], int]:
    """Run a profiling closure ``repeats`` times, tolerating noisy wrecks.

    A noise burst can perturb a profile into violating the critical-power
    validation invariants; such a repeat yields no sample but still
    counts against the majority (it was certainly not the clean run).
    """
    samples: list[Any] = []
    errored = 0
    for _ in range(repeats):
        try:
            samples.append(profile())
        except FaultError:
            raise
        except ReproError:
            errored += 1
    return samples, errored


def _vote(samples: list[Any], total: int, report: DegradationReport) -> Any:
    """Strict-majority vote over repeated profiles; typed error otherwise."""
    winner = strict_majority(samples, total=total)
    if winner is None:
        raise ProfilingDegradedError(
            "profiler.sample",
            tuple(float(getattr(s, "cpu_l1", getattr(s, "tot_max", 0.0))) for s in samples),
        )
    disagreeing = total - sum(1 for s in samples if s == winner)
    if disagreeing:
        report.record(
            "profiler.sample",
            "majority-vote",
            attempts=total,
            detail=(
                f"{disagreeing} of {total} profiling repeat(s) were "
                f"noisy; strict majority certified the clean profile"
            ),
        )
    return winner


def profile_cpu_resilient(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
) -> tuple[CpuCriticalPowers, DegradationReport]:
    """Profile a CPU workload, defending against profiling noise bursts."""
    report = DegradationReport()
    injector = active()
    if injector is None:
        return profile_cpu_workload(cpu, dram, workload), report
    repeats = injector.plan.profile_repeats
    samples, _ = _sample_profiles(
        lambda: profile_cpu_workload(cpu, dram, workload), repeats
    )
    return _vote(samples, repeats, report), report


def profile_gpu_resilient(
    card: GpuCard,
    workload: Workload,
) -> tuple[GpuCriticalPowers, DegradationReport]:
    """Profile a GPU workload, defending against profiling noise bursts."""
    report = DegradationReport()
    injector = active()
    if injector is None:
        return profile_gpu_workload(card, workload), report
    repeats = injector.plan.profile_repeats
    samples, _ = _sample_profiles(
        lambda: profile_gpu_workload(card, workload), repeats
    )
    return _vote(samples, repeats, report), report


def coordinate_cpu_resilient(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    budget_w: float,
    *,
    strict: bool = False,
) -> tuple[CoordDecision, DegradationReport]:
    """Profile-then-COORD for CPUs with the degradation contract attached.

    COORD itself (Algorithm 1) is pure arithmetic over the profile, so
    once the majority vote certifies the critical powers the decision is
    the clean decision; all recoverable faults live in the profiling leg.
    """
    critical, report = profile_cpu_resilient(cpu, dram, workload)
    return coord_cpu(critical, budget_w, strict=strict), report


def coordinate_gpu_resilient(
    card: GpuCard,
    workload: Workload,
    budget_w: float,
    *,
    gamma: float = 0.5,
) -> tuple[CoordDecision, DegradationReport]:
    """Profile-then-COORD for GPUs with the degradation contract attached."""
    critical, report = profile_gpu_resilient(card, workload)
    decision = coord_gpu(
        critical, budget_w, hardware_max_w=card.max_cap_w, gamma=gamma
    )
    return decision, report


def online_shift_resilient(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    budget_w: float,
    **kwargs: Any,
) -> tuple[OnlineShiftResult, DegradationReport]:
    """Run the online controller, reporting any noisy-signal epochs.

    The controller steers on the bottleneck signal, so injected NOISE can
    send it down a different (still budget-respecting) trajectory.  The
    returned allocation is always *valid* — every candidate was simulated
    cleanly and the best bound-respecting one wins — but when any epoch
    steered on a perturbed signal the report is marked ``degraded``:
    the result may be suboptimal relative to the clean run and callers
    must not treat it as the oracle.
    """
    report = DegradationReport()
    injector = active()
    before = 0 if injector is None else _site_events(injector, "online.signal")
    result = online_power_shift(cpu, dram, workload, budget_w, **kwargs)
    after = 0 if injector is None else _site_events(injector, "online.signal")
    if after > before:
        report.record(
            "online.signal",
            "noisy-signal",
            attempts=after - before,
            detail=(
                f"{after - before} epoch(s) steered on a perturbed "
                f"bottleneck signal; allocation valid but possibly suboptimal"
            ),
            degrades=True,
        )
    return result, report
