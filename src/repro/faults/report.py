"""Typed degradation reporting.

The degradation contract (see ``docs/robustness.md``) allows exactly two
outcomes for a public API under an armed fault plan: a result
bit-identical to the clean run, or a *typed* signal that quality was
lost — either an exception from the :class:`~repro.errors.FaultError`
family or a :class:`DegradationReport` attached to an otherwise valid
result.  A report never excuses a wrong answer; it marks an answer that
is valid but was produced on a degraded path (retries burned, noisy
signal tolerated, fallback taken) so callers can decide whether to
re-run or accept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["DegradationEvent", "DegradationReport"]


@dataclass(frozen=True)
class DegradationEvent:
    """One recovery action taken on the degraded path."""

    #: Injection site the fault surfaced at (e.g. ``"rapl.read"``).
    site: str
    #: What the policy did: ``"retried"``, ``"quarantined"``,
    #: ``"resubmitted"``, ``"noisy-signal"``, ``"majority-vote"``, ...
    action: str
    #: How many attempts/samples the recovery consumed.
    attempts: int = 1
    #: Human-readable context (fault kind, segment name, call index...).
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "action": self.action,
            "attempts": self.attempts,
            "detail": self.detail,
        }


@dataclass
class DegradationReport:
    """The typed record of everything recovered from during one operation.

    ``degraded`` is True when any event perturbed the *quality* of the
    result (e.g. the online controller steered on a noisy signal), as
    opposed to events that were fully absorbed (a retried read that then
    returned the clean value keeps ``degraded`` False).
    """

    events: list[DegradationEvent] = field(default_factory=list)
    degraded: bool = False

    def record(
        self,
        site: str,
        action: str,
        *,
        attempts: int = 1,
        detail: str = "",
        degrades: bool = False,
    ) -> None:
        """Append one recovery event; ``degrades=True`` taints the result."""
        self.events.append(
            DegradationEvent(site=site, action=action, attempts=attempts, detail=detail)
        )
        if degrades:
            self.degraded = True

    @property
    def clean(self) -> bool:
        """True when nothing at all was recovered from."""
        return not self.events

    def merge(self, other: "DegradationReport") -> None:
        """Fold another report's events (and taint) into this one."""
        self.events.extend(other.events)
        self.degraded = self.degraded or other.degraded

    def to_dict(self) -> dict[str, Any]:
        return {
            "degraded": self.degraded,
            "events": [event.to_dict() for event in self.events],
        }

    def summary(self) -> str:
        if self.clean:
            return "clean (no faults encountered)"
        status = "degraded" if self.degraded else "recovered"
        return f"{status}: {len(self.events)} recovery event(s)"
