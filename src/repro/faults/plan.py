"""Deterministic, JSON-loadable fault plans.

A :class:`FaultPlan` is the single source of truth for *which* faults a
run injects and *when*.  It is fully deterministic: firing decisions are
derived from the plan seed, the injection-site name, and a per-site call
counter through :func:`repro.util.seeds.derive_seed` — no wall clock, no
process-salted hashing — so the same plan against the same call sequence
always injects the same faults, which is what lets the chaos suite
compare a faulted run against a clean oracle bit-for-bit.

Sites are the named hook points threaded through the stack:

========================  ====================================================
``rapl.read``             RAPL energy-counter reads (stuck/dropout/wrap-jump)
``nvml.read``             NVML device queries (transient dropout)
``diskcache.write``       sweep-cache segment publication (torn/corrupt)
``parallel.worker``       sweep-engine task execution (crash/timeout)
``profiler.sample``       critical-power profiling measurements (noise)
``online.signal``         online controller bottleneck readings (noise)
========================  ====================================================
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.errors import FaultPlanError
from repro.util.seeds import DEFAULT_SEED, derive_seed

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "SITES",
    "fire_draw",
    "noise_draw",
]


class FaultKind(str, enum.Enum):
    """The fault taxonomy (see ``docs/robustness.md``)."""

    #: A read raises :class:`~repro.errors.TransientReadError`.
    DROPOUT = "dropout"
    #: A counter read returns the previously read (stale) value.
    STUCK = "stuck"
    #: The counter register jumps ahead by ``amplitude * 2**32`` ticks.
    WRAP_JUMP = "wrap-jump"
    #: A cache segment is published truncated mid-record.
    TORN_WRITE = "torn-write"
    #: A cache segment is published with a garbled record.
    CORRUPT_WRITE = "corrupt-write"
    #: A sweep task dies with :class:`~repro.errors.WorkerCrashError`.
    WORKER_CRASH = "worker-crash"
    #: A sweep task dies with :class:`~repro.errors.WorkerTimeoutError`.
    WORKER_TIMEOUT = "worker-timeout"
    #: A measurement is multiplied by ``1 + amplitude * u``, ``u ∈ [-1, 1)``.
    NOISE = "noise"


#: Injection sites and the fault kinds each one understands.
SITES: dict[str, tuple[FaultKind, ...]] = {
    "rapl.read": (FaultKind.DROPOUT, FaultKind.STUCK, FaultKind.WRAP_JUMP),
    "nvml.read": (FaultKind.DROPOUT,),
    "diskcache.write": (FaultKind.TORN_WRITE, FaultKind.CORRUPT_WRITE),
    "parallel.worker": (FaultKind.WORKER_CRASH, FaultKind.WORKER_TIMEOUT),
    "profiler.sample": (FaultKind.NOISE,),
    "online.signal": (FaultKind.NOISE,),
}

#: Resolution of the deterministic uniform draw (64-bit seeds → [0, 1)).
_DRAW_SPAN = float(2**64)


def fire_draw(seed: int, site: str, spec_index: int, call_index: int) -> float:
    """Deterministic uniform in ``[0, 1)`` for one (spec, call) decision."""
    return derive_seed(seed, "fire", site, str(spec_index), str(call_index)) / _DRAW_SPAN


def noise_draw(seed: int, site: str, call_index: int) -> float:
    """Deterministic uniform in ``[-1, 1)`` for a noise perturbation."""
    return 2.0 * (derive_seed(seed, "noise", site, str(call_index)) / _DRAW_SPAN) - 1.0


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: a site, a kind, and a deterministic schedule.

    A spec fires at a given call either because the call index appears in
    ``at_calls`` or because the seeded uniform draw lands under
    ``probability``; ``max_fires`` caps the total number of firings so a
    plan can model a bounded burst rather than a permanently broken part.
    """

    site: str
    kind: FaultKind
    probability: float = 0.0
    at_calls: tuple[int, ...] = ()
    max_fires: int | None = None
    #: Relative magnitude for NOISE (measurement perturbation) and
    #: WRAP_JUMP (fraction of the 32-bit register jumped over).
    amplitude: float = 0.25

    def __post_init__(self) -> None:
        allowed = SITES.get(self.site)
        if allowed is None:
            raise FaultPlanError(
                f"unknown injection site {self.site!r}; known sites: "
                f"{', '.join(sorted(SITES))}"
            )
        kind = FaultKind(self.kind)
        object.__setattr__(self, "kind", kind)
        if kind not in allowed:
            raise FaultPlanError(
                f"site {self.site!r} does not understand fault kind "
                f"{kind.value!r} (allowed: {', '.join(k.value for k in allowed)})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        calls = tuple(int(c) for c in self.at_calls)
        if any(c < 0 for c in calls):
            raise FaultPlanError(f"at_calls must be >= 0, got {calls}")
        object.__setattr__(self, "at_calls", calls)
        if self.probability == 0.0 and not calls:
            raise FaultPlanError(
                f"spec for {self.site!r} can never fire: probability is 0 "
                f"and at_calls is empty"
            )
        if self.max_fires is not None and self.max_fires < 1:
            raise FaultPlanError(f"max_fires must be >= 1, got {self.max_fires}")
        if not 0.0 < self.amplitude <= 1.0:
            raise FaultPlanError(
                f"amplitude must be in (0, 1], got {self.amplitude}"
            )
        if kind is FaultKind.WRAP_JUMP and self.amplitude < 0.05:
            # The meter's only defense against a phantom counter jump is
            # the plausibility ceiling; a jump below it is physically
            # indistinguishable from real energy (docs/robustness.md,
            # "detectability boundary").  Keep modeled jumps in the
            # detectable regime: >= 0.05 * 2**32 ticks ≈ 3.3 kJ, which at
            # sane polling windows always trips the ceiling.
            raise FaultPlanError(
                f"wrap-jump amplitude must be >= 0.05 (detectable regime), "
                f"got {self.amplitude}"
            )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"site": self.site, "kind": self.kind.value}
        if self.probability:
            payload["probability"] = self.probability
        if self.at_calls:
            payload["at_calls"] = list(self.at_calls)
        if self.max_fires is not None:
            payload["max_fires"] = self.max_fires
        payload["amplitude"] = self.amplitude
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSpec":
        unknown = set(payload) - {
            "site", "kind", "probability", "at_calls", "max_fires", "amplitude"
        }
        if unknown:
            raise FaultPlanError(
                f"unknown fault-spec field(s): {', '.join(sorted(unknown))}"
            )
        try:
            kind = FaultKind(payload["kind"])
        except (KeyError, ValueError) as exc:
            raise FaultPlanError(f"bad fault kind in spec: {exc}") from exc
        return cls(
            site=str(payload.get("site", "")),
            kind=kind,
            probability=float(payload.get("probability", 0.0)),
            at_calls=tuple(payload.get("at_calls", ())),
            max_fires=(
                None if payload.get("max_fires") is None
                else int(payload["max_fires"])
            ),
            amplitude=float(payload.get("amplitude", 0.25)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault specs plus the resilience-policy knobs.

    ``max_attempts`` bounds every retry loop the policies run (meter and
    NVML re-reads, sweep-task resubmission); ``backoff_base_s`` is the
    *simulated* exponential-backoff base recorded in degradation reports
    (the library never sleeps — time is part of the simulation, not the
    host); ``profile_repeats`` is the majority-vote sample count the
    profiler takes per measured quantity while faults are armed.
    """

    seed: int = DEFAULT_SEED
    specs: tuple[FaultSpec, ...] = ()
    max_attempts: int = 3
    backoff_base_s: float = 0.001
    profile_repeats: int = 3

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        if self.max_attempts < 1:
            raise FaultPlanError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0.0:
            raise FaultPlanError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.profile_repeats < 3 or self.profile_repeats % 2 == 0:
            # A vote of one would trust a possibly-noisy sample, which the
            # degradation contract forbids; three is the smallest real vote.
            raise FaultPlanError(
                f"profile_repeats must be an odd number >= 3, got "
                f"{self.profile_repeats}"
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the plan arms no fault at all."""
        return not self.specs

    def specs_for(self, site: str) -> tuple[tuple[int, FaultSpec], ...]:
        """``(plan_index, spec)`` pairs armed at ``site``."""
        return tuple(
            (i, spec) for i, spec in enumerate(self.specs) if spec.site == site
        )

    @classmethod
    def empty(cls, seed: int = DEFAULT_SEED) -> "FaultPlan":
        """A plan that injects nothing (the disarmed oracle)."""
        return cls(seed=seed, specs=())

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "max_attempts": self.max_attempts,
            "backoff_base_s": self.backoff_base_s,
            "profile_repeats": self.profile_repeats,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        unknown = set(payload) - {
            "seed", "max_attempts", "backoff_base_s", "profile_repeats", "faults"
        }
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan field(s): {', '.join(sorted(unknown))}"
            )
        raw_specs = payload.get("faults", [])
        if not isinstance(raw_specs, (list, tuple)):
            raise FaultPlanError("'faults' must be a list of fault specs")
        return cls(
            seed=int(payload.get("seed", DEFAULT_SEED)),
            specs=tuple(FaultSpec.from_dict(s) for s in raw_specs),
            max_attempts=int(payload.get("max_attempts", 3)),
            backoff_base_s=float(payload.get("backoff_base_s", 0.001)),
            profile_repeats=int(payload.get("profile_repeats", 3)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise FaultPlanError("fault plan JSON must be an object")
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Read a plan from a JSON file."""
        path = Path(path).expanduser()
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan {path}: {exc}") from exc
        return cls.from_json(text)

    def save(self, path: str | Path) -> Path:
        """Write the plan as JSON; returns the path written."""
        path = Path(path).expanduser()
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path
