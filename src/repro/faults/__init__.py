"""Deterministic fault injection and resilience policies.

The subsystem has two halves:

* **injection** (:mod:`~repro.faults.plan`, :mod:`~repro.faults.injector`)
  — a seeded, JSON-loadable :class:`FaultPlan` armed process-wide via
  :func:`use_faults`, consulted by named hook points threaded through the
  hardware and engine layers.  Fully deterministic: the same plan against
  the same call sequence fires the same faults;
* **response** (:mod:`~repro.faults.policies`,
  :mod:`~repro.faults.resilience`, :mod:`~repro.faults.report`) — bounded
  retries, majority-vote profiling, quarantine-and-rebuild, and worker
  resubmission, all upholding one contract: under any fault plan a public
  API either returns a result bit-identical to the clean run or
  raises/reports a typed degradation.  Never a silently wrong allocation.

:mod:`~repro.faults.contract` turns that invariant into an executable
check (the ``repro chaos`` CLI verb and the ``tests/test_faults.py``
suite drive it).

The resilience and contract layers import :mod:`repro.core`, which in
turn imports the instrumented engine — so this package keeps them lazy
(PEP 562) to stay importable from deep inside the layers it instruments.
"""

from __future__ import annotations

from typing import Any

from repro.faults.injector import (
    FAULTS_ENV_VAR,
    FaultEvent,
    FaultInjector,
    active,
    arm,
    disarm,
    use_faults,
)
from repro.faults.plan import SITES, FaultKind, FaultPlan, FaultSpec
from repro.faults.policies import backoff_schedule_s, retry_transient, strict_majority
from repro.faults.report import DegradationEvent, DegradationReport

__all__ = [
    "FAULTS_ENV_VAR",
    "SITES",
    "ChaosCheck",
    "ChaosReport",
    "DegradationEvent",
    "DegradationReport",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "active",
    "arm",
    "backoff_schedule_s",
    "coordinate_cpu_resilient",
    "coordinate_gpu_resilient",
    "disarm",
    "online_shift_resilient",
    "profile_cpu_resilient",
    "profile_gpu_resilient",
    "retry_transient",
    "run_chaos",
    "strict_majority",
    "use_faults",
]

#: Lazily resolved exports → the submodule that defines them.
_LAZY = {
    "coordinate_cpu_resilient": "repro.faults.resilience",
    "coordinate_gpu_resilient": "repro.faults.resilience",
    "online_shift_resilient": "repro.faults.resilience",
    "profile_cpu_resilient": "repro.faults.resilience",
    "profile_gpu_resilient": "repro.faults.resilience",
    "ChaosCheck": "repro.faults.contract",
    "ChaosReport": "repro.faults.contract",
    "run_chaos": "repro.faults.contract",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
