"""Persistent cross-process sweep cache — the disk tier behind MemoCache.

The in-memory :class:`~repro.core.parallel.MemoCache` dies with its
process, so every experiment run, benchmark repeat, and pool worker
starts cold even though the model is a pure function of content-
fingerprinted keys.  This module adds an opt-in disk tier
(``REPRO_CACHE_DIR`` / ``--cache-dir``) with three hard requirements:

* **atomicity** — concurrent writers (pool workers, parallel CI jobs)
  must never corrupt the store.  Each flush writes a brand-new segment
  file via write-temp-then-``os.replace``; nothing ever appends to or
  rewrites a published segment, so readers only ever see complete files;
* **corruption tolerance** — a truncated or garbage segment (killed
  process, disk full, manual tampering) is *skipped with a warning* and
  the affected keys simply recompute; loading never raises;
* **invalidation** — every segment opens with a header stamping the
  cache format, schema version, and package version.  A mismatch on any
  of the three skips the whole segment: results serialized by a
  different model version are never served.

Layout: ``<cache_dir>/seg-<pid>-<seq>-<token>.jsonl``, one JSON record
per line (a header line, then ``{"record": "entry", "digest", "result"}``
lines).  Keys are digested with SHA-1 over their ``repr`` — the keys are
already content fingerprints (see ``SweepEngine``), so equal model
inputs digest equally across processes.  Values round-trip through the
pure codec :func:`encode_result` / :func:`decode_result`; JSON float
serialization is repr-based, so every float64 field survives bit-for-bit
(including infinities and NaNs).
"""

from __future__ import annotations

import atexit
import dataclasses
import enum
import hashlib
import json
import os
import threading
import uuid
import warnings
from collections.abc import Hashable, Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.faults.injector import FaultEvent
from repro.faults.injector import active as _faults_active
from repro.faults.plan import FaultKind
from repro.hardware.component import CappingMechanism
from repro.perfmodel.metrics import ExecutionResult, PhaseResult

__all__ = [
    "CACHE_FORMAT",
    "CACHE_SCHEMA_VERSION",
    "CacheIntegrityWarning",
    "DiskCache",
    "DiskCacheError",
    "DiskCacheStats",
    "decode_result",
    "digest_key",
    "encode_result",
]

#: Magic identifying a segment as ours (guards against stray .jsonl files).
CACHE_FORMAT = "repro-sweep-cache"

#: Bump when the record layout or the codec changes shape: older
#: segments are skipped wholesale, never misread.
CACHE_SCHEMA_VERSION = 1

#: Records buffered in memory before an automatic segment flush.
DEFAULT_FLUSH_EVERY = 512

_SEGMENT_GLOB = "seg-*.jsonl"


class DiskCacheError(ReproError):
    """The disk cache was configured with an unusable directory."""


class CacheIntegrityWarning(UserWarning):
    """A cache segment or record was skipped (corrupt, foreign, or stale)."""


def digest_key(key: Hashable) -> str:
    """Stable cross-process digest of an engine cache key.

    Engine keys are tuples of content fingerprints and float caps, whose
    ``repr`` is deterministic across processes and sessions.
    """
    return hashlib.sha1(repr(key).encode()).hexdigest()


# ---------------------------------------------------------------------------
# pure codec: ExecutionResult <-> JSON-serializable dicts
# ---------------------------------------------------------------------------

def encode_result(result: ExecutionResult) -> dict[str, object]:
    """Encode an :class:`ExecutionResult` as a JSON-serializable dict.

    Pure and total: every dataclass field is carried verbatim (floats
    survive JSON bit-for-bit via repr round-trip); capping mechanisms are
    stored by enum name.
    """
    phases = []
    for phase in result.phases:
        record: dict[str, object] = {}
        for field in dataclasses.fields(phase):
            value = getattr(phase, field.name)
            record[field.name] = value.name if isinstance(value, enum.Enum) else value
        phases.append(record)
    return {
        "device": result.device,
        "proc_cap_w": result.proc_cap_w,
        "mem_cap_w": result.mem_cap_w,
        "phases": phases,
    }


def _decode_phase(record: Mapping[str, object]) -> PhaseResult:
    kwargs: dict[str, Any] = dict(record)
    kwargs["proc_mechanism"] = CappingMechanism[str(kwargs["proc_mechanism"])]
    kwargs["mem_mechanism"] = CappingMechanism[str(kwargs["mem_mechanism"])]
    return PhaseResult(**kwargs)


def decode_result(payload: Mapping[str, object]) -> ExecutionResult:
    """Inverse of :func:`encode_result` (raises on malformed payloads)."""
    raw_phases = payload["phases"]
    if not isinstance(raw_phases, list):
        raise TypeError("cache record 'phases' must be a list")
    proc_cap = payload["proc_cap_w"]
    mem_cap = payload["mem_cap_w"]
    return ExecutionResult(
        phases=tuple(_decode_phase(p) for p in raw_phases),
        proc_cap_w=None if proc_cap is None else float(proc_cap),  # type: ignore[arg-type]
        mem_cap_w=None if mem_cap is None else float(mem_cap),  # type: ignore[arg-type]
        device=str(payload["device"]),
    )


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DiskCacheStats:
    """Point-in-time counters of a :class:`DiskCache`."""

    hits: int
    misses: int
    stores: int
    flushes: int
    size: int
    records_loaded: int
    segments_loaded: int
    records_skipped: int
    segments_skipped: int


def _segment_header() -> dict[str, object]:
    from repro import __version__

    return {
        "record": "header",
        "format": CACHE_FORMAT,
        "schema": CACHE_SCHEMA_VERSION,
        "package": __version__,
    }


def _header_matches(record: Mapping[str, object]) -> bool:
    from repro import __version__

    return (
        record.get("record") == "header"
        and record.get("format") == CACHE_FORMAT
        and record.get("schema") == CACHE_SCHEMA_VERSION
        and record.get("package") == __version__
    )


def _write_segment(root: Path, name: str, lines: list[str]) -> None:
    """Publish ``lines`` as one segment atomically (temp + ``os.replace``)."""
    tmp = root / f".{name}.tmp"
    tmp.write_text("\n".join(lines) + "\n", encoding="utf-8")
    os.replace(tmp, root / name)


def _mangle_lines(lines: list[str], event: FaultEvent) -> list[str]:
    """Apply a write fault to segment lines before publication.

    Fault-injection site ``"diskcache.write"``: a TORN_WRITE cuts the
    final record mid-line (the shape a killed writer or full disk leaves
    behind once the atomic-rename discipline is bypassed at a lower
    layer); a CORRUPT_WRITE splices garbage into it (bit rot, tampering).
    Either way only the disk tier degrades — the in-memory copy of every
    record is untouched, so results stay bit-identical and the cost is
    the poisoned records recomputing in other processes.
    """
    if len(lines) < 2:
        return lines
    victim = lines[-1]
    if event.kind is FaultKind.TORN_WRITE:
        return lines[:-1] + [victim[: max(1, len(victim) // 2)]]
    return lines[:-1] + [victim[:10] + "\x00garbage\x00" + victim[10:]]


class DiskCache:
    """Append-only segmented store of ``digest → ExecutionResult``.

    Thread-safe; safe against concurrent writer *processes* by design
    (writers only ever create new uniquely-named segments atomically).
    Stores buffer in memory and publish every ``flush_every`` records, on
    :meth:`flush`, or at interpreter exit.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        quarantine: bool = False,
    ) -> None:
        if flush_every < 1:
            raise DiskCacheError(f"flush_every must be >= 1, got {flush_every}")
        self._quarantine = bool(quarantine)
        self.root = Path(root).expanduser()
        if self.root.exists() and not self.root.is_dir():
            raise DiskCacheError(f"cache dir is not a directory: {self.root}")
        self.root.mkdir(parents=True, exist_ok=True)
        self._flush_every = flush_every
        self._lock = threading.RLock()
        self._mem: dict[str, ExecutionResult] = {}
        self._pending: list[tuple[str, dict[str, object]]] = []
        self._seen_segments: set[str] = set()
        self._seq = 0
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._flushes = 0
        self._records_loaded = 0
        self._segments_loaded = 0
        self._records_skipped = 0
        self._segments_skipped = 0
        self.refresh()
        atexit.register(self.flush)

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    @property
    def quarantine_dir(self) -> Path:
        """Where poisoned segments are moved when quarantine is enabled."""
        return self.root / "quarantine"

    def _quarantine_segment(self, path: Path) -> Path | None:
        """Move a poisoned segment out of the live store (opt-in).

        Isolating the file keeps every future process from re-parsing
        (and re-warning about) the same corruption; :meth:`rebuild`
        then republishes the loadable records as one clean segment.
        """
        if not self._quarantine:
            return None
        try:
            self.quarantine_dir.mkdir(exist_ok=True)
            target = self.quarantine_dir / path.name
            os.replace(path, target)
        except OSError:  # pragma: no cover - racing writer/cleaner
            return None
        return target

    def _load_segment(self, path: Path) -> None:
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            warnings.warn(
                f"skipping unreadable cache segment {path.name}: {exc}",
                CacheIntegrityWarning,
                stacklevel=3,
            )
            self._segments_skipped += 1
            self._quarantine_segment(path)
            return
        header_ok = False
        if lines:
            try:
                header_ok = _header_matches(json.loads(lines[0]))
            except (json.JSONDecodeError, AttributeError):
                header_ok = False
        if not header_ok:
            warnings.warn(
                f"skipping cache segment {path.name}: missing or stale header "
                f"(expected {CACHE_FORMAT} schema {CACHE_SCHEMA_VERSION})",
                CacheIntegrityWarning,
                stacklevel=3,
            )
            self._segments_skipped += 1
            self._quarantine_segment(path)
            return
        bad_lines = 0
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if record["record"] != "entry":
                    raise ValueError(f"unexpected record type {record['record']!r}")
                digest = str(record["digest"])
                result = decode_result(record["result"])
            except (ValueError, KeyError, TypeError):
                # ValueError covers JSONDecodeError (truncated final line
                # of a killed writer) and enum-name mismatches.
                bad_lines += 1
                continue
            if digest not in self._mem:
                self._mem[digest] = result
                self._records_loaded += 1
        if bad_lines:
            warnings.warn(
                f"skipped {bad_lines} corrupt record(s) in cache segment "
                f"{path.name}; affected keys will recompute",
                CacheIntegrityWarning,
                stacklevel=3,
            )
            self._records_skipped += bad_lines
            # The loadable records are already in memory; isolating the
            # poisoned file (when enabled) lets rebuild() republish them
            # cleanly.
            self._quarantine_segment(path)
        self._segments_loaded += 1

    def refresh(self) -> int:
        """Scan the directory for segments not yet loaded; return new count."""
        with self._lock:
            before = self._records_loaded
            for path in sorted(self.root.glob(_SEGMENT_GLOB)):
                if path.name in self._seen_segments:
                    continue
                self._seen_segments.add(path.name)
                self._load_segment(path)
            return self._records_loaded - before

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def lookup(self, key: Hashable) -> tuple[bool, ExecutionResult | None]:
        """``(hit, value)`` for ``key``; counts the lookup either way."""
        digest = digest_key(key)
        with self._lock:
            value = self._mem.get(digest)
            if value is not None:
                self._hits += 1
                return True, value
            self._misses += 1
            return False, None

    def store(self, key: Hashable, value: ExecutionResult) -> None:
        """Record ``key → value``; duplicates of known digests are dropped."""
        digest = digest_key(key)
        encoded = encode_result(value)
        with self._lock:
            if digest in self._mem:
                return
            self._mem[digest] = value
            self._pending.append((digest, encoded))
            self._stores += 1
            if len(self._pending) >= self._flush_every:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._pending:
            return
        self._seq += 1
        name = f"seg-{os.getpid()}-{self._seq}-{uuid.uuid4().hex[:8]}.jsonl"
        lines = [json.dumps(_segment_header(), sort_keys=True)]
        lines.extend(
            json.dumps({"record": "entry", "digest": d, "result": r}, sort_keys=True)
            for d, r in self._pending
        )
        injector = _faults_active()
        if injector is not None:
            event = injector.check("diskcache.write")
            if event is not None:
                lines = _mangle_lines(lines, event)
        _write_segment(self.root, name, lines)
        self._seen_segments.add(name)
        self._pending.clear()
        self._flushes += 1

    def flush(self) -> None:
        """Publish buffered records as a new segment (no-op when empty)."""
        with self._lock:
            self._flush_locked()

    def rebuild(self) -> int:
        """Quarantine-and-rebuild recovery: re-scan, then rewrite cleanly.

        Picks up any segments published since the last refresh (moving
        poisoned ones to :attr:`quarantine_dir` when quarantine is
        enabled), then compacts every loadable record into one fresh,
        verified segment.  Returns the record count of the rebuilt store.
        """
        with self._lock:
            self.refresh()
            return self.compact()

    def compact(self) -> int:
        """Rewrite the store as one segment; returns the record count.

        Stale/corrupt segments are dropped in the process (their entries
        were never loaded).  Safe against concurrent readers — the merged
        segment is published atomically before the old ones are removed.
        """
        with self._lock:
            self._flush_locked()
            old = sorted(self.root.glob(_SEGMENT_GLOB))
            name = f"seg-{os.getpid()}-compact-{uuid.uuid4().hex[:8]}.jsonl"
            lines = [json.dumps(_segment_header(), sort_keys=True)]
            lines.extend(
                json.dumps(
                    {"record": "entry", "digest": d, "result": encode_result(r)},
                    sort_keys=True,
                )
                for d, r in sorted(self._mem.items())
            )
            _write_segment(self.root, name, lines)
            self._seen_segments.add(name)
            for path in old:
                if path.name != name:
                    path.unlink(missing_ok=True)
                    self._seen_segments.discard(path.name)
            return len(self._mem)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    @property
    def stats(self) -> DiskCacheStats:
        with self._lock:
            return DiskCacheStats(
                hits=self._hits,
                misses=self._misses,
                stores=self._stores,
                flushes=self._flushes,
                size=len(self._mem),
                records_loaded=self._records_loaded,
                segments_loaded=self._segments_loaded,
                records_skipped=self._records_skipped,
                segments_skipped=self._segments_skipped,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiskCache(root={str(self.root)!r}, size={len(self)})"
