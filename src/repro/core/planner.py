"""Structure-aware adaptive sweep planner: oracle answers, fewer points.

The paper's sweeps are massively redundant: per-budget allocation
profiles collapse into the six-scenario plateau structure (Figs. 3/4/7/8)
and ``perf_max``-vs-budget is monotone and saturating (Figs. 2/6).  The
planner exploits that structure to answer the questions the experiments
actually ask — the best point of a sweep, and whole budget curves —
while *executing* only a fraction of the native grid:

1. **probe** — a coarse stride-``k`` pass over the allocation axis
   (plus a warm-start neighborhood around the previous optimum when one
   is remembered on the engine);
2. **certify** — the probe profile must look like the paper's structure:
   eligible probes form one contiguous run and their performances are
   unimodal within the plateau tolerance.  Any violation triggers a
   *transparent fallback* to the full sweep, so exactness is never
   conditional on the heuristic succeeding;
3. **bracket** — seed at the best executed eligible point and walk
   outward exactly as :func:`~repro.core.sweep.optimal_plateau` would,
   executing boundary neighbors on demand; the two directions advance in
   lockstep so each round's frontier resolves in one batched sub-grid
   fetch.  Gaps whose executed
   endpoints are both in-plateau *and* carry identical phase tuples are
   skipped wholesale: the governors select operating states monotonically
   in the caps, so equal states at both ends of a cap interval pin every
   interior point to the same result (eligibility interpolates too —
   equal powers under sandwiched caps).  Whenever a newly executed point
   beats the incumbent optimum the search restarts from the new top, so
   the walk converges on the oracle's plateau;
4. **select** — the plateau middle is executed explicitly and returned;
   it is field-for-field the point the full sweep would have picked.

Every stage resolves its points through one prepared
:class:`~repro.core.parallel.SubgridExecutor` per plan
(:meth:`SweepEngine.host_subgrid` / :meth:`SweepEngine.gpu_subgrid`):
the axis keys and the vectorized gather kernel are set up once, each
stage's subset runs as one gathered kernel pass, and the engine's
memo/disk caches fill point-by-point exactly as the full sweep would.

Budget curves warm-start each budget from the previous best split
(hints live on the engine's :class:`~repro.core.parallel.PlannerState`)
and can optionally early-exit once the monotone curve saturates
(``stop_at_saturation`` — off by default because it truncates the
returned arrays).

``tests/test_planner_equivalence.py`` locks all of this bit-for-bit
against the full-sweep oracle across the entire CPU and GPU registries.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace
from typing import cast

import numpy as np

from repro.core.allocation import PowerAllocation, allocation_axis
from repro.core.parallel import SweepEngine, default_engine, fingerprint
from repro.core.scenario import classify_cpu, classify_gpu
from repro.core.sweep import (
    BudgetCurve,
    SweepPoint,
    gpu_freq_axis,
    gpu_point_allocation,
    optimal_plateau,
    sweep_cpu_allocations,
    sweep_gpu_allocations,
)
from repro.errors import SweepError
from repro.hardware.component import CappingMechanism
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.hardware.gpu import GpuCard
from repro.perfmodel.executor import _CAP_EPS_W, _cpu_candidates
from repro.perfmodel.metrics import ExecutionResult, PhaseResult
from repro.workloads.base import Workload

__all__ = [
    "PlanStats",
    "PlannedSweep",
    "adaptive_cpu_budget_curve",
    "adaptive_gpu_budget_curve",
    "plan_cpu_sweep",
    "plan_gpu_sweep",
    "sweep_cpu_best",
    "sweep_gpu_best",
]

#: Grids at or below this size are executed in full — probing cannot pay
#: for itself against a handful of points.
_FULL_SWEEP_FLOOR = 6

#: Plateau tolerance, identical to :func:`optimal_plateau`.
_TOL_SCALE = 1e-9

#: How many consecutive sub-top points a plateau walk peeks past before
#: giving up.  Governor quantization puts 1–2-point dips between
#: competing near-top maxima (§11 of docs/modeling.md); peeking across
#: them is what keeps the planner exact on profiles whose global
#: optimum is a one-index spike.
_DIP_PATIENCE = 3

#: Dip peeking stops early once the profile has collapsed below this
#: fraction of the top: quantization wiggles ride within a few percent
#: of the optimum, so a 15% drop is a falling edge, not a dip.
_PEEK_FLOOR = 0.85


@dataclass(frozen=True)
class PlanStats:
    """Execution accounting for one planned sweep."""

    native_points: int
    executed_points: int
    probe_points: int
    fallback: bool
    warm_started: bool
    reused_points: int = 0

    @property
    def points_saved(self) -> int:
        return self.native_points - self.executed_points


@dataclass(frozen=True)
class PlannedSweep:
    """The oracle answer of one sweep, without the full grid.

    ``best`` and ``plateau`` are exactly what the full
    :class:`~repro.core.sweep.AllocationSweep` / ``GpuSweep`` would
    report (``.best`` and :func:`optimal_plateau` over its points).
    """

    workload_name: str
    metric_unit: str
    budget_w: float
    best: SweepPoint
    best_index: int
    plateau: tuple[int, int]
    stats: PlanStats

    @property
    def perf_max(self) -> float:
        """The sweep's upper performance bound (== the oracle's)."""
        return self.best.performance


# ---------------------------------------------------------------------------
# structure certificates
# ---------------------------------------------------------------------------

def _one_contiguous_run(flags: Sequence[bool]) -> bool:
    """True if the True entries of ``flags`` form one contiguous block."""
    run_started = False
    run_ended = False
    for flag in flags:
        if flag:
            if run_ended:
                return False
            run_started = True
        elif run_started:
            run_ended = True
    return True


def _unimodal_within_tol(values: Sequence[float], tol: float) -> bool:
    """True if ``values`` rise then fall, ignoring sub-``tol`` wiggles.

    A rise of more than ``tol`` after a fall of more than ``tol`` is the
    signature of a second peak wide enough for the probes to see — the
    structure violation that forces the full-sweep fallback.
    """
    seen_fall = False
    for prev, curr in zip(values, values[1:]):
        delta = curr - prev
        if delta > tol:
            if seen_fall:
                return False
        elif delta < -tol:
            seen_fall = True
    return True


# ---------------------------------------------------------------------------
# the axis search
# ---------------------------------------------------------------------------

_Fetch = Callable[[list[int]], list[SweepPoint]]


@dataclass
class _WalkState:
    """One direction of the lockstep plateau walk (see :func:`_plan_axis`)."""

    step: int
    frontier: int
    pos: int
    fails: int = 0
    done: bool = False
    restart: bool = False
    need: int | None = None
    spec: int | None = None


def _default_stride(n: int) -> int:
    return max(3, min(12, int(round(math.sqrt(2.0 * n)))))


def _probe_indices(n: int, stride: int, hint: int | None, lean: bool) -> list[int]:
    """The initial probe set: endpoints + stride grid, or a lean warm set.

    ``lean`` (previous plan on this axis completed without fallback)
    keeps only the endpoints, the hint neighborhood, and the midpoints
    between them — the shape certificate still brackets the hint, but
    far-field probing is dropped.
    """
    probes = {0, n - 1}
    if hint is not None:
        h = min(max(hint, 0), n - 1)
        # A +/-2 neighborhood: wide enough that a plateau drifting one
        # index between budgets still resolves inside the probe pass
        # instead of costing extra lockstep walk rounds.
        probes.update(range(max(0, h - 2), min(n - 1, h + 2) + 1))
    if hint is None or not lean:
        probes.update({h // 2, (h + n - 1) // 2} if hint is not None else set())
        probes.update(range(0, n, stride))
    return sorted(probes)


def _plan_axis(
    n: int,
    fetch: _Fetch,
    probes: list[int],
    seed: dict[int, SweepPoint] | None = None,
) -> tuple[dict[int, SweepPoint], tuple[int, int] | None]:
    """Locate the oracle plateau on a ``n``-point axis.

    Returns the executed points and the plateau span, or ``None`` as the
    span when the probe profile violates the expected structure (the
    caller then falls back to the full sweep).  ``fetch`` materializes
    grid indices through the engine (memoized, vectorized).  ``seed``
    carries points a previous attempt on the same axis already executed
    (the lean-probe escalation path), so they are never re-fetched.
    """
    executed: dict[int, SweepPoint] = dict(seed) if seed else {}
    # Incremental per-point bookkeeping: ``respects_bound`` walks the
    # phase tuple and ``performance`` is consulted on every restart, so
    # both are cached once at fetch time instead of recomputed per query.
    perfs: dict[int, float] = {i: p.performance for i, p in executed.items()}
    elig: dict[int, bool] = {
        i: p.result.respects_bound for i, p in executed.items()
    }
    finite = all(math.isfinite(v) for v in perfs.values())

    def run(indices: Sequence[int]) -> None:
        nonlocal finite
        todo = sorted(i for i in set(indices) if i not in executed)
        if todo:
            for idx, point in zip(todo, fetch(todo)):
                executed[idx] = point
                val = point.performance
                perfs[idx] = val
                elig[idx] = point.result.respects_bound
                if not math.isfinite(val):
                    finite = False

    run(probes)

    def ok(index: int) -> bool:
        return elig[index]

    # Each restart either strictly raises the incumbent top or moves the
    # attainment index strictly left at an unchanged top, so the loop is
    # bounded; the range is a belt-and-braces cap, with the structure
    # fallback behind it.
    for _ in range(2 * n + 4):
        if not finite:
            return executed, None  # oracle raises; let the full sweep do it
        eligible = [i for i in sorted(executed) if ok(i)]
        if not eligible:
            return executed, None  # oracle's all-eligible degenerate case
        top = max(perfs[i] for i in eligible)
        tol = _TOL_SCALE * max(top, 1.0)

        if not _one_contiguous_run([ok(i) for i in probes]):
            return executed, None
        if not _unimodal_within_tol([perfs[i] for i in probes if ok(i)], tol):
            return executed, None

        def pred(index: int) -> bool:
            return ok(index) and perfs[index] >= top - tol

        arg = next(i for i in eligible if perfs[i] >= top)

        # Both plateau walks advance in lockstep so each round's frontier
        # neighbors — at most one per direction — resolve in ONE batched
        # fetch instead of a scalar call per step.  The per-direction
        # decision logic is byte-for-byte the sequential walk's: while
        # the within-tol run continues the frontier advances (same-state
        # gaps skipped wholesale); past the run's end the walk keeps
        # peeking for up to ``_DIP_PATIENCE`` sub-top points, and any
        # peeked point at/above the top forces a restart instead of a
        # silent miss.  Dips never extend the bracket — the oracle's run
        # is contiguous.  A restart discovered mid-round may leave the
        # other direction's point of that round executed; that is safe
        # because the restart re-derives ``top``/``arg`` from *all*
        # executed points.
        left = _WalkState(step=-1, frontier=arg, pos=arg)
        right = _WalkState(step=+1, frontier=arg, pos=arg)

        def consume(st: _WalkState, nb: int) -> None:
            """Fold the (executed) neighbor ``nb`` into the walk state."""
            if not ok(nb):
                st.done = True  # eligibility is one contiguous band: done
                return
            val = perfs[nb]
            if st.fails == 0:
                if val > top:
                    st.restart = st.done = True  # strictly better: re-anchor
                    return
                if val >= top - tol:
                    st.frontier = st.pos = nb
                    return
            elif val > top or (st.step < 0 and val >= top):
                # A dip hid a higher top — or, leftward, an equal top
                # in an earlier run, which owns the oracle bracket.
                st.restart = st.done = True
                return
            st.fails += 1
            if st.fails > _DIP_PATIENCE or val < _PEEK_FLOOR * top:
                st.done = True
                return
            st.pos = nb

        def advance(st: _WalkState) -> None:
            """Advance through executed points up to the next missing one."""
            st.need = st.spec = None
            while not st.done:
                nb = st.pos + st.step
                if not 0 <= nb < n:
                    st.done = True
                    return
                if nb not in executed:
                    if st.fails == 0:
                        anchor = (
                            max((i for i in executed if i < st.pos), default=None)
                            if st.step < 0
                            else min((i for i in executed if i > st.pos), default=None)
                        )
                        if (
                            anchor is not None
                            and pred(anchor)
                            and executed[anchor].result.phases
                            == executed[st.pos].result.phases
                        ):
                            # same-state gap: interior provably identical
                            st.frontier = st.pos = anchor
                            continue
                    st.need = nb
                    # Momentum: speculatively batch the next index of this
                    # direction into the same round.  Unless ``nb`` ends
                    # the walk outright, the sequential walk would fetch
                    # it on the following round anyway, so the round count
                    # halves at (almost) no executed-point cost; answers
                    # are unaffected because every walk decision is proof-
                    # based over whatever happens to be executed.
                    nb2 = nb + st.step
                    if 0 <= nb2 < n and nb2 not in executed and (
                        st.fails < _DIP_PATIENCE
                    ):
                        st.spec = nb2
                    return
                consume(st, nb)

        while True:
            needs: list[int] = []
            specs: list[int] = []
            for st in (left, right):
                if not st.done:
                    advance(st)
                    if st.need is not None:
                        needs.append(st.need)
                        if st.spec is not None:
                            specs.append(st.spec)
            if left.restart or right.restart:
                break
            if not needs:
                break
            run(needs + specs)  # one batched sub-grid fetch per round
            for st in (left, right):
                if not st.done and st.need is not None:
                    consume(st, st.need)
        if left.restart or right.restart:
            continue
        lo, hi = left.frontier, right.frontier

        mid = (lo + hi) // 2
        run([mid])
        if ok(mid) and executed[mid].performance > top:
            continue  # skipped-gap interior beat the top: re-search
        return executed, (lo, hi)
    return executed, None  # safety net: behave as a structure violation


# ---------------------------------------------------------------------------
# CPU plans
# ---------------------------------------------------------------------------

def _hint_state(
    engine: SweepEngine, key: tuple[object, ...]
) -> tuple[float, bool] | None:
    return engine.planner.hint(key)


def plan_cpu_sweep(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    budget_w: float,
    *,
    step_w: float = 4.0,
    mem_min_w: float = 16.0,
    proc_min_w: float = 8.0,
    engine: SweepEngine | None = None,
    hint_mem_w: float | None = None,
) -> PlannedSweep:
    """Adaptively locate the best point of a host allocation sweep.

    Produces exactly :func:`sweep_cpu_allocations(...).best
    <repro.core.sweep.sweep_cpu_allocations>` (and the oracle's plateau
    bracket) while executing only probe/bracket points.  ``hint_mem_w``
    seeds the probe neighborhood (budget curves pass the previous
    budget's optimum); without it, the engine's planner memory is
    consulted for this (platform, phases, grid) combination.
    """
    engine = engine if engine is not None else default_engine()
    # Raw axis columns only: allocation objects (with their validation
    # chain) are built lazily in fetch() for the points the plan touches,
    # never for the ~2/3 of the grid adaptive planning skips.
    proc_axis, mem_axis = allocation_axis(
        budget_w, mem_min_w=mem_min_w, proc_min_w=proc_min_w, step_w=step_w
    )
    n = len(proc_axis)
    alloc_cache: dict[int, PowerAllocation] = {}

    def alloc_at(i: int) -> PowerAllocation:
        alloc = alloc_cache.get(i)
        if alloc is None:
            alloc = PowerAllocation(proc_axis[i], mem_axis[i])
            alloc_cache[i] = alloc
        return alloc
    hint_key = (
        "plan-cpu",
        fingerprint(cpu),
        fingerprint(dram),
        fingerprint(tuple(workload.phases)),
        float(step_w),
        float(mem_min_w),
        float(proc_min_w),
    )

    def to_index(mem_w: float) -> int:
        return int(round((mem_w - mem_min_w) / step_w))

    lean = False
    hint: int | None = None
    if hint_mem_w is not None:
        hint = to_index(float(hint_mem_w))
        lean = True
    else:
        remembered = _hint_state(engine, hint_key)
        if remembered is not None:
            hint = to_index(remembered[0])
            lean = remembered[1]
    warm = hint is not None

    # Plan replay (exact): the planner's answer is a pure function of the
    # axis — it equals the oracle's best/plateau whatever route found it —
    # so a plan of this exact grid already completed on this engine can be
    # returned outright.  Disabled while a fault plan is armed: armed runs
    # must re-execute through the scalar path (and never poison the stash).
    replay_key = ("plan-cpu-replay",) + hint_key[1:] + (float(budget_w),)
    clean_run = engine._worker_injector() is None
    if clean_run:
        prior = engine.planner.stashed(replay_key)
        if prior is not None:
            planned = cast(PlannedSweep, prior)
            stats = PlanStats(
                native_points=n,
                executed_points=0,
                probe_points=0,
                fallback=False,
                warm_started=warm,
                reused_points=0,
            )
            engine.planner.record(
                native=n, executed=0, fallback=False, warm=warm, reused=0
            )
            return replace(planned, stats=stats)

    # Saturation reuse (exact): if the top P-state's demand at worst-case
    # activity fits under the processor share, _resolve_cpu picks the top
    # state with mechanism NONE at every joint-iteration step, so the
    # phase tuple depends on the memory cap alone — results recur across
    # budgets wherever the processor side is provably unconstrained.
    fps = (fingerprint(cpu), fingerprint(dram), fingerprint(tuple(workload.phases)))
    sat_key = ("plan-sat-w",) + fps
    sat_w = engine.planner.stashed(sat_key)
    if sat_w is None:
        top_op = _cpu_candidates(cpu)[0]
        sat_w = max(
            cpu.demand_w(max(ph.activity, ph.stall_activity), top_op)
            for ph in workload.phases
        )
        engine.planner.stash(sat_key, sat_w)
    sat_w = cast(float, sat_w)
    reused = 0

    def mk_point(alloc: PowerAllocation, result: ExecutionResult) -> SweepPoint:
        return SweepPoint(
            allocation=alloc,
            result=result,
            performance=workload.performance(result),
            scenario=classify_cpu(result),
        )

    # One prepared axis for the whole plan: every stage's point subset
    # (probe, certify, walk frontiers, plateau middle) resolves through
    # the same sub-grid executor, paying key/fingerprint/kernel setup once.
    subgrid = engine.host_subgrid(
        cpu, dram, workload.phases, proc_axis, mem_axis
    )

    def fetch(indices: list[int]) -> list[SweepPoint]:
        nonlocal reused
        out: dict[int, SweepPoint] = {}
        todo: list[int] = []
        for i in indices:
            alloc = alloc_at(i)
            phases: object = None
            if alloc.proc_w + _CAP_EPS_W >= sat_w:
                phases = engine.planner.stashed(
                    ("plan-sat-host",) + fps + (float(alloc.mem_w),)
                )
            if phases is not None:
                result = ExecutionResult(
                    cast("tuple[PhaseResult, ...]", phases),
                    proc_cap_w=float(alloc.proc_w),
                    mem_cap_w=float(alloc.mem_w),
                )
                out[i] = mk_point(alloc, result)
                reused += 1
            else:
                todo.append(i)
        if todo:
            subset = [alloc_at(i) for i in todo]
            results = subgrid.run(todo)
            for i, alloc, result in zip(todo, subset, results):
                out[i] = mk_point(alloc, result)
                if alloc.proc_w + _CAP_EPS_W >= sat_w:
                    engine.planner.stash(
                        ("plan-sat-host",) + fps + (float(alloc.mem_w),),
                        result.phases,
                    )
        return [out[i] for i in indices]

    stride = _default_stride(n)
    executed: dict[int, SweepPoint] = {}
    span: tuple[int, int] | None = None
    if n > max(_FULL_SWEEP_FLOOR, stride + 2):
        probes = _probe_indices(n, stride, hint, lean)
        executed, span = _plan_axis(n, fetch, probes)
        probe_count = len(probes)
        if span is None and lean:
            # The lean warm set misses structure shifts between
            # neighboring budgets; escalate to the full probe grid —
            # reusing every point already executed — before surrendering
            # the whole axis to the fallback sweep.
            probes = sorted(
                set(probes) | set(_probe_indices(n, stride, hint, False))
            )
            executed, span = _plan_axis(n, fetch, probes, seed=executed)
            probe_count = len(probes)
    else:
        probe_count = 0

    if span is None:
        # Transparent fallback: the full oracle sweep (already-executed
        # points come straight from the engine's memo cache).
        sweep = sweep_cpu_allocations(
            cpu,
            dram,
            workload,
            budget_w,
            step_w=step_w,
            mem_min_w=mem_min_w,
            proc_min_w=proc_min_w,
            engine=engine,
        )
        lo, hi = optimal_plateau(sweep.points)
        mid = (lo + hi) // 2
        best = sweep.points[mid]
        stats = PlanStats(
            native_points=n,
            executed_points=n,
            probe_points=probe_count,
            fallback=probe_count > 0,
            warm_started=warm,
            reused_points=0,
        )
    else:
        lo, hi = span
        mid = (lo + hi) // 2
        best = executed[mid]
        stats = PlanStats(
            native_points=n,
            executed_points=len(executed) - reused,
            probe_points=probe_count,
            fallback=False,
            warm_started=warm,
            reused_points=reused,
        )
    engine.planner.record(
        native=stats.native_points,
        executed=stats.executed_points,
        fallback=stats.fallback,
        warm=stats.warm_started,
        reused=stats.reused_points,
    )
    engine.planner.remember(hint_key, best.allocation.mem_w, not stats.fallback)
    planned = PlannedSweep(
        workload_name=workload.name,
        metric_unit=workload.metric_unit,
        budget_w=float(budget_w),
        best=best,
        best_index=mid,
        plateau=(lo, hi),
        stats=stats,
    )
    if clean_run:
        engine.planner.stash(replay_key, planned)
    return planned


# ---------------------------------------------------------------------------
# GPU plans
# ---------------------------------------------------------------------------

def plan_gpu_sweep(
    card: GpuCard,
    workload: Workload,
    cap_w: float,
    *,
    freq_stride: int = 1,
    engine: SweepEngine | None = None,
    hint_freq_mhz: float | None = None,
) -> PlannedSweep:
    """Adaptively locate the best memory clock under a GPU board cap.

    The GPU analogue of :func:`plan_cpu_sweep`: identical answers to
    :func:`sweep_gpu_allocations(...).best
    <repro.core.sweep.sweep_gpu_allocations>` from probe/bracket points.
    """
    engine = engine if engine is not None else default_engine()
    freqs = gpu_freq_axis(card, freq_stride)
    n = len(freqs)
    hint_key = (
        "plan-gpu",
        fingerprint(card),
        fingerprint(tuple(workload.phases)),
        int(freq_stride),
    )

    def to_index(freq_mhz: float) -> int:
        return int(np.abs(freqs - float(freq_mhz)).argmin())

    lean = False
    hint: int | None = None
    if hint_freq_mhz is not None:
        hint = to_index(float(hint_freq_mhz))
        lean = True
    else:
        remembered = _hint_state(engine, hint_key)
        if remembered is not None:
            hint = to_index(remembered[0])
            lean = remembered[1]
    warm = hint is not None

    # Plan replay, exactly as in plan_cpu_sweep.
    replay_key = ("plan-gpu-replay",) + hint_key[1:] + (float(cap_w),)
    clean_run = engine._worker_injector() is None
    if clean_run:
        prior = engine.planner.stashed(replay_key)
        if prior is not None:
            planned = cast(PlannedSweep, prior)
            stats = PlanStats(
                native_points=n,
                executed_points=0,
                probe_points=0,
                fallback=False,
                warm_started=warm,
                reused_points=0,
            )
            engine.planner.record(
                native=n, executed=0, fallback=False, warm=warm, reused=0
            )
            return replace(planned, stats=stats)

    # Saturation reuse (exact): a phase resolved at the top SM clock with
    # mechanism NONE computed its split and board power before the cap
    # gate, so the identical phase recurs at every cap at or above the
    # one it first cleared — high-cap sweeps of a budget curve rebuild
    # their points from the knee sweep without touching the model.
    fps = (fingerprint(card), fingerprint(tuple(workload.phases)))
    cap_eff = card.validate_cap(float(cap_w))
    reused = 0

    def mk_point(freq_mhz: float, result: ExecutionResult) -> SweepPoint:
        return SweepPoint(
            allocation=gpu_point_allocation(card, cap_w, freq_mhz),
            result=result,
            performance=workload.performance(result),
            scenario=classify_gpu(result),
        )

    # One prepared axis for the whole plan, as in plan_cpu_sweep.
    subgrid = engine.gpu_subgrid(card, workload.phases, cap_w, freqs)

    def fetch(indices: list[int]) -> list[SweepPoint]:
        nonlocal reused
        out: dict[int, SweepPoint] = {}
        todo: list[int] = []
        for i in indices:
            f = float(freqs[i])
            entry = engine.planner.stashed(("plan-sat-gpu",) + fps + (f,))
            if entry is not None:
                cap0, phases, mem_cap_w = cast(
                    "tuple[float, tuple[PhaseResult, ...], float | None]", entry
                )
                if cap_eff >= cap0:
                    result = ExecutionResult(
                        phases,
                        proc_cap_w=cap_eff,
                        mem_cap_w=mem_cap_w,
                        device="gpu",
                    )
                    out[i] = mk_point(f, result)
                    reused += 1
                    continue
            todo.append(i)
        if todo:
            subset = [float(freqs[i]) for i in todo]
            results = subgrid.run(todo)
            for i, f, result in zip(todo, subset, results):
                out[i] = mk_point(f, result)
                unconstrained = all(
                    p.proc_mechanism is CappingMechanism.NONE
                    for p in result.phases
                )
                if unconstrained:
                    key = ("plan-sat-gpu",) + fps + (f,)
                    prior = engine.planner.stashed(key)
                    if (
                        prior is None
                        or cast("tuple[float, object, object]", prior)[0] > cap_eff
                    ):
                        engine.planner.stash(
                            key, (cap_eff, result.phases, result.mem_cap_w)
                        )
        return [out[i] for i in indices]

    stride = _default_stride(n)
    executed: dict[int, SweepPoint] = {}
    span: tuple[int, int] | None = None
    if n > max(_FULL_SWEEP_FLOOR, stride + 2):
        probes = _probe_indices(n, stride, hint, lean)
        executed, span = _plan_axis(n, fetch, probes)
        probe_count = len(probes)
        if span is None and lean:
            # Same escalation as plan_cpu_sweep: widen to the full probe
            # grid before falling back to the whole axis.
            probes = sorted(
                set(probes) | set(_probe_indices(n, stride, hint, False))
            )
            executed, span = _plan_axis(n, fetch, probes, seed=executed)
            probe_count = len(probes)
    else:
        probe_count = 0

    if span is None:
        sweep = sweep_gpu_allocations(
            card, workload, cap_w, freq_stride=freq_stride, engine=engine
        )
        lo, hi = optimal_plateau(sweep.points)
        mid = (lo + hi) // 2
        best = sweep.points[mid]
        stats = PlanStats(
            native_points=n,
            executed_points=n,
            probe_points=probe_count,
            fallback=probe_count > 0,
            warm_started=warm,
            reused_points=0,
        )
    else:
        lo, hi = span
        mid = (lo + hi) // 2
        best = executed[mid]
        stats = PlanStats(
            native_points=n,
            executed_points=len(executed) - reused,
            probe_points=probe_count,
            fallback=False,
            warm_started=warm,
            reused_points=reused,
        )
    engine.planner.record(
        native=stats.native_points,
        executed=stats.executed_points,
        fallback=stats.fallback,
        warm=stats.warm_started,
        reused=stats.reused_points,
    )
    engine.planner.remember(hint_key, float(freqs[mid]), not stats.fallback)
    planned = PlannedSweep(
        workload_name=workload.name,
        metric_unit=workload.metric_unit,
        budget_w=float(cap_w),
        best=best,
        best_index=mid,
        plateau=(lo, hi),
        stats=stats,
    )
    if clean_run:
        engine.planner.stash(replay_key, planned)
    return planned


# ---------------------------------------------------------------------------
# mode-aware best-point dispatchers
# ---------------------------------------------------------------------------

def sweep_cpu_best(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    budget_w: float,
    *,
    step_w: float = 4.0,
    mem_min_w: float = 16.0,
    proc_min_w: float = 8.0,
    engine: SweepEngine | None = None,
) -> SweepPoint:
    """The best point of a host sweep, honoring the engine's mode.

    ``"full"`` engines take the oracle path (every point executed);
    ``"adaptive"`` engines take the planner.  Both return the identical
    :class:`SweepPoint`.
    """
    engine = engine if engine is not None else default_engine()
    if engine.mode == "adaptive":
        return plan_cpu_sweep(
            cpu,
            dram,
            workload,
            budget_w,
            step_w=step_w,
            mem_min_w=mem_min_w,
            proc_min_w=proc_min_w,
            engine=engine,
        ).best
    return sweep_cpu_allocations(
        cpu,
        dram,
        workload,
        budget_w,
        step_w=step_w,
        mem_min_w=mem_min_w,
        proc_min_w=proc_min_w,
        engine=engine,
    ).best


def sweep_gpu_best(
    card: GpuCard,
    workload: Workload,
    cap_w: float,
    *,
    freq_stride: int = 1,
    engine: SweepEngine | None = None,
) -> SweepPoint:
    """The best point of a GPU sweep, honoring the engine's mode."""
    engine = engine if engine is not None else default_engine()
    if engine.mode == "adaptive":
        return plan_gpu_sweep(
            card, workload, cap_w, freq_stride=freq_stride, engine=engine
        ).best
    return sweep_gpu_allocations(
        card, workload, cap_w, freq_stride=freq_stride, engine=engine
    ).best


# ---------------------------------------------------------------------------
# adaptive budget curves
# ---------------------------------------------------------------------------

def adaptive_cpu_budget_curve(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    budgets_w: np.ndarray | list[float],
    *,
    step_w: float = 4.0,
    engine: SweepEngine | None = None,
    stop_at_saturation: bool = False,
) -> BudgetCurve:
    """:func:`~repro.core.sweep.cpu_budget_curve`, planned adaptively.

    Values are bit-for-bit the oracle curve's; each budget warm-starts
    from the previous optimum.  ``stop_at_saturation`` (opt-in) truncates
    the returned arrays once two consecutive budgets stop improving —
    sound for ascending budgets because ``perf_max`` is monotone in the
    budget (a larger budget offers every split of a smaller one, with
    more processor headroom).
    """
    engine = engine if engine is not None else default_engine()
    budgets = np.asarray(budgets_w, dtype=float)
    if budgets.size == 0:
        raise SweepError("budget curve needs at least one budget")
    perf = np.empty_like(budgets)
    opt_mem = np.empty_like(budgets)
    hint: float | None = None
    top_so_far = -math.inf
    flat_run = 0
    cutoff = budgets.size
    for i, budget in enumerate(budgets):
        planned = plan_cpu_sweep(
            cpu,
            dram,
            workload,
            float(budget),
            step_w=step_w,
            engine=engine,
            hint_mem_w=hint,
        )
        perf[i] = planned.perf_max
        opt_mem[i] = planned.best.allocation.mem_w
        hint = planned.best.allocation.mem_w
        if stop_at_saturation:
            if perf[i] <= top_so_far:
                flat_run += 1
            else:
                flat_run = 0
                top_so_far = perf[i]
            if flat_run >= 2:
                cutoff = i + 1
                break
    return BudgetCurve(
        workload_name=workload.name,
        metric_unit=workload.metric_unit,
        budgets_w=budgets[:cutoff],
        perf_max=perf[:cutoff],
        optimal_mem_w=opt_mem[:cutoff],
    )


def adaptive_gpu_budget_curve(
    card: GpuCard,
    workload: Workload,
    caps_w: np.ndarray | list[float],
    *,
    freq_stride: int = 1,
    engine: SweepEngine | None = None,
    stop_at_saturation: bool = False,
) -> BudgetCurve:
    """:func:`~repro.core.sweep.gpu_budget_curve`, planned adaptively."""
    engine = engine if engine is not None else default_engine()
    caps = np.asarray(caps_w, dtype=float)
    if caps.size == 0:
        raise SweepError("budget curve needs at least one cap")
    perf = np.empty_like(caps)
    opt_mem = np.empty_like(caps)
    freqs = gpu_freq_axis(card, freq_stride)
    hint: float | None = None
    top_so_far = -math.inf
    flat_run = 0
    cutoff = caps.size
    for i, cap in enumerate(caps):
        planned = plan_gpu_sweep(
            card,
            workload,
            float(cap),
            freq_stride=freq_stride,
            engine=engine,
            hint_freq_mhz=hint,
        )
        perf[i] = planned.perf_max
        opt_mem[i] = planned.best.allocation.mem_w
        hint = float(freqs[planned.best_index])
        if stop_at_saturation:
            if perf[i] <= top_so_far:
                flat_run += 1
            else:
                flat_run = 0
                top_so_far = perf[i]
            if flat_run >= 2:
                cutoff = i + 1
                break
    return BudgetCurve(
        workload_name=workload.name,
        metric_unit=workload.metric_unit,
        budgets_w=caps[:cutoff],
        perf_max=perf[:cutoff],
        optimal_mem_w=opt_mem[:cutoff],
    )
