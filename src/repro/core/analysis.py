"""Analysis utilities: scenario spans, critical components, Table 1, Figure 5.

These routines post-process allocation sweeps into the paper's analytical
artifacts:

* :func:`scenario_spans` — the memory-allocation interval each category
  occupies (the x-axis annotations of Figure 3);
* :func:`optimal_intersection` — which category pair the optimum sits
  between (Table 1's "Intersection" column);
* :func:`critical_component` — which domain, if under-powered, hurts more
  (Table 1's "Critical Comp." column, via the ±shift experiment of
  Section 3.4.2);
* :func:`table1_rows` — the full Table 1 derivation for a workload;
* :func:`balance_analysis` — capacity vs utilization per domain
  (Figure 5's balanced-interaction evidence).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import PowerAllocation
from repro.core.scenario import Scenario
from repro.core.parallel import SweepEngine
from repro.core.sweep import AllocationSweep, optimal_plateau, sweep_cpu_allocations
from repro.errors import SweepError
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.perfmodel.executor import execute_on_host
from repro.workloads.base import Workload

__all__ = [
    "BalancePoint",
    "Table1Row",
    "balance_analysis",
    "critical_component",
    "optimal_intersection",
    "scenario_spans",
    "table1_rows",
]


def scenario_spans(sweep: AllocationSweep) -> dict[Scenario, tuple[float, float]]:
    """Memory-allocation span (min, max watts) of each category in a sweep."""
    spans: dict[Scenario, tuple[float, float]] = {}
    for point in sweep.points:
        lo, hi = spans.get(point.scenario, (float("inf"), float("-inf")))
        m = point.allocation.mem_w
        spans[point.scenario] = (min(lo, m), max(hi, m))
    return spans


def optimal_intersection(sweep: AllocationSweep) -> tuple[Scenario, ...]:
    """The category (pair) the sweep's optimum sits at.

    "The optimal allocation is located at Scenario I given sufficient
    power, and usually at the intersection of two neighboring scenarios
    given smaller power budgets" (Section 3.4.2).  When the optimal
    plateau touches scenario I, the answer is just I; otherwise the
    categories at and immediately beyond the plateau's edges are reported,
    lower category first.
    """
    points = sweep.points
    lo, hi = _optimal_plateau(sweep)
    plateau_cats = {points[i].scenario for i in range(lo, hi + 1)}
    if Scenario.I in plateau_cats:
        return (Scenario.I,)
    cats = {points[lo].scenario, points[hi].scenario}
    for j in (lo - 1, hi + 1):
        if 0 <= j < len(points):
            cats.add(points[j].scenario)
    return tuple(sorted(cats))


def _optimal_plateau(sweep: AllocationSweep) -> tuple[int, int]:
    """Index span [lo, hi] of the bound-respecting optimal plateau."""
    return optimal_plateau(sweep.points)


def critical_component(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    sweep: AllocationSweep,
    *,
    shift_w: float = 24.0,
) -> str | None:
    """Which component drastically degrades performance if under-powered.

    Reproduces the paper's ±24 W shift experiment (Section 3.4.2).  When
    the optimal plateau reaches scenario I the budget is ample and no
    component is critical (Table 1, first row).  Otherwise the shifts are
    measured from the plateau's low-memory edge — the scenario-boundary
    point the paper reports as *the* optimal allocation (e.g. (108, 116) W
    for RandomAccess at 224 W).  Returns ``"DRAM"``, ``"CPU"``, or
    ``None`` when neither direction loses more than 5 %.
    """
    lo, hi = _optimal_plateau(sweep)
    points = sweep.points
    if any(points[i].scenario is Scenario.I for i in range(lo, hi + 1)):
        return None
    top = points[lo].performance

    def perf_at(alloc: PowerAllocation) -> float:
        r = execute_on_host(cpu, dram, workload.phases, alloc.proc_w, alloc.mem_w)
        return workload.performance(r)

    losses: dict[str, float] = {}
    edge = points[lo].allocation
    if edge.mem_w - shift_w > 0.0:
        losses["DRAM"] = 1.0 - perf_at(edge.shifted(-shift_w)) / top
    if edge.proc_w - shift_w > 0.0:
        losses["CPU"] = 1.0 - perf_at(edge.shifted(shift_w)) / top
    if not losses:
        raise SweepError(
            f"optimal plateau of sweep at {sweep.budget_w} W too close to the "
            f"axes to shift by {shift_w} W"
        )
    component, loss = max(losses.items(), key=lambda kv: kv[1])
    return component if loss > 0.05 else None


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1 for a concrete budget."""

    budget_w: float
    valid_scenarios: tuple[Scenario, ...]
    intersection: tuple[Scenario, ...]
    critical: str | None
    optimal: PowerAllocation
    perf_max: float


def table1_rows(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    budgets_w: list[float],
    *,
    step_w: float = 4.0,
    shift_w: float = 24.0,
    engine: "SweepEngine | None" = None,
) -> list[Table1Row]:
    """Derive Table 1 (optimal allocation & critical component vs budget)."""
    rows = []
    for budget in budgets_w:
        sweep = sweep_cpu_allocations(
            cpu, dram, workload, budget, step_w=step_w, engine=engine
        )
        best = sweep.best
        rows.append(
            Table1Row(
                budget_w=float(budget),
                valid_scenarios=tuple(sorted(set(sweep.scenarios))),
                intersection=optimal_intersection(sweep),
                critical=critical_component(
                    cpu, dram, workload, sweep, shift_w=shift_w
                ),
                optimal=best.allocation,
                perf_max=best.performance,
            )
        )
    return rows


@dataclass(frozen=True)
class BalancePoint:
    """Per-domain capacity and utilization at one allocation (Figure 5)."""

    allocation: PowerAllocation
    compute_capacity: float
    compute_rate: float
    mem_capacity: float
    mem_rate: float

    @property
    def compute_utilization(self) -> float:
        return 0.0 if self.compute_capacity <= 0 else self.compute_rate / self.compute_capacity

    @property
    def mem_utilization(self) -> float:
        return 0.0 if self.mem_capacity <= 0 else self.mem_rate / self.mem_capacity


def balance_analysis(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    allocations: list[PowerAllocation],
) -> list[BalancePoint]:
    """Capacity vs utilization per domain across allocations (Figure 5).

    A domain's *capacity* under its share is its achieved rate when the
    other domain is excessively powered (the paper's definition); its
    *utilization* is the achieved rate in the coordinated run divided by
    that capacity.  At the optimal allocation both utilizations approach
    100 % — the balance the paper identifies as the optimum's signature.
    """
    over_cpu = cpu.max_power_w + 50.0
    over_mem = dram.max_power_w + 50.0
    out = []
    for alloc in allocations:
        real = execute_on_host(cpu, dram, workload.phases, alloc.proc_w, alloc.mem_w)
        cap_c = execute_on_host(cpu, dram, workload.phases, alloc.proc_w, over_mem)
        cap_m = execute_on_host(cpu, dram, workload.phases, over_cpu, alloc.mem_w)
        out.append(
            BalancePoint(
                allocation=alloc,
                compute_capacity=cap_c.flops_rate,
                compute_rate=real.flops_rate,
                mem_capacity=cap_m.bytes_rate,
                mem_rate=real.bytes_rate,
            )
        )
    return out
