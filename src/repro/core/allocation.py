"""Power-allocation tuples and allocation-space grids.

Following the paper's simplified two-component problem (Section 2.2), an
allocation is the pair ``α = (P_cpu, P_mem)`` (or ``(P_SM, P_mem)`` for
GPUs) subject to ``P_cpu + P_mem ≤ P_b``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PowerBoundError, SweepError
from repro.util.units import watts

__all__ = [
    "PowerAllocation",
    "allocation_axis",
    "allocation_grid",
    "bounded_allocation",
]


@dataclass(frozen=True)
class PowerAllocation:
    """One point of the allocation space: per-domain power budgets in watts."""

    proc_w: float
    mem_w: float

    def __post_init__(self) -> None:
        watts(self.proc_w, "proc_w")
        watts(self.mem_w, "mem_w")

    @property
    def total_w(self) -> float:
        """Total allocated power."""
        return self.proc_w + self.mem_w

    def within(self, budget_w: float, tolerance_w: float = 1e-9) -> bool:
        """Whether this allocation respects a total power budget."""
        return self.total_w <= budget_w + tolerance_w

    def shifted(self, to_mem_w: float) -> "PowerAllocation":
        """Shift watts from the processor domain to memory (negative shifts
        the other way) — the paper's ±24 W sensitivity experiment."""
        return PowerAllocation(self.proc_w - to_mem_w, self.mem_w + to_mem_w)

    def __str__(self) -> str:
        return f"(P_proc={self.proc_w:.1f} W, P_mem={self.mem_w:.1f} W)"


def bounded_allocation(
    proc_w: float,
    mem_w: float,
    budget_w: float,
    *,
    tolerance_w: float = 1e-9,
) -> PowerAllocation:
    """The blessed budget-conserving constructor: asserts ``P_cpu + P_mem ≤ P_b``.

    Controllers that hand out allocations under a node budget must build
    them here (or via :func:`allocation_grid`) so the paper's central
    invariant is checked at construction time rather than trusted; the
    RPL004 lint rule enforces that raw dict/tuple allocations never
    bypass this assertion.
    """
    budget_w = watts(budget_w, "budget_w")
    allocation = PowerAllocation(proc_w, mem_w)
    if not allocation.within(budget_w, tolerance_w):
        raise PowerBoundError(
            f"allocation {allocation} overdraws the budget: "
            f"{allocation.total_w:.3f} W > {budget_w:.3f} W"
        )
    return allocation


def allocation_axis(
    budget_w: float,
    *,
    mem_min_w: float,
    mem_max_w: float | None = None,
    proc_min_w: float = 0.0,
    step_w: float = 4.0,
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """The ``(proc_w, mem_w)`` float columns of :func:`allocation_grid`.

    Same feasibility checks, same values, same order — without
    constructing the :class:`PowerAllocation` objects.  Callers that
    resolve only a subset of the axis (the adaptive planner) read the
    coordinates from here and build validated allocations lazily for the
    points they actually touch; :func:`allocation_grid` itself is this
    axis materialized, so the two can never drift.
    """
    budget_w = watts(budget_w, "budget_w")
    step_w = watts(step_w, "step_w")
    if step_w <= 0.0:
        raise SweepError(f"step_w must be > 0, got {step_w}")
    if mem_max_w is None:
        mem_max_w = budget_w - proc_min_w
    if mem_max_w < mem_min_w:
        raise SweepError(
            f"empty allocation grid: mem range [{mem_min_w}, {mem_max_w}] W "
            f"for budget {budget_w} W"
        )
    mem_values = np.arange(mem_min_w, mem_max_w + step_w * 0.5, step_w)
    pairs = [
        (budget_w - float(m), float(m))
        for m in mem_values
        if budget_w - float(m) >= proc_min_w - 1e-9
    ]
    if not pairs:
        raise SweepError(
            f"no feasible allocations for budget {budget_w} W "
            f"(mem >= {mem_min_w} W, proc >= {proc_min_w} W)"
        )
    proc_w, mem_w = zip(*pairs)
    return proc_w, mem_w


def allocation_grid(
    budget_w: float,
    *,
    mem_min_w: float,
    mem_max_w: float | None = None,
    proc_min_w: float = 0.0,
    step_w: float = 4.0,
) -> tuple[PowerAllocation, ...]:
    """All allocations of ``budget_w`` on a memory-power grid.

    Mirrors the paper's sweep methodology: fix the total budget, vary the
    memory share in ``step_w`` increments, give the processor the rest.
    ``mem_max_w`` defaults to everything the processor floor leaves over.
    """
    proc_w, mem_w = allocation_axis(
        budget_w,
        mem_min_w=mem_min_w,
        mem_max_w=mem_max_w,
        proc_min_w=proc_min_w,
        step_w=step_w,
    )
    return tuple(PowerAllocation(p, m) for p, m in zip(proc_w, mem_w))
