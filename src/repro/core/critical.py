"""Critical power values: the boundaries of the scenario categories.

Section 5.1 defines four critical processor powers and three critical
memory powers per application on CPU platforms, and Section 5.2 reduces the
GPU case to two per-application totals plus two per-card constants.  These
are the *only* inputs the COORD heuristics need — the whole point of the
paper's "lightweight profiling" claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["CpuCriticalPowers", "GpuCriticalPowers"]


@dataclass(frozen=True)
class CpuCriticalPowers:
    """The seven application-specific critical power values (Section 5.1).

    Attributes
    ----------
    cpu_l1:
        Maximum processor power consumption (highest P-state, full run).
    cpu_l2:
        Processor power at the lowest P-state; ``[cpu_l2, cpu_l1]`` is the
        DVFS-managed range.
    cpu_l3:
        Processor power at the lowest clock-throttling (T-state) setting.
    cpu_l4:
        Hardware minimum while actively executing — application independent;
        caps below it are not honoured.
    mem_l1:
        Highest DRAM power when both domains run at full performance.
    mem_l2:
        DRAM power when the processor sits at ``cpu_l3``.
    mem_l3:
        Hardware minimum DRAM power — application independent.
    """

    cpu_l1: float
    cpu_l2: float
    cpu_l3: float
    cpu_l4: float
    mem_l1: float
    mem_l2: float
    mem_l3: float

    def __post_init__(self) -> None:
        if not (self.cpu_l1 >= self.cpu_l2 >= self.cpu_l3 >= self.cpu_l4 > 0):
            raise ConfigurationError(
                "CPU critical powers must be ordered L1 >= L2 >= L3 >= L4 > 0, got "
                f"({self.cpu_l1}, {self.cpu_l2}, {self.cpu_l3}, {self.cpu_l4})"
            )
        # Note: mem_l1 (the application's busy-coupled demand) may sit
        # *below* mem_l3 (the hardware floor *setting*) for compute-bound
        # applications whose bus is mostly idle, so no ordering is imposed
        # between them.
        if min(self.mem_l1, self.mem_l2, self.mem_l3) <= 0:
            raise ConfigurationError(
                "memory critical powers must be positive, got "
                f"({self.mem_l1}, {self.mem_l2}, {self.mem_l3})"
            )

    @property
    def max_demand_w(self) -> float:
        """Node power demand at full performance — above this is surplus."""
        return self.cpu_l1 + self.mem_l1

    @property
    def productive_threshold_w(self) -> float:
        """The minimum budget COORD accepts: ``cpu_l2 + mem_l2``.

        Below it, both components would have to be throttled into the
        unproductive T-state/floor regime (Algorithm 1, case D).
        """
        return self.cpu_l2 + self.mem_l2

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (reports, serialization)."""
        return {
            "cpu_l1": self.cpu_l1,
            "cpu_l2": self.cpu_l2,
            "cpu_l3": self.cpu_l3,
            "cpu_l4": self.cpu_l4,
            "mem_l1": self.mem_l1,
            "mem_l2": self.mem_l2,
            "mem_l3": self.mem_l3,
        }

    def perturbed(self, rel_noise: float, rng) -> "CpuCriticalPowers":
        """A copy with multiplicative measurement noise on the *measured*
        values (L1–L3 and mem L1/L2); the hardware constants L4/mem-L3 are
        read from specifications and stay exact.

        Models the paper's observed < 5 % run-to-run variation; used by
        the robustness analysis to ask how sensitive COORD is to noisy
        profiling.  The documented orderings are re-imposed after
        perturbation (a real profiler would clamp the same way).
        """
        if rel_noise < 0:
            raise ConfigurationError(f"rel_noise must be >= 0, got {rel_noise}")

        def jitter(value: float) -> float:
            return value * float(1.0 + rng.uniform(-rel_noise, rel_noise))

        cpu_l3 = max(jitter(self.cpu_l3), self.cpu_l4)
        cpu_l2 = max(jitter(self.cpu_l2), cpu_l3)
        cpu_l1 = max(jitter(self.cpu_l1), cpu_l2)
        return CpuCriticalPowers(
            cpu_l1=cpu_l1,
            cpu_l2=cpu_l2,
            cpu_l3=cpu_l3,
            cpu_l4=self.cpu_l4,
            mem_l1=jitter(self.mem_l1),
            mem_l2=jitter(self.mem_l2),
            mem_l3=self.mem_l3,
        )


@dataclass(frozen=True)
class GpuCriticalPowers:
    """GPU COORD parameters (Section 5.2).

    Two are per application:

    * ``tot_max`` — total board power with no cap imposed (also the
      compute-intensity test: a value close to the hardware maximum means
      compute intensive);
    * ``tot_ref`` — total power with memory at the nominal clock and the SM
      at its minimum pairing clock.

    Two are per card, application independent:

    * ``mem_min`` / ``mem_max`` — estimated memory power at the lowest and
      nominal memory clocks.

    ``tot_min`` (total at both minima) anchors the balanced in-between
    branch of Algorithm 2.
    """

    tot_max: float
    tot_ref: float
    tot_min: float
    mem_min: float
    mem_max: float

    def __post_init__(self) -> None:
        if not (self.tot_max >= self.tot_ref >= self.tot_min > 0):
            raise ConfigurationError(
                "GPU totals must be ordered tot_max >= tot_ref >= tot_min > 0, "
                f"got ({self.tot_max}, {self.tot_ref}, {self.tot_min})"
            )
        if not (self.mem_max >= self.mem_min > 0):
            raise ConfigurationError(
                f"mem_max ({self.mem_max}) must be >= mem_min ({self.mem_min}) > 0"
            )

    def is_compute_intensive(self, hardware_max_w: float, threshold: float = 0.95) -> bool:
        """The paper's intensity test: demand close to the hardware maximum."""
        if hardware_max_w <= 0:
            raise ConfigurationError("hardware_max_w must be > 0")
        return self.tot_max >= threshold * hardware_max_w

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (reports, serialization)."""
        return {
            "tot_max": self.tot_max,
            "tot_ref": self.tot_ref,
            "tot_min": self.tot_min,
            "mem_min": self.mem_min,
            "mem_max": self.mem_max,
        }
