"""Per-phase adaptive power coordination.

Section 6.2 of the paper observes that pseudo-applications (BT, MG, FT)
"comprise multiple memory access patterns" and that their "less regular
curves suggest the need of adaptive scheduling inside the application".
This module implements that suggestion: instead of one static allocation
for the whole run, the coordinator re-runs COORD at every phase boundary
using *per-phase* critical power values.

A compute-heavy solve phase then gets its watts in the CPU cap while a
streaming RHS phase gets them in the DRAM cap — under the same total
budget.  :func:`adaptive_vs_static` quantifies the benefit against the
static whole-application COORD decision.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.allocation import PowerAllocation
from repro.core.coord import CoordStatus, coord_cpu
from repro.core.critical import CpuCriticalPowers
from repro.core.profiler import profile_cpu_workload
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.perfmodel.executor import execute_on_host
from repro.perfmodel.metrics import ExecutionResult
from repro.util.units import watts
from repro.workloads.base import MetricKind, Workload

__all__ = [
    "AdaptiveComparison",
    "AdaptiveSchedule",
    "adaptive_coord",
    "adaptive_vs_static",
    "profile_phases",
]


def profile_phases(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
) -> tuple[CpuCriticalPowers, ...]:
    """Profile each phase of a workload as if it were its own application.

    Per-phase profiling costs the same handful of runs per phase; the
    paper's single-phase kernels degenerate to ordinary profiling.
    """
    criticals = []
    for phase in workload.phases:
        single = replace(
            workload,
            phases=(phase,),
            metric=MetricKind.GFLOPS,
            work_units=None,
        )
        criticals.append(profile_cpu_workload(cpu, dram, single))
    return tuple(criticals)


@dataclass(frozen=True)
class AdaptiveSchedule:
    """A per-phase allocation plan under one total budget."""

    budget_w: float
    allocations: tuple[PowerAllocation, ...]
    statuses: tuple[CoordStatus, ...]

    @property
    def accepted(self) -> bool:
        """Whether every phase received a productive allocation."""
        return all(s is not CoordStatus.REJECTED for s in self.statuses)


def adaptive_coord(
    criticals: tuple[CpuCriticalPowers, ...],
    budget_w: float,
) -> AdaptiveSchedule:
    """Run COORD independently for each phase under the same budget."""
    budget_w = watts(budget_w, "budget_w")
    allocations = []
    statuses = []
    for critical in criticals:
        decision = coord_cpu(critical, budget_w)
        allocations.append(decision.allocation)
        statuses.append(decision.status)
    return AdaptiveSchedule(
        budget_w=budget_w,
        allocations=tuple(allocations),
        statuses=tuple(statuses),
    )


def execute_adaptive(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    schedule: AdaptiveSchedule,
) -> ExecutionResult:
    """Execute a workload re-programming the caps at each phase boundary.

    On real hardware this is a RAPL limit write per phase (microseconds);
    the model simply runs each phase under its own caps and concatenates
    the results.
    """
    phase_results = []
    for phase, alloc in zip(workload.phases, schedule.allocations):
        r = execute_on_host(cpu, dram, (phase,), alloc.proc_w, alloc.mem_w)
        phase_results.extend(r.phases)
    return ExecutionResult(
        tuple(phase_results),
        proc_cap_w=max(a.proc_w for a in schedule.allocations),
        mem_cap_w=max(a.mem_w for a in schedule.allocations),
    )


@dataclass(frozen=True)
class AdaptiveComparison:
    """Static vs adaptive COORD under one budget."""

    budget_w: float
    static_perf: float
    adaptive_perf: float
    schedule: AdaptiveSchedule

    @property
    def speedup(self) -> float:
        """adaptive / static performance ratio (>= ~1 when phases differ)."""
        return self.adaptive_perf / self.static_perf


def adaptive_vs_static(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    budget_w: float,
) -> AdaptiveComparison:
    """Quantify per-phase adaptation against static whole-app COORD."""
    static_critical = profile_cpu_workload(cpu, dram, workload)
    static_decision = coord_cpu(static_critical, budget_w)
    static_result = execute_on_host(
        cpu, dram, workload.phases,
        static_decision.allocation.proc_w, static_decision.allocation.mem_w,
    )

    criticals = profile_phases(cpu, dram, workload)
    schedule = adaptive_coord(criticals, budget_w)
    adaptive_result = execute_adaptive(cpu, dram, workload, schedule)

    return AdaptiveComparison(
        budget_w=float(budget_w),
        static_perf=workload.performance(static_result),
        adaptive_perf=workload.performance(adaptive_result),
        schedule=schedule,
    )
