"""Baseline allocation strategies COORD is evaluated against (Figure 9).

* :func:`oracle_allocation` — the best allocation a (costly) exhaustive
  sweep finds; COORD's accuracy is reported relative to this.
* :func:`memory_first_allocation` — the strategy of the paper's own prior
  work [19]: give memory its full demand, hand the CPU whatever is left.
* :func:`cpu_first_allocation`, :func:`uniform_allocation`,
  :func:`demand_proportional_allocation` — naive comparison points.
* :func:`interpolation_allocation` — the Sarood et al. [30] approach:
  sample a moderate subset of allocations, interpolate, pick the argmax.

GPU-side, the Nvidia *default* policy (memory pinned at the nominal clock)
is modelled in :meth:`repro.hardware.nvml.NvmlDevice.apply_default_policy`
and exercised by the experiment harness.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import PowerAllocation
from repro.core.critical import CpuCriticalPowers
from repro.core.sweep import sweep_cpu_allocations
from repro.errors import SweepError
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.perfmodel.executor import execute_on_host
from repro.util.units import clamp, watts
from repro.workloads.base import Workload

__all__ = [
    "cpu_first_allocation",
    "demand_proportional_allocation",
    "interpolation_allocation",
    "memory_first_allocation",
    "oracle_allocation",
    "uniform_allocation",
]


def memory_first_allocation(
    critical: CpuCriticalPowers, budget_w: float
) -> PowerAllocation:
    """The memory-first strategy of [19].

    Memory is granted its full demand (capped so the CPU keeps at least
    its hardware floor); the CPU receives the remainder.  Conservative:
    avoids the catastrophic memory-starved scenarios at the cost of
    starving the CPU under small budgets — exactly the regime where COORD
    wins in Figure 9.
    """
    budget_w = watts(budget_w, "budget_w")
    # The strategy's lower bound is the hardware floor setting, except for
    # compute-bound applications whose busy-coupled demand sits below it.
    mem_floor = min(critical.mem_l3, critical.mem_l1)
    mem = clamp(
        min(critical.mem_l1, budget_w - critical.cpu_l4),
        mem_floor,
        critical.mem_l1,
    )
    return PowerAllocation(max(0.0, budget_w - mem), mem)


def cpu_first_allocation(
    critical: CpuCriticalPowers, budget_w: float
) -> PowerAllocation:
    """Mirror image of memory-first: CPU gets its demand, memory the rest."""
    budget_w = watts(budget_w, "budget_w")
    cpu = clamp(
        min(critical.cpu_l1, budget_w - critical.mem_l3),
        critical.cpu_l4,
        critical.cpu_l1,
    )
    return PowerAllocation(cpu, max(0.0, budget_w - cpu))


def uniform_allocation(budget_w: float) -> PowerAllocation:
    """Application-oblivious 50/50 split."""
    budget_w = watts(budget_w, "budget_w")
    return PowerAllocation(budget_w / 2.0, budget_w / 2.0)


def demand_proportional_allocation(
    critical: CpuCriticalPowers, budget_w: float
) -> PowerAllocation:
    """Split proportionally to the components' maximum demands."""
    budget_w = watts(budget_w, "budget_w")
    total_demand = critical.cpu_l1 + critical.mem_l1
    frac_cpu = critical.cpu_l1 / total_demand
    return PowerAllocation(frac_cpu * budget_w, (1.0 - frac_cpu) * budget_w)


def oracle_allocation(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    budget_w: float,
    *,
    step_w: float = 4.0,
) -> PowerAllocation:
    """Best allocation found by an exhaustive sweep at ``step_w`` stepping.

    The paper notes COORD occasionally *beats* this "best" because the
    sweep's stepping need not include the heuristic's exact point.
    """
    sweep = sweep_cpu_allocations(cpu, dram, workload, budget_w, step_w=step_w)
    return sweep.best.allocation


def interpolation_allocation(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    budget_w: float,
    *,
    n_samples: int = 6,
    mem_min_w: float = 16.0,
    proc_min_w: float = 8.0,
) -> PowerAllocation:
    """Sarood-style interpolation: coarse samples, local fit, argmax.

    Runs the workload at ``n_samples`` evenly spaced memory shares, then
    refines with a parabola through the best sample and its neighbours
    (successive parabolic interpolation) — robust for the tent-shaped
    performance curves power sweeps produce, where a global polynomial
    biases the peak toward the centre.
    """
    budget_w = watts(budget_w, "budget_w")
    if n_samples < 3:
        raise SweepError(f"interpolation needs >= 3 samples, got {n_samples}")
    mem_max = budget_w - proc_min_w
    if mem_max <= mem_min_w:
        raise SweepError(
            f"budget {budget_w} W leaves no room between the domain floors"
        )
    mem_samples = np.linspace(mem_min_w, mem_max, n_samples)
    perfs = np.empty_like(mem_samples)
    for i, m in enumerate(mem_samples):
        result = execute_on_host(
            cpu, dram, workload.phases, budget_w - float(m), float(m)
        )
        perf = workload.performance(result)
        # Bound-violating samples (hardware floors overriding the caps)
        # are not legitimate operating points; exclude them from the fit
        # the same way the sweep oracle does.
        perfs[i] = perf if result.respects_bound else -perf
    best = int(np.argmax(perfs))
    if best == 0 or best == n_samples - 1:
        peak = mem_samples[best]
    else:
        x = mem_samples[best - 1 : best + 2]
        y = perfs[best - 1 : best + 2]
        a, b, _ = np.polyfit(x, y, deg=2)
        peak = -b / (2.0 * a) if a < 0.0 else mem_samples[best]
        # Keep the vertex inside the bracket: the parabola is only a
        # local model of the tent around the best sample.
        peak = float(np.clip(peak, x[0], x[2]))
    mem = float(np.clip(peak, mem_min_w, mem_max))
    return PowerAllocation(budget_w - mem, mem)
