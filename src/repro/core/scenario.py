"""The paper's power-allocation scenario taxonomy and its classifier.

Section 3.2 identifies six categories of CPU power-allocation scenarios;
Section 3.3 explains each by the hardware mechanism the caps engage.  The
classifier here therefore reads the *mechanisms* recorded by the execution
model rather than curve shapes — the same ground truth the paper's "under
the hood" section appeals to:

====  ==========================================  =========================
Cat.  Paper description                           Mechanism signature
====  ==========================================  =========================
I     adequate power for both                     CPU none, DRAM none
II    adequate memory, lightly constrained CPU    CPU DVFS (P-state)
III   adequate CPU, constrained memory            DRAM bandwidth throttle
IV    seriously constrained CPU                   CPU T-state throttle
V     minimum memory power                        DRAM floor
VI    minimum CPU power (bound not ensured)       CPU floor
====  ==========================================  =========================

GPUs expose only I, II and III (Section 4): the driver's cap range and
clock floors exclude the degenerate categories.
"""

from __future__ import annotations

import enum

from repro.hardware.component import CappingMechanism
from repro.perfmodel.metrics import ExecutionResult

__all__ = ["Scenario", "classify_cpu", "classify_gpu", "CPU_SCENARIOS", "GPU_SCENARIOS"]


class Scenario(enum.IntEnum):
    """Power-allocation scenario categories I–VI (Section 3.2)."""

    I = 1
    II = 2
    III = 3
    IV = 4
    V = 5
    VI = 6

    @property
    def roman(self) -> str:
        """Roman-numeral label as used in the paper's figures."""
        return ("I", "II", "III", "IV", "V", "VI")[self - 1]

    @property
    def description(self) -> str:
        return {
            Scenario.I: "adequate power for both CPUs and memory",
            Scenario.II: "adequate memory power, lightly constrained CPU power",
            Scenario.III: "adequate CPU power, constrained memory power",
            Scenario.IV: "adequate memory power, seriously constrained CPU power",
            Scenario.V: "adequate CPU power, minimum memory power",
            Scenario.VI: "adequate memory power, minimum CPU power",
        }[self]

    @property
    def respects_bound(self) -> bool:
        """Scenario VI cannot ensure the node power bound (Section 3.2)."""
        return self is not Scenario.VI


#: Categories observable on CPU platforms.
CPU_SCENARIOS: tuple[Scenario, ...] = tuple(Scenario)
#: Categories observable on GPU platforms (Section 4).
GPU_SCENARIOS: tuple[Scenario, ...] = (Scenario.I, Scenario.II, Scenario.III)


def classify_cpu(result: ExecutionResult) -> Scenario:
    """Classify a host run into one of the six categories.

    Precedence follows the hardware: floors dominate (they override caps),
    then T-states, then the P-state / bandwidth-throttle pair.  When *both*
    domains are lightly constrained (the II/III intersection where the
    optimum lives), the binding bottleneck decides: a compute-limited run
    is II-like, a memory-limited run III-like.
    """
    proc = result.proc_mechanism
    mem = result.mem_mechanism
    if proc is CappingMechanism.FLOOR:
        return Scenario.VI
    if mem is CappingMechanism.FLOOR:
        return Scenario.V
    if proc is CappingMechanism.THROTTLE:
        return Scenario.IV
    proc_constrained = proc is CappingMechanism.DVFS
    mem_constrained = mem is CappingMechanism.BANDWIDTH_THROTTLE
    if proc_constrained and mem_constrained:
        return Scenario.II if result.utilization >= result.mem_busy else Scenario.III
    if proc_constrained:
        return Scenario.II
    if mem_constrained:
        return Scenario.III
    return Scenario.I


def classify_gpu(result: ExecutionResult) -> Scenario:
    """Classify a GPU run into the reduced I/II/III taxonomy (Section 4).

    * I — the cap binds nothing: performance insensitive to the memory
      allocation (SM at top clock, compute-limited);
    * II — the cap constrains the SM clock: raising the memory allocation
      *lowers* performance (watts flow from SMs to the memory PHY);
    * III — memory-bandwidth limited: performance rises with the memory
      allocation.
    """
    proc = result.proc_mechanism
    memory_limited = result.mem_busy > result.utilization
    if memory_limited:
        return Scenario.III
    if proc in (CappingMechanism.DVFS, CappingMechanism.FLOOR):
        return Scenario.II
    return Scenario.I
