"""Budget advice for higher-level power schedulers.

Encodes the scheduling guidance the paper distills in Sections 3.1 and 8:

* budgets below the productive threshold (``P_cpu_L2 + P_mem_L2``) should
  be refused and reclaimed — low performance *and* low efficiency;
* budgets above the application's maximum demand waste power; the surplus
  should be returned to the upper-level scheduler;
* everything in between is productive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.critical import CpuCriticalPowers
from repro.util.units import watts

__all__ = ["BudgetAdvice", "BudgetVerdict", "advise_budget"]


class BudgetVerdict(enum.Enum):
    """What a node-level coordinator should tell the scheduler."""

    #: Refuse the job; return the whole budget.
    REJECT = "reject"
    #: Run the job; the budget is within the productive band.
    ACCEPT = "accept"
    #: Run the job; return the reported surplus.
    ACCEPT_WITH_SURPLUS = "accept-with-surplus"


@dataclass(frozen=True)
class BudgetAdvice:
    """A verdict plus the power-accounting details behind it."""

    verdict: BudgetVerdict
    budget_w: float
    threshold_w: float
    max_useful_w: float
    surplus_w: float = 0.0
    reclaimable_w: float = 0.0

    @property
    def productive_band_w(self) -> tuple[float, float]:
        """The [threshold, max-demand] band where budgets buy performance."""
        return (self.threshold_w, self.max_useful_w)


def advise_budget(critical: CpuCriticalPowers, budget_w: float) -> BudgetAdvice:
    """Classify a budget into reject / accept / accept-with-surplus.

    ``reclaimable_w`` is the full budget on rejection and the surplus
    above the application's maximum demand otherwise.
    """
    budget_w = watts(budget_w, "budget_w")
    threshold = critical.productive_threshold_w
    max_useful = critical.max_demand_w
    if budget_w < threshold:
        return BudgetAdvice(
            verdict=BudgetVerdict.REJECT,
            budget_w=budget_w,
            threshold_w=threshold,
            max_useful_w=max_useful,
            reclaimable_w=budget_w,
        )
    if budget_w > max_useful:
        surplus = budget_w - max_useful
        return BudgetAdvice(
            verdict=BudgetVerdict.ACCEPT_WITH_SURPLUS,
            budget_w=budget_w,
            threshold_w=threshold,
            max_useful_w=max_useful,
            surplus_w=surplus,
            reclaimable_w=surplus,
        )
    return BudgetAdvice(
        verdict=BudgetVerdict.ACCEPT,
        budget_w=budget_w,
        threshold_w=threshold,
        max_useful_w=max_useful,
    )
