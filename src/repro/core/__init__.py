"""Core contribution: cross-component power coordination.

This package implements the paper's actual contribution on top of the
hardware and execution substrates:

* the power-allocation vocabulary and sweep engines
  (:mod:`repro.core.allocation`, :mod:`repro.core.sweep`);
* the six-category scenario taxonomy and its classifier
  (:mod:`repro.core.scenario`);
* critical power values and the lightweight profiler that extracts them
  (:mod:`repro.core.critical`, :mod:`repro.core.profiler`);
* the COORD heuristics — Algorithm 1 (CPU) and Algorithm 2 (GPU)
  (:mod:`repro.core.coord`, :mod:`repro.core.coord_gpu`);
* baseline allocation strategies (:mod:`repro.core.baselines`);
* analysis utilities: scenario spans, critical components, the Table 1
  derivation, and the Figure 5 balance analysis (:mod:`repro.core.analysis`);
* budget advice for higher-level schedulers (:mod:`repro.core.budget`).
"""

from repro.core.allocation import PowerAllocation, allocation_grid
from repro.core.parallel import (
    CACHE_DIR_ENV_VAR,
    SWEEP_MODE_ENV_VAR,
    CacheStats,
    MemoCache,
    PlannerState,
    PlannerStats,
    SweepEngine,
    default_engine,
    fingerprint,
    resolve_cache_dir,
    resolve_mode,
    set_default_engine,
    use_engine,
)
from repro.core.diskcache import (
    CacheIntegrityWarning,
    DiskCache,
    DiskCacheError,
    DiskCacheStats,
    decode_result,
    digest_key,
    encode_result,
)
from repro.core.planner import (
    PlanStats,
    PlannedSweep,
    adaptive_cpu_budget_curve,
    adaptive_gpu_budget_curve,
    plan_cpu_sweep,
    plan_gpu_sweep,
    sweep_cpu_best,
    sweep_gpu_best,
)
from repro.core.scenario import Scenario, classify_cpu, classify_gpu
from repro.core.critical import CpuCriticalPowers, GpuCriticalPowers
from repro.core.profiler import profile_cpu_workload, profile_gpu_workload
from repro.core.coord import CoordDecision, CoordStatus, coord_cpu
from repro.core.coord_gpu import coord_gpu
from repro.core.baselines import (
    cpu_first_allocation,
    demand_proportional_allocation,
    interpolation_allocation,
    memory_first_allocation,
    oracle_allocation,
    uniform_allocation,
)
from repro.core.sweep import (
    AllocationSweep,
    GpuSweep,
    cpu_budget_curve,
    gpu_budget_curve,
    sweep_cpu_allocations,
    sweep_gpu_allocations,
)
from repro.core.analysis import (
    BalancePoint,
    balance_analysis,
    critical_component,
    optimal_intersection,
    scenario_spans,
    table1_rows,
)
from repro.core.budget import BudgetAdvice, BudgetVerdict, advise_budget
from repro.core.adaptive import (
    AdaptiveComparison,
    AdaptiveSchedule,
    adaptive_coord,
    adaptive_vs_static,
    profile_phases,
)
from repro.core.efficiency import (
    EfficiencyCurve,
    EfficiencyPoint,
    efficiency_curve,
    sweep_efficiency,
)
from repro.core.online import OnlineShiftResult, online_power_shift
from repro.core.optimize import GoldenSectionResult, golden_section_optimal
from repro.core.coord_probing import coord_cpu_probing
from repro.core.elasticity import ElasticityEstimate, power_elasticity, rank_by_elasticity
from repro.core.coord_hetero import (
    HeteroAllocation,
    coord_biglittle,
    profile_biglittle,
    sweep_biglittle,
)
from repro.core.coord_hybrid import (
    HybridResult,
    HybridStep,
    HybridWorkload,
    coord_hybrid,
    execute_hybrid,
    offload_workload,
)

__all__ = [
    "AdaptiveComparison",
    "AdaptiveSchedule",
    "AllocationSweep",
    "BalancePoint",
    "BudgetAdvice",
    "BudgetVerdict",
    "CACHE_DIR_ENV_VAR",
    "CacheIntegrityWarning",
    "CacheStats",
    "CoordDecision",
    "CoordStatus",
    "CpuCriticalPowers",
    "DiskCache",
    "DiskCacheError",
    "DiskCacheStats",
    "EfficiencyCurve",
    "EfficiencyPoint",
    "ElasticityEstimate",
    "GoldenSectionResult",
    "GpuCriticalPowers",
    "GpuSweep",
    "HeteroAllocation",
    "HybridResult",
    "HybridStep",
    "HybridWorkload",
    "MemoCache",
    "OnlineShiftResult",
    "PlanStats",
    "PlannedSweep",
    "PlannerState",
    "PlannerStats",
    "PowerAllocation",
    "SWEEP_MODE_ENV_VAR",
    "Scenario",
    "SweepEngine",
    "adaptive_coord",
    "adaptive_cpu_budget_curve",
    "adaptive_gpu_budget_curve",
    "adaptive_vs_static",
    "advise_budget",
    "allocation_grid",
    "balance_analysis",
    "classify_cpu",
    "classify_gpu",
    "coord_biglittle",
    "coord_cpu",
    "coord_cpu_probing",
    "coord_gpu",
    "coord_hybrid",
    "cpu_budget_curve",
    "cpu_first_allocation",
    "critical_component",
    "decode_result",
    "default_engine",
    "demand_proportional_allocation",
    "digest_key",
    "efficiency_curve",
    "encode_result",
    "execute_hybrid",
    "fingerprint",
    "golden_section_optimal",
    "gpu_budget_curve",
    "interpolation_allocation",
    "memory_first_allocation",
    "offload_workload",
    "online_power_shift",
    "optimal_intersection",
    "oracle_allocation",
    "plan_cpu_sweep",
    "plan_gpu_sweep",
    "power_elasticity",
    "profile_biglittle",
    "profile_cpu_workload",
    "profile_gpu_workload",
    "profile_phases",
    "rank_by_elasticity",
    "resolve_cache_dir",
    "resolve_mode",
    "scenario_spans",
    "set_default_engine",
    "sweep_biglittle",
    "sweep_cpu_allocations",
    "sweep_cpu_best",
    "sweep_efficiency",
    "sweep_gpu_allocations",
    "sweep_gpu_best",
    "table1_rows",
    "uniform_allocation",
    "use_engine",
]
