"""COORD+ : Algorithm 1 with a three-candidate probe in the tight regime.

Faithful COORD (Algorithm 1) splits case-C budgets *proportionally to the
components' dynamic ranges* — a blind rule that costs 15–30 % against the
oracle at small budgets (the paper's own numbers average 9.6 % across all
caps for the same reason).  The balance point actually satisfies

    t_compute(P_cpu)  =  t_memory(P_mem)

which two or three probe runs can bracket.  COORD+ keeps Algorithm 1's
cases A/B/D verbatim and, in case C only, evaluates three candidates —
the proportional split plus a memory-lean and a memory-rich variant —
returning the best *bound-respecting* one.  The cost is two extra runs per
(application, budget) decision; the ablation harness quantifies the gain.
"""

from __future__ import annotations

from repro.core.allocation import PowerAllocation
from repro.core.coord import CoordDecision, CoordStatus, coord_cpu
from repro.core.critical import CpuCriticalPowers
from repro.errors import ConfigurationError
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.perfmodel.executor import execute_on_host
from repro.util.units import watts
from repro.workloads.base import Workload

__all__ = ["coord_cpu_probing"]


def coord_cpu_probing(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    critical: CpuCriticalPowers,
    budget_w: float,
    *,
    lean_shift: float = 0.5,
    strict: bool = False,
) -> CoordDecision:
    """COORD with case-C candidate probing (three short runs).

    ``lean_shift`` sets how far the two extra candidates lean away from
    the proportional split, as a fraction of the distance to the L2
    floors.
    """
    budget_w = watts(budget_w, "budget_w")
    if not 0.0 < lean_shift <= 1.0:
        raise ConfigurationError(f"lean_shift must be in (0, 1], got {lean_shift}")
    base = coord_cpu(critical, budget_w, strict=strict)
    if base.status is not CoordStatus.SUCCESS:
        return base  # cases A (surplus) and D (rejected) are already right
    if budget_w >= critical.cpu_l2 + critical.mem_l1:
        return base  # case B: memory-first is already the paper's rule

    # Case C: probe around the proportional split.
    prop = base.allocation
    room_down = max(0.0, prop.mem_w - critical.mem_l2)
    room_up = max(0.0, prop.proc_w - critical.cpu_l2)
    candidates = [prop]
    if room_down > 0:
        candidates.append(prop.shifted(-lean_shift * room_down))
    if room_up > 0:
        candidates.append(prop.shifted(lean_shift * room_up))

    def score(alloc: PowerAllocation) -> tuple[bool, float]:
        result = execute_on_host(
            cpu, dram, workload.phases, alloc.proc_w, alloc.mem_w
        )
        return (result.respects_bound, workload.performance(result))

    best = max(candidates, key=score)
    return CoordDecision(best, CoordStatus.SUCCESS)
