"""Energy-efficiency analysis of power budgets and allocations.

Section 3.1's scheduling insights are stated in efficiency terms: small
budgets deliver "low performance *and* power efficiency" and should be
reclaimed; over-budgeting "wastes power without increasing performance".
This module quantifies both with the metrics the community uses:

* performance per watt (the Green500 metric shape);
* energy-to-solution and energy-delay product (EDP);
* the *efficient budget band*: budgets whose perf/W is within a factor of
  the peak — the operating region a global scheduler should target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sweep import AllocationSweep, sweep_cpu_allocations
from repro.errors import SweepError
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.util.units import check_fraction
from repro.workloads.base import Workload

__all__ = [
    "EfficiencyCurve",
    "EfficiencyPoint",
    "efficiency_curve",
    "sweep_efficiency",
]


@dataclass(frozen=True)
class EfficiencyPoint:
    """Efficiency metrics for one (budget, best-allocation) pair."""

    budget_w: float
    performance: float
    actual_power_w: float
    elapsed_s: float
    energy_j: float

    @property
    def perf_per_watt(self) -> float:
        """Performance per *actual* watt (not per allocated watt)."""
        return self.performance / self.actual_power_w

    @property
    def energy_delay_product(self) -> float:
        """EDP = energy × time; lower is better."""
        return self.energy_j * self.elapsed_s


@dataclass(frozen=True)
class EfficiencyCurve:
    """Efficiency metrics of the per-budget optimal allocations."""

    workload_name: str
    metric_unit: str
    points: tuple[EfficiencyPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise SweepError("efficiency curve needs at least one budget")

    @property
    def budgets_w(self) -> np.ndarray:
        return np.array([p.budget_w for p in self.points])

    @property
    def perf_per_watt(self) -> np.ndarray:
        return np.array([p.perf_per_watt for p in self.points])

    @property
    def edp(self) -> np.ndarray:
        return np.array([p.energy_delay_product for p in self.points])

    @property
    def peak_efficiency_budget_w(self) -> float:
        """The budget with the best perf/W — a scheduler's sweet spot."""
        return float(self.budgets_w[int(np.argmax(self.perf_per_watt))])

    def efficient_band_w(self, tolerance: float = 0.9) -> tuple[float, float]:
        """Budgets whose perf/W is within ``tolerance``× of the peak.

        The paper's advice operationalized: budgets below the band should
        be refused, budgets above it trimmed.
        """
        check_fraction(tolerance, "tolerance")
        eff = self.perf_per_watt
        ok = self.budgets_w[eff >= tolerance * eff.max()]
        return float(ok.min()), float(ok.max())


def _point_from_sweep(sweep: AllocationSweep) -> EfficiencyPoint:
    best = sweep.best
    return EfficiencyPoint(
        budget_w=sweep.budget_w,
        performance=best.performance,
        actual_power_w=best.result.total_power_w,
        elapsed_s=best.result.elapsed_s,
        energy_j=best.result.energy_j,
    )


def efficiency_curve(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    budgets_w: list[float] | np.ndarray,
    *,
    step_w: float = 4.0,
) -> EfficiencyCurve:
    """Efficiency of the best allocation at each budget."""
    budgets = np.asarray(budgets_w, dtype=float)
    if budgets.size == 0:
        raise SweepError("efficiency curve needs at least one budget")
    points = tuple(
        _point_from_sweep(
            sweep_cpu_allocations(cpu, dram, workload, float(b), step_w=step_w)
        )
        for b in budgets
    )
    return EfficiencyCurve(
        workload_name=workload.name,
        metric_unit=workload.metric_unit,
        points=points,
    )


def sweep_efficiency(sweep: AllocationSweep) -> np.ndarray:
    """perf/W across one sweep's allocations (the Figure 8 efficiency view).

    Poorly coordinated allocations score badly twice: less performance
    *and* (outside the floor scenarios) nearly the same power draw.
    """
    return sweep.performances / sweep.total_actual_w
