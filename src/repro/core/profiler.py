"""Lightweight application profiling for the COORD heuristics.

The paper's selling point over prior work is that COORD needs only a
handful of profiling runs per application (Section 5, "eliminates the need
of exhaustive or fine-grain profiling"):

* one uncapped run → ``P_cpu_L1`` and ``P_mem_L1``;
* one floor-capped run → ``P_cpu_L3`` and ``P_mem_L2``;
* a short bisection on the CPU cap to find the lowest-P-state boundary
  ``P_cpu_L2`` (a dozen short runs — the paper equivalently reads the
  P-state table);
* ``P_cpu_L4`` / ``P_mem_L3`` are hardware constants, read once per node.

GPU profiling needs just two runs per application (``P_tot_max`` at the
default cap, ``P_tot_ref`` at the minimum SM pairing clock) plus per-card
constants.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ProfilingError
from repro.core.critical import CpuCriticalPowers, GpuCriticalPowers
from repro.faults.injector import active as _faults_active
from repro.hardware.component import CappingMechanism
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.hardware.gpu import GpuCard
from repro.hardware.gpu_sm import GpuSmOperatingPoint
from repro.perfmodel.executor import execute_on_host
from repro.perfmodel.phase import Phase
from repro.workloads.base import Workload

__all__ = ["profile_cpu_workload", "profile_gpu_workload"]

#: Bisection resolution for the P-state boundary, in watts.
_BISECT_TOL_W = 0.25


def _measured(value: float) -> float:
    """Fault-injection site ``"profiler.sample"`` (measurement noise).

    Every critical power value passes through here as it is "measured".
    An armed NOISE fault multiplies the measurement by
    ``1 + amplitude * u`` with a deterministic ``u ∈ [-1, 1)`` — modeling
    a meter glitch or an interfering co-runner during the profiling run.
    Disarmed, the value passes through untouched.  The resilient entry
    points (:mod:`repro.faults.resilience`) defend by majority vote over
    repeated profiles.
    """
    injector = _faults_active()
    if injector is None:
        return value
    event = injector.check("profiler.sample")
    if event is None:
        return value
    return value * (1.0 + event.amplitude * injector.noise("profiler.sample", event.call_index))


def _any_throttled(result) -> bool:
    return any(
        p.proc_mechanism in (CappingMechanism.THROTTLE, CappingMechanism.FLOOR)
        or p.proc_duty < 1.0
        for p in result.phases
    )


def profile_cpu_workload(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
) -> CpuCriticalPowers:
    """Extract the seven critical power values for a CPU workload."""
    if workload.device != "cpu":
        raise ProfilingError(
            f"workload {workload.name!r} targets {workload.device!r}, not cpu"
        )
    phases = workload.phases
    uncapped_cpu = cpu.max_power_w + 1.0
    uncapped_mem = dram.max_power_w + 1.0

    # Run 1: both domains unconstrained -> maximum demands.  Maxima are
    # taken over phases, not time-averaged: a cap at the run average would
    # throttle the hottest phase of a multi-phase application (BT, MG),
    # and the paper defines L1 as the *maximum* power consumption.
    r_full = execute_on_host(cpu, dram, phases, uncapped_cpu, uncapped_mem)
    cpu_l1 = _measured(max(p.proc_power_w for p in r_full.phases))
    mem_l1 = _measured(max(p.mem_power_w for p in r_full.phases))

    # Run 2: CPU forced to its floor -> L3 and the matching DRAM power.
    r_floor = execute_on_host(cpu, dram, phases, 0.0, uncapped_mem)
    cpu_l3 = _measured(max(p.proc_power_w for p in r_floor.phases))
    mem_l2 = _measured(max(p.mem_power_w for p in r_floor.phases))

    # Bisection: the smallest CPU cap that avoids clock throttling.  This
    # is the boundary between the P-state range and the T-state range.
    lo, hi = cpu.floor_power_w, cpu_l1 + 1.0
    r_hi = execute_on_host(cpu, dram, phases, hi, uncapped_mem)
    if _any_throttled(r_hi):  # pragma: no cover - defensive; cannot happen
        raise ProfilingError(
            f"workload {workload.name!r} throttles even uncapped"
        )
    while hi - lo > _BISECT_TOL_W:
        mid = 0.5 * (lo + hi)
        r_mid = execute_on_host(cpu, dram, phases, mid, uncapped_mem)
        if _any_throttled(r_mid):
            lo = mid
        else:
            hi = mid
    r_l2 = execute_on_host(cpu, dram, phases, hi, uncapped_mem)
    cpu_l2 = _measured(max(p.proc_power_w for p in r_l2.phases))

    cpu_l4 = cpu.floor_power_w
    mem_l3 = dram.floor_power_w
    # Floors are physical lower bounds; numerically the floor-capped run can
    # report L3 a hair under L4, so clamp the ordering.
    cpu_l3 = max(cpu_l3, cpu_l4)
    cpu_l2 = max(cpu_l2, cpu_l3)
    cpu_l1 = max(cpu_l1, cpu_l2)
    return CpuCriticalPowers(
        cpu_l1=cpu_l1,
        cpu_l2=cpu_l2,
        cpu_l3=cpu_l3,
        cpu_l4=cpu_l4,
        mem_l1=mem_l1,
        mem_l2=mem_l2,
        mem_l3=mem_l3,
    )


def _pinned_gpu_total_w(
    card: GpuCard,
    phases: Sequence[Phase],
    sm_freq_ghz: float,
    mem_freq_mhz: float,
) -> float:
    """Time-weighted board power with both clocks pinned (no governor)."""
    mem_op = card.mem.operating_point(mem_freq_mhz)
    sm_op = GpuSmOperatingPoint(sm_freq_ghz, CappingMechanism.DVFS)
    total_t = 0.0
    total_e = 0.0
    for phase in phases:
        rate = (
            card.sm.compute_rate_flops(sm_op, phase.compute_efficiency)
            if phase.flops > 0.0
            else float("inf")
        )
        mem_rate = (
            card.mem.bandwidth_ceiling_gbps(mem_op, phase.memory_efficiency) * 1e9
            if phase.bytes_moved > 0.0
            else float("inf")
        )
        t_c = phase.flops / rate if phase.flops > 0.0 else 0.0
        t_m = phase.bytes_moved / mem_rate if phase.bytes_moved > 0.0 else 0.0
        t = max(t_c, t_m)
        u = t_c / t if t > 0 else 0.0
        busy = t_m / t if t > 0 else 0.0
        a_eff = phase.activity * u + phase.stall_activity * (1.0 - u)
        sm_p = card.sm.demand_w(sm_op, a_eff)
        mem_p = card.mem.demand_w(mem_op, busy)
        total_t += t
        total_e += t * card.total_power_w(sm_p, mem_p)
    if total_t <= 0.0:
        raise ProfilingError("GPU workload produced zero execution time")
    return total_e / total_t


def profile_gpu_workload(card: GpuCard, workload: Workload) -> GpuCriticalPowers:
    """Extract the GPU COORD parameters for a workload on a card."""
    if workload.device != "gpu":
        raise ProfilingError(
            f"workload {workload.name!r} targets {workload.device!r}, not gpu"
        )
    phases = workload.phases
    # "Total power when no cap is imposed": the driver still enforces the
    # hardware maximum, which is exactly how the paper observes SGEMM
    # "demands more than 300 Watts" without ever measuring more than 300.
    tot_max = _measured(
        _pinned_gpu_total_w(
            card, phases, card.sm.pstates.f_nom_ghz, card.mem.nominal_mhz
        )
    )
    tot_max = min(tot_max, card.max_cap_w)
    tot_ref = _measured(
        _pinned_gpu_total_w(
            card, phases, card.sm.pstates.f_min_ghz, card.mem.nominal_mhz
        )
    )
    tot_min = _measured(
        _pinned_gpu_total_w(
            card, phases, card.sm.pstates.f_min_ghz, card.mem.min_mhz
        )
    )
    # Keep the documented ordering even for degenerate workloads whose
    # busy fraction rises as clocks fall.
    tot_ref = min(tot_ref, tot_max)
    tot_min = min(tot_min, tot_ref)
    return GpuCriticalPowers(
        tot_max=tot_max,
        tot_ref=tot_ref,
        tot_min=tot_min,
        mem_min=card.mem.floor_power_w,
        mem_max=card.mem.max_power_w,
    )
