"""Online feedback power shifting — a profiling-free comparison point.

Prior work the paper discusses (Hanson et al., Chen et al. [10, 20])
shifts power between processor and memory with a runtime feedback loop
instead of ahead-of-time profiling.  This module implements that approach
against the same execution model so COORD can be compared with it:

* start from an application-oblivious split of the budget;
* run a (short) measurement epoch;
* shift a power quantum toward the bottleneck domain — toward memory when
  the memory bus is saturated while cores stall, toward the CPU when cores
  are busy while the bus idles;
* shrink the quantum when the shift direction flips (the controller is a
  signed bisection), and stop when the quantum underflows or performance
  stops improving.

The controller converges to a near-balanced allocation without any prior
knowledge, at the cost of the epochs it burns exploring — exactly the
trade-off the paper's lightweight-profiling pitch is about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import PowerAllocation
from repro.errors import ConfigurationError
from repro.faults.injector import active as _faults_active
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.perfmodel.executor import execute_on_host
from repro.util.units import check_positive, watts
from repro.workloads.base import Workload

__all__ = ["OnlineShiftResult", "online_power_shift"]


@dataclass(frozen=True)
class OnlineShiftResult:
    """Outcome of a feedback power-shifting run."""

    allocation: PowerAllocation
    performance: float
    epochs: int
    trajectory: tuple[PowerAllocation, ...]

    @property
    def search_cost_epochs(self) -> int:
        """Measurement epochs burnt before settling (exploration cost)."""
        return self.epochs


def _bottleneck_signal(utilization: float, mem_busy: float) -> float:
    """Positive → memory-bound (shift watts to memory); negative → CPU-bound.

    Fault-injection site ``"online.signal"``: an armed NOISE fault
    perturbs the reading additively — modeling the jittery counters a
    real feedback controller steers on.  The controller's *measurements*
    of candidate allocations stay clean (each epoch's performance is the
    model's true value); only the steering signal degrades, so a noisy
    run still returns a valid, bound-respecting allocation — possibly a
    suboptimal one, which :func:`repro.faults.resilience.online_shift_resilient`
    surfaces as a typed degradation.
    """
    signal = mem_busy - utilization
    injector = _faults_active()
    if injector is not None:
        event = injector.check("online.signal")
        if event is not None:
            signal += event.amplitude * injector.noise(
                "online.signal", event.call_index
            )
    return signal


def online_power_shift(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    budget_w: float,
    *,
    initial_mem_fraction: float = 0.5,
    initial_step_w: float = 16.0,
    min_step_w: float = 2.0,
    max_epochs: int = 40,
    mem_floor_w: float = 16.0,
    proc_floor_w: float = 8.0,
) -> OnlineShiftResult:
    """Run the feedback power-shifting controller to convergence.

    Each epoch simulates the workload at the current split (standing in
    for a measurement window on real hardware), reads the bottleneck
    signal, and shifts ``step`` watts toward the starved domain.  A sign
    flip halves the step; the loop ends when the step underflows
    ``min_step_w`` or the epoch budget is spent.
    """
    budget_w = watts(budget_w, "budget_w")
    check_positive(initial_step_w, "initial_step_w")
    check_positive(min_step_w, "min_step_w")
    if not 0.0 < initial_mem_fraction < 1.0:
        raise ConfigurationError(
            f"initial_mem_fraction must be in (0, 1), got {initial_mem_fraction}"
        )
    if max_epochs < 1:
        raise ConfigurationError(f"max_epochs must be >= 1, got {max_epochs}")

    mem_w = budget_w * initial_mem_fraction
    step = initial_step_w
    prev_sign = 0
    best_alloc = PowerAllocation(budget_w - mem_w, mem_w)
    best_perf: float | None = None
    trajectory: list[PowerAllocation] = []

    epochs = 0
    for epochs in range(1, max_epochs + 1):
        mem_w = min(max(mem_w, mem_floor_w), budget_w - proc_floor_w)
        alloc = PowerAllocation(budget_w - mem_w, mem_w)
        if trajectory and alloc == trajectory[-1]:
            break  # clamped against a floor: no further movement possible
        trajectory.append(alloc)
        result = execute_on_host(
            cpu, dram, workload.phases, alloc.proc_w, alloc.mem_w
        )
        perf = workload.performance(result)
        if (best_perf is None or perf > best_perf) and result.respects_bound:
            best_perf, best_alloc = perf, alloc

        signal = _bottleneck_signal(result.utilization, result.mem_busy)
        sign = 1 if signal > 0.02 else (-1 if signal < -0.02 else 0)
        if sign == 0:
            break  # balanced: neither domain clearly starved
        if prev_sign and sign != prev_sign:
            step /= 2.0
            if step < min_step_w:
                break
        prev_sign = sign
        mem_w += sign * step

    if best_perf is None:
        # No bound-respecting epoch (degenerately small budget): fall back
        # to the last allocation visited.
        best_alloc = trajectory[-1]
        result = execute_on_host(
            cpu, dram, workload.phases, best_alloc.proc_w, best_alloc.mem_w
        )
        best_perf = workload.performance(result)

    return OnlineShiftResult(
        allocation=best_alloc,
        performance=best_perf,
        epochs=epochs,
        trajectory=tuple(trajectory),
    )
