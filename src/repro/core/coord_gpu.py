"""COORD for GPU computing (Algorithm 2).

The GPU variant needs fewer parameters because the driver already excludes
the degenerate scenarios: two per-application totals (``P_tot_max``,
``P_tot_ref``) and two per-card memory constants.  Three cases:

A. compute-intensive application → minimum memory power, rest to the SMs;
B. memory-intensive with ``P_b ≥ P_tot_ref`` → maximum memory power, rest
   to the SMs;
C. otherwise (in between / small budget) → balance: memory gets its
   minimum plus ``γ`` of the budget above ``P_tot_min`` (γ = 0.5 in the
   paper's experiments).

The decision is expressed in watts; :func:`apply_gpu_decision` translates
it onto the driver's actual knobs (board cap + memory clock offset).
"""

from __future__ import annotations

from repro.core.allocation import PowerAllocation
from repro.core.coord import CoordDecision, CoordStatus
from repro.core.critical import GpuCriticalPowers
from repro.errors import ConfigurationError
from repro.hardware.gpu import GpuCard
from repro.hardware.gpu_mem import GpuMemOperatingPoint
from repro.hardware.nvml import NvmlDevice
from repro.util.units import clamp, watts

__all__ = ["coord_gpu", "apply_gpu_decision"]


def coord_gpu(
    critical: GpuCriticalPowers,
    budget_w: float,
    *,
    hardware_max_w: float,
    gamma: float = 0.5,
    compute_intensity_threshold: float = 0.95,
) -> CoordDecision:
    """Algorithm 2: category-based heuristic for GPU computing.

    Parameters
    ----------
    critical:
        The workload's profiled GPU parameters.
    budget_w:
        Total board power budget ``P_b``.
    hardware_max_w:
        The card's maximum settable cap (300 W on the paper's cards);
        used by the compute-intensity test.
    gamma:
        Balance factor for the in-between case; the paper sets 0.5.
    compute_intensity_threshold:
        Fraction of ``hardware_max_w`` above which ``P_tot_max`` marks the
        application compute intensive.
    """
    budget_w = watts(budget_w, "budget_w")
    if not 0.0 <= gamma <= 1.0:
        raise ConfigurationError(f"gamma must be in [0, 1], got {gamma}")
    c = critical

    status = CoordStatus.SUCCESS
    surplus = 0.0
    if budget_w >= c.tot_max:
        status = CoordStatus.SURPLUS
        surplus = budget_w - c.tot_max

    if c.is_compute_intensive(hardware_max_w, compute_intensity_threshold):
        # Case A: starve memory, feed the SMs.
        mem = c.mem_min
    elif budget_w >= c.tot_ref:
        # Case B: memory intensive with budget to spare — max memory clock.
        # (Clamped to the budget for robustness against degenerate profiles
        # where mem_max exceeds tot_ref; profiled values always satisfy
        # tot_ref > mem_max because tot_ref includes board + SM floor.)
        mem = min(c.mem_max, budget_w)
    else:
        # Case C: balanced split of the headroom above the minimum total.
        mem = c.mem_min + gamma * max(0.0, budget_w - c.tot_min)
        mem = clamp(mem, c.mem_min, c.mem_max)

    sm = max(0.0, budget_w - mem)
    return CoordDecision(PowerAllocation(sm, mem), status, surplus_w=surplus)


def apply_gpu_decision(
    device: NvmlDevice,
    decision: CoordDecision,
    budget_w: float,
) -> GpuMemOperatingPoint:
    """Program a COORD decision onto the driver knobs.

    The memory share becomes a clock via the card's empirical power model;
    the board cap is the total budget (clamped to the driver range), with
    the firmware's reclaim handling any watts the memory leaves unused.
    """
    card: GpuCard = device.card
    cap = clamp(budget_w, card.min_cap_w, card.max_cap_w)
    device.set_power_limit(cap)
    return device.set_mem_power_target(decision.allocation.mem_w)
