"""Power elasticity: where does the next watt help most?

A cluster power manager holding spare watts must decide which job to give
them to.  The right quantity is the *marginal* performance per watt —
the relative speedup a small budget increase buys through COORD:

    elasticity(W, P_b, Δ) = (perf_max(P_b + Δ) / perf_max(P_b) − 1) / Δ

computed on the *optimal frontier* (``perf_max``, via the golden-section
oracle) — the frontier is monotone in the budget, so the signal is clean;
a single heuristic's output is not (its discrete case boundaries make
small increments non-monotone).

Saturated jobs (budget at or above their max demand) have elasticity ≈ 0;
budget-starved memory-bound jobs have the highest.  The rebalancing
scheduler can order its boosts by this signal instead of FCFS, and
:func:`rank_by_elasticity` is the generic building block for any
higher-level power market.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.coord import coord_cpu
from repro.core.critical import CpuCriticalPowers
from repro.core.optimize import golden_section_optimal
from repro.errors import ConfigurationError
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.util.units import check_positive, watts
from repro.workloads.base import Workload

__all__ = ["ElasticityEstimate", "power_elasticity", "rank_by_elasticity"]


@dataclass(frozen=True)
class ElasticityEstimate:
    """Marginal performance of extra power for one (workload, budget)."""

    budget_w: float
    delta_w: float
    base_performance: float
    boosted_performance: float

    @property
    def relative_gain(self) -> float:
        """Fractional speedup from the probe increment."""
        if self.base_performance <= 0:
            return float("inf")
        return self.boosted_performance / self.base_performance - 1.0

    @property
    def per_watt(self) -> float:
        """Relative speedup per additional watt — the ranking signal."""
        return self.relative_gain / self.delta_w


def power_elasticity(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    critical: CpuCriticalPowers,
    budget_w: float,
    *,
    delta_w: float = 10.0,
) -> ElasticityEstimate:
    """Probe the marginal performance of ``delta_w`` extra watts.

    Two golden-section searches (a few dozen short model runs) give the
    optimal-frontier performance at the current and incremented budgets.
    Budgets below COORD's productive threshold probe as zero base
    performance — any watt that makes the job admissible is infinitely
    valuable there, and the estimate reports ``inf``.
    """
    budget_w = watts(budget_w, "budget_w")
    check_positive(delta_w, "delta_w")

    def perf_at(b: float) -> float:
        if not coord_cpu(critical, b).accepted:
            return 0.0
        return golden_section_optimal(cpu, dram, workload, b, tol_w=4.0).performance

    base = perf_at(budget_w)
    boosted = perf_at(budget_w + delta_w)
    return ElasticityEstimate(
        budget_w=budget_w,
        delta_w=delta_w,
        base_performance=base,
        # The frontier is monotone; clip the oracle's tolerance jitter.
        boosted_performance=max(base, boosted),
    )


def rank_by_elasticity(
    cpu: CpuDomain,
    dram: DramDomain,
    candidates: list[tuple[Workload, CpuCriticalPowers, float]],
    *,
    delta_w: float = 10.0,
) -> list[tuple[int, ElasticityEstimate]]:
    """Rank (workload, critical, current-budget) triples by marginal value.

    Returns ``(candidate index, estimate)`` pairs, most elastic first —
    the order in which spare watts should be handed out.
    """
    if not candidates:
        raise ConfigurationError("no candidates to rank")
    estimates = [
        (
            i,
            power_elasticity(cpu, dram, wl, critical, budget, delta_w=delta_w),
        )
        for i, (wl, critical, budget) in enumerate(candidates)
    ]
    return sorted(estimates, key=lambda pair: pair[1].per_watt, reverse=True)
