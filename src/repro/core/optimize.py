"""Fast optimal-allocation search: golden-section over the memory share.

The exhaustive sweep needs one run per grid point; the performance-vs-
memory-share curve at a fixed budget is unimodal-with-plateaus (rising
through the memory-starved scenarios, flat across the optimum, falling
through the CPU-starved ones), so a golden-section search finds the
optimum in ~2·log_φ(range/tol) runs — an order of magnitude fewer than a
fine sweep at the same resolution.

This is the oracle a deployment would actually use for one-off decisions
without profiling; tests validate it against the exhaustive sweep across
the whole suite (which simultaneously validates the unimodality claim).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.allocation import PowerAllocation
from repro.errors import SweepError
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.perfmodel.executor import execute_on_host
from repro.util.units import watts
from repro.workloads.base import Workload

__all__ = ["GoldenSectionResult", "golden_section_optimal"]

#: 1/φ — the golden-section interior-point ratio.
_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0


@dataclass(frozen=True)
class GoldenSectionResult:
    """Outcome of the golden-section optimum search."""

    allocation: PowerAllocation
    performance: float
    evaluations: int

    @property
    def search_cost_runs(self) -> int:
        """Simulated runs spent (the quantity a deployment cares about)."""
        return self.evaluations


def golden_section_optimal(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    budget_w: float,
    *,
    mem_min_w: float = 16.0,
    proc_min_w: float = 8.0,
    tol_w: float = 2.0,
) -> GoldenSectionResult:
    """Find the best memory share by golden-section search.

    Only bound-respecting evaluations can win (matching the sweep
    oracle's rule); plateaus are handled naturally — any point on the
    plateau is optimal.
    """
    budget_w = watts(budget_w, "budget_w")
    if tol_w <= 0:
        raise SweepError(f"tol_w must be > 0, got {tol_w}")
    lo = mem_min_w
    hi = budget_w - proc_min_w
    if hi <= lo:
        raise SweepError(
            f"budget {budget_w} W leaves no range between the domain floors"
        )

    evaluations = 0
    best_alloc: PowerAllocation | None = None
    best_perf = float("-inf")

    def evaluate(mem_w: float) -> float:
        nonlocal evaluations, best_alloc, best_perf
        evaluations += 1
        alloc = PowerAllocation(budget_w - mem_w, mem_w)
        result = execute_on_host(
            cpu, dram, workload.phases, alloc.proc_w, alloc.mem_w
        )
        perf = workload.performance(result)
        score = perf if result.respects_bound else -1.0 / (1.0 + perf)
        if score > best_perf:
            best_perf = score
            best_alloc = alloc
        return score

    a, b = lo, hi
    c = b - _INV_PHI * (b - a)
    d = a + _INV_PHI * (b - a)
    fc, fd = evaluate(c), evaluate(d)
    while b - a > tol_w:
        if fc >= fd:
            b, d, fd = d, c, fc
            c = b - _INV_PHI * (b - a)
            fc = evaluate(c)
        else:
            a, c, fc = c, d, fd
            d = a + _INV_PHI * (b - a)
            fd = evaluate(d)

    assert best_alloc is not None
    final = execute_on_host(
        cpu, dram, workload.phases, best_alloc.proc_w, best_alloc.mem_w
    )
    return GoldenSectionResult(
        allocation=best_alloc,
        performance=workload.performance(final),
        evaluations=evaluations,
    )