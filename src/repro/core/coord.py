"""COORD: the category-based heuristic power coordination (Algorithm 1).

Given a workload's critical power values and a total budget, COORD picks a
near-optimal ``(P_cpu, P_mem)`` in constant time.  The four budget regimes
of Algorithm 1:

A. ``P_b ≥ L1_cpu + L1_mem`` — both components get their full demand; the
   surplus is reported so a higher-level scheduler can reclaim it.
B. ``P_b ≥ L2_cpu + L1_mem`` — memory gets its full demand first ("warrant
   memory power ... when the total budget is insufficient", Section 3.2's
   scenario-II heuristic), CPU gets the remainder.
C. ``P_b ≥ L2_cpu + L2_mem`` — neither fits; the gap above the floors is
   split *proportionally to each component's dynamic range*.
D. below that — the job is refused: both components would sit in the
   throttled/floor regime where performance and efficiency are
   unacceptable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.allocation import PowerAllocation, bounded_allocation
from repro.core.critical import CpuCriticalPowers
from repro.errors import BudgetTooSmallError
from repro.util.units import watts

__all__ = ["CoordDecision", "CoordStatus", "coord_cpu"]


class CoordStatus(enum.Enum):
    """Outcome flag of a COORD decision."""

    #: Budget allocated, no slack worth reporting.
    SUCCESS = "success"
    #: Budget exceeds the application's maximum demand; surplus reported.
    SURPLUS = "power surplus"
    #: Budget refused — below the productive threshold (Algorithm 1, D).
    REJECTED = "budget too small"


@dataclass(frozen=True)
class CoordDecision:
    """A COORD allocation plus its status and any reclaimable surplus."""

    allocation: PowerAllocation
    status: CoordStatus
    surplus_w: float = 0.0

    @property
    def accepted(self) -> bool:
        return self.status is not CoordStatus.REJECTED


def coord_cpu(
    critical: CpuCriticalPowers,
    budget_w: float,
    *,
    strict: bool = False,
) -> CoordDecision:
    """Algorithm 1: category-based heuristic power coordination for CPUs.

    Parameters
    ----------
    critical:
        The workload's profiled critical power values.
    budget_w:
        Total node power budget ``P_b``.
    strict:
        When true, a too-small budget raises
        :class:`~repro.errors.BudgetTooSmallError` instead of returning a
        ``REJECTED`` decision (batch schedulers prefer the exception).

    Returns
    -------
    CoordDecision
        The chosen ``(P_cpu, P_mem)``; on rejection the allocation pins
        both domains at their hardware floors (the best the node can do if
        forced to run anyway).
    """
    budget_w = watts(budget_w, "budget_w")
    c = critical

    if budget_w >= c.cpu_l1 + c.mem_l1:
        # Case A: adequate power for both; report the reclaimable surplus.
        allocation = bounded_allocation(c.cpu_l1, c.mem_l1, budget_w)
        return CoordDecision(
            allocation,
            CoordStatus.SURPLUS,
            surplus_w=budget_w - allocation.total_w,
        )

    if budget_w >= c.cpu_l2 + c.mem_l1:
        # Case B: memory first — it is the performance-critical component
        # in this regime (scenario II beats scenario III).
        mem = c.mem_l1
        return CoordDecision(
            bounded_allocation(budget_w - mem, mem, budget_w), CoordStatus.SUCCESS
        )

    if budget_w >= c.cpu_l2 + c.mem_l2:
        # Case C: split the budget above the (L2) floors proportionally to
        # each component's dynamic power range.
        d_cpu = c.cpu_l1 - c.cpu_l2
        d_mem = c.mem_l1 - c.mem_l2
        if d_cpu + d_mem <= 0.0:
            percent_cpu = 0.5
        else:
            percent_cpu = d_cpu / (d_cpu + d_mem)
        headroom = budget_w - (c.cpu_l2 + c.mem_l2)
        cpu_w = c.cpu_l2 + percent_cpu * headroom
        return CoordDecision(
            bounded_allocation(cpu_w, budget_w - cpu_w, budget_w), CoordStatus.SUCCESS
        )

    # Case D: refuse — the node would run in the throttled/floor regime.
    if strict:
        raise BudgetTooSmallError(budget_w, c.productive_threshold_w)
    # The rejected fallback deliberately pins the hardware floors, which
    # may overdraw the refused budget — so it stays on the raw
    # (validated, but unbounded) constructor.
    return CoordDecision(
        PowerAllocation(c.cpu_l4, c.mem_l3),
        CoordStatus.REJECTED,
    )
