"""Allocation sweeps and budget curves — the paper's measurement harness.

Sweeps are how the paper produces every figure: fix a total budget, walk
the memory share in fixed steps, run the workload at each allocation, and
record performance, actual powers, and scenario category.  Budget curves
take the per-budget maximum (``perf_max``) across allocations — the upper
performance bound of Figures 1, 2 and 6.

Execution is routed through a :class:`~repro.core.parallel.SweepEngine`
(the process-wide default unless one is passed): allocation points fan out
across its worker pool and memoize into its shared cache, while point
ordering, plateau selection, and scenario classification stay exactly as
the serial oracle computes them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.allocation import PowerAllocation, allocation_grid
from repro.core.parallel import SweepEngine, default_engine
from repro.core.scenario import Scenario, classify_cpu, classify_gpu
from repro.errors import SweepError
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.hardware.gpu import GpuCard
from repro.perfmodel.metrics import ExecutionResult
from repro.util.units import approx_equal
from repro.workloads.base import Workload

__all__ = [
    "AllocationSweep",
    "BudgetCurve",
    "GpuSweep",
    "SweepPoint",
    "cpu_budget_curve",
    "gpu_budget_curve",
    "gpu_freq_axis",
    "gpu_point_allocation",
    "optimal_plateau",
    "sweep_cpu_allocations",
    "sweep_gpu_allocations",
]


def optimal_plateau(points: tuple["SweepPoint", ...]) -> tuple[int, int]:
    """Index span [lo, hi] of the contiguous optimal plateau.

    Only *bound-respecting* points are eligible as optima — an allocation
    whose hardware floor overdraws its cap is not a legitimate choice (it
    is what makes the paper's DGEMM curve flatten at ≈240 W: full CPU
    demand plus the DRAM floor, not less).  If no point respects the
    bound (degenerately small budgets), all points are eligible.

    The plateau is seeded at the first eligible point *attaining* the
    maximum, then extended in both directions over eligible points within
    tolerance of it.  Seeding at exact attainment (not merely
    within-tolerance) matters at grid edges: a near-top-within-tolerance
    run touching the first or last index that does not contain the true
    maximum must not steal the bracket from the run that does.
    """
    perfs = [p.performance for p in points]
    if not np.all(np.isfinite(perfs)):
        raise SweepError(
            "sweep contains non-finite performance values (NaN/inf); "
            "refusing to pick an optimal plateau from corrupt points"
        )
    eligible = [i for i, p in enumerate(points) if p.result.respects_bound]
    if not eligible:
        eligible = list(range(len(points)))
    top = max(perfs[i] for i in eligible)
    tol = 1e-9 * max(top, 1.0)
    ok = set(eligible)
    arg = next(i for i in eligible if perfs[i] >= top)
    lo = arg
    while lo > 0 and lo - 1 in ok and perfs[lo - 1] >= top - tol:
        lo -= 1
    hi = arg
    while hi + 1 < len(perfs) and hi + 1 in ok and perfs[hi + 1] >= top - tol:
        hi += 1
    return lo, hi


def _plateau_middle(points: tuple["SweepPoint", ...]) -> "SweepPoint":
    """Middle point of the optimal plateau (see :func:`optimal_plateau`)."""
    lo, hi = optimal_plateau(points)
    return points[(lo + hi) // 2]


@dataclass(frozen=True)
class SweepPoint:
    """One allocation of a sweep with its simulated outcome."""

    allocation: PowerAllocation
    result: ExecutionResult
    performance: float
    scenario: Scenario

    @property
    def actual_total_w(self) -> float:
        return self.result.total_power_w


@dataclass(frozen=True)
class AllocationSweep:
    """A full sweep of one budget across processor/memory allocations."""

    workload_name: str
    metric_unit: str
    budget_w: float
    points: tuple[SweepPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise SweepError(f"empty sweep for budget {self.budget_w} W")

    # ------------------------------------------------------------------
    # array views (for analysis/plot-like consumers)
    # ------------------------------------------------------------------
    @property
    def mem_alloc_w(self) -> np.ndarray:
        return np.array([p.allocation.mem_w for p in self.points])

    @property
    def proc_alloc_w(self) -> np.ndarray:
        return np.array([p.allocation.proc_w for p in self.points])

    @property
    def performances(self) -> np.ndarray:
        return np.array([p.performance for p in self.points])

    @property
    def proc_actual_w(self) -> np.ndarray:
        return np.array([p.result.proc_power_w for p in self.points])

    @property
    def mem_actual_w(self) -> np.ndarray:
        return np.array([p.result.mem_power_w for p in self.points])

    @property
    def total_actual_w(self) -> np.ndarray:
        return np.array([p.result.total_power_w for p in self.points])

    @property
    def scenarios(self) -> tuple[Scenario, ...]:
        return tuple(p.scenario for p in self.points)

    # ------------------------------------------------------------------
    # extrema
    # ------------------------------------------------------------------
    @property
    def best(self) -> SweepPoint:
        """The sweep oracle: best-performing allocation found.

        Optima often form a plateau (all of scenario I performs
        identically); the middle of the plateau is returned so that, at
        ample budgets, the optimum has slack on both sides — matching the
        paper's "critical component: none" row of Table 1.
        """
        return _plateau_middle(self.points)

    @property
    def worst(self) -> SweepPoint:
        return min(self.points, key=lambda p: p.performance)

    @property
    def perf_max(self) -> float:
        """The upper performance bound for this budget."""
        return self.best.performance

    @property
    def perf_spread(self) -> float:
        """best/worst performance ratio — the cost of poor coordination."""
        worst = self.worst.performance
        return float("inf") if worst <= 0 else self.perf_max / worst


@dataclass(frozen=True)
class BudgetCurve:
    """``perf_max`` as a function of the total budget (Figures 1, 2, 6)."""

    workload_name: str
    metric_unit: str
    budgets_w: np.ndarray
    perf_max: np.ndarray
    optimal_mem_w: np.ndarray

    @property
    def saturation_budget_w(self) -> float:
        """Smallest budget achieving ≈ the curve's maximum performance.

        This is the application's maximum power demand: budgets above it
        are surplus ("power over-budgeting wastes power", Section 3.1).
        """
        top = float(self.perf_max.max())
        at_top = self.budgets_w[self.perf_max >= 0.995 * top]
        return float(at_top.min())


def sweep_cpu_allocations(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    budget_w: float,
    *,
    step_w: float = 4.0,
    mem_min_w: float = 16.0,
    proc_min_w: float = 8.0,
    engine: SweepEngine | None = None,
) -> AllocationSweep:
    """Sweep a host budget across processor/memory splits."""
    engine = engine if engine is not None else default_engine()
    allocations = allocation_grid(
        budget_w, mem_min_w=mem_min_w, proc_min_w=proc_min_w, step_w=step_w
    )
    results = engine.map_host(cpu, dram, workload.phases, allocations)
    points = [
        SweepPoint(
            allocation=alloc,
            result=result,
            performance=workload.performance(result),
            scenario=classify_cpu(result),
        )
        for alloc, result in zip(allocations, results)
    ]
    return AllocationSweep(
        workload_name=workload.name,
        metric_unit=workload.metric_unit,
        budget_w=float(budget_w),
        points=tuple(points),
    )


def cpu_budget_curve(
    cpu: CpuDomain,
    dram: DramDomain,
    workload: Workload,
    budgets_w: np.ndarray | list[float],
    *,
    step_w: float = 4.0,
    engine: SweepEngine | None = None,
) -> BudgetCurve:
    """``perf_max`` over a range of host budgets.

    Repeated budgets hit the engine's cache instead of re-sweeping.  On
    an engine in ``"adaptive"`` mode the curve is produced by the
    structure-aware planner (identical values, a fraction of the grid
    executed — locked differentially by
    ``tests/test_planner_equivalence.py``).
    """
    engine = engine if engine is not None else default_engine()
    if engine.mode == "adaptive":
        from repro.core.planner import adaptive_cpu_budget_curve

        return adaptive_cpu_budget_curve(
            cpu, dram, workload, budgets_w, step_w=step_w, engine=engine
        )
    budgets = np.asarray(budgets_w, dtype=float)
    if budgets.size == 0:
        raise SweepError("budget curve needs at least one budget")
    perf = np.empty_like(budgets)
    opt_mem = np.empty_like(budgets)
    for i, b in enumerate(budgets):
        sweep = sweep_cpu_allocations(
            cpu, dram, workload, float(b), step_w=step_w, engine=engine
        )
        perf[i] = sweep.perf_max
        opt_mem[i] = sweep.best.allocation.mem_w
    return BudgetCurve(
        workload_name=workload.name,
        metric_unit=workload.metric_unit,
        budgets_w=budgets,
        perf_max=perf,
        optimal_mem_w=opt_mem,
    )


@dataclass(frozen=True)
class GpuSweep:
    """A sweep of memory-clock settings under one GPU board cap.

    Each point's "memory power allocation" is the empirical busy-bus
    estimate for its clock — the x-axis the paper uses in Figure 7.
    """

    workload_name: str
    metric_unit: str
    cap_w: float
    mem_freqs_mhz: np.ndarray
    mem_alloc_w: np.ndarray
    performances: np.ndarray
    points: tuple[SweepPoint, ...]

    @property
    def best(self) -> SweepPoint:
        """Best point, mid-plateau on ties (see :class:`AllocationSweep`)."""
        return _plateau_middle(self.points)

    @property
    def worst(self) -> SweepPoint:
        return min(self.points, key=lambda p: p.performance)

    @property
    def perf_max(self) -> float:
        return self.best.performance

    @property
    def perf_spread(self) -> float:
        """best/worst performance ratio across memory-clock settings."""
        worst = self.worst.performance
        return float("inf") if worst <= 0 else self.perf_max / worst

    @property
    def scenarios(self) -> tuple[Scenario, ...]:
        return tuple(p.scenario for p in self.points)


def gpu_freq_axis(card: GpuCard, freq_stride: int = 1) -> np.ndarray:
    """The memory-clock axis a GPU sweep walks (nominal always included)."""
    if freq_stride < 1:
        raise SweepError(f"freq_stride must be >= 1, got {freq_stride}")
    freqs = card.mem.frequencies_mhz[::freq_stride]
    if not approx_equal(float(freqs[-1]), card.mem.nominal_mhz):
        freqs = np.append(freqs, card.mem.nominal_mhz)
    return np.asarray(freqs, dtype=float)


def gpu_point_allocation(card: GpuCard, cap_w: float, freq_mhz: float) -> PowerAllocation:
    """The (proc, mem) split a memory clock implies under a board cap."""
    mem_w = card.mem.allocated_power_w(float(freq_mhz))
    return PowerAllocation(max(0.0, cap_w - mem_w), mem_w)


def sweep_gpu_allocations(
    card: GpuCard,
    workload: Workload,
    cap_w: float,
    *,
    freq_stride: int = 1,
    engine: SweepEngine | None = None,
) -> GpuSweep:
    """Sweep memory clocks under a fixed board cap.

    ``freq_stride`` subsamples the driver's offset grid (the paper's
    experiments use coarse offsets).
    """
    engine = engine if engine is not None else default_engine()
    freqs = gpu_freq_axis(card, freq_stride)
    results = engine.map_gpu(card, workload.phases, cap_w, [float(f) for f in freqs])
    points = []
    for f, result in zip(freqs, results):
        alloc = gpu_point_allocation(card, cap_w, float(f))
        points.append(
            SweepPoint(
                allocation=alloc,
                result=result,
                performance=workload.performance(result),
                scenario=classify_gpu(result),
            )
        )
    return GpuSweep(
        workload_name=workload.name,
        metric_unit=workload.metric_unit,
        cap_w=float(cap_w),
        mem_freqs_mhz=np.asarray(freqs, dtype=float),
        mem_alloc_w=np.array([p.allocation.mem_w for p in points]),
        performances=np.array([p.performance for p in points]),
        points=tuple(points),
    )


def gpu_budget_curve(
    card: GpuCard,
    workload: Workload,
    caps_w: np.ndarray | list[float],
    *,
    freq_stride: int = 1,
    engine: SweepEngine | None = None,
) -> BudgetCurve:
    """``perf_max`` over a range of GPU board caps (Figure 6).

    On an engine in ``"adaptive"`` mode the curve is produced by the
    structure-aware planner (identical values, fewer points executed).
    """
    engine = engine if engine is not None else default_engine()
    if engine.mode == "adaptive":
        from repro.core.planner import adaptive_gpu_budget_curve

        return adaptive_gpu_budget_curve(
            card, workload, caps_w, freq_stride=freq_stride, engine=engine
        )
    caps = np.asarray(caps_w, dtype=float)
    if caps.size == 0:
        raise SweepError("budget curve needs at least one cap")
    perf = np.empty_like(caps)
    opt_mem = np.empty_like(caps)
    for i, cap in enumerate(caps):
        sweep = sweep_gpu_allocations(
            card, workload, float(cap), freq_stride=freq_stride, engine=engine
        )
        perf[i] = sweep.perf_max
        opt_mem[i] = sweep.best.allocation.mem_w
    return BudgetCurve(
        workload_name=workload.name,
        metric_unit=workload.metric_unit,
        budgets_w=caps,
        perf_max=perf,
        optimal_mem_w=opt_mem,
    )
