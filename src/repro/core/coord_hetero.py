"""Heuristic power coordination for big.LITTLE nodes (extension).

Extends the COORD philosophy to a three-way allocation
``(P_big, P_little, P_mem)``.  The heuristic's structure mirrors
Algorithm 1, with one heterogeneous twist — *efficiency-ordered compute
filling*:

1. memory first, up to the workload's DRAM demand (memory remains the
   performance-critical component);
2. the **little** cluster next, up to its full demand — little cores
   deliver more operations per watt, so each watt placed there buys more
   throughput than on the big cluster;
3. the **big** cluster last, only with what remains — and only if the
   remainder clears its gate threshold plus a margin where waking the big
   cores actually helps (below that, the watts do more good as little/DRAM
   headroom).

A small sweep utility (:func:`sweep_biglittle`) provides the oracle for
evaluating the heuristic's accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import BudgetTooSmallError, SweepError
from repro.hardware.biglittle import BigLittleNode
from repro.perfmodel.executor import _effective_activity
from repro.perfmodel.hetero import execute_on_biglittle
from repro.util.units import watts
from repro.workloads.base import Workload

__all__ = [
    "HeteroAllocation",
    "HeteroSweepPoint",
    "coord_biglittle",
    "profile_biglittle",
    "sweep_biglittle",
]


@dataclass(frozen=True)
class HeteroAllocation:
    """A three-way allocation on a heterogeneous node."""

    big_w: float
    little_w: float
    mem_w: float

    def __post_init__(self) -> None:
        watts(self.big_w, "big_w")
        watts(self.little_w, "little_w")
        watts(self.mem_w, "mem_w")

    @property
    def total_w(self) -> float:
        return self.big_w + self.little_w + self.mem_w


@dataclass(frozen=True)
class HeteroCriticalPowers:
    """Profiled demands for the three domains."""

    big_l1: float
    little_l1: float
    mem_l1: float
    mem_floor: float


def profile_biglittle(node: BigLittleNode, workload: Workload) -> HeteroCriticalPowers:
    """One uncapped run → per-domain maximum demands."""
    big_max = node.big.domain.max_power_w + 1.0
    little_max = node.little.domain.max_power_w + 1.0
    mem_max = node.dram.max_power_w + 1.0
    result = execute_on_biglittle(node, workload.phases, big_max, little_max, mem_max)
    # Per-cluster demand: recompute from the run's effective activity.
    u = result.utilization
    a_eff = max(
        _effective_activity(phase, u) for phase in workload.phases
    )
    big_l1 = node.big.domain.pstate_power_w(node.big.domain.pstates.f_nom_ghz, a_eff)
    little_l1 = node.little.domain.pstate_power_w(
        node.little.domain.pstates.f_nom_ghz, a_eff
    )
    mem_l1 = max(p.mem_power_w for p in result.phases)
    return HeteroCriticalPowers(
        big_l1=big_l1,
        little_l1=little_l1,
        mem_l1=mem_l1,
        mem_floor=node.dram.background_w,
    )


def _fill(budget_w: float, *wants: float) -> list[float]:
    """Greedy fill: grant each demand in order until the budget runs out."""
    grants = []
    remaining = budget_w
    for want in wants:
        grant = min(want, max(0.0, remaining))
        grants.append(grant)
        remaining -= grant
    return grants


def coord_biglittle(
    node: BigLittleNode,
    critical: HeteroCriticalPowers,
    budget_w: float,
    *,
    workload: Workload | None = None,
    strict: bool = False,
) -> HeteroAllocation:
    """Heuristic allocation for a heterogeneous node: candidate probing.

    Homogeneous COORD picks its case from critical values alone; with a
    gateable third domain the wake-the-big-cores decision is a genuine
    crossover that critical values cannot settle, so the heuristic builds
    a fixed candidate set (≤ 4 configurations, each an efficiency-ordered
    greedy fill) and — when ``workload`` is supplied — probes each with
    one short run, picking the winner.  Without a workload the candidates
    are ranked by a static preference (little-first below the big gate,
    big-first above), which is cheaper but weaker at the crossover.

    Raises :class:`~repro.errors.BudgetTooSmallError` (``strict``) or
    returns the cheapest running configuration when the budget cannot
    power the little cluster and the DRAM floor.
    """
    budget_w = watts(budget_w, "budget_w")
    threshold = node.min_productive_power_w
    if budget_w < threshold:
        if strict:
            raise BudgetTooSmallError(budget_w, threshold)
        return HeteroAllocation(0.0, node.little.gate_threshold_w, node.dram.background_w)

    mem_floor = max(min(node.dram.floor_power_w, critical.mem_l1), critical.mem_floor)
    gate = node.big.gate_threshold_w
    candidates: list[HeteroAllocation] = []

    # (a) little-only: floor memory, little, then memory demand.
    m0, l0, m_extra = _fill(
        budget_w, mem_floor, critical.little_l1, max(0.0, critical.mem_l1 - mem_floor)
    )
    candidates.append(HeteroAllocation(0.0, l0, m0 + m_extra))

    # (a2) little-only, little saturated: with the big cluster gated the
    # little cores carry all the work, so their demand exceeds the shared-
    # run profile; offer the cluster maximum with balanced leftovers.
    m0b, l0b, m0b_extra = _fill(
        budget_w,
        critical.mem_floor,
        node.little.domain.max_power_w,
        max(0.0, critical.mem_l1 - critical.mem_floor),
    )
    candidates.append(HeteroAllocation(0.0, l0b, m0b + m0b_extra))

    # (b) wake big with floor memory: floor mem, little, big.
    m1, l1, b1 = _fill(budget_w, mem_floor, critical.little_l1, critical.big_l1)
    if b1 >= gate:
        candidates.append(HeteroAllocation(b1, l1, m1))

    # (c) wake big with full memory: mem demand, little, big.
    m2, l2, b2 = _fill(
        budget_w, max(mem_floor, critical.mem_l1), critical.little_l1, critical.big_l1
    )
    if b2 >= gate:
        candidates.append(HeteroAllocation(b2, l2, m2))

    # (d) big-only: gate the little cluster, balance big against memory.
    m3, b3 = _fill(budget_w, max(mem_floor, critical.mem_l1), critical.big_l1)
    if b3 >= gate:
        candidates.append(HeteroAllocation(b3, 0.0, m3))

    # (e) big-only with floor memory: the aggressive wake at the crossover.
    m4, b4 = _fill(budget_w, mem_floor, critical.big_l1)
    if b4 >= gate:
        candidates.append(HeteroAllocation(b4, 0.0, m4))

    # (e2) big-only with mid-range memory: the crossover's balanced form.
    mem_mid = 0.5 * (mem_floor + max(mem_floor, critical.mem_l1))
    m4b, b4b = _fill(budget_w, mem_mid, critical.big_l1)
    if b4b >= gate:
        candidates.append(HeteroAllocation(b4b, 0.0, m4b))

    # (f) balanced wake: little + half the remaining watts each to the big
    # cluster and to memory headroom.
    m5, l5 = _fill(budget_w, mem_floor, critical.little_l1)
    rest = budget_w - m5 - l5
    if rest / 2.0 >= gate:
        extra_mem = min(rest / 2.0, max(0.0, critical.mem_l1 - m5))
        candidates.append(
            HeteroAllocation(rest - extra_mem, l5, m5 + extra_mem)
        )

    # Discard configurations that gate both clusters (tiny budgets can
    # push candidate (a)'s little share under its gate after the memory
    # floor is served), and guarantee at least one valid configuration:
    # little at its gate, memory with the rest.
    candidates = [
        c for c in candidates
        if c.big_w >= gate or c.little_w >= node.little.gate_threshold_w
    ]
    little_min = node.little.gate_threshold_w
    candidates.append(
        HeteroAllocation(0.0, little_min, max(0.0, budget_w - little_min))
    )
    # (a3) starved balance: memory background plus an even split of the
    # rest between the little cluster and memory headroom — the right
    # shape when the budget barely clears the productive threshold.
    rest = max(0.0, budget_w - critical.mem_floor)
    candidates.append(
        HeteroAllocation(
            0.0,
            max(little_min, min(node.little.domain.max_power_w, rest / 2.0)),
            budget_w - max(little_min, min(node.little.domain.max_power_w, rest / 2.0)),
        )
    )

    if workload is not None:
        def probe(alloc: HeteroAllocation) -> tuple[bool, float]:
            result = execute_on_biglittle(
                node, workload.phases, alloc.big_w, alloc.little_w, alloc.mem_w
            )
            # Bound-respecting candidates strictly outrank violating ones.
            return (result.respects_bound, workload.performance(result))

        return max(candidates, key=probe)

    # Static preference: below the big gate only (a) exists anyway; above
    # it prefer waking big with full memory, then floor memory, then (a).
    for alloc in (candidates[2:3] or candidates[1:2]) + candidates[:1]:
        return alloc
    raise AssertionError("unreachable")  # pragma: no cover


@dataclass(frozen=True)
class HeteroSweepPoint:
    """One point of the 2-D heterogeneous sweep."""

    allocation: HeteroAllocation
    performance: float


def sweep_biglittle(
    node: BigLittleNode,
    workload: Workload,
    budget_w: float,
    *,
    step_w: float = 0.5,
) -> list[HeteroSweepPoint]:
    """Exhaustive oracle over (big, little) splits; memory gets the rest.

    Gated configurations (caps below thresholds) are included — they are
    legitimate choices on this hardware — but infeasible all-gated points
    are skipped.
    """
    budget_w = watts(budget_w, "budget_w")
    if step_w <= 0:
        raise SweepError(f"step_w must be > 0, got {step_w}")
    points: list[HeteroSweepPoint] = []
    mem_floor = node.dram.background_w
    for big in np.arange(0.0, budget_w - mem_floor + 1e-9, step_w):
        for little in np.arange(0.0, budget_w - mem_floor - big + 1e-9, step_w):
            mem = budget_w - big - little
            if mem < mem_floor:
                continue
            if node.big.is_gated(big) and node.little.is_gated(little):
                continue
            result = execute_on_biglittle(node, workload.phases, big, little, mem)
            if not result.respects_bound:
                continue
            points.append(
                HeteroSweepPoint(
                    allocation=HeteroAllocation(float(big), float(little), float(mem)),
                    performance=workload.performance(result),
                )
            )
    if not points:
        raise SweepError(f"no feasible heterogeneous allocation at {budget_w} W")
    return points
