"""Hybrid CPU+GPU application coordination (extension).

Section 2.2 explicitly defers "hybrid computing" to future work.  This
module takes the natural first step for the dominant hybrid pattern — GPU
offload: the application alternates between host steps (setup, halo
exchange, reductions) and device steps (kernels), one side mostly idle
while the other works.

Under a *node* power bound the coordinator can therefore shift nearly the
whole budget back and forth per step:

* during a host step the GPU sits at its idle floor, so the host domains
  get ``P_b − P_gpu_idle``, split by host COORD;
* during a device step the host idles, so the card's cap is
  ``P_b − P_host_idle`` (clamped to the driver range) with the memory
  clock steered by GPU COORD.

The alternative a budget-oblivious deployment uses — statically splitting
the bound between host and card — wastes the idle side's share; the
comparison utilities quantify that cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.coord import CoordDecision, coord_cpu
from repro.core.coord_gpu import apply_gpu_decision, coord_gpu
from repro.core.critical import CpuCriticalPowers, GpuCriticalPowers
from repro.core.profiler import profile_cpu_workload, profile_gpu_workload
from repro.errors import ConfigurationError, InfeasibleBudgetError
from repro.hardware.node import ComputeNode
from repro.hardware.nvml import NvmlDevice
from repro.perfmodel.executor import execute_on_gpu, execute_on_host
from repro.perfmodel.phase import Phase
from repro.util.units import clamp, watts
from repro.workloads.base import MetricKind, Workload, WorkloadClass

__all__ = [
    "HybridResult",
    "HybridStep",
    "HybridWorkload",
    "coord_hybrid",
    "execute_hybrid",
    "offload_workload",
]


@dataclass(frozen=True)
class HybridStep:
    """One step of a hybrid application: a phase bound to a device."""

    device: str
    phase: Phase

    def __post_init__(self) -> None:
        if self.device not in ("cpu", "gpu"):
            raise ConfigurationError(
                f"step device must be 'cpu' or 'gpu', got {self.device!r}"
            )


@dataclass(frozen=True)
class HybridWorkload:
    """A GPU-offload application: an ordered sequence of device-tagged steps."""

    name: str
    steps: tuple[HybridStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ConfigurationError(f"hybrid workload {self.name!r} has no steps")
        if not any(s.device == "gpu" for s in self.steps):
            raise ConfigurationError(
                f"hybrid workload {self.name!r} never uses the GPU; "
                "model it as a plain CPU workload instead"
            )

    def host_view(self) -> Workload:
        """The host steps as a profiling-ready CPU workload."""
        phases = tuple(s.phase for s in self.steps if s.device == "cpu")
        if not phases:
            raise ConfigurationError(f"{self.name!r} has no host steps")
        return Workload(
            name=f"{self.name}-host", suite="hybrid", description="host steps",
            device="cpu", workload_class=WorkloadClass.MIXED, phases=phases,
            metric=MetricKind.GFLOPS,
        )

    def gpu_view(self) -> Workload:
        """The device steps as a profiling-ready GPU workload."""
        phases = tuple(s.phase for s in self.steps if s.device == "gpu")
        return Workload(
            name=f"{self.name}-gpu", suite="hybrid", description="device steps",
            device="gpu", workload_class=WorkloadClass.MIXED, phases=phases,
            metric=MetricKind.GFLOPS,
        )

    @property
    def total_flops(self) -> float:
        return sum(s.phase.flops for s in self.steps)


@dataclass(frozen=True)
class HybridResult:
    """Outcome of a hybrid run under a node bound."""

    elapsed_s: float
    host_time_s: float
    gpu_time_s: float
    energy_j: float
    peak_node_power_w: float
    performance_gflops: float


@dataclass(frozen=True)
class HybridDecision:
    """The per-step-type control settings the hybrid coordinator chose."""

    host: CoordDecision
    gpu: CoordDecision
    gpu_cap_w: float
    gpu_mem_freq_mhz: float


def _gpu_idle_w(node: ComputeNode) -> float:
    card = node.gpu(0)
    return card.floor_power_w


def _host_idle_w(node: ComputeNode) -> float:
    return node.cpu.idle_power_w + node.dram.background_w


def coord_hybrid(
    node: ComputeNode,
    workload: HybridWorkload,
    budget_w: float,
    *,
    host_critical: CpuCriticalPowers | None = None,
    gpu_critical: GpuCriticalPowers | None = None,
) -> HybridDecision:
    """Coordinate a node budget across the steps of a hybrid application.

    Profiles each side (unless profiles are supplied) and produces the
    per-step-type settings: host caps for CPU steps, board cap + memory
    clock for GPU steps.  Raises
    :class:`~repro.errors.InfeasibleBudgetError` when the budget cannot
    cover even the idle side plus the active side's minimum.
    """
    budget_w = watts(budget_w, "budget_w")
    if not node.gpus:
        raise ConfigurationError(f"node {node.name!r} carries no GPU")
    card = node.gpu(0)
    gpu_idle = _gpu_idle_w(node)
    host_idle = _host_idle_w(node)

    host_budget = budget_w - gpu_idle
    gpu_budget = budget_w - host_idle
    if host_budget <= 0 or gpu_budget < card.min_cap_w:
        raise InfeasibleBudgetError(
            f"node budget {budget_w:.0f} W cannot host the hybrid workload: "
            f"host share {host_budget:.0f} W, gpu share {gpu_budget:.0f} W "
            f"(driver minimum {card.min_cap_w:.0f} W)"
        )

    if host_critical is None:
        host_critical = profile_cpu_workload(node.cpu, node.dram, workload.host_view())
    if gpu_critical is None:
        gpu_critical = profile_gpu_workload(card, workload.gpu_view())

    host_decision = coord_cpu(host_critical, host_budget)
    gpu_cap = clamp(gpu_budget, card.min_cap_w, card.max_cap_w)
    gpu_decision = coord_gpu(gpu_critical, gpu_cap, hardware_max_w=card.max_cap_w)
    device = NvmlDevice(card)
    mem_op = apply_gpu_decision(device, gpu_decision, gpu_cap)
    return HybridDecision(
        host=host_decision,
        gpu=gpu_decision,
        gpu_cap_w=gpu_cap,
        gpu_mem_freq_mhz=mem_op.freq_mhz,
    )


def execute_hybrid(
    node: ComputeNode,
    workload: HybridWorkload,
    decision: HybridDecision,
) -> HybridResult:
    """Run a hybrid workload under a coordinator's settings.

    Steps serialize (the offload model): the idle side draws its floor
    while the other works, and the reported peak node power is the worst
    concurrent draw over all steps.
    """
    card = node.gpu(0)
    gpu_idle = _gpu_idle_w(node)
    host_idle = _host_idle_w(node)
    host_alloc = decision.host.allocation

    elapsed = host_time = gpu_time = energy = 0.0
    peak = 0.0
    for step in workload.steps:
        if step.device == "cpu":
            r = execute_on_host(
                node.cpu, node.dram, (step.phase,),
                host_alloc.proc_w, host_alloc.mem_w,
            )
            node_power = r.total_power_w + gpu_idle
            host_time += r.elapsed_s
        else:
            r = execute_on_gpu(
                card, (step.phase,), decision.gpu_cap_w, decision.gpu_mem_freq_mhz
            )
            node_power = r.total_power_w + host_idle
            gpu_time += r.elapsed_s
        elapsed += r.elapsed_s
        energy += node_power * r.elapsed_s
        peak = max(peak, node_power)
    return HybridResult(
        elapsed_s=elapsed,
        host_time_s=host_time,
        gpu_time_s=gpu_time,
        energy_j=energy,
        peak_node_power_w=peak,
        performance_gflops=workload.total_flops / elapsed / 1e9,
    )


def offload_workload(name: str = "offload-cg") -> HybridWorkload:
    """A reference GPU-offload application.

    Host assembly → device solver kernels → host reduction: the classic
    accelerated-solver shape (MiniFE-like device work bracketed by mixed
    host work).
    """
    assemble = Phase(
        name="assemble", flops=6.0e10, bytes_moved=1.0e11,
        activity=0.6, stall_activity=0.4,
        compute_efficiency=0.06, memory_efficiency=0.6,
    )
    solve = Phase(
        name="device-solve", flops=6.6e11, bytes_moved=2.64e12,
        activity=0.38, stall_activity=0.30,
        compute_efficiency=0.0053, memory_efficiency=0.55,
    )
    reduce = Phase(
        name="reduce", flops=2.0e10, bytes_moved=5.0e10,
        activity=0.5, stall_activity=0.4,
        compute_efficiency=0.04, memory_efficiency=0.7,
    )
    return HybridWorkload(
        name=name,
        steps=(
            HybridStep("cpu", assemble),
            HybridStep("gpu", solve),
            HybridStep("cpu", reduce),
        ),
    )
