"""Parallel sweep execution with bounded, thread-safe memoization.

Every figure and experiment walks the allocation grid through
:func:`~repro.perfmodel.executor.execute_on_host` /
:func:`~repro.perfmodel.executor.execute_on_gpu`, one point at a time.
The points are independent — the model is a pure function of
``(platform, phases, caps)`` — so three orthogonal speedups apply:

* **vectorization** (the default) — cache misses of a sweep are resolved
  in one NumPy pass by the batch kernel
  (:mod:`repro.perfmodel.batch`), which is bit-for-bit equivalent to the
  scalar oracle and an order of magnitude faster on a single core;
  disable with ``REPRO_BATCH=0`` or ``SweepEngine(batch=False)``.  The
  adaptive planner gets the same treatment through
  :meth:`SweepEngine.host_subgrid` / :meth:`SweepEngine.gpu_subgrid`: a
  :class:`SubgridExecutor` prepares the axis (keys + gather kernel) once
  and resolves each planner stage's point subset in one gathered pass,
  still populating the memo/disk caches point-by-point;
* **fan-out** — with the batch path disabled, a sweep's points dispatch
  onto a ``concurrent.futures`` pool (thread- or process-backed), sized
  from ``REPRO_JOBS`` or the host core count.  Grids below
  ``serial_crossover`` points stay serial: the model is GIL-bound, so
  thread fan-out on small grids costs more than it saves (PR 1 measured
  0.85x cold at fig9 scale).  With the batch path *enabled*, a process
  backend past the crossover splits the missing points into one
  contiguous chunk per worker and runs the vectorized kernel inside each
  worker, so cold fan-out beats serial instead of losing to pickling;
* **memoization** — ``(platform, phases, allocation) → ExecutionResult``
  is cached in a bounded LRU shared by sweeps, budget curves, COORD
  probing, and the cluster scheduler, so the repeated budgets in budget
  curves and the scheduler's per-application predictions never re-execute
  an identical point.  The batch path fills the same cache point-by-point
  from its array results, so warm-cache behaviour and key reuse are
  unchanged.

Determinism is unconditional: results are assembled by *input* order and
cache key, never by completion order, so the parallel engine is
bit-for-bit equivalent to the serial oracle
(``tests/test_parallel_equivalence.py`` locks this down differentially).

Cache keys are *content fingerprints*, not object identities: a workload
whose characterization changes (e.g. via :meth:`Workload.scaled`) can
never be served a stale result recorded for its previous phases.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import threading
import weakref
from collections import OrderedDict
from collections.abc import Callable, Hashable, Sequence
from contextlib import contextmanager
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from pathlib import Path

from repro.core.allocation import PowerAllocation
from repro.core.diskcache import DiskCache
from repro.errors import (
    SweepError,
    WorkerCrashError,
    WorkerRetryExhaustedError,
    WorkerTimeoutError,
)
from repro.faults.injector import FaultInjector
from repro.faults.injector import active as _faults_active
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.report import DegradationReport
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.hardware.gpu import GpuCard
from repro.perfmodel.batch import (
    GpuBatchKernel,
    HostBatchKernel,
    batch_execute_indices,
    execute_gpu_batch,
    execute_host_batch,
)
from repro.perfmodel.executor import execute_on_gpu, execute_on_host
from repro.perfmodel.metrics import ExecutionResult
from repro.perfmodel.phase import Phase

__all__ = [
    "BATCH_ENV_VAR",
    "CACHE_DIR_ENV_VAR",
    "CacheStats",
    "JOBS_ENV_VAR",
    "MemoCache",
    "PlannerState",
    "PlannerStats",
    "SERIAL_CROSSOVER",
    "SWEEP_MODE_ENV_VAR",
    "SubgridExecutor",
    "SweepEngine",
    "default_engine",
    "fingerprint",
    "freeze",
    "resolve_batch",
    "resolve_cache_dir",
    "resolve_jobs",
    "resolve_mode",
    "set_default_engine",
    "use_engine",
]

#: Environment override for the pool size (``1`` forces the serial path).
JOBS_ENV_VAR = "REPRO_JOBS"

#: Environment escape hatch for the vectorized kernel (``0``/``false``/
#: ``no``/``off`` force every point through the scalar executor).
BATCH_ENV_VAR = "REPRO_BATCH"

#: Environment override for the sweep planning mode (``full`` executes
#: every grid point; ``adaptive`` routes budget curves and best-point
#: queries through :mod:`repro.core.planner`).
SWEEP_MODE_ENV_VAR = "REPRO_SWEEP"

#: Environment opt-in for the persistent cross-process result cache
#: (:mod:`repro.core.diskcache`); unset or empty disables the disk tier.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Recognized sweep planning modes.
SWEEP_MODES = ("full", "adaptive")

#: Auto-sizing never exceeds this many workers — sweeps have a few dozen
#: points, so wider pools only add dispatch overhead.
_MAX_AUTO_JOBS = 8

#: Grids smaller than this stay serial even when fan-out is enabled.  PR 1's
#: bench report showed cold thread fan-out at 0.85x on a 1892-point pass —
#: the GIL-bound model gains nothing from threads until the per-pool fixed
#: cost amortizes, which figure-scale sweeps (tens of points) never reach.
SERIAL_CROSSOVER = 256

#: Default bound on the shared execution cache (entries, LRU-evicted).
DEFAULT_CACHE_SIZE = 4096


# ---------------------------------------------------------------------------
# content fingerprints
# ---------------------------------------------------------------------------

def freeze(obj: object) -> Hashable:
    """Recursively convert ``obj`` into a hashable content snapshot.

    Handles the model's vocabulary: frozen dataclasses (phases, workloads,
    operating points), plain domain objects (``CpuDomain``, ``GpuCard`` —
    snapshotted via their instance dict), numpy arrays, enums, and the
    usual scalars/containers.  Two objects freeze equal iff their visible
    state is equal, regardless of identity.
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    if isinstance(obj, np.ndarray):
        return ("ndarray", obj.dtype.str, obj.shape, obj.tobytes())
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, enum.Enum):
        return (type(obj).__name__, obj.value)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (type(obj).__name__,) + tuple(
            (f.name, freeze(getattr(obj, f.name))) for f in dataclasses.fields(obj)
        )
    if isinstance(obj, (tuple, list)):
        return tuple(freeze(x) for x in obj)
    if isinstance(obj, (set, frozenset)):
        return ("set",) + tuple(sorted(map(repr, obj)))
    if isinstance(obj, dict):
        return tuple(sorted((str(k), freeze(v)) for k, v in obj.items()))
    if hasattr(obj, "__dict__"):
        return (type(obj).__name__,) + tuple(
            (k, freeze(v)) for k, v in sorted(vars(obj).items())
        )
    raise TypeError(f"cannot fingerprint {type(obj).__name__!r} for the sweep cache")


#: Fingerprint memo for immutable model objects (platforms, workloads).
#: Weak keys: the memo never keeps a platform alive.
_FP_MEMO: "weakref.WeakKeyDictionary[object, str]" = weakref.WeakKeyDictionary()
_FP_LOCK = threading.Lock()

#: Tuples (phase lists, composite keys) cannot be weak-referenced, so
#: they get a small value-keyed memo instead — correct because equal
#: tuples freeze equal, and bounded so repeated one-off keys cannot grow
#: it without limit.  Every sweep re-fingerprints its phase tuple on
#: each engine call; without this memo that freeze dominates warm-cache
#: passes where the model itself never runs.
_FP_TUPLE_MEMO: dict[tuple, str] = {}
_FP_TUPLE_MEMO_MAX = 512


def fingerprint(obj: object) -> str:
    """Stable hex digest of an object's frozen content.

    Compact enough to embed in typed cache keys (scheduler predictions,
    sweep points) while still changing whenever the underlying
    characterization changes.
    """
    if isinstance(obj, tuple):
        try:
            with _FP_LOCK:
                cached = _FP_TUPLE_MEMO.get(obj)
            if cached is not None:
                return cached
            hashable = True
        except TypeError:  # tuple holding unhashables → compute directly
            hashable = False
        digest = hashlib.sha1(repr(freeze(obj)).encode()).hexdigest()
        if hashable:
            with _FP_LOCK:
                if len(_FP_TUPLE_MEMO) >= _FP_TUPLE_MEMO_MAX:
                    _FP_TUPLE_MEMO.clear()
                _FP_TUPLE_MEMO[obj] = digest
        return digest
    try:
        with _FP_LOCK:
            cached = _FP_MEMO.get(obj)
        if cached is not None:
            return cached
        memoizable = True
    except TypeError:  # unhashable/unweakrefable → compute directly
        memoizable = False
    digest = hashlib.sha1(repr(freeze(obj)).encode()).hexdigest()
    if memoizable:
        try:
            with _FP_LOCK:
                _FP_MEMO[obj] = digest
        except TypeError:
            pass
    return digest


# ---------------------------------------------------------------------------
# bounded thread-safe memoization
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of a :class:`MemoCache`.

    ``hits`` counts every lookup served without executing the model;
    ``disk_hits`` is the subset of those served by the persistent disk
    tier rather than the in-memory LRU, so ``hits - disk_hits``
    (:attr:`memo_hits`) is the pure memory-tier hit count.  The two
    ratios are disjoint by construction:
    ``hit_ratio + disk_hit_ratio + miss fraction == 1``.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def memo_hits(self) -> int:
        """Lookups served by the in-memory tier alone (hits minus disk)."""
        return self.hits - self.disk_hits

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served by the *memory* tier (0.0 untouched).

        Disk promotions are deliberately excluded — they are reported
        separately in :attr:`disk_hit_ratio` so a disk-warm pass cannot
        masquerade as memo locality.
        """
        return self.memo_hits / self.lookups if self.lookups else 0.0

    @property
    def disk_hit_ratio(self) -> float:
        """Fraction of lookups served by the persistent disk tier."""
        return self.disk_hits / self.lookups if self.lookups else 0.0


class MemoCache:
    """A bounded, thread-safe LRU map from hashable keys to results.

    All mutation happens under one re-entrant lock, so concurrent sweep
    workers (and parallel scheduler callers) never race on dict writes.
    Values are expected to be immutable (frozen dataclasses), which makes
    sharing a cached :class:`ExecutionResult` across callers safe.

    An optional ``backing`` :class:`~repro.core.diskcache.DiskCache`
    turns this into the memory tier of a two-level cache: memory misses
    fall through to disk (counted in ``stats.disk_hits`` and promoted
    back into memory), and stores write through so other processes can
    go warm.  Evicting an entry from the bounded memory tier never loses
    it — the disk tier is append-only.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_CACHE_SIZE,
        backing: DiskCache | None = None,
    ) -> None:
        if maxsize < 1:
            raise SweepError(f"cache maxsize must be >= 1, got {maxsize}")
        self._maxsize = maxsize
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.RLock()
        self._backing = backing
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._disk_hits = 0

    @property
    def backing(self) -> DiskCache | None:
        """The disk tier behind this cache, if any."""
        return self._backing

    def lookup(self, key: Hashable) -> tuple[bool, object | None]:
        """``(hit, value)`` for ``key``; counts the lookup either way.

        A miss in memory consults the disk tier (when configured); a disk
        hit counts as a hit *and* a ``disk_hit``, and the value is
        promoted into the memory tier.
        """
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._hits += 1
                return True, self._data[key]
        if self._backing is not None:
            found, value = self._backing.lookup(key)
            if found:
                with self._lock:
                    self._hits += 1
                    self._disk_hits += 1
                self._store_memory(key, value)
                return True, value
        with self._lock:
            self._misses += 1
            return False, None

    def _store_memory(self, key: Hashable, value: object) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def store(self, key: Hashable, value: object) -> None:
        """Insert ``key``, evicting least-recently-used entries past the bound.

        With a disk tier, the value also writes through (buffered; the
        :class:`DiskCache` deduplicates digests it already holds).
        """
        self._store_memory(key, value)
        if self._backing is not None and isinstance(value, ExecutionResult):
            self._backing.store(key, value)

    def get_or_compute(self, key: Hashable, compute: Callable[[], object]) -> object:
        """Cached value for ``key``, computing and storing it on a miss.

        ``compute`` runs outside the lock: a concurrent miss on the same
        key may compute twice, but the model is deterministic so both
        computations store the same value — correctness is unaffected.
        """
        hit, value = self.lookup(key)
        if hit:
            return value
        value = compute()
        self.store(key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                maxsize=self._maxsize,
                disk_hits=self._disk_hits,
            )


# ---------------------------------------------------------------------------
# pool workers (top level so the process backend can pickle them)
# ---------------------------------------------------------------------------

_HostTaskArgs = "tuple[CpuDomain, DramDomain, tuple[Phase, ...], float, float]"
_GpuTaskArgs = "tuple[GpuCard, tuple[Phase, ...], float, float | None]"


def _host_task(
    args: tuple[CpuDomain, DramDomain, tuple[Phase, ...], float, float],
) -> ExecutionResult:
    cpu, dram, phases, proc_w, mem_w = args
    return execute_on_host(cpu, dram, phases, proc_w, mem_w)


def _gpu_task(
    args: tuple[GpuCard, tuple[Phase, ...], float, float | None],
) -> ExecutionResult:
    card, phases, cap_w, mem_freq_mhz = args
    return execute_on_gpu(card, phases, cap_w, mem_freq_mhz)


def _host_chunk_task(
    args: tuple[
        CpuDomain, DramDomain, tuple[Phase, ...], list[float], list[float]
    ],
) -> list[ExecutionResult]:
    """One worker's contiguous slice of a host grid, in one kernel pass."""
    return execute_host_batch(*args)


def _gpu_chunk_task(
    args: tuple[GpuCard, tuple[Phase, ...], float, list[float]],
) -> list[ExecutionResult]:
    """One worker's contiguous slice of a GPU clock axis, in one kernel pass."""
    return execute_gpu_batch(*args)


def _chunk_indices(n: int, chunks: int) -> list[list[int]]:
    """Partition ``range(n)`` into at most ``chunks`` contiguous, balanced,
    non-empty runs covering every index exactly once."""
    chunks = max(1, min(int(chunks), int(n)))
    base, extra = divmod(n, chunks)
    out: list[list[int]] = []
    start = 0
    for c in range(chunks):
        size = base + (1 if c < extra else 0)
        out.append(list(range(start, start + size)))
        start += size
    return out


#: ``REPRO_BATCH`` values that disable the vectorized kernel.
_BATCH_OFF = frozenset({"0", "false", "no", "off"})


def resolve_batch(batch: bool | None = None) -> bool:
    """Resolve the batch-kernel switch: explicit > ``REPRO_BATCH`` > on."""
    if batch is not None:
        return bool(batch)
    env = os.environ.get(BATCH_ENV_VAR)
    if env is not None and env.strip():
        return env.strip().lower() not in _BATCH_OFF
    return True


def resolve_mode(mode: str | None = None) -> str:
    """Resolve the sweep mode: explicit > ``REPRO_SWEEP`` > ``"full"``."""
    if mode is None:
        env = os.environ.get(SWEEP_MODE_ENV_VAR)
        mode = env.strip() if env is not None and env.strip() else "full"
    mode = str(mode).strip().lower()
    if mode not in SWEEP_MODES:
        raise SweepError(
            f"sweep mode must be one of {SWEEP_MODES}, got {mode!r} "
            f"(check {SWEEP_MODE_ENV_VAR})"
        )
    return mode


def resolve_cache_dir(cache_dir: str | Path | None = None) -> Path | None:
    """Resolve the disk-cache root: explicit > ``REPRO_CACHE_DIR`` > off."""
    if cache_dir is None:
        env = os.environ.get(CACHE_DIR_ENV_VAR)
        if env is None or not env.strip():
            return None
        cache_dir = env.strip()
    return Path(cache_dir).expanduser()


def resolve_jobs(n_jobs: int | None = None) -> int:
    """Resolve a worker count: explicit > ``REPRO_JOBS`` > host auto-size."""
    if n_jobs is None:
        env = os.environ.get(JOBS_ENV_VAR)
        if env is not None and env.strip():
            try:
                n_jobs = int(env)
            except ValueError:
                raise SweepError(
                    f"{JOBS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        else:
            n_jobs = min(os.cpu_count() or 1, _MAX_AUTO_JOBS)
    n_jobs = int(n_jobs)
    if n_jobs < 1:
        raise SweepError(f"n_jobs must be >= 1, got {n_jobs}")
    return n_jobs


# ---------------------------------------------------------------------------
# planner bookkeeping (counters + warm-start hints, shared across sweeps)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PlannerStats:
    """Aggregate counters of the adaptive planner on one engine."""

    sweeps: int
    fallbacks: int
    warm_starts: int
    native_points: int
    executed_points: int
    reused_points: int = 0

    @property
    def points_saved(self) -> int:
        """Model points the planner did *not* execute vs the full grids."""
        return self.native_points - self.executed_points

    @property
    def savings_ratio(self) -> float:
        """native/executed — the planner's point-reduction multiplier."""
        if self.executed_points == 0:
            return 1.0
        return self.native_points / self.executed_points


class PlannerState:
    """Thread-safe planner bookkeeping attached to a :class:`SweepEngine`.

    Holds the aggregate :class:`PlannerStats` counters and the
    warm-start hint memory: for each ``(platform, phases, grid)``
    fingerprint key, the last optimal axis value found and whether that
    plan completed without falling back.  Budget curves and repeated
    experiment sweeps use the hints to probe near the previous optimum.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._hints: dict[Hashable, tuple[float, bool]] = {}
        self._stash: dict[Hashable, object] = {}
        self._sweeps = 0
        self._fallbacks = 0
        self._warm_starts = 0
        self._native_points = 0
        self._executed_points = 0
        self._reused_points = 0

    def hint(self, key: Hashable) -> tuple[float, bool] | None:
        """``(axis_value, clean)`` remembered for ``key``, if any."""
        with self._lock:
            return self._hints.get(key)

    def remember(self, key: Hashable, axis_value: float, clean: bool) -> None:
        """Record the optimum found for ``key`` (``clean`` = no fallback)."""
        with self._lock:
            self._hints[key] = (float(axis_value), bool(clean))

    def stashed(self, key: Hashable) -> object | None:
        """An opaque value previously stashed for ``key``, if any.

        The planner keeps provably cap-independent phase tuples here
        (saturation reuse) and derived per-platform constants.
        """
        with self._lock:
            return self._stash.get(key)

    def stash(self, key: Hashable, value: object) -> None:
        """Stash an opaque value for ``key``."""
        with self._lock:
            self._stash[key] = value

    def record(
        self, *, native: int, executed: int, fallback: bool, warm: bool,
        reused: int = 0,
    ) -> None:
        """Fold one planned sweep into the aggregate counters."""
        with self._lock:
            self._sweeps += 1
            self._fallbacks += int(fallback)
            self._warm_starts += int(warm)
            self._native_points += int(native)
            self._executed_points += int(executed)
            self._reused_points += int(reused)

    @property
    def stats(self) -> PlannerStats:
        with self._lock:
            return PlannerStats(
                sweeps=self._sweeps,
                fallbacks=self._fallbacks,
                warm_starts=self._warm_starts,
                native_points=self._native_points,
                executed_points=self._executed_points,
                reused_points=self._reused_points,
            )


# ---------------------------------------------------------------------------
# planner sub-grid execution
# ---------------------------------------------------------------------------

class SubgridExecutor:
    """One prepared allocation axis, resolvable subset-by-subset.

    The adaptive planner touches one axis many times in small bites —
    probe strides, certify neighborhoods, per-iteration walk frontiers.
    Routing each bite through :meth:`SweepEngine.map_host` would rebuild
    keys, re-fingerprint the platform, and re-derive the kernel's
    candidate tables on every call.  This executor does all of that once
    at construction (keys eagerly, the gather kernel lazily on the first
    batched miss) and then serves :meth:`run` calls with nothing but
    cache lookups and gathered kernel rows.

    Cache semantics are identical to the full-grid path: every requested
    point is looked up once in the engine's :class:`MemoCache` (reading
    through to disk when configured) and every miss is stored back
    point-by-point, so hit/miss counters, disk promotion, and warm-cache
    behaviour cannot drift between planned and full sweeps.  With the
    batch path disabled — or a fault plan armed, which the vectorized
    kernel cannot honor — misses fall back to the engine's scalar
    :meth:`~SweepEngine._run_batch` path, faults and all.
    """

    def __init__(
        self,
        engine: "SweepEngine",
        keys: list[tuple],
        task: Callable[[tuple], ExecutionResult],
        args_for: Callable[[int], tuple],
        kernel_factory: Callable[[], "HostBatchKernel | GpuBatchKernel"],
    ) -> None:
        self._engine = engine
        self._keys = keys
        self._task = task
        self._args_for = args_for
        self._kernel_factory = kernel_factory
        self._kernel: HostBatchKernel | GpuBatchKernel | None = None

    def __len__(self) -> int:
        return len(self._keys)

    def run(self, indices: Sequence[int]) -> list[ExecutionResult]:
        """Results for axis rows ``indices``, in input order.

        Bit-for-bit what ``map_host``/``map_gpu`` would return for the
        same rows: the gather kernel is row-elementwise, and the scalar
        fallback runs the exact same per-point executor.
        """
        engine = self._engine
        resolved: dict[tuple, ExecutionResult | None] = {}
        missing: list[tuple[tuple, tuple]] = []
        missing_rows: list[int] = []
        for i in indices:
            key = self._keys[i]
            if key in resolved:
                continue  # duplicate within the request: one lookup, one run
            hit, value = engine.cache.lookup(key)
            if hit:
                resolved[key] = value  # type: ignore[assignment]
            else:
                resolved[key] = None
                missing.append((key, self._args_for(i)))
                missing_rows.append(i)
        if missing:
            if engine.batch and engine._worker_injector() is None:
                if self._kernel is None:
                    self._kernel = self._kernel_factory()
                results = batch_execute_indices(self._kernel, missing_rows)
                for (key, _), result in zip(missing, results):
                    engine.cache.store(key, result)
                    resolved[key] = result
            else:
                for key, result in engine._run_batch(self._task, missing).items():
                    engine.cache.store(key, result)
                    resolved[key] = result
        return [resolved[self._keys[i]] for i in indices]  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------

class SweepEngine:
    """Memoized, optionally parallel executor of sweep points.

    Parameters
    ----------
    n_jobs:
        Worker count; ``None`` resolves via :func:`resolve_jobs`
        (``REPRO_JOBS`` env override, else host core count).  ``1``
        selects a serial fast path with no pool at all.
    backend:
        ``"thread"`` (default — the model releases no GIL but threads
        avoid pickling and share the cache directly) or ``"process"``
        (true parallelism; platforms/phases are pickled per task and the
        cache stays in the parent, which checks it before dispatch).
    cache_size:
        LRU bound of the engine's :class:`MemoCache`; ignored if an
        explicit ``cache`` instance is shared in.
    batch:
        ``True`` resolves sweep cache misses through the vectorized kernel
        (:mod:`repro.perfmodel.batch`); ``False`` forces the scalar
        executor (with pool fan-out when ``n_jobs > 1``).  ``None``
        (default) resolves via :func:`resolve_batch` (``REPRO_BATCH`` env
        override, else on).
    serial_crossover:
        With the batch path disabled, grids smaller than this many cache
        misses run serially instead of paying pool fan-out; ``None`` takes
        the measured default :data:`SERIAL_CROSSOVER`, ``0`` restores the
        pre-crossover behaviour (fan out any grid of 2+ points).
    mode:
        ``"full"`` executes every grid point (the oracle behaviour);
        ``"adaptive"`` routes budget curves and best-point queries
        through the structure-aware planner (:mod:`repro.core.planner`),
        which returns identical answers from a fraction of the points.
        ``None`` (default) resolves via :func:`resolve_mode`
        (``REPRO_SWEEP`` env override, else ``"full"``).
    cache_dir:
        Opt-in root for the persistent cross-process result cache
        (:mod:`repro.core.diskcache`); the memo cache then reads through
        to disk on misses and writes through on stores.  ``None``
        (default) resolves via :func:`resolve_cache_dir`
        (``REPRO_CACHE_DIR`` env override, else no disk tier).  Mutually
        exclusive with an explicit ``cache`` instance.
    faults:
        An explicit :class:`~repro.faults.plan.FaultPlan` (or a shared
        :class:`~repro.faults.injector.FaultInjector`) scoping fault
        injection to this engine's sweeps; ``None`` (default) consults
        the process-wide injector armed via
        :func:`repro.faults.injector.use_faults` (the CLI arms it from
        ``REPRO_FAULTS``).  With faults armed, sweep tasks run serially
        in-parent under the worker-fault schedule with deterministic
        resubmission; results are bit-identical to the clean run or
        :class:`~repro.errors.WorkerRetryExhaustedError` is raised.
    worker_retry_budget:
        Consecutive failed attempts tolerated per sweep task before
        :class:`~repro.errors.WorkerRetryExhaustedError`; ``None``
        (default) takes the armed plan's ``max_attempts``.
    """

    def __init__(
        self,
        n_jobs: int | None = None,
        *,
        backend: str = "thread",
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache: MemoCache | None = None,
        batch: bool | None = None,
        serial_crossover: int | None = None,
        mode: str | None = None,
        cache_dir: str | Path | None = None,
        faults: "FaultPlan | FaultInjector | None" = None,
        worker_retry_budget: int | None = None,
    ) -> None:
        if backend not in ("thread", "process"):
            raise SweepError(f"backend must be 'thread' or 'process', got {backend!r}")
        if cache is not None and cache_dir is not None:
            raise SweepError(
                "pass either an explicit cache instance or cache_dir, not both"
            )
        self.n_jobs = resolve_jobs(n_jobs)
        self.backend = backend
        self.mode = resolve_mode(mode)
        self.planner = PlannerState()
        self.disk_cache: DiskCache | None = None
        if cache is not None:
            self.cache = cache
            self.disk_cache = cache.backing
        else:
            resolved_dir = resolve_cache_dir(cache_dir)
            if resolved_dir is not None:
                self.disk_cache = DiskCache(resolved_dir)
            self.cache = MemoCache(cache_size, backing=self.disk_cache)
        self.batch = resolve_batch(batch)
        if serial_crossover is None:
            serial_crossover = SERIAL_CROSSOVER
        if serial_crossover < 0:
            raise SweepError(
                f"serial_crossover must be >= 0, got {serial_crossover}"
            )
        self.serial_crossover = int(serial_crossover)
        if worker_retry_budget is not None and worker_retry_budget < 1:
            raise SweepError(
                f"worker_retry_budget must be >= 1, got {worker_retry_budget}"
            )
        self.worker_retry_budget = worker_retry_budget
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        self.faults: FaultInjector | None = faults
        #: Resubmission log for the last faulted sweeps; recovered worker
        #: faults are recorded here without tainting the results (which
        #: stay bit-identical to the clean run by construction).
        self.fault_report = DegradationReport()

    # ------------------------------------------------------------------
    # cache keys
    # ------------------------------------------------------------------
    @staticmethod
    def _host_base(
        cpu: CpuDomain, dram: DramDomain, phases: Sequence[Phase]
    ) -> tuple[object, ...]:
        return ("host", fingerprint(cpu), fingerprint(dram), fingerprint(tuple(phases)))

    @staticmethod
    def _gpu_base(card: GpuCard, phases: Sequence[Phase]) -> tuple[object, ...]:
        return ("gpu", fingerprint(card), fingerprint(tuple(phases)))

    # ------------------------------------------------------------------
    # single points (memoized; used by schedulers and COORD probing)
    # ------------------------------------------------------------------
    def execute_host(
        self,
        cpu: CpuDomain,
        dram: DramDomain,
        phases: Sequence[Phase],
        proc_w: float,
        mem_w: float,
    ) -> ExecutionResult:
        """Memoized :func:`execute_on_host` (never re-runs an identical point)."""
        key = self._host_base(cpu, dram, phases) + (float(proc_w), float(mem_w))
        return self.cache.get_or_compute(
            key, lambda: execute_on_host(cpu, dram, phases, proc_w, mem_w)
        )

    def execute_gpu(
        self,
        card: GpuCard,
        phases: Sequence[Phase],
        cap_w: float,
        mem_freq_mhz: float | None,
    ) -> ExecutionResult:
        """Memoized :func:`execute_on_gpu`."""
        freq = None if mem_freq_mhz is None else float(mem_freq_mhz)
        key = self._gpu_base(card, phases) + (float(cap_w), freq)
        return self.cache.get_or_compute(
            key, lambda: execute_on_gpu(card, phases, cap_w, mem_freq_mhz)
        )

    # ------------------------------------------------------------------
    # batched fan-out (order-preserving)
    # ------------------------------------------------------------------
    def _run_batch(
        self, task: Callable[[tuple], ExecutionResult], keyed: list[tuple[tuple, tuple]]
    ) -> dict[tuple, ExecutionResult]:
        """Execute ``(key, task_args)`` pairs, returning ``key → result``.

        The dict is keyed — not positional — so assembly in the caller is
        independent of completion order, which is what makes process/thread
        scheduling invisible in the results.
        """
        resolved: dict[tuple, ExecutionResult] = {}
        if not keyed:
            return resolved
        injector = self._worker_injector()
        if injector is not None:
            return self._run_batch_faulted(task, keyed, injector)
        if self.n_jobs == 1 or len(keyed) < max(2, self.serial_crossover):
            for key, args in keyed:
                resolved[key] = task(args)
            return resolved
        workers = min(self.n_jobs, len(keyed))
        pool_cls = ThreadPoolExecutor if self.backend == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=workers) as pool:
            for (key, _), result in zip(keyed, pool.map(task, (a for _, a in keyed))):
                resolved[key] = result
        return resolved

    def _worker_injector(self) -> FaultInjector | None:
        """The injector governing sweep workers, or ``None`` when disarmed.

        An engine-scoped injector (``SweepEngine(faults=...)``) wins over
        the process-wide one armed via
        :func:`repro.faults.injector.use_faults`; an empty plan counts as
        disarmed so the zero-cost clean paths (pool fan-out, batch
        kernel) stay in use.
        """
        injector = self.faults if self.faults is not None else _faults_active()
        if injector is None or injector.plan.is_empty:
            return None
        return injector

    def _run_batch_faulted(
        self,
        task: Callable[[tuple], ExecutionResult],
        keyed: list[tuple[tuple, tuple]],
        injector: FaultInjector,
    ) -> dict[tuple, ExecutionResult]:
        """Serial in-parent execution under the worker-fault schedule.

        Faults are armed, so tasks run serially in the parent — the
        deterministic schedule needs a deterministic call order, which a
        pool would scramble.  Each task is resubmitted after an injected
        crash/timeout until it runs clean or the retry budget is spent;
        the executed task itself is the pure model kernel, so a
        recovered sweep is bit-identical to the clean run.
        """
        budget = self.worker_retry_budget or injector.plan.max_attempts
        resolved: dict[tuple, ExecutionResult] = {}
        for key, args in keyed:
            attempts = 0
            while True:
                attempts += 1
                event = injector.check("parallel.worker")
                if event is None:
                    resolved[key] = task(args)
                    break
                failure: WorkerCrashError | WorkerTimeoutError
                if event.kind is FaultKind.WORKER_CRASH:
                    failure = WorkerCrashError(
                        f"sweep worker crashed (call #{event.call_index})"
                    )
                else:
                    failure = WorkerTimeoutError(
                        f"sweep worker timed out (call #{event.call_index})"
                    )
                if attempts >= budget:
                    raise WorkerRetryExhaustedError(attempts, failure)
            if attempts > 1:
                self.fault_report.record(
                    "parallel.worker",
                    "resubmitted",
                    attempts=attempts,
                    detail=(
                        f"task recovered after {attempts - 1} injected "
                        f"worker failure(s)"
                    ),
                )
        return resolved

    def _run_batch_vectorized(
        self,
        chunk_task: Callable[[tuple], list[ExecutionResult]],
        chunk_args: Callable[[list[int]], tuple],
        missing_indices: list[int],
    ) -> list[ExecutionResult]:
        """Resolve missing input indices through the vectorized kernel.

        Serial by default (one kernel pass over all misses).  A process
        backend past ``serial_crossover`` instead splits the misses into
        one contiguous chunk per worker and runs the kernel inside each
        worker — the platform/phases pickle once per *chunk* rather than
        per point, which is what lets cold fan-out beat serial.  Chunks
        partition the miss list, so each point executes exactly once, and
        concatenating in chunk order preserves input order.
        """
        n = len(missing_indices)
        if (
            self.backend == "process"
            and self.n_jobs > 1
            and n >= max(2, self.serial_crossover)
        ):
            payloads = [
                chunk_args([missing_indices[p] for p in positions])
                for positions in _chunk_indices(n, self.n_jobs)
            ]
            results: list[ExecutionResult] = []
            with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
                for part in pool.map(chunk_task, payloads):
                    results.extend(part)
            return results
        return chunk_task(chunk_args(missing_indices))

    def _map(
        self,
        task: Callable[[tuple], ExecutionResult],
        keys: list[tuple],
        args_for: Callable[[int], tuple],
        chunk_task: Callable[[tuple], list[ExecutionResult]] | None = None,
        chunk_args: Callable[[list[int]], tuple] | None = None,
    ) -> list[ExecutionResult]:
        """Resolve ``keys`` in input order, computing cache misses once each.

        Misses go through :meth:`_run_batch_vectorized` (kernel passes
        over the missing input indices, chunked across a process pool
        past the crossover) when the batch path is enabled, else through
        :meth:`_run_batch` (serial or pool fan-out).  Either way each
        unique key is looked up once and stored once, so cache statistics
        and warm-cache behaviour are identical across paths.
        """
        resolved: dict[tuple, ExecutionResult | None] = {}
        missing: list[tuple[tuple, tuple]] = []
        missing_indices: list[int] = []
        for i, key in enumerate(keys):
            if key in resolved:
                continue  # duplicate within the batch: one lookup, one execution
            hit, value = self.cache.lookup(key)
            if hit:
                resolved[key] = value  # type: ignore[assignment]
            else:
                resolved[key] = None
                missing.append((key, args_for(i)))
                missing_indices.append(i)
        # The vectorized kernel has no per-task boundary to inject worker
        # faults at, so armed plans fall back to the scalar path — safe
        # because both kernels are locked bit-identical by the batch
        # equivalence harness.
        if (
            chunk_task is not None
            and chunk_args is not None
            and self.batch
            and missing
            and self._worker_injector() is None
        ):
            vectorized = self._run_batch_vectorized(
                chunk_task, chunk_args, missing_indices
            )
            for (key, _), result in zip(missing, vectorized):
                self.cache.store(key, result)
                resolved[key] = result
        else:
            for key, result in self._run_batch(task, missing).items():
                self.cache.store(key, result)
                resolved[key] = result
        return [resolved[key] for key in keys]  # type: ignore[return-value]

    def map_host(
        self,
        cpu: CpuDomain,
        dram: DramDomain,
        phases: Sequence[Phase],
        allocations: Sequence[PowerAllocation],
    ) -> list[ExecutionResult]:
        """Results for all ``allocations``, in input order."""
        base = self._host_base(cpu, dram, phases)
        keys = [base + (float(a.proc_w), float(a.mem_w)) for a in allocations]

        def chunk_args(indices: list[int]) -> tuple:
            return (
                cpu,
                dram,
                tuple(phases),
                [allocations[i].proc_w for i in indices],
                [allocations[i].mem_w for i in indices],
            )

        return self._map(
            _host_task,
            keys,
            lambda i: (cpu, dram, tuple(phases),
                       allocations[i].proc_w, allocations[i].mem_w),
            _host_chunk_task,
            chunk_args,
        )

    def map_gpu(
        self,
        card: GpuCard,
        phases: Sequence[Phase],
        cap_w: float,
        mem_freqs_mhz: Sequence[float],
    ) -> list[ExecutionResult]:
        """Results for all memory clocks under one board cap, in input order."""
        base = self._gpu_base(card, phases) + (float(cap_w),)
        keys = [base + (float(f),) for f in mem_freqs_mhz]

        def chunk_args(indices: list[int]) -> tuple:
            return (
                card,
                tuple(phases),
                cap_w,
                [float(mem_freqs_mhz[i]) for i in indices],
            )

        return self._map(
            _gpu_task,
            keys,
            lambda i: (card, tuple(phases), cap_w, float(mem_freqs_mhz[i])),
            _gpu_chunk_task,
            chunk_args,
        )

    # ------------------------------------------------------------------
    # planner sub-grids (prepared axes, resolved subset-by-subset)
    # ------------------------------------------------------------------
    def host_subgrid(
        self,
        cpu: CpuDomain,
        dram: DramDomain,
        phases: Sequence[Phase],
        proc_w: Sequence[float],
        mem_w: Sequence[float],
    ) -> SubgridExecutor:
        """A prepared executor over the host ``(proc_w, mem_w)`` axis.

        ``executor.run(rows)`` is bit-for-bit ``map_host`` restricted to
        those rows, with the axis setup (cache keys, platform
        fingerprints, kernel candidate tables) paid once instead of per
        call — the entry point the adaptive planner batches its probe,
        certify, and walk-frontier requests through.  The axis arrives as
        the raw float columns of :func:`~repro.core.allocation
        .allocation_axis` so planned sweeps never pay to materialize
        allocation objects for points they skip.
        """
        phases = tuple(phases)
        proc = [float(p) for p in proc_w]
        mem = [float(m) for m in mem_w]
        base = self._host_base(cpu, dram, phases)
        keys = [base + (p, m) for p, m in zip(proc, mem)]
        return SubgridExecutor(
            self,
            keys,
            _host_task,
            lambda i: (cpu, dram, phases, proc[i], mem[i]),
            lambda: HostBatchKernel(cpu, dram, phases, proc, mem),
        )

    def gpu_subgrid(
        self,
        card: GpuCard,
        phases: Sequence[Phase],
        cap_w: float,
        mem_freqs_mhz: Sequence[float],
    ) -> SubgridExecutor:
        """A prepared executor over one GPU memory-clock axis (one cap)."""
        phases = tuple(phases)
        freqs = [float(f) for f in mem_freqs_mhz]
        base = self._gpu_base(card, phases) + (float(cap_w),)
        keys = [base + (f,) for f in freqs]
        return SubgridExecutor(
            self,
            keys,
            _gpu_task,
            lambda i: (card, phases, cap_w, freqs[i]),
            lambda: GpuBatchKernel(card, phases, cap_w, freqs),
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Publish buffered disk-cache records (no-op without a disk tier)."""
        if self.disk_cache is not None:
            self.disk_cache.flush()

    @property
    def stats(self) -> CacheStats:
        """Counters of the engine's execution cache."""
        return self.cache.stats

    def stats_snapshot(self) -> dict[str, object]:
        """One JSON-ready snapshot of every observable engine counter.

        The cache and planner counters are each read under their own
        lock, so the snapshot is safe to take from any thread while
        sweeps are in flight (each sub-snapshot is internally
        consistent; the two are not mutually atomic, which no consumer
        needs).  This is the structure the coordination server's
        ``stats`` query and ``--stats-interval`` log line serialize.
        """
        cache = self.cache.stats
        planner = self.planner.stats
        return {
            "mode": self.mode,
            "batch": self.batch,
            "n_jobs": self.n_jobs,
            "backend": self.backend,
            "disk_tier": self.disk_cache is not None,
            "cache": {
                "hits": cache.hits,
                "memo_hits": cache.memo_hits,
                "disk_hits": cache.disk_hits,
                "misses": cache.misses,
                "lookups": cache.lookups,
                "evictions": cache.evictions,
                "size": cache.size,
                "maxsize": cache.maxsize,
                "hit_ratio": cache.hit_ratio,
                "disk_hit_ratio": cache.disk_hit_ratio,
            },
            "planner": {
                "sweeps": planner.sweeps,
                "fallbacks": planner.fallbacks,
                "warm_starts": planner.warm_starts,
                "native_points": planner.native_points,
                "executed_points": planner.executed_points,
                "reused_points": planner.reused_points,
                "points_saved": planner.points_saved,
                "savings_ratio": planner.savings_ratio,
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SweepEngine(n_jobs={self.n_jobs}, backend={self.backend!r}, "
            f"cache={self.stats})"
        )


# ---------------------------------------------------------------------------
# process-wide default engine
# ---------------------------------------------------------------------------

_DEFAULT_LOCK = threading.Lock()
_DEFAULT_ENGINE: SweepEngine | None = None


def default_engine() -> SweepEngine:
    """The process-wide engine sweeps use when none is passed explicitly.

    Created lazily with auto-sized workers (``REPRO_JOBS`` respected) and
    the default cache bound; replace it with :func:`set_default_engine`
    or scope a replacement with :func:`use_engine`.
    """
    global _DEFAULT_ENGINE
    with _DEFAULT_LOCK:
        if _DEFAULT_ENGINE is None:
            _DEFAULT_ENGINE = SweepEngine()
        return _DEFAULT_ENGINE


def set_default_engine(engine: SweepEngine | None) -> SweepEngine | None:
    """Install ``engine`` as the process default; returns the previous one."""
    global _DEFAULT_ENGINE
    with _DEFAULT_LOCK:
        previous = _DEFAULT_ENGINE
        _DEFAULT_ENGINE = engine
        return previous


@contextmanager
def use_engine(engine: SweepEngine):
    """Scope ``engine`` as the default for a ``with`` block (tests, CLI)."""
    previous = set_default_engine(engine)
    try:
        yield engine
    finally:
        set_default_engine(previous)
