"""Rule registry: every checker the linter knows about, by rule id."""

from __future__ import annotations

from repro.lint.rules.base import Rule
from repro.lint.rules.budget import BudgetConservationRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.floatcmp import FloatEqualityRule
from repro.lint.rules.locks import LockDisciplineRule
from repro.lint.rules.purity import PurityRule

__all__ = ["ALL_RULE_CLASSES", "Rule", "all_rules", "rule_catalog"]

#: Registered rule classes, in rule-id order.
ALL_RULE_CLASSES: tuple[type[Rule], ...] = (
    PurityRule,
    LockDisciplineRule,
    FloatEqualityRule,
    BudgetConservationRule,
    DeterminismRule,
)


def all_rules() -> tuple[Rule, ...]:
    """Fresh instances of every registered rule, in rule-id order."""
    return tuple(cls() for cls in ALL_RULE_CLASSES)


def rule_catalog() -> dict[str, str]:
    """``rule id -> one-line description`` for ``--list-rules`` and docs."""
    return {cls.rule_id: cls.description for cls in ALL_RULE_CLASSES}
