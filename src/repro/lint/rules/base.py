"""Shared machinery for lint rules."""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from typing import Iterator

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import LintConfig, Project, SourceFile

__all__ = ["Rule", "iter_with_ancestry", "terminal_name"]


class Rule(ABC):
    """One checker: a rule id, metadata, and a ``check`` pass."""

    rule_id: str = ""
    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR

    @abstractmethod
    def check(self, project: Project, config: LintConfig) -> Iterator[Diagnostic]:
        """Yield diagnostics for the whole project."""

    def diagnostic(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=source.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


def terminal_name(node: ast.AST) -> str | None:
    """The identifier a value expression ultimately names, if any.

    ``proc_w`` -> ``proc_w``; ``card.mem.nominal_mhz`` -> ``nominal_mhz``;
    ``freqs[-1]`` -> ``freqs``; calls and literals -> ``None``.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return terminal_name(node.value)
    if isinstance(node, ast.UnaryOp):
        return terminal_name(node.operand)
    if isinstance(node, ast.Starred):
        return terminal_name(node.value)
    return None


def iter_with_ancestry(root: ast.AST) -> Iterator[tuple[ast.AST, tuple[ast.AST, ...]]]:
    """Depth-first ``(node, ancestors)`` pairs below ``root``.

    ``ancestors`` is ordered outermost-first and excludes ``root`` itself,
    letting rules ask questions like "is this mutation inside a
    ``with <lock>`` block?".
    """
    stack: list[tuple[ast.AST, tuple[ast.AST, ...]]] = [
        (child, ()) for child in reversed(list(ast.iter_child_nodes(root)))
    ]
    while stack:
        node, ancestors = stack.pop()
        yield node, ancestors
        child_ancestry = ancestors + (node,)
        for child in reversed(list(ast.iter_child_nodes(node))):
            stack.append((child, child_ancestry))
