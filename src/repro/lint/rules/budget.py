"""RPL004 — budget conservation through blessed allocation constructors.

The central invariant of the paper's power-bounded model is
``P_cpu + P_mem <= P_b``: every allocation a controller hands out must
conserve the node budget.  The repo encodes the invariant in
``repro.core.allocation`` (``PowerAllocation`` validates its domains,
``bounded_allocation`` additionally asserts conservation against the
budget).  Building an allocation as a raw ``{"proc_w": ..., "mem_w":
...}`` dict or a bare ``(proc, mem)`` tuple bypasses that assertion and
lets a budget-overdrawing pair flow silently into sweeps and schedulers
— exactly the class of bug FastCap and CompPow warn capping controllers
about.

The rule flags:

* dict literals (and ``dict(...)`` calls) carrying both a processor
  power key and a memory power key;
* tuple/list literals of two non-constructor expressions assigned to an
  allocation-named target.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintConfig, Project, SourceFile
from repro.lint.rules.base import Rule, terminal_name

__all__ = ["BudgetConservationRule"]

_PROC_KEYS = frozenset({"proc_w", "cpu_w", "sm_w", "p_cpu", "p_proc", "p_sm"})
_MEM_KEYS = frozenset({"mem_w", "dram_w", "p_mem", "p_dram"})

_ALLOC_TARGET = re.compile(r"(^|_)alloc(ation)?s?$")

_BLESSED = (
    "construct allocations through repro.core.allocation "
    "(PowerAllocation / bounded_allocation), which enforce the paper's "
    "P_cpu + P_mem <= P_b budget conservation"
)


def _key_families(keys: Iterator[str]) -> tuple[bool, bool]:
    has_proc = has_mem = False
    for key in keys:
        k = key.lower()
        if k in _PROC_KEYS:
            has_proc = True
        if k in _MEM_KEYS:
            has_mem = True
    return has_proc, has_mem


class BudgetConservationRule(Rule):
    rule_id = "RPL004"
    name = "budget-conservation"
    description = (
        "allocations must be built via the blessed constructors in "
        "repro.core.allocation, never as raw dicts/tuples"
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Diagnostic]:
        for source in project.files:
            yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterator[Diagnostic]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Dict):
                keys = (
                    k.value
                    for k in node.keys
                    if isinstance(k, ast.Constant) and isinstance(k.value, str)
                )
                has_proc, has_mem = _key_families(keys)
                if has_proc and has_mem:
                    yield self.diagnostic(
                        source,
                        node,
                        f"raw dict allocation with processor and memory "
                        f"power keys; {_BLESSED}",
                    )
            elif isinstance(node, ast.Call):
                if terminal_name(node.func) == "dict":
                    has_proc, has_mem = _key_families(
                        kw.arg for kw in node.keywords if kw.arg is not None
                    )
                    if has_proc and has_mem:
                        yield self.diagnostic(
                            source,
                            node,
                            f"raw dict(...) allocation with processor and "
                            f"memory power keys; {_BLESSED}",
                        )
            elif isinstance(node, ast.Assign):
                yield from self._check_assign(source, node)

    def _check_assign(
        self, source: SourceFile, node: ast.Assign
    ) -> Iterator[Diagnostic]:
        value = node.value
        if not isinstance(value, (ast.Tuple, ast.List)) or len(value.elts) != 2:
            return
        # A pair whose elements come from a constructor call is assumed
        # blessed; only raw numeric/name pairs are flagged.
        if any(isinstance(elt, ast.Call) for elt in value.elts):
            return
        for target in node.targets:
            name = terminal_name(target)
            if name is not None and _ALLOC_TARGET.search(name.lower()):
                yield self.diagnostic(
                    source,
                    node,
                    f"raw 2-element {type(value).__name__.lower()} bound to "
                    f"allocation-named target {name!r}; {_BLESSED}",
                )
                return
