"""RPL002 — lock discipline for cross-thread module state.

The parallel sweep engine shares module-level state (the fingerprint
memo, the process-wide default engine) across worker threads; any file
holding such state must mutate it only under a lock, or the
parallel/serial equivalence guarantee silently degrades to "usually".

The rule applies to ``repro.core.parallel`` and the whole
``repro.serve`` package automatically (the coordination server shares
one engine stack across resolver threads and event-loop tasks) and to
any file carrying a ``# shared-state`` marker comment.  Within those
files:

* module-level mutable containers (dict/list/set literals, ``dict()``,
  ``OrderedDict()``, ``WeakKeyDictionary()``, ...) may only be mutated
  (subscript stores/deletes, mutating method calls, augmented assigns)
  inside a ``with <lock>:`` or ``async with <lock>:`` block;
* rebinding a module-level name through ``global`` must likewise happen
  under a lock.

Lock objects are recognized by name (an identifier containing ``lock``)
— the repo's convention pairs every shared container with a sibling
``_FOO_LOCK``.  Both ``threading.Lock`` and ``asyncio.Lock`` guards
count; the latter only suspends cooperatively, but within one event
loop that is exactly the mutual exclusion the invariant asks for.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintConfig, Project, SourceFile
from repro.lint.rules.base import Rule, iter_with_ancestry, terminal_name

__all__ = ["LockDisciplineRule"]

#: Files with this module name are always subject to lock discipline.
_ALWAYS_CHECKED_SUFFIX = "core.parallel"

#: Every module of this package is always subject to lock discipline:
#: the server shares engine state across resolver threads and tasks.
_ALWAYS_CHECKED_PACKAGE = "repro.serve"


def _always_checked(module: str) -> bool:
    return (
        module.endswith(_ALWAYS_CHECKED_SUFFIX)
        or module == _ALWAYS_CHECKED_PACKAGE
        or module.startswith(_ALWAYS_CHECKED_PACKAGE + ".")
    )

_CONTAINER_FACTORIES = frozenset(
    {
        "dict",
        "list",
        "set",
        "OrderedDict",
        "defaultdict",
        "deque",
        "Counter",
        "WeakKeyDictionary",
        "WeakValueDictionary",
        "WeakSet",
    }
)

_MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "insert",
        "extend",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "move_to_end",
        "appendleft",
        "popleft",
    }
)


def _is_lock_name(node: ast.AST) -> bool:
    name = terminal_name(node)
    return name is not None and "lock" in name.lower()


def _is_mutable_init(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        name = terminal_name(value.func)
        return name in _CONTAINER_FACTORIES
    return False


def _under_lock(ancestors: tuple[ast.AST, ...]) -> bool:
    for node in ancestors:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            if any(_is_lock_name(item.context_expr) for item in node.items):
                return True
    return False


def _in_function(ancestors: tuple[ast.AST, ...]) -> bool:
    return any(
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) for node in ancestors
    )


class LockDisciplineRule(Rule):
    rule_id = "RPL002"
    name = "lock-discipline"
    description = (
        "module-level mutable state in shared-state files may only be "
        "mutated inside a `with <lock>:` block"
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Diagnostic]:
        for source in project.files:
            if not (_always_checked(source.module) or source.suppressions.shared_state):
                continue
            yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterator[Diagnostic]:
        mutable: set[str] = set()
        module_names: set[str] = set()
        for stmt in source.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if "lock" in target.id.lower():
                    continue
                module_names.add(target.id)
                if value is not None and _is_mutable_init(value):
                    mutable.add(target.id)

        for node, ancestors in iter_with_ancestry(source.tree):
            if not _in_function(ancestors):
                continue  # import-time initialization is single-threaded
            message = self._mutation(node, ancestors, mutable, module_names)
            if message is not None and not _under_lock(ancestors):
                yield self.diagnostic(source, node, message)

    def _mutation(
        self,
        node: ast.AST,
        ancestors: tuple[ast.AST, ...],
        mutable: set[str],
        module_names: set[str],
    ) -> str | None:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                name = self._shared_target(target, ancestors, mutable, module_names)
                if name is not None:
                    return f"unguarded write to shared module state {name!r}"
            return None
        if isinstance(node, ast.AugAssign):
            name = self._shared_target(node.target, ancestors, mutable, module_names)
            if name is not None:
                return f"unguarded augmented write to shared module state {name!r}"
            return None
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    name = terminal_name(target.value)
                    if name in mutable:
                        return f"unguarded delete from shared container {name!r}"
            return None
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATING_METHODS:
                name = terminal_name(node.func.value)
                if name in mutable:
                    return (
                        f"unguarded {name}.{node.func.attr}() on shared "
                        f"module container"
                    )
            return None
        return None

    def _shared_target(
        self,
        target: ast.expr,
        ancestors: tuple[ast.AST, ...],
        mutable: set[str],
        module_names: set[str],
    ) -> str | None:
        """Name of the shared state ``target`` writes to, if any."""
        if isinstance(target, ast.Subscript):
            name = terminal_name(target.value)
            return name if name in mutable else None
        if isinstance(target, ast.Name) and target.id in module_names:
            # Only a rebind through `global` touches module state; a plain
            # assignment to the same identifier creates a local.
            for anc in reversed(ancestors):
                if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    declared = {
                        n
                        for stmt in ast.walk(anc)
                        if isinstance(stmt, ast.Global)
                        for n in stmt.names
                    }
                    return target.id if target.id in declared else None
        return None
