"""RPL005 — determinism of experiment figure modules.

Every figure and table in the repo is a deterministic artifact: two runs
of ``repro experiment fig3`` on any machine must render identical
output, or the equivalence harness cannot diff artifacts across
serial/parallel engines and releases.  Inside experiment modules
(``repro.experiments.*`` by path, or any file carrying a
``# repro-lint: figure-module`` marker) the rule flags:

* iteration directly over a set literal / ``set(...)`` — set order is
  hash-dependent; wrap in ``sorted(...)``;
* wall-clock and date reads (``time.time``, ``datetime.now``,
  ``date.today``, ...);
* process environment reads (``os.environ``, ``os.getenv``) — artifact
  shape must come from arguments, not ambient state;
* raw RNG (``random.*``, ``numpy.random.*``) — seeded streams come from
  ``repro.util.seeds.spawn_rng``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import ImportResolver, dotted_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintConfig, Project, SourceFile
from repro.lint.rules.base import Rule

__all__ = ["DeterminismRule"]

_EXPERIMENTS_SEGMENT = ".experiments."

_DATE_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.localtime",
        "time.gmtime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class DeterminismRule(Rule):
    rule_id = "RPL005"
    name = "determinism"
    description = (
        "experiment figure modules must be deterministic: no set-order "
        "iteration, wall-clock/date reads, environment reads, or raw RNG"
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Diagnostic]:
        for source in project.files:
            in_experiments = (
                _EXPERIMENTS_SEGMENT in f".{source.module}."
                and source.module.split(".")[-1] != "__init__"
            )
            if not (in_experiments or source.suppressions.figure_module):
                continue
            yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterator[Diagnostic]:
        resolver = ImportResolver(source)
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    yield self.diagnostic(
                        source,
                        node.iter,
                        "iteration over a set is hash-order dependent; "
                        "wrap the set in sorted(...)",
                    )
            elif isinstance(node, ast.comprehension):
                if _is_set_expr(node.iter):
                    yield self.diagnostic(
                        source,
                        node.iter,
                        "comprehension over a set is hash-order dependent; "
                        "wrap the set in sorted(...)",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(source, resolver, node)
            elif isinstance(node, ast.Attribute):
                dotted = dotted_name(node)
                if dotted is not None and resolver.resolve(dotted) == "os.environ":
                    yield self.diagnostic(
                        source,
                        node,
                        "reads os.environ; figure shape must come from "
                        "arguments, not ambient process state",
                    )

    def _check_call(
        self, source: SourceFile, resolver: ImportResolver, node: ast.Call
    ) -> Iterator[Diagnostic]:
        dotted = dotted_name(node.func)
        if dotted is None:
            return
        resolved = resolver.resolve(dotted)
        if resolved in _DATE_CALLS:
            yield self.diagnostic(
                source,
                node,
                f"calls {resolved}() — figure modules must not read the "
                f"wall clock or date",
            )
        elif resolved == "os.getenv":
            yield self.diagnostic(
                source,
                node,
                "calls os.getenv() — figure shape must come from "
                "arguments, not ambient process state",
            )
        elif resolved.startswith(("random.", "numpy.random.")):
            yield self.diagnostic(
                source,
                node,
                f"calls {resolved}() — derive seeded streams via "
                f"repro.util.seeds.spawn_rng instead",
            )
