"""RPL003 — no exact float equality on power/performance quantities.

Watt and performance values flow through multiplicative models, unit
conversions, and parallel reduction orders; comparing them with ``==`` or
``!=`` is a latent heisenbug.  The rule flags equality comparisons where
either operand *names* a physical quantity (``proc_w``, ``perf_max``,
``nominal_mhz``, ``compute_efficiency``, ...), directing callers to the
tolerant helpers in :mod:`repro.util.units` (``watts_close``,
``approx_equal``).

Legitimate exact sentinels (e.g. ``bytes_moved == 0.0`` meaning "this
phase does no memory work at all" in ``perfmodel``) carry explicit
``# repro-lint: disable=RPL003`` suppressions with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintConfig, Project, SourceFile
from repro.lint.rules.base import Rule, terminal_name

__all__ = ["FloatEqualityRule"]

#: Identifier tokens (split on ``_``) that mark a physical quantity.
_QUANTITY_TOKENS = frozenset(
    {
        "w",
        "mw",
        "watt",
        "watts",
        "power",
        "powers",
        "perf",
        "performance",
        "performances",
        "budget",
        "budgets",
        "mhz",
        "ghz",
        "freq",
        "freqs",
        "frequency",
        "frequencies",
        "gbps",
        "bandwidth",
        "flops",
        "efficiency",
        "bytes",
        "joules",
        "energy",
    }
)


def _quantity_operand(node: ast.expr) -> str | None:
    """The quantity-typed identifier ``node`` names, if any."""
    name = terminal_name(node)
    if name is None:
        return None
    tokens = name.lower().split("_")
    return name if any(tok in _QUANTITY_TOKENS for tok in tokens) else None


def _is_str_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


class FloatEqualityRule(Rule):
    rule_id = "RPL003"
    name = "float-equality"
    description = (
        "power/performance-typed expressions must not be compared with "
        "== or != — use repro.util.units.watts_close / approx_equal"
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Diagnostic]:
        for source in project.files:
            yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterator[Diagnostic]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if _is_str_constant(left) or _is_str_constant(right):
                    continue
                matched = _quantity_operand(left) or _quantity_operand(right)
                if matched is None:
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield self.diagnostic(
                    source,
                    node,
                    f"exact float {symbol} on quantity {matched!r}; use "
                    f"watts_close()/approx_equal() from repro.util.units "
                    f"(or suppress a justified exact sentinel)",
                )
