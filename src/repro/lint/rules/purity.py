"""RPL001 — purity of memoized sweep functions.

The ``SweepEngine`` caches ``(platform, phases, allocation) -> result``
and replays cached values in place of re-execution; the parallel backend
additionally runs the same functions concurrently.  Both are only sound
if every function reachable from the engine's entry points is a pure,
deterministic function of its arguments.  This rule walks the project
call graph from the auto-detected entry points (plus any configured
extras) and flags, inside reachable functions:

* wall-clock and timer reads (``time.*``);
* RNG outside the blessed ``repro.util.seeds`` door (``random.*``,
  ``numpy.random.*``);
* console/file I/O (``print``, ``open``, ``input``);
* environment reads (``os.environ``, ``os.getenv``);
* module-global mutation (``global`` declarations, writes to imported
  module attributes).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import CallGraph, ImportResolver, dotted_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintConfig, Project
from repro.lint.rules.base import Rule

__all__ = ["PurityRule"]

#: Modules whose RNG use is the sanctioned determinism door.
_RNG_DOOR_SUFFIX = "util.seeds"

_IO_BUILTINS = frozenset({"print", "open", "input"})


def _impurity(resolved: str, in_rng_door: bool) -> str | None:
    """Why a resolved call target is impure, or ``None`` if it is fine."""
    if resolved == "time" or resolved.startswith("time."):
        return f"calls {resolved}() (wall-clock/timer read)"
    if not in_rng_door:
        if resolved == "random" or resolved.startswith("random."):
            return f"calls {resolved}() — use repro.util.seeds.spawn_rng"
        if resolved.startswith("numpy.random."):
            return f"calls {resolved}() — use repro.util.seeds.spawn_rng"
    if resolved in ("os.getenv", "os.putenv"):
        return f"reads the process environment via {resolved}"
    return None


class PurityRule(Rule):
    rule_id = "RPL001"
    name = "purity"
    description = (
        "functions reachable from SweepEngine-memoized entry points must be "
        "pure: no I/O, wall-clock, environment reads, unseeded RNG, or "
        "module-global mutation"
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Diagnostic]:
        graph = CallGraph.build(project, extra_entries=config.purity_entries)
        origin = graph.reachable()
        for qual, entry in sorted(origin.items()):
            info = graph.functions[qual]
            resolver = ImportResolver(info.source)
            in_rng_door = info.module.endswith(_RNG_DOOR_SUFFIX)
            for node in ast.walk(info.node):
                message = self._violation(node, resolver, in_rng_door)
                if message is not None:
                    yield self.diagnostic(
                        info.source,
                        node,
                        f"'{qual}' is reachable from memoized entry "
                        f"'{entry}' but {message}; memoized sweep functions "
                        f"must be pure and deterministic",
                    )

    def _violation(
        self, node: ast.AST, resolver: ImportResolver, in_rng_door: bool
    ) -> str | None:
        if isinstance(node, ast.Global):
            names = ", ".join(node.names)
            return f"declares 'global {names}' (module-global mutation)"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in _IO_BUILTINS and func.id not in resolver.aliases:
                    return f"performs I/O via {func.id}()"
                return _impurity(resolver.resolve(func.id), in_rng_door)
            dotted = dotted_name(func)
            if dotted is not None and not dotted.startswith("self."):
                return _impurity(resolver.resolve(dotted), in_rng_door)
            return None
        if isinstance(node, ast.Attribute):
            # Exactly `os.environ` — one node per occurrence, so reads,
            # `.get(...)` chains, and subscripts each fire once.
            dotted = dotted_name(node)
            if dotted is not None and resolver.resolve(dotted) == "os.environ":
                return "reads the process environment via os.environ"
            return None
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    dotted = dotted_name(target.value)
                    if dotted is None or dotted.startswith("self."):
                        continue
                    resolved = resolver.resolve(dotted)
                    if resolved != dotted or dotted in resolver.aliases:
                        return f"mutates module attribute {dotted}.{target.attr}"
            return None
        return None
