"""``repro.lint`` — AST-based invariant checks for the repro codebase.

The linter mechanically enforces the contracts the power model and the
parallel sweep engine rely on but Python cannot express in types:

========  ==================================================================
RPL001    purity of functions reachable from SweepEngine-memoized entries
RPL002    lock discipline for cross-thread module state
RPL003    no exact float equality on power/performance quantities
RPL004    budget conservation via blessed allocation constructors
RPL005    determinism of experiment figure modules
========  ==================================================================

Run it as ``python -m repro.lint [paths]`` or ``repro lint``; see
``docs/static_analysis.md`` for the rules and the suppression grammar.
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic, Severity, render_human, render_json
from repro.lint.engine import (
    DEFAULT_PURITY_ENTRIES,
    LintConfig,
    LintError,
    Project,
    SourceFile,
    run_lint,
)
from repro.lint.rules import ALL_RULE_CLASSES, all_rules, rule_catalog

__all__ = [
    "ALL_RULE_CLASSES",
    "DEFAULT_PURITY_ENTRIES",
    "Diagnostic",
    "LintConfig",
    "LintError",
    "Project",
    "Severity",
    "SourceFile",
    "all_rules",
    "render_human",
    "render_json",
    "rule_catalog",
    "run_lint",
]
