"""Command-line interface for the repro linter.

``python -m repro.lint [paths ...]`` (and the ``repro lint`` subcommand,
which shares this implementation) lints the given files/directories —
defaulting to the installed ``repro`` package tree — and exits 0 when
clean, 1 when findings remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.diagnostics import render_human, render_json
from repro.lint.engine import DEFAULT_PURITY_ENTRIES, LintConfig, LintError, run_lint
from repro.lint.rules import rule_catalog

__all__ = ["add_lint_arguments", "build_parser", "main", "run_from_args"]


def default_target() -> Path:
    """The ``repro`` package source tree (what a bare invocation lints)."""
    return Path(__file__).resolve().parent.parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the linter's arguments (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--purity-entry",
        action="append",
        default=[],
        metavar="MODULE.FUNC",
        help=(
            "extra RPL001 call-graph entry point (repeatable; composed "
            "with the built-in batch-kernel entries)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant checks for the repro codebase",
    )
    add_lint_arguments(parser)
    return parser


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    if args.list_rules:
        for rule_id, description in sorted(rule_catalog().items()):
            print(f"{rule_id}  {description}")
        return 0
    paths = [Path(p) for p in args.paths] or [default_target()]
    select = (
        frozenset(s.strip() for s in args.select.split(",") if s.strip())
        if args.select
        else None
    )
    config = LintConfig(
        select=select,
        purity_entries=DEFAULT_PURITY_ENTRIES + tuple(args.purity_entry),
    )
    try:
        diagnostics = run_lint(paths, config)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(diagnostics))
    else:
        print(render_human(diagnostics))
    return 1 if diagnostics else 0


def main(argv: list[str] | None = None) -> int:
    return run_from_args(build_parser().parse_args(argv))
