"""Project call graph and import resolution for reachability rules.

RPL001 (purity) needs to know which functions are reachable from the
``SweepEngine``'s memoized entry points.  This module builds a
conservative, name-based call graph over the analyzed files:

* bare-name calls resolve through each module's imports and local
  definitions;
* ``module.attr`` calls resolve through ``import``/``import as``
  aliases;
* ``self.method()`` calls resolve within the enclosing class.

Arbitrary attribute calls on objects (``cpu.demand_w(...)``) are *not*
resolved — the receiver's type is unknown statically.  That keeps the
graph precise (no false reachability), at the cost of not traversing
into polymorphic model methods; the documented contract is that those
methods are pure value computations on frozen dataclasses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.engine import Project, SourceFile

__all__ = ["CallGraph", "FunctionInfo", "ImportResolver", "dotted_name"]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a ``Name``/``Attribute`` chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportResolver:
    """Resolves dotted names in one module to project-absolute names."""

    def __init__(self, source: SourceFile) -> None:
        self.module = source.module
        #: ``local alias -> absolute dotted target`` for both import forms.
        self.aliases: dict[str, str] = {}
        package_parts = source.module.split(".")[:-1]
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[bound] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base_parts = package_parts[: len(package_parts) - node.level + 1]
                    base = ".".join(base_parts)
                    prefix = f"{base}.{node.module}" if node.module else base
                    prefix = prefix.lstrip(".")
                else:
                    prefix = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{prefix}.{alias.name}" if prefix else alias.name

    def resolve(self, dotted: str) -> str:
        """Absolute dotted name for ``dotted`` (identity when unknown)."""
        head, _, rest = dotted.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str
    module: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    source: SourceFile


@dataclass
class CallGraph:
    """Functions, resolved call edges, and SweepEngine entry points."""

    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    edges: dict[str, set[str]] = field(default_factory=dict)
    entries: set[str] = field(default_factory=set)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, project: Project, extra_entries: tuple[str, ...] = ()) -> "CallGraph":
        graph = cls()
        resolvers = {f.module: ImportResolver(f) for f in project.files}
        for source in project.files:
            graph._index_functions(source)
        for source in project.files:
            graph._index_edges(source, resolvers[source.module])
        for source in project.files:
            graph._detect_entries(source, resolvers[source.module])
        for entry in extra_entries:
            if entry in graph.functions:
                graph.entries.add(entry)
        return graph

    def _index_functions(self, source: SourceFile) -> None:
        def visit(body: list[ast.stmt], cls_name: str | None) -> None:
            for node in body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = (
                        f"{source.module}.{cls_name}.{node.name}"
                        if cls_name
                        else f"{source.module}.{node.name}"
                    )
                    self.functions[qual] = FunctionInfo(
                        qualname=qual,
                        module=source.module,
                        cls=cls_name,
                        node=node,
                        source=source,
                    )
                elif isinstance(node, ast.ClassDef):
                    visit(node.body, node.name)

        visit(source.tree.body, None)

    def _resolve_call(
        self,
        call: ast.Call,
        resolver: ImportResolver,
        module: str,
        cls_name: str | None,
    ) -> str | None:
        """Project function targeted by ``call``, or ``None``."""
        func = call.func
        if isinstance(func, ast.Name):
            local = f"{module}.{func.id}"
            if local in self.functions:
                return local
            resolved = resolver.resolve(func.id)
            return resolved if resolved in self.functions else None
        dotted = dotted_name(func)
        if dotted is None:
            return None
        if cls_name is not None and dotted.startswith("self."):
            method = f"{module}.{cls_name}.{dotted[len('self.'):]}"
            if method in self.functions:
                return method
            return None
        resolved = resolver.resolve(dotted)
        return resolved if resolved in self.functions else None

    def _index_edges(self, source: SourceFile, resolver: ImportResolver) -> None:
        for info in [f for f in self.functions.values() if f.module == source.module]:
            callees = self.edges.setdefault(info.qualname, set())
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    target = self._resolve_call(node, resolver, info.module, info.cls)
                    if target is not None:
                        callees.add(target)

    def _detect_entries(self, source: SourceFile, resolver: ImportResolver) -> None:
        """Entry points: cross-module functions the SweepEngine module calls.

        Whatever the module defining ``SweepEngine`` dispatches (directly,
        via worker tasks, or via memoizing lambdas) is what the engine
        caches and replays — those functions, and everything they reach,
        carry the purity contract.
        """
        defines_engine = any(
            isinstance(node, ast.ClassDef) and node.name == "SweepEngine"
            for node in ast.walk(source.tree)
        )
        if not defines_engine:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._resolve_call(node, resolver, source.module, None)
            if target is not None and self.functions[target].module != source.module:
                self.entries.add(target)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def reachable(self) -> dict[str, str]:
        """``qualname -> originating entry`` for every reachable function."""
        origin: dict[str, str] = {}
        stack = [(entry, entry) for entry in sorted(self.entries)]
        while stack:
            qual, entry = stack.pop()
            if qual in origin:
                continue
            origin[qual] = entry
            for callee in sorted(self.edges.get(qual, ())):
                if callee not in origin:
                    stack.append((callee, entry))
        return origin

    def walk_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()
