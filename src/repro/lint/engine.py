"""The lint engine: file discovery, parsing, rule dispatch, filtering.

The engine is deliberately small: it loads every Python file under the
requested paths into a :class:`Project` (source text, AST, suppression
directives, dotted module name), hands the project to each registered
rule, and filters the returned diagnostics through the per-file
suppressions.  All rule logic lives in :mod:`repro.lint.rules`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import ReproError
from repro.lint.diagnostics import Diagnostic
from repro.lint.suppressions import Suppressions

__all__ = [
    "DEFAULT_PURITY_ENTRIES",
    "LintConfig",
    "LintError",
    "Project",
    "SourceFile",
    "load_project",
    "run_lint",
]


class LintError(ReproError):
    """The linter was invoked on paths it cannot analyze."""


#: Explicit RPL001 roots that hold regardless of auto-detection: the
#: vectorized batch kernels are memoized through the SweepEngine cache
#: exactly like the scalar executors, so they (and everything they call)
#: carry the purity contract even if engine-module call shapes change.
#: The adaptive planner's axis search must replay bit-identically from
#: memoized results (it is what makes planned answers provably equal to
#: the full-sweep oracle), and the disk-cache codecs must round-trip
#: results without consulting any ambient state.  The planner *drivers*
#: (``plan_cpu_sweep`` etc.) are deliberately absent: they resolve the
#: process-default engine and sweep mode, which is environment-aware by
#: design.  Disk *I/O* likewise stays out: it lives behind ``DiskCache``
#: instance methods, which the memoized call graph never reaches
#: directly.  The gather kernels' ``execute_indices`` methods are rooted
#: explicitly too: the engine reaches them through
#: ``batch_execute_indices`` on an opaque kernel receiver, an attribute
#: call the graph cannot resolve on its own, yet they are the exact code
#: the planner's sub-grid batches run.  Entries not present in the
#: analyzed files are ignored, so linting fixture trees stays unaffected.
DEFAULT_PURITY_ENTRIES: tuple[str, ...] = (
    "repro.core.diskcache.decode_result",
    "repro.core.diskcache.digest_key",
    "repro.core.diskcache.encode_result",
    "repro.core.planner._plan_axis",
    "repro.core.planner._probe_indices",
    "repro.perfmodel.batch.GpuBatchKernel.execute_indices",
    "repro.perfmodel.batch.HostBatchKernel.execute_indices",
    "repro.perfmodel.batch.execute_gpu_batch",
    "repro.perfmodel.batch.execute_host_batch",
)


@dataclass(frozen=True)
class LintConfig:
    """Knobs for one lint run.

    ``select`` restricts the run to the named rule identifiers (``None``
    runs every registered rule).  ``purity_entries`` adds explicit
    call-graph roots (``module.function`` dotted names) for RPL001 on
    top of the auto-detected ``SweepEngine`` entry points; it defaults
    to :data:`DEFAULT_PURITY_ENTRIES` (the batch execution kernels).
    """

    select: frozenset[str] | None = None
    purity_entries: tuple[str, ...] = DEFAULT_PURITY_ENTRIES


@dataclass(frozen=True)
class SourceFile:
    """One parsed Python source file."""

    path: Path
    module: str
    text: str
    tree: ast.Module
    suppressions: Suppressions

    @property
    def display_path(self) -> str:
        """Path rendered for diagnostics: relative to cwd when possible."""
        try:
            return str(self.path.relative_to(Path.cwd()))
        except ValueError:
            return str(self.path)


@dataclass(frozen=True)
class Project:
    """Every source file of one lint run, addressable by module name."""

    files: tuple[SourceFile, ...]
    modules: dict[str, SourceFile] = field(default_factory=dict)

    @classmethod
    def from_files(cls, files: Iterable[SourceFile]) -> "Project":
        ordered = tuple(sorted(files, key=lambda f: str(f.path)))
        return cls(files=ordered, modules={f.module: f for f in ordered})


def _module_name(path: Path) -> str:
    """Dotted module name, walking up through ``__init__.py`` packages.

    ``src/repro/core/parallel.py`` -> ``repro.core.parallel`` (``src`` has
    no ``__init__.py``); a loose fixture file resolves to its bare stem.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:  # a package's own __init__.py at the discovery root
        parts.append(path.parent.name)
    return ".".join(reversed(parts))


def _discover(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            yield path
        else:
            raise LintError(f"not a Python file or directory: {path}")


def load_source(path: Path) -> SourceFile:
    """Parse one file into a :class:`SourceFile` (raises on syntax errors)."""
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        raise LintError(f"cannot parse {path}: {exc}") from exc
    return SourceFile(
        path=path,
        module=_module_name(path),
        text=text,
        tree=tree,
        suppressions=Suppressions.parse(text),
    )


def load_project(paths: Iterable[Path]) -> Project:
    """Discover and parse every Python file under ``paths``."""
    files = [load_source(p) for p in _discover(paths)]
    if not files:
        raise LintError("no Python files found under the given paths")
    return Project.from_files(files)


def run_lint(
    paths: Iterable[Path | str],
    config: LintConfig | None = None,
) -> list[Diagnostic]:
    """Lint ``paths`` and return suppression-filtered, sorted diagnostics."""
    from repro.lint.rules import all_rules

    config = config if config is not None else LintConfig()
    project = load_project(Path(p) for p in paths)
    by_path = {f.display_path: f for f in project.files}

    diagnostics: list[Diagnostic] = []
    for rule in all_rules():
        if config.select is not None and rule.rule_id not in config.select:
            continue
        for diag in rule.check(project, config):
            source = by_path.get(diag.path)
            if source is not None and source.suppressions.is_suppressed(
                diag.rule_id, diag.line
            ):
                continue
            diagnostics.append(diag)
    return sorted(diagnostics)
