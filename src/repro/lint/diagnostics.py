"""Diagnostic records and rendering for the repro linter.

A :class:`Diagnostic` is one finding: a rule identifier, a location, a
severity, and a human-readable message.  The linter's two output formats
(human ``file:line:col`` lines and a JSON document) both render from the
same records, so tooling and humans always agree on what fired.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any

__all__ = ["Diagnostic", "Severity", "render_human", "render_json"]


class Severity(enum.Enum):
    """How seriously a finding should be taken.

    ``ERROR`` findings break an invariant the codebase relies on (budget
    conservation, parallel/serial equivalence); ``WARNING`` findings are
    suspicious but may be legitimate with a justified suppression.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One linter finding, ordered by location for stable output."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    def format(self) -> str:
        """``path:line:col: RULE severity: message`` — the human line."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.severity.value}: {self.message}"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }


def render_human(diagnostics: list[Diagnostic]) -> str:
    """Render findings one per line plus a summary, like a compiler."""
    lines = [d.format() for d in diagnostics]
    n = len(diagnostics)
    lines.append(f"{n} finding{'s' if n != 1 else ''}")
    return "\n".join(lines)


def render_json(diagnostics: list[Diagnostic]) -> str:
    """Render findings as a JSON document (``findings`` + ``count``)."""
    doc = {
        "findings": [d.as_dict() for d in diagnostics],
        "count": len(diagnostics),
    }
    return json.dumps(doc, indent=2, sort_keys=True)
