"""Comment-driven suppressions and file markers.

Grammar (all inside comments, so string literals never trigger them):

* ``# repro-lint: disable=RPL001,RPL003 -- reason`` — suppress those
  rules on this physical line.  The reason is free text; reviewers are
  expected to reject suppressions without one.
* ``# repro-lint: disable-file=RPL003 -- reason`` — suppress the rules
  for the entire file.
* ``# shared-state`` — marks the file as holding cross-thread module
  state, opting it into RPL002 lock discipline.
* ``# repro-lint: figure-module`` — opts a file into RPL005 determinism
  checks (experiment figure modules are opted in automatically by path).

Comments are discovered with :mod:`tokenize`, so the directives are only
recognized in real comments — a string containing the same text is inert.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppressions", "scan_comments"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
)
_FIGURE_MARKER = re.compile(r"#\s*repro-lint:\s*figure-module\b")
_SHARED_STATE = re.compile(r"#\s*shared-state\b")


def scan_comments(text: str) -> dict[int, str]:
    """Map of ``line -> comment text`` for every comment in ``text``.

    Falls back to a conservative regex scan if the file does not
    tokenize (the linter still parses it with :mod:`ast` separately, so
    a tokenize hiccup should not silently drop suppressions).
    """
    comments: dict[int, str] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(text).readline):
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for i, line in enumerate(text.splitlines(), start=1):
            stripped = line.strip()
            if stripped.startswith("#"):
                comments[i] = stripped
    return comments


@dataclass
class Suppressions:
    """Parsed suppression directives and markers for one source file."""

    line_rules: dict[int, frozenset[str]] = field(default_factory=dict)
    file_rules: frozenset[str] = frozenset()
    shared_state: bool = False
    figure_module: bool = False

    @classmethod
    def parse(cls, text: str) -> "Suppressions":
        comments = scan_comments(text)
        line_rules: dict[int, frozenset[str]] = {}
        file_rules: set[str] = set()
        shared_state = False
        figure_module = False
        for line, comment in comments.items():
            if _SHARED_STATE.search(comment):
                shared_state = True
            if _FIGURE_MARKER.search(comment):
                figure_module = True
            match = _DIRECTIVE.search(comment)
            if match is None:
                continue
            rules = frozenset(
                r.strip() for r in match.group("rules").split(",") if r.strip()
            )
            if match.group("kind") == "disable-file":
                file_rules.update(rules)
            else:
                line_rules[line] = line_rules.get(line, frozenset()) | rules
        return cls(
            line_rules=line_rules,
            file_rules=frozenset(file_rules),
            shared_state=shared_state,
            figure_module=figure_module,
        )

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is suppressed at ``line`` (or file-wide)."""
        if rule_id in self.file_rules:
            return True
        return rule_id in self.line_rules.get(line, frozenset())
