"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with one handler while still being able to distinguish
configuration problems from runtime/simulation problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "UnitError",
    "PowerBoundError",
    "InfeasibleBudgetError",
    "BudgetTooSmallError",
    "UnknownWorkloadError",
    "UnknownPlatformError",
    "ProfilingError",
    "ProtocolError",
    "ServeError",
    "SweepError",
    "ConvergenceError",
    "SchedulerError",
    "FaultError",
    "FaultPlanError",
    "TransientReadError",
    "MeterReadError",
    "NvmlReadError",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "WorkerRetryExhaustedError",
    "ProfilingDegradedError",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """A model, platform, or workload was configured with invalid parameters."""


class UnitError(ConfigurationError):
    """A physical quantity was supplied with an invalid value (e.g. negative watts)."""


class PowerBoundError(ReproError):
    """A power cap request cannot be represented or enforced by the hardware model."""


class InfeasibleBudgetError(PowerBoundError):
    """A total power budget cannot be met even at the lowest hardware states."""


class BudgetTooSmallError(PowerBoundError):
    """COORD rejected the budget because the job would run unproductively.

    Mirrors the ``Warning: budget too small!`` branch of Algorithm 1 in the
    paper: budgets below ``P_cpu_L2 + P_mem_L2`` are refused rather than
    allocated.
    """

    def __init__(self, budget_w: float, threshold_w: float) -> None:
        self.budget_w = float(budget_w)
        self.threshold_w = float(threshold_w)
        super().__init__(
            f"power budget {budget_w:.1f} W is below the productive threshold "
            f"{threshold_w:.1f} W; refusing to allocate (paper Algorithm 1, case D)"
        )


class UnknownWorkloadError(ReproError, KeyError):
    """A workload name was not found in the registered suites."""


class UnknownPlatformError(ReproError, KeyError):
    """A platform name was not found in the registered presets."""


class ProfilingError(ReproError):
    """Lightweight profiling failed to extract critical power values."""


class SweepError(ReproError):
    """A power-allocation sweep was requested with an empty or invalid grid."""


class ConvergenceError(ReproError):
    """The executor's power/performance fixed point failed to converge."""

    def __init__(self, iterations: int, residual: float) -> None:
        self.iterations = int(iterations)
        self.residual = float(residual)
        super().__init__(
            f"fixed-point executor did not converge after {iterations} "
            f"iterations (residual {residual:.3e})"
        )


class SchedulerError(ReproError):
    """The power-bounded batch scheduler was driven into an invalid state."""


# ---------------------------------------------------------------------------
# coordination-as-a-service (repro.serve)
# ---------------------------------------------------------------------------

class ServeError(ReproError):
    """The coordination server was misconfigured or driven into an invalid state."""


class ProtocolError(ServeError):
    """A wire message violated the newline-delimited JSON protocol.

    Raised (and answered with an ``ok: false`` envelope) for frames that
    are not valid JSON objects, miss required fields, or name an unknown
    query operation — the connection stays up; one bad frame never takes
    down a client, let alone the server.
    """


# ---------------------------------------------------------------------------
# fault injection and resilience (repro.faults)
# ---------------------------------------------------------------------------

class FaultError(ReproError):
    """Base class for every typed fault/degradation outcome.

    The degradation contract of :mod:`repro.faults` is that a public API
    running under an armed fault plan either returns a result that is
    bit-identical to the clean run or raises/reports through this family
    — a silently drifted result is never an allowed outcome.
    """


class FaultPlanError(FaultError, ConfigurationError):
    """A fault plan was malformed (unknown site, bad kind, invalid schedule)."""


class TransientReadError(FaultError):
    """A single telemetry read (RAPL counter, NVML query) failed transiently.

    Retryable by design: resilience policies catch this type and re-read
    within a bounded attempt budget.
    """

    def __init__(self, site: str, call_index: int) -> None:
        self.site = site
        self.call_index = int(call_index)
        super().__init__(
            f"transient read failure at {site!r} (call #{call_index})"
        )


class MeterReadError(FaultError):
    """A power-meter read could not be recovered within the retry budget."""


class NvmlReadError(FaultError):
    """An NVML device query could not be recovered within the retry budget."""


class WorkerCrashError(FaultError):
    """A sweep worker crashed while executing a task (retryable)."""


class WorkerTimeoutError(FaultError):
    """A sweep worker exceeded its deadline while executing a task (retryable)."""


class WorkerRetryExhaustedError(FaultError):
    """A sweep task kept failing past the engine's resubmission budget."""

    def __init__(self, attempts: int, last: Exception) -> None:
        self.attempts = int(attempts)
        self.last = last
        super().__init__(
            f"sweep task failed {attempts} consecutive attempt(s); "
            f"retry budget exhausted (last: {last})"
        )


class ProfilingDegradedError(FaultError, ProfilingError):
    """Repeated profiling samples disagreed beyond the majority policy.

    Raised instead of returning critical power values that would feed a
    silently wrong allocation into COORD.
    """

    def __init__(self, site: str, samples: tuple[float, ...]) -> None:
        self.site = site
        self.samples = tuple(float(s) for s in samples)
        super().__init__(
            f"no strict majority among {len(samples)} profiling samples at "
            f"{site!r}; measurement too noisy to trust"
        )
