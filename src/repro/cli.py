"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``list`` — platforms, workloads, and experiments available;
* ``profile`` — print (or export as JSON) a workload's critical power
  values on a platform;
* ``coord`` — run COORD for a workload and budget, optionally execute and
  report performance;
* ``sweep`` — print a Figure-3 style allocation profile;
* ``experiment`` — regenerate a paper artifact and print its tables;
* ``chaos`` — run the fault-injection contract battery for a fault plan;
* ``fleet`` — drive an arrival trace through the event-driven fleet
  simulator (``docs/scheduling.md``);
* ``serve`` — run the micro-batched coordination server.

Fault plans can also be armed globally for any command by pointing the
``REPRO_FAULTS`` environment variable at a plan JSON file; resolution
happens here in :func:`main` (never inside the engine) so the library
layers stay environment-free.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import __version__
from repro.config import to_json
from repro.core.coord import coord_cpu
from repro.core.parallel import SweepEngine
from repro.core.coord_gpu import apply_gpu_decision, coord_gpu
from repro.core.profiler import profile_cpu_workload, profile_gpu_workload
from repro.core.sweep import sweep_cpu_allocations, sweep_gpu_allocations
from repro.errors import ReproError
from repro.experiments import list_experiments, run_experiment
from repro.faults.injector import FAULTS_ENV_VAR, use_faults
from repro.faults.plan import FaultPlan
from repro.hardware.gpu import GpuCard
from repro.hardware.node import ComputeNode
from repro.hardware.nvml import NvmlDevice
from repro.hardware.platforms import get_platform, list_platforms
from repro.lint.cli import add_lint_arguments, run_from_args as run_lint_from_args
from repro.perfmodel.executor import execute_on_gpu, execute_on_host
from repro.util.ascii_plot import sparkline
from repro.util.tables import format_table
from repro.workloads import get_workload, list_workloads

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cross-component power coordination on power-bounded systems",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list platforms, workloads, experiments")

    p = sub.add_parser("profile", help="extract critical power values")
    p.add_argument("workload")
    p.add_argument("--platform", default=None, help="default: ivybridge / titan-xp")
    p.add_argument("--json", action="store_true", help="emit JSON")

    p = sub.add_parser("coord", help="coordinate a budget for a workload")
    p.add_argument("workload")
    p.add_argument("budget", type=float, help="total power budget in watts")
    p.add_argument("--platform", default=None)
    p.add_argument("--execute", action="store_true", help="run under the allocation")

    p = sub.add_parser("sweep", help="allocation profile at one budget")
    p.add_argument("workload")
    p.add_argument("budget", type=float)
    p.add_argument("--platform", default=None)
    p.add_argument("--step", type=float, default=8.0)
    p.add_argument(
        "--jobs", type=int, default=None,
        help="parallel sweep workers (default: $REPRO_JOBS, else auto)",
    )
    _add_engine_arguments(p)

    p = sub.add_parser(
        "lint",
        help="run the repro invariant linter (RPL001-RPL005)",
        description="AST-based invariant checks over the repro codebase",
    )
    add_lint_arguments(p)

    p = sub.add_parser("experiment", help="regenerate a paper artifact")
    p.add_argument("artifact", help="fig1..fig9, table1, ablation, or 'all'")
    p.add_argument("--fast", action="store_true", help="coarser sweeps")
    p.add_argument(
        "--jobs", type=int, default=None,
        help="parallel sweep workers (default: $REPRO_JOBS, else auto)",
    )
    _add_engine_arguments(p)

    p = sub.add_parser(
        "chaos",
        help="run the fault-injection contract battery",
        description=(
            "Runs every public API clean and under the given fault plan, and "
            "verifies the degradation contract: results are bit-identical to "
            "the clean run or the degradation is typed.  Exits nonzero iff "
            "the contract is violated."
        ),
    )
    p.add_argument("--plan", required=True, help="path to a fault plan JSON file")
    p.add_argument(
        "--scale", choices=("smoke", "fig9"), default="fig9",
        help="battery size: CI-sized 'smoke' or the paper-scale 'fig9' grids "
             "(default: fig9)",
    )
    p.add_argument("--json", action="store_true", help="emit the report as JSON")

    p = sub.add_parser(
        "fleet",
        help="trace-driven fleet simulation over heterogeneous nodes",
        description=(
            "Drives a synthetic or file-backed arrival trace through the "
            "event-driven FleetSimulator: quantized grants, batched "
            "allocation rounds through the sweep engine, and optional "
            "periodic water-filling budget re-splits.  See "
            "docs/scheduling.md."
        ),
    )
    p.add_argument(
        "--trace", default=None,
        help="trace file (see repro.sched.traces); default: a seeded "
             "synthetic Poisson trace",
    )
    p.add_argument("--nodes", type=int, default=64, help="fleet size (default: 64)")
    p.add_argument(
        "--bound", type=float, default=None,
        help="global power bound in watts (default: 120 W per node)",
    )
    p.add_argument(
        "--interval", type=float, default=0.0,
        help="budget re-split period in seconds; 0 disables (default: 0)",
    )
    p.add_argument(
        "--gen-jobs", type=int, default=500,
        help="synthetic trace length when --trace is absent (default: 500)",
    )
    p.add_argument(
        "--rate", type=float, default=2.0,
        help="synthetic trace arrival rate in jobs/s (default: 2.0)",
    )
    p.add_argument("--seed", type=int, default=42, help="synthetic trace seed")
    p.add_argument(
        "--jobs", type=int, default=None,
        help="parallel sweep workers (default: $REPRO_JOBS, else auto)",
    )
    _add_engine_arguments(p)

    p = sub.add_parser(
        "serve",
        help="run the coordination server (micro-batched, warm engine)",
        description=(
            "Long-lived allocation daemon: newline-delimited JSON over TCP, "
            "concurrent queries coalesced into micro-batched kernel passes "
            "against one warm engine.  Every REPRO_SERVE_* environment knob "
            "is overridable by the matching flag.  See docs/serving.md."
        ),
    )
    p.add_argument("--host", default=None, help="bind address (default: $REPRO_SERVE_HOST, else 127.0.0.1)")
    p.add_argument("--port", type=int, default=None, help="bind port, 0 for ephemeral (default: $REPRO_SERVE_PORT, else 7077)")
    p.add_argument(
        "--max-batch", type=int, default=None,
        help="flush the admission queue at this depth; 1 disables batching "
             "(default: $REPRO_SERVE_MAX_BATCH, else 32)",
    )
    p.add_argument(
        "--max-wait-us", type=int, default=None,
        help="flush the admission queue after this many microseconds "
             "(default: $REPRO_SERVE_MAX_WAIT_US, else 2000)",
    )
    p.add_argument(
        "--resolvers", type=int, default=None,
        help="resolver threads draining flushes (default: $REPRO_SERVE_RESOLVERS, else 1)",
    )
    p.add_argument(
        "--stats-interval", type=float, default=None,
        help="seconds between stats log lines, 0 disables "
             "(default: $REPRO_SERVE_STATS_INTERVAL, else 0)",
    )
    p.add_argument(
        "--smoke", action="store_true",
        help="start, drive a concurrent TCP burst, assert clean shutdown",
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="parallel sweep workers (default: $REPRO_JOBS, else auto)",
    )
    _add_engine_arguments(p)
    return parser


def _add_engine_arguments(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--sweep-mode", choices=("full", "adaptive"), default=None,
        help="sweep strategy: 'full' grids or the adaptive planner "
             "(default: $REPRO_SWEEP, else full)",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="persistent cross-process sweep cache root "
             "(default: $REPRO_CACHE_DIR, else no disk cache)",
    )


def _make_engine(args: argparse.Namespace) -> SweepEngine | None:
    if args.jobs is None and args.sweep_mode is None and args.cache_dir is None:
        return None
    return SweepEngine(
        n_jobs=args.jobs, mode=args.sweep_mode, cache_dir=args.cache_dir
    )


def _resolve(workload_name: str, platform_name: str | None):
    workload = get_workload(workload_name)
    if platform_name is None:
        platform_name = "ivybridge" if workload.device == "cpu" else "titan-xp"
    platform = get_platform(platform_name)
    if workload.device == "cpu" and not isinstance(platform, ComputeNode):
        raise ReproError(
            f"workload {workload.name!r} needs a CPU node, got {platform_name!r}"
        )
    if workload.device == "gpu" and not isinstance(platform, GpuCard):
        raise ReproError(
            f"workload {workload.name!r} needs a GPU card, got {platform_name!r}"
        )
    return workload, platform


def _cmd_list() -> int:
    print("platforms: ", ", ".join(list_platforms()))
    print("cpu workloads: ", ", ".join(list_workloads("cpu")))
    print("gpu workloads: ", ", ".join(list_workloads("gpu")))
    print("experiments: ", ", ".join(list_experiments()))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    workload, platform = _resolve(args.workload, args.platform)
    if workload.device == "cpu":
        critical = profile_cpu_workload(platform.cpu, platform.dram, workload)
    else:
        critical = profile_gpu_workload(platform, workload)
    if args.json:
        print(to_json(critical))
    else:
        for key, value in critical.as_dict().items():
            print(f"{key:>10s}: {value:8.1f} W")
    return 0


def _cmd_coord(args: argparse.Namespace) -> int:
    workload, platform = _resolve(args.workload, args.platform)
    if workload.device == "cpu":
        critical = profile_cpu_workload(platform.cpu, platform.dram, workload)
        decision = coord_cpu(critical, args.budget)
        print(f"status: {decision.status.value}")
        print(f"allocation: {decision.allocation}")
        if decision.surplus_w > 0:
            print(f"reclaimable surplus: {decision.surplus_w:.1f} W")
        if not decision.accepted:
            print(f"(productive threshold: {critical.productive_threshold_w:.1f} W)")
            return 1
        if args.execute:
            result = execute_on_host(
                platform.cpu, platform.dram, workload.phases,
                decision.allocation.proc_w, decision.allocation.mem_w,
            )
            print(f"performance: {workload.performance(result):.4g} "
                  f"{workload.metric_unit}")
            print(f"actual power: {result.total_power_w:.1f} W "
                  f"(bound respected: {result.respects_bound})")
    else:
        critical = profile_gpu_workload(platform, workload)
        decision = coord_gpu(critical, args.budget, hardware_max_w=platform.max_cap_w)
        device = NvmlDevice(platform)
        mem_op = apply_gpu_decision(device, decision, args.budget)
        print(f"status: {decision.status.value}")
        print(f"allocation: {decision.allocation} "
              f"(memory clock {mem_op.freq_mhz:.0f} MHz)")
        if args.execute:
            result = execute_on_gpu(
                platform, workload.phases, device.read_power_limit_w(),
                mem_op.freq_mhz,
            )
            print(f"performance: {workload.performance(result):.4g} "
                  f"{workload.metric_unit}")
            print(f"actual power: {result.total_power_w:.1f} W")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    workload, platform = _resolve(args.workload, args.platform)
    engine = _make_engine(args)
    if workload.device == "cpu":
        sweep = sweep_cpu_allocations(
            platform.cpu, platform.dram, workload, args.budget, step_w=args.step,
            engine=engine,
        )
        rows = [
            (p.allocation.mem_w, p.allocation.proc_w, p.performance,
             p.actual_total_w, p.scenario.roman)
            for p in sweep.points
        ]
        headers = ["P_mem (W)", "P_cpu (W)", f"perf ({workload.metric_unit})",
                   "actual (W)", "cat."]
    else:
        sweep = sweep_gpu_allocations(platform, workload, args.budget, engine=engine)
        rows = [
            (f, a, p, r.actual_total_w, r.scenario.roman)
            for f, a, p, r in zip(
                sweep.mem_freqs_mhz, sweep.mem_alloc_w,
                sweep.performances, sweep.points,
            )
        ]
        headers = ["mem clk (MHz)", "P_mem est. (W)",
                   f"perf ({workload.metric_unit})", "actual (W)", "cat."]
    print(format_table(headers, rows, float_spec=".4g"))
    perfs = [r[2] for r in rows]
    print(f"\nshape: {sparkline(perfs)}")
    best = sweep.best
    print(f"best: {best.allocation} -> {best.performance:.4g} "
          f"{workload.metric_unit}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.contract import run_chaos

    plan = FaultPlan.load(args.plan)
    report = run_chaos(plan, scale=args.scale)
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    artifacts = list_experiments() if args.artifact == "all" else [args.artifact]
    # One engine across artifacts so 'all' shares the memo cache.
    engine = _make_engine(args)
    for artifact in artifacts:
        report = run_experiment(artifact, fast=args.fast, engine=engine)
        print(report.render())
        print()
    if engine is not None:
        engine.flush()
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.sched import FleetSimulator
    from repro.sched.traces import poisson_trace, read_trace

    if args.trace is not None:
        trace = read_trace(args.trace)
        source = args.trace
    else:
        trace = poisson_trace(
            n_jobs=args.gen_jobs, rate_per_s=args.rate, seed=args.seed
        )
        source = (
            f"synthetic poisson (n={args.gen_jobs}, rate={args.rate}/s, "
            f"seed={args.seed})"
        )
    bound = args.bound if args.bound is not None else 120.0 * args.nodes
    sim = FleetSimulator(
        trace,
        n_nodes=args.nodes,
        global_bound_w=bound,
        resplit_interval_s=args.interval,
        engine=_make_engine(args),
    )
    stats = sim.run()
    print(f"trace: {source} ({len(trace)} jobs)")
    print(f"fleet: {stats.n_nodes} nodes under {bound:.0f} W "
          f"(re-split every {args.interval:.0f} s)" if args.interval > 0
          else f"fleet: {stats.n_nodes} nodes under {bound:.0f} W")
    rows = [
        ("completed", str(stats.n_completed)),
        ("rejected", str(stats.n_rejected)),
        ("makespan (s)", f"{stats.makespan_s:.1f}"),
        ("throughput (jobs/h)", f"{stats.throughput_jobs_per_hour:.1f}"),
        ("mean wait (s)", f"{stats.mean_wait_s:.2f}"),
        ("total energy (MJ)", f"{stats.total_energy_j / 1e6:.2f}"),
        ("peak charged (W)", f"{stats.peak_charged_w:.0f}"),
        ("budget re-splits", str(stats.n_resplits)),
        ("grants re-timed", str(stats.n_retimed)),
        ("missed-budget holds", str(stats.n_missed_budget)),
        ("allocation rounds", str(stats.n_rounds)),
        ("kernel passes", str(stats.n_kernel_passes)),
        ("events dispatched", str(stats.n_events)),
    ]
    print(format_table(["metric", "value"], rows))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import ServeConfig, run_server, run_smoke

    base = ServeConfig.from_env()
    config = ServeConfig(
        host=args.host if args.host is not None else base.host,
        port=args.port if args.port is not None else base.port,
        max_batch=args.max_batch if args.max_batch is not None else base.max_batch,
        max_wait_us=(
            args.max_wait_us if args.max_wait_us is not None else base.max_wait_us
        ),
        stats_interval_s=(
            args.stats_interval
            if args.stats_interval is not None
            else base.stats_interval_s
        ),
        n_resolvers=args.resolvers if args.resolvers is not None else base.n_resolvers,
    )
    if args.smoke:
        # Smoke always binds an ephemeral port: CI runs must not collide.
        run_smoke(
            ServeConfig(
                host=config.host,
                port=0,
                max_batch=config.max_batch,
                max_wait_us=config.max_wait_us,
                stats_interval_s=0.0,
                n_resolvers=config.n_resolvers,
            )
        )
        return 0
    run_server(config, engine=_make_engine(args))
    return 0


def _dispatch(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "coord":
        return _cmd_coord(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "lint":
        return run_lint_from_args(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "serve":
        return _cmd_serve(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 0  # pragma: no cover


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    ``REPRO_FAULTS=<plan.json>`` arms the named fault plan process-wide
    for the duration of the command — the library never reads the
    environment itself (``chaos`` ignores the variable: its battery arms
    its own injectors from ``--plan``).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        plan_path = os.environ.get(FAULTS_ENV_VAR)
        if plan_path and args.command != "chaos":
            with use_faults(FaultPlan.load(plan_path)):
                return _dispatch(parser, args)
        return _dispatch(parser, args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
