"""Shared utilities: unit validation, deterministic RNG, and ASCII tables."""

from repro.util.units import (
    GHZ,
    GIB,
    MHZ,
    WATT,
    as_gbps,
    as_ghz,
    as_watts,
    check_fraction,
    check_non_negative,
    check_positive,
    clamp,
    ghz_to_hz,
    hz_to_ghz,
    joules,
    watts,
)
from repro.util.tables import format_series, format_table
from repro.util.ascii_plot import block_chart, sparkline
from repro.util.seeds import derive_seed, spawn_rng

__all__ = [
    "GHZ",
    "GIB",
    "MHZ",
    "WATT",
    "as_gbps",
    "as_ghz",
    "as_watts",
    "block_chart",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "clamp",
    "derive_seed",
    "format_series",
    "format_table",
    "ghz_to_hz",
    "hz_to_ghz",
    "joules",
    "sparkline",
    "spawn_rng",
    "watts",
]
