"""Plain-text rendering for experiment tables and data series.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output consistent and readable in a
terminal (no plotting dependencies are available offline).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def _cell(value: object, spec: str | None) -> str:
    if value is None:
        return "-"
    if spec and isinstance(value, (int, float)) and not isinstance(value, bool):
        return format(value, spec)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_spec: str = ".3f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Numeric cells are formatted with ``float_spec``; ``None`` renders as ``-``.
    """
    rendered = [[_cell(v, float_spec) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    float_spec: str = ".3f",
    title: str | None = None,
) -> str:
    """Render paired (x, y) samples — one figure series — as a two-column table."""
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} x vs {len(ys)} y")
    return format_table(
        [x_label, y_label], zip(xs, ys), float_spec=float_spec, title=title
    )
