"""Physical-unit helpers and validation.

The library works internally in SI-ish engineering units:

* power in **watts** (W)
* frequency in **gigahertz** (GHz) for CPU/GPU clocks
* bandwidth in **gigabytes per second** (GB/s, decimal)
* energy in **joules** (J)
* time in **seconds** (s)

These helpers centralize validation so that a negative wattage or a NaN clock
is rejected at the point of construction rather than surfacing as a confusing
downstream result.
"""

from __future__ import annotations

import math

from repro.errors import UnitError

#: One watt, the unit of power used throughout the library.
WATT = 1.0
#: One gigahertz, the unit for processor clocks.
GHZ = 1.0
#: One megahertz expressed in GHz.
MHZ = 1.0e-3
#: One gibibyte in bytes (used for memory sizing).
GIB = 1024**3

__all__ = [
    "GHZ",
    "GIB",
    "MHZ",
    "WATT",
    "approx_equal",
    "as_gbps",
    "as_ghz",
    "as_watts",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "clamp",
    "ghz_to_hz",
    "hz_to_ghz",
    "joules",
    "watts",
    "watts_close",
]


def _check_finite(value: float, name: str) -> float:
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise UnitError(f"{name} must be finite, got {value!r}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite, strictly positive float."""
    value = _check_finite(value, name)
    if value <= 0.0:
        raise UnitError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite float >= 0."""
    value = _check_finite(value, name)
    if value < 0.0:
        raise UnitError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = _check_finite(value, name)
    if not 0.0 <= value <= 1.0:
        raise UnitError(f"{name} must be within [0, 1], got {value!r}")
    return value


def watts(value: float, name: str = "power") -> float:
    """Validate a power value in watts (must be finite and non-negative)."""
    return check_non_negative(value, name)


def joules(value: float, name: str = "energy") -> float:
    """Validate an energy value in joules (must be finite and non-negative)."""
    return check_non_negative(value, name)


def as_watts(value: float, name: str = "power") -> float:
    """Alias of :func:`watts` used where intent reads better as a conversion."""
    return watts(value, name)


def as_ghz(value: float, name: str = "frequency") -> float:
    """Validate a clock frequency in GHz (must be finite and positive)."""
    return check_positive(value, name)


def as_gbps(value: float, name: str = "bandwidth") -> float:
    """Validate a bandwidth in GB/s (must be finite and non-negative)."""
    return check_non_negative(value, name)


def ghz_to_hz(value_ghz: float) -> float:
    """Convert GHz to Hz."""
    return float(value_ghz) * 1.0e9


def hz_to_ghz(value_hz: float) -> float:
    """Convert Hz to GHz."""
    return float(value_hz) / 1.0e9


def approx_equal(
    a: float, b: float, *, rel_tol: float = 1e-9, abs_tol: float = 1e-9
) -> bool:
    """Tolerant equality for physical quantities.

    Exact ``==`` on modeled floats is a latent bug (values flow through
    multiplicative models and parallel reduction orders); the linter's
    RPL003 rule directs all quantity comparisons here.
    """
    return math.isclose(float(a), float(b), rel_tol=rel_tol, abs_tol=abs_tol)


def watts_close(a: float, b: float, *, tol_w: float = 1e-6) -> bool:
    """Whether two power values agree to within ``tol_w`` watts.

    The absolute tolerance (default 1 µW) suits the library's watt-scale
    magnitudes better than a relative test near zero.
    """
    return abs(float(a) - float(b)) <= tol_w


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into the closed interval ``[lo, hi]``.

    Raises :class:`~repro.errors.UnitError` if the interval is inverted.
    """
    if lo > hi:
        raise UnitError(f"clamp interval inverted: [{lo!r}, {hi!r}]")
    return min(max(float(value), lo), hi)
