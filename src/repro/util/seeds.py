"""Deterministic random-number management.

Everything stochastic in the library (synthetic workload generation, kernel
input data, scheduler arrival jitter) flows through :func:`spawn_rng` so that
every experiment is reproducible from a single integer seed, and independent
subsystems get independent streams via :func:`derive_seed`.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "spawn_rng", "DEFAULT_SEED"]

#: Seed used when callers do not supply one; fixed so repeated runs agree.
DEFAULT_SEED = 0x5EED_2016


def derive_seed(base_seed: int, *labels: str) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of string labels.

    Uses SHA-256 over the base seed and labels, so distinct label paths give
    statistically independent, platform-stable streams (unlike ``hash()``,
    which is salted per process).
    """
    h = hashlib.sha256()
    h.update(int(base_seed).to_bytes(16, "little", signed=False))
    for label in labels:
        h.update(b"\x00")
        h.update(label.encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little")


def spawn_rng(base_seed: int = DEFAULT_SEED, *labels: str) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for the given seed path."""
    return np.random.default_rng(derive_seed(base_seed, *labels))
