"""Terminal-friendly plotting: sparklines and block charts.

The experiments report their rows/series as tables; these helpers add a
shape-at-a-glance rendering for terminals (no plotting stack is available
offline).  Used by the CLI's sweep view and handy in notebooks/logs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["sparkline", "block_chart"]

#: Eight-level vertical bar glyphs.
_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, lo: float | None = None,
              hi: float | None = None) -> str:
    """One-line sparkline of a series (▁▂▃▄▅▆▇█).

    ``lo``/``hi`` pin the scale (default: the series' own range); a flat
    series renders at mid height.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ConfigurationError("cannot sparkline an empty series")
    if not np.all(np.isfinite(data)):
        raise ConfigurationError("sparkline values must be finite")
    lo = float(data.min()) if lo is None else float(lo)
    hi = float(data.max()) if hi is None else float(hi)
    if hi <= lo:
        return _BARS[3] * data.size
    scaled = (data - lo) / (hi - lo)
    idx = np.clip((scaled * (len(_BARS) - 1)).round().astype(int), 0, len(_BARS) - 1)
    return "".join(_BARS[i] for i in idx)


def block_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    unit: str = "",
) -> str:
    """A horizontal bar chart with labels and values, one row per entry."""
    if len(labels) != len(values):
        raise ConfigurationError(
            f"labels/values length mismatch: {len(labels)} vs {len(values)}"
        )
    if not values:
        raise ConfigurationError("cannot chart an empty series")
    data = np.asarray(list(values), dtype=float)
    if not np.all(np.isfinite(data)) or np.any(data < 0):
        raise ConfigurationError("block chart values must be finite and >= 0")
    top = float(data.max())
    label_w = max(len(str(lab)) for lab in labels)
    lines = []
    for label, value in zip(labels, data):
        filled = 0 if top == 0 else int(round(width * value / top))
        bar = "█" * filled + "·" * (width - filled)
        lines.append(f"{str(label).rjust(label_w)} |{bar}| {value:.4g}{unit}")
    return "\n".join(lines)
