"""The 11 CPU benchmarks of the paper's Table 3 (HPCC, NPB, STREAM).

Each benchmark is characterized by per-phase arithmetic intensity, access
pattern efficiency, and activity factors.  Compute efficiencies are derived
from the target *compute utilization at full power on the reference
IvyBridge platform* via :func:`_ceff_for_utilization` — i.e. the same
balance bookkeeping a profiling run would produce: a benchmark whose
utilization is 0.85 at full power spends 85 % of a memory-bound phase's
time issuing work and the rest stalled.

Calibration anchors (paper text):

* RandomAccess draws ≈ 108–112 W on the packages and ≈ 116 W on DRAM at
  full power; STREAM's node demand lands near the 208 W budget Figure 1
  uses; DGEMM's near the ≈ 240 W where Figure 2 flattens.
* DGEMM is compute-intensive (activity ≈ 1), STREAM/SRA memory-intensive,
  the NPB codes in between, several of them multi-phase (BT, MG, FT) which
  is what makes their profile curves "less regular" (Section 6.2).
"""

from __future__ import annotations

from repro.errors import UnknownWorkloadError
from repro.perfmodel.phase import Phase
from repro.workloads.base import MetricKind, Workload, WorkloadClass

__all__ = ["CPU_WORKLOADS", "REF_PEAK_FLOPS", "REF_PEAK_BW", "cpu_workload", "list_cpu_workloads"]

#: Reference IvyBridge compute roof: 20 cores × 2.5 GHz × 8 FLOP/cycle.
REF_PEAK_FLOPS = 20 * 2.5e9 * 8.0
#: Reference IvyBridge bandwidth roof (streaming peak).
REF_PEAK_BW = 80.0e9


def _ceff_for_utilization(
    intensity: float, memory_efficiency: float, utilization: float
) -> float:
    """Compute efficiency that yields ``utilization`` at full reference power.

    For a memory-bound phase, utilization is ``t_c / t_m``; solving the
    roofline for the compute rate gives
    ``R_c = intensity · R_m / utilization`` and dividing by the peak
    compute rate yields the efficiency.
    """
    mem_rate = REF_PEAK_BW * memory_efficiency
    return intensity * mem_rate / (utilization * REF_PEAK_FLOPS)


def _w(
    name: str,
    description: str,
    workload_class: WorkloadClass,
    phases: tuple[Phase, ...],
    metric: MetricKind,
    suite: str = "npb",
    work_units: float | None = None,
) -> Workload:
    if metric is MetricKind.MOPS and work_units is None:
        # NPB reports Mop/s over total operations issued.
        work_units = sum(p.flops for p in phases)
    return Workload(
        name=name,
        suite=suite,
        description=description,
        device="cpu",
        workload_class=workload_class,
        phases=phases,
        metric=metric,
        work_units=work_units,
    )


def _sra() -> Workload:
    """HPCC star RandomAccess: 5×10⁸ table updates, 128 B of traffic each."""
    updates = 5.0e8
    bytes_moved = updates * 128.0
    intensity = updates / bytes_moved
    phase = Phase(
        name="update",
        flops=updates,
        bytes_moved=bytes_moved,
        activity=0.55,
        stall_activity=0.48,  # deep MLP keeps miss queues/uncore hot: ~112 W pkg
        # Utilization 0.75 at full power: the update loop has CPU slack, so
        # shifting watts CPU->DRAM costs little while DRAM->CPU is brutal —
        # the paper's 50%-vs-10% +/-24 W asymmetry (Section 3.4.2).
        compute_efficiency=_ceff_for_utilization(intensity, 0.08, 0.75),
        memory_efficiency=0.08,  # full cache-line fetch per 8-byte update
    )
    return _w(
        "sra",
        "Embarrassingly parallel, random memory access",
        WorkloadClass.RANDOM_ACCESS,
        (phase,),
        MetricKind.GUPS,
        suite="hpcc",
        work_units=updates,
    )


def _stream() -> Workload:
    """UVA STREAM triad: 2 FLOPs per 24 bytes, long unit-stride vectors."""
    bytes_moved = 680.0e9
    intensity = 2.0 / 24.0
    phase = Phase(
        name="triad",
        flops=intensity * bytes_moved,
        bytes_moved=bytes_moved,
        activity=0.40,
        stall_activity=0.30,
        compute_efficiency=_ceff_for_utilization(intensity, 0.85, 0.80),
        memory_efficiency=0.85,
    )
    return _w(
        "stream",
        "Synthetic, measuring memory bandwidth",
        WorkloadClass.MEMORY_INTENSIVE,
        (phase,),
        MetricKind.GBPS,
        suite="stream",
    )


def _dgemm() -> Workload:
    """HPCC EP-DGEMM: blocked matrix multiply, ~16 FLOPs per byte of traffic."""
    flops = 2.88e12
    phase = Phase(
        name="gemm",
        flops=flops,
        bytes_moved=flops / 16.0,
        activity=1.00,  # dense AVX FMA streams switch nearly every lane
        stall_activity=0.25,
        compute_efficiency=0.72,
        memory_efficiency=0.80,
    )
    return _w(
        "dgemm",
        "Matrix multiplication, compute intensive",
        WorkloadClass.COMPUTE_INTENSIVE,
        (phase,),
        MetricKind.GFLOPS,
        suite="hpcc",
    )


def _bt() -> Workload:
    """NPB BT: block tri-diagonal solver; heavy solves plus a streaming RHS."""
    solve = Phase(
        name="solve",
        flops=7.2e11,
        bytes_moved=7.2e11 / 5.0,
        activity=0.85,
        stall_activity=0.30,
        compute_efficiency=0.30,
        memory_efficiency=0.70,
    )
    rhs = Phase(
        name="rhs",
        flops=2.4e11,
        bytes_moved=2.4e11,
        activity=0.70,
        stall_activity=0.40,
        compute_efficiency=_ceff_for_utilization(1.0, 0.75, 0.75),
        memory_efficiency=0.75,
    )
    return _w(
        "bt",
        "Block Tri-diagonal solver, compute intensive",
        WorkloadClass.COMPUTE_INTENSIVE,
        (solve, rhs),
        MetricKind.MOPS,
    )


def _sp() -> Workload:
    """NPB SP: scalar penta-diagonal solver; sweeps plus RHS, mixed character."""
    sweeps = Phase(
        name="sweeps",
        flops=1.4 * 3.2e11,
        bytes_moved=3.2e11,
        activity=0.75,
        stall_activity=0.42,
        compute_efficiency=_ceff_for_utilization(1.4, 0.80, 0.90),
        memory_efficiency=0.80,
    )
    rhs = Phase(
        name="rhs",
        flops=0.7 * 1.9e11,
        bytes_moved=1.9e11,
        activity=0.60,
        stall_activity=0.42,
        compute_efficiency=_ceff_for_utilization(0.7, 0.80, 0.55),
        memory_efficiency=0.80,
    )
    return _w(
        "sp",
        "Scalar Penta-diagonal solver, compute/memory",
        WorkloadClass.MIXED,
        (sweeps, rhs),
        MetricKind.MOPS,
    )


def _lu() -> Workload:
    """NPB LU: Gauss-Seidel SSOR; dependence-limited solves plus RHS."""
    ssor = Phase(
        name="jacld-blts",
        flops=2.0 * 2.6e11,
        bytes_moved=2.6e11,
        activity=0.80,
        stall_activity=0.40,
        compute_efficiency=_ceff_for_utilization(2.0, 0.65, 0.95),
        memory_efficiency=0.65,
    )
    rhs = Phase(
        name="rhs-l2",
        flops=0.8 * 1.6e11,
        bytes_moved=1.6e11,
        activity=0.60,
        stall_activity=0.40,
        compute_efficiency=_ceff_for_utilization(0.8, 0.70, 0.60),
        memory_efficiency=0.70,
    )
    return _w(
        "lu",
        "Lower-Upper Gauss-Seidel solver, compute/memory",
        WorkloadClass.MIXED,
        (ssor, rhs),
        MetricKind.MOPS,
    )


def _ep() -> Workload:
    """NPB EP: pseudo-random number generation, almost no memory traffic."""
    flops = 1.2e12
    phase = Phase(
        name="gaussian-pairs",
        flops=flops,
        bytes_moved=flops / 200.0,
        activity=0.85,
        stall_activity=0.20,
        compute_efficiency=0.30,  # transcendental-heavy, modest IPC
        memory_efficiency=0.80,
    )
    return _w(
        "ep",
        "Embarrassingly Parallel, compute intensive",
        WorkloadClass.COMPUTE_INTENSIVE,
        (phase,),
        MetricKind.MOPS,
    )


def _is() -> Workload:
    """NPB IS: bucketed integer sort, scatter-dominated memory traffic."""
    bytes_moved = 2.0e11
    intensity = 0.04
    phase = Phase(
        name="rank",
        flops=intensity * bytes_moved,
        bytes_moved=bytes_moved,
        activity=0.50,
        stall_activity=0.42,
        compute_efficiency=_ceff_for_utilization(intensity, 0.25, 0.55),
        memory_efficiency=0.25,
    )
    return _w(
        "is",
        "Integer Sort, random memory access",
        WorkloadClass.RANDOM_ACCESS,
        (phase,),
        MetricKind.MOPS,
    )


def _cg() -> Workload:
    """NPB CG: sparse mat-vec with gathers, irregular memory access."""
    bytes_moved = 2.8e11
    intensity = 0.30
    phase = Phase(
        name="spmv",
        flops=intensity * bytes_moved,
        bytes_moved=bytes_moved,
        activity=0.55,
        stall_activity=0.45,
        compute_efficiency=_ceff_for_utilization(intensity, 0.35, 0.60),
        memory_efficiency=0.35,
    )
    return _w(
        "cg",
        "Conjugate Gradient, irregular memory access",
        WorkloadClass.RANDOM_ACCESS,
        (phase,),
        MetricKind.MOPS,
    )


def _ft() -> Workload:
    """NPB FT: 3-D FFT; compute-rich butterflies plus an all-to-all transpose."""
    fft = Phase(
        name="fft",
        flops=1.7 * 2.56e11,
        bytes_moved=2.56e11,
        activity=0.80,
        stall_activity=0.35,
        compute_efficiency=_ceff_for_utilization(1.7, 0.80, 0.90),
        memory_efficiency=0.80,
    )
    transpose = Phase(
        name="transpose",
        flops=0.02 * 1.76e11,
        bytes_moved=1.76e11,
        activity=0.45,
        stall_activity=0.40,
        compute_efficiency=_ceff_for_utilization(0.02, 0.55, 0.25),
        memory_efficiency=0.55,
    )
    return _w(
        "ft",
        "Discrete 3D fast Fourier Transform, compute/memory",
        WorkloadClass.MIXED,
        (fft, transpose),
        MetricKind.MOPS,
    )


def _mg() -> Workload:
    """NPB MG: multigrid V-cycles; bandwidth-hungry smoother and residual."""
    smooth = Phase(
        name="smooth",
        flops=0.28 * 2.2e11,
        bytes_moved=2.2e11,
        activity=0.50,
        stall_activity=0.42,
        compute_efficiency=_ceff_for_utilization(0.28, 0.70, 0.50),
        memory_efficiency=0.70,
    )
    resid = Phase(
        name="resid",
        flops=0.24 * 1.7e11,
        bytes_moved=1.7e11,
        activity=0.50,
        stall_activity=0.42,
        compute_efficiency=_ceff_for_utilization(0.24, 0.70, 0.45),
        memory_efficiency=0.70,
    )
    transfer = Phase(
        name="grid-transfer",
        flops=0.18 * 0.8e11,
        bytes_moved=0.8e11,
        activity=0.45,
        stall_activity=0.40,
        compute_efficiency=_ceff_for_utilization(0.18, 0.50, 0.40),
        memory_efficiency=0.50,
    )
    return _w(
        "mg",
        "Multi-Grid operation, compute/memory",
        WorkloadClass.MEMORY_INTENSIVE,
        (smooth, resid, transfer),
        MetricKind.MOPS,
    )


#: Name → workload for the paper's CPU benchmarks (Table 3, top half).
CPU_WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in (
        _sra(),
        _stream(),
        _dgemm(),
        _bt(),
        _sp(),
        _lu(),
        _ep(),
        _is(),
        _cg(),
        _ft(),
        _mg(),
    )
}


def list_cpu_workloads() -> tuple[str, ...]:
    """Names of the CPU benchmarks, in Table 3 order."""
    return tuple(CPU_WORKLOADS)


def cpu_workload(name: str) -> Workload:
    """Look up a CPU benchmark by name."""
    try:
        return CPU_WORKLOADS[name.lower()]
    except KeyError:
        raise UnknownWorkloadError(
            f"unknown CPU workload {name!r}; available: {sorted(CPU_WORKLOADS)}"
        ) from None
