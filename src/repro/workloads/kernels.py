"""Executable NumPy kernels with analytic op/byte accounting.

These are miniature, runnable versions of the Table 3 benchmarks.  They
serve two purposes:

* keep the characterized arithmetic intensities of the suites honest — the
  tests compare each suite entry's intensity against its kernel's analytic
  ratio;
* give the examples something real to run end-to-end (generate a workload
  trace, characterize it, coordinate power for it).

Accounting is analytic (operations and minimum memory traffic implied by
the algorithm), since portable Python cannot read hardware counters.  Every
kernel is deterministic for a given seed and returns a checksum so tests
can assert the computation actually happened.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.util.seeds import spawn_rng

__all__ = [
    "KernelReport",
    "KERNELS",
    "dgemm_kernel",
    "ep_kernel",
    "fft_kernel",
    "integer_sort_kernel",
    "multigrid_kernel",
    "random_access_kernel",
    "run_kernel",
    "spmv_kernel",
    "stencil_kernel",
    "stream_triad_kernel",
]


@dataclass(frozen=True)
class KernelReport:
    """Outcome of one kernel run: timing plus analytic work accounting."""

    name: str
    elapsed_s: float
    flops: float
    bytes_moved: float
    checksum: float

    @property
    def intensity(self) -> float:
        """Analytic arithmetic intensity in operations per byte."""
        return self.flops / self.bytes_moved if self.bytes_moved else float("inf")


def _report(name: str, t0: float, flops: float, bytes_moved: float, checksum: float) -> KernelReport:
    return KernelReport(
        name=name,
        elapsed_s=max(time.perf_counter() - t0, 1e-9),
        flops=float(flops),
        bytes_moved=float(bytes_moved),
        checksum=float(checksum),
    )


def stream_triad_kernel(n: int = 2_000_000, seed: int = 0) -> KernelReport:
    """STREAM triad ``a = b + s·c``: 2 FLOPs and 24 bytes per element."""
    rng = spawn_rng(seed, "stream")
    b = rng.random(n)
    c = rng.random(n)
    s = 3.0
    t0 = time.perf_counter()
    a = b + s * c
    return _report("stream", t0, 2.0 * n, 24.0 * n, float(a[::max(1, n // 997)].sum()))


def dgemm_kernel(n: int = 256, seed: int = 0) -> KernelReport:
    """Square DGEMM: 2n³ FLOPs; traffic modelled as blocked (≈16 FLOP/B)."""
    rng = spawn_rng(seed, "dgemm")
    a = rng.random((n, n))
    b = rng.random((n, n))
    t0 = time.perf_counter()
    c = a @ b
    flops = 2.0 * n**3
    # Cache-blocked traffic: each operand tile re-used ~n/block times; the
    # suite characterizes DGEMM at 16 FLOP per DRAM byte, so the analytic
    # traffic here is flops / 16 (plus the compulsory 3n² array footprint).
    bytes_moved = max(flops / 16.0, 3.0 * 8.0 * n * n)
    return _report("dgemm", t0, flops, bytes_moved, float(c.trace()))


def random_access_kernel(
    table_exp: int = 20, n_updates: int = 1 << 18, seed: int = 0
) -> KernelReport:
    """HPCC RandomAccess: XOR updates at random table indices.

    Each update is one logical operation but drags a full read+write of a
    64-byte line through the memory system: 128 bytes per update.
    """
    if table_exp < 4:
        raise ConfigurationError("table_exp must be >= 4")
    rng = spawn_rng(seed, "sra")
    table = np.arange(1 << table_exp, dtype=np.uint64)
    idx = rng.integers(0, table.size, size=n_updates)
    vals = rng.integers(0, 2**63, size=n_updates, dtype=np.uint64)
    t0 = time.perf_counter()
    np.bitwise_xor.at(table, idx, vals)
    return _report(
        "sra", t0, float(n_updates), 128.0 * n_updates, float(table.sum() % 2**31)
    )


def spmv_kernel(n_rows: int = 100_000, nnz_per_row: int = 16, seed: int = 0) -> KernelReport:
    """CG-style sparse mat-vec with gathered column accesses.

    2 FLOPs per nonzero; traffic is value + column index + a gathered x
    element (mostly a full line for irregular columns): ≈ 26 B/nonzero,
    giving the ≈ 0.08–0.3 FLOP/B the suite characterizes for CG.
    """
    rng = spawn_rng(seed, "cg")
    nnz = n_rows * nnz_per_row
    cols = rng.integers(0, n_rows, size=(n_rows, nnz_per_row))
    vals = rng.random((n_rows, nnz_per_row))
    x = rng.random(n_rows)
    t0 = time.perf_counter()
    y = (vals * x[cols]).sum(axis=1)
    return _report("cg", t0, 2.0 * nnz, 26.0 * nnz, float(y.sum()))


def integer_sort_kernel(n: int = 1_000_000, seed: int = 0) -> KernelReport:
    """NPB IS-style key ranking via counting sort over random keys."""
    rng = spawn_rng(seed, "is")
    keys = rng.integers(0, 1 << 16, size=n).astype(np.int64)
    t0 = time.perf_counter()
    counts = np.bincount(keys, minlength=1 << 16)
    ranks = np.cumsum(counts)
    # ~2 ops per key (count + rank); traffic: key read + scattered count
    # line touch + rank write-back ≈ 80 B per key for random key spreads.
    checksum = float(ranks[-1] + counts.max())
    return _report("is", t0, 2.0 * n, 80.0 * n, checksum)


def ep_kernel(n: int = 500_000, seed: int = 0) -> KernelReport:
    """NPB EP: Box-Muller style Gaussian pair generation, compute-only."""
    rng = spawn_rng(seed, "ep")
    u1 = rng.random(n)
    u2 = rng.random(n)
    t0 = time.perf_counter()
    r = np.sqrt(-2.0 * np.log(u1))
    g = r * np.cos(2.0 * np.pi * u2) + r * np.sin(2.0 * np.pi * u2)
    # ~20 scalar ops per pair (log, sqrt, sin, cos expansions); results are
    # reduced in registers/cache, so DRAM traffic is ~0.5 % of the stream —
    # matching the suite's ~200 op/byte characterization for EP.
    return _report("ep", t0, 20.0 * n, 20.0 * n / 200.0, float(g.sum()))


def fft_kernel(n: int = 1 << 18, seed: int = 0) -> KernelReport:
    """1-D complex FFT: 5·n·log2(n) FLOPs over log(n)/pass traffic."""
    rng = spawn_rng(seed, "ft")
    x = rng.random(n) + 1j * rng.random(n)
    t0 = time.perf_counter()
    y = np.fft.fft(x)
    log2n = np.log2(n)
    flops = 5.0 * n * log2n
    # Out-of-cache FFTs stream the array ~log(n)/log(cache lines) times;
    # charge 3 full passes of 16 B complex elements.
    bytes_moved = 3.0 * 16.0 * n
    return _report("ft", t0, flops, bytes_moved, float(np.abs(y).sum()))


def stencil_kernel(n: int = 128, iterations: int = 2, seed: int = 0) -> KernelReport:
    """SP/BT-style structured stencil: 7-point Jacobi sweeps on a 3-D grid.

    Each sweep does ~8 FLOPs per point over ~16 B of streamed traffic
    (read the point + reuse-friendly neighbours, write the result), the
    ~0.5–1.5 FLOP/B regime of the NPB pseudo-applications.
    """
    rng = spawn_rng(seed, "sp")
    grid = rng.random((n, n, n))
    t0 = time.perf_counter()
    out = grid
    for _ in range(iterations):
        out = out.copy()
        out[1:-1, 1:-1, 1:-1] = (
            out[:-2, 1:-1, 1:-1] + out[2:, 1:-1, 1:-1]
            + out[1:-1, :-2, 1:-1] + out[1:-1, 2:, 1:-1]
            + out[1:-1, 1:-1, :-2] + out[1:-1, 1:-1, 2:]
            + out[1:-1, 1:-1, 1:-1]
        ) / 7.0
    points = float((n - 2) ** 3) * iterations
    return _report("sp", t0, 8.0 * points, 16.0 * points, float(out.sum()))


def multigrid_kernel(n: int = 128, seed: int = 0) -> KernelReport:
    """MG-style V-cycle fragment: smooth, restrict, prolong on a 3-D grid.

    Bandwidth-dominated: ~4 FLOPs per ~16 streamed bytes across the
    resolution hierarchy — the ~0.25 FLOP/B the suite characterizes MG at.
    """
    rng = spawn_rng(seed, "mg")
    fine = rng.random((n, n, n))
    t0 = time.perf_counter()
    smoothed = 0.5 * fine + 0.5 / 6.0 * (
        np.roll(fine, 1, 0) + np.roll(fine, -1, 0)
        + np.roll(fine, 1, 1) + np.roll(fine, -1, 1)
        + np.roll(fine, 1, 2) + np.roll(fine, -1, 2)
    )
    coarse = smoothed[::2, ::2, ::2].copy()
    prolonged = np.repeat(np.repeat(np.repeat(coarse, 2, 0), 2, 1), 2, 2)
    result = smoothed + 0.1 * prolonged
    points = float(n**3)
    # smooth (8 flops/pt) + restrict (1/8 pt) + prolong/correct (2 flops/pt)
    flops = 8.0 * points + 2.0 * points
    bytes_moved = 16.0 * points * 2.5  # several passes over the hierarchy
    return _report("mg", t0, flops, bytes_moved, float(result.sum()))


def run_kernel(name: str, **kwargs) -> KernelReport:
    """Run a kernel by suite name (``stream``, ``dgemm``, ``sra``, ...)."""
    try:
        fn = KERNELS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel {name!r}; available: {sorted(KERNELS)}"
        ) from None
    return fn(**kwargs)


#: Kernel registry keyed by the matching suite benchmark name.
KERNELS = {
    "stream": stream_triad_kernel,
    "dgemm": dgemm_kernel,
    "sra": random_access_kernel,
    "cg": spmv_kernel,
    "is": integer_sort_kernel,
    "ep": ep_kernel,
    "ft": fft_kernel,
    "sp": stencil_kernel,
    "mg": multigrid_kernel,
}
