"""Workloads: the paper's benchmark suites and synthetic generators.

Each benchmark from Table 3 is represented two ways:

* a *characterization* — per-phase flop/byte volumes, activity factors and
  pattern efficiencies — which is what the power-capped execution model
  consumes (:mod:`repro.workloads.cpu_suite`,
  :mod:`repro.workloads.gpu_suite`);
* where meaningful, an *executable NumPy kernel* with analytic op/byte
  accounting (:mod:`repro.workloads.kernels`), used to keep the
  characterized intensities honest (:mod:`repro.workloads.characterize`).

:mod:`repro.workloads.synthetic` generates parametric workloads for
property-based testing and for exploring the allocation space beyond the
paper's fixed suite.
"""

from repro.workloads.base import (
    MetricKind,
    Workload,
    WorkloadClass,
)
from repro.workloads.cpu_suite import CPU_WORKLOADS, cpu_workload, list_cpu_workloads
from repro.workloads.gpu_suite import GPU_WORKLOADS, gpu_workload, list_gpu_workloads
from repro.workloads.registry import (
    get_workload,
    list_workloads,
    register_workload,
    unregister_workload,
)
from repro.workloads.synthetic import synthetic_workload

__all__ = [
    "CPU_WORKLOADS",
    "GPU_WORKLOADS",
    "MetricKind",
    "Workload",
    "WorkloadClass",
    "cpu_workload",
    "get_workload",
    "gpu_workload",
    "list_cpu_workloads",
    "list_gpu_workloads",
    "list_workloads",
    "register_workload",
    "synthetic_workload",
    "unregister_workload",
]
