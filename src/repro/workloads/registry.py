"""Unified lookup across the benchmark suites, plus user registration.

The paper's Table 3 suites are fixed; deployments onboard their own
applications.  :func:`register_workload` adds a characterized workload to
the registry so the CLI, sweeps, and schedulers can address it by name
(see ``examples/characterize_and_coordinate.py`` for producing one from a
real kernel).
"""

from __future__ import annotations

import threading

from repro.errors import ConfigurationError, UnknownWorkloadError
from repro.workloads.base import Workload
from repro.workloads.cpu_suite import CPU_WORKLOADS
from repro.workloads.gpu_suite import GPU_WORKLOADS

__all__ = ["get_workload", "list_workloads", "register_workload", "unregister_workload"]

#: User-registered workloads (name -> workload), looked up after the suites.
#: Mutated by callers at runtime, so writes are lock-guarded.  # shared-state
_USER_WORKLOADS: dict[str, Workload] = {}
_REGISTRY_LOCK = threading.Lock()


def register_workload(workload: Workload, *, replace: bool = False) -> None:
    """Add a workload to the registry under its own name.

    Suite names are reserved; user names collide only with themselves and
    require ``replace=True`` to overwrite.
    """
    key = workload.name.lower()
    if key in CPU_WORKLOADS or key in GPU_WORKLOADS:
        raise ConfigurationError(
            f"workload name {workload.name!r} is reserved by the built-in suites"
        )
    with _REGISTRY_LOCK:
        if key in _USER_WORKLOADS and not replace:
            raise ConfigurationError(
                f"workload {workload.name!r} already registered; pass replace=True"
            )
        _USER_WORKLOADS[key] = workload


def unregister_workload(name: str) -> None:
    """Remove a user-registered workload (suite entries cannot be removed)."""
    key = name.lower()
    if key in CPU_WORKLOADS or key in GPU_WORKLOADS:
        raise ConfigurationError(
            f"cannot unregister built-in suite workload {name!r}"
        )
    with _REGISTRY_LOCK:
        try:
            del _USER_WORKLOADS[key]
        except KeyError:
            raise UnknownWorkloadError(f"no user workload named {name!r}") from None


def list_workloads(device: str | None = None) -> tuple[str, ...]:
    """All registered benchmark names, optionally filtered by device."""
    if device not in (None, "cpu", "gpu"):
        raise UnknownWorkloadError(f"unknown device filter {device!r}")
    names: list[str] = []
    if device in (None, "cpu"):
        names.extend(CPU_WORKLOADS)
    if device in (None, "gpu"):
        names.extend(GPU_WORKLOADS)
    names.extend(
        name for name, wl in _USER_WORKLOADS.items()
        if device is None or wl.device == device
    )
    return tuple(names)


def get_workload(name: str) -> Workload:
    """Look up a benchmark by name: suites first, then user registrations."""
    key = name.lower()
    if key in CPU_WORKLOADS:
        return CPU_WORKLOADS[key]
    if key in GPU_WORKLOADS:
        return GPU_WORKLOADS[key]
    if key in _USER_WORKLOADS:
        return _USER_WORKLOADS[key]
    raise UnknownWorkloadError(
        f"unknown workload {name!r}; available: "
        f"{sorted((*CPU_WORKLOADS, *GPU_WORKLOADS, *_USER_WORKLOADS))}"
    )
