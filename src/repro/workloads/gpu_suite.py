"""The 6 GPU benchmarks of the paper's Table 3 (CUDA examples, ECP proxies).

Characterizations follow the same recipe as the CPU suite, referenced to the
Titan XP card's rooflines.  Utilization targets are chosen so that the
memory-intensive proxies stay memory-bound on *both* cards (the Titan V has
~35 % more bandwidth at similar compute, so a workload at utilization 0.70
on the XP sits near 0.93 on the V — still memory-bound, matching the
paper's "on Titan V, application performance is generally memory bounded").

Anchors (paper Section 4 / Figure 6):

* SGEMM demands more than the XP's 300 W ceiling (its performance never
  flattens in the cap range) but saturates near 180 W on the V;
* MiniFE saturates near 180 W on the XP and is flat in the studied range on
  the V;
* per-budget spread across allocations is ≈ 35 % for MiniFE vs ≤ 25 % for
  SGEMM on the XP.
"""

from __future__ import annotations

from repro.errors import UnknownWorkloadError
from repro.perfmodel.phase import Phase
from repro.workloads.base import MetricKind, Workload, WorkloadClass

__all__ = ["GPU_WORKLOADS", "REF_GPU_PEAK_FLOPS", "REF_GPU_PEAK_BW", "gpu_workload", "list_gpu_workloads"]

#: Reference Titan XP compute roof: 30 SMs × 1.9 GHz × 256 FLOP/cycle.
REF_GPU_PEAK_FLOPS = 30 * 1.9e9 * 256.0
#: Reference Titan XP bandwidth roof at the nominal memory clock.
REF_GPU_PEAK_BW = 480.0e9


def _ceff_for_utilization(
    intensity: float, memory_efficiency: float, utilization: float
) -> float:
    """Compute efficiency giving ``utilization`` at full power on the XP."""
    mem_rate = REF_GPU_PEAK_BW * memory_efficiency
    return intensity * mem_rate / (utilization * REF_GPU_PEAK_FLOPS)


def _w(
    name: str,
    description: str,
    workload_class: WorkloadClass,
    phases: tuple[Phase, ...],
    metric: MetricKind,
    suite: str,
    work_units: float | None = None,
) -> Workload:
    if metric is MetricKind.MOPS and work_units is None:
        work_units = sum(p.flops for p in phases)
    return Workload(
        name=name,
        suite=suite,
        description=description,
        device="gpu",
        workload_class=workload_class,
        phases=phases,
        metric=metric,
        work_units=work_units,
    )


def _sgemm() -> Workload:
    """CUBLAS SGEMM: tiled FP32 matrix multiply, ~40 FLOPs per DRAM byte."""
    flops = 8.75e13
    phase = Phase(
        name="gemm",
        flops=flops,
        bytes_moved=flops / 40.0,
        activity=1.00,
        stall_activity=0.30,
        compute_efficiency=0.60,
        memory_efficiency=0.80,
    )
    return _w(
        "sgemm",
        "Compute intensive, CUBLAS implementation",
        WorkloadClass.COMPUTE_INTENSIVE,
        (phase,),
        MetricKind.GFLOPS,
        suite="cuda",
    )


def _gpu_stream() -> Workload:
    """GPU-STREAM triad: coalesced loads/stores saturating the memory bus."""
    bytes_moved = 4.0e12
    intensity = 2.0 / 24.0
    phase = Phase(
        name="triad",
        flops=intensity * bytes_moved,
        bytes_moved=bytes_moved,
        activity=0.35,
        stall_activity=0.25,
        compute_efficiency=_ceff_for_utilization(intensity, 0.85, 0.70),
        memory_efficiency=0.85,
    )
    return _w(
        "gpu-stream",
        "Memory intensive, CUDA version of STREAM",
        WorkloadClass.MEMORY_INTENSIVE,
        (phase,),
        MetricKind.GBPS,
        suite="cuda",
    )


def _cufft() -> Workload:
    """cuFFT batched 3-D transforms: strided passes over device memory."""
    bytes_moved = 3.6e12
    intensity = 1.0
    phase = Phase(
        name="fft-passes",
        flops=intensity * bytes_moved,
        bytes_moved=bytes_moved,
        activity=0.50,
        stall_activity=0.35,
        compute_efficiency=_ceff_for_utilization(intensity, 0.75, 0.70),
        memory_efficiency=0.75,
    )
    return _w(
        "cufft",
        "Memory intensive, CUDA example",
        WorkloadClass.MEMORY_INTENSIVE,
        (phase,),
        MetricKind.MOPS,
        suite="cuda",
    )


def _minife() -> Workload:
    """MiniFE: unstructured implicit FE proxy, sparse CG-dominated."""
    bytes_moved = 2.64e12
    intensity = 0.25
    phase = Phase(
        name="cg-spmv",
        flops=intensity * bytes_moved,
        bytes_moved=bytes_moved,
        activity=0.38,
        stall_activity=0.30,
        compute_efficiency=_ceff_for_utilization(intensity, 0.55, 0.70),
        memory_efficiency=0.55,
    )
    return _w(
        "minife",
        "Memory intensive, ECP proxy",
        WorkloadClass.MEMORY_INTENSIVE,
        (phase,),
        MetricKind.MOPS,
        suite="ecp",
    )


def _cloverleaf() -> Workload:
    """CloverLeaf: structured hydrodynamics, between compute and memory."""
    bytes_moved = 2.4e12
    intensity = 1.4
    phase = Phase(
        name="hydro",
        flops=intensity * bytes_moved,
        bytes_moved=bytes_moved,
        activity=0.60,
        stall_activity=0.35,
        compute_efficiency=_ceff_for_utilization(intensity, 0.70, 0.92),
        memory_efficiency=0.70,
    )
    return _w(
        "cloverleaf",
        "compute/memory, ECP proxy",
        WorkloadClass.MIXED,
        (phase,),
        MetricKind.MOPS,
        suite="ecp",
    )


def _hpcg() -> Workload:
    """HPCG: symmetric Gauss-Seidel + SpMV, bandwidth-bound throughout."""
    bytes_moved = 2.4e12
    intensity = 0.26
    phase = Phase(
        name="sym-gs",
        flops=intensity * bytes_moved,
        bytes_moved=bytes_moved,
        activity=0.42,
        stall_activity=0.33,
        compute_efficiency=_ceff_for_utilization(intensity, 0.50, 0.72),
        memory_efficiency=0.50,
    )
    return _w(
        "hpcg",
        "Memory intensive, HPL benchmark",
        WorkloadClass.MEMORY_INTENSIVE,
        (phase,),
        MetricKind.GFLOPS,
        suite="ecp",
    )


#: Name → workload for the paper's GPU benchmarks (Table 3, bottom half).
GPU_WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in (
        _sgemm(),
        _gpu_stream(),
        _cufft(),
        _minife(),
        _cloverleaf(),
        _hpcg(),
    )
}


def list_gpu_workloads() -> tuple[str, ...]:
    """Names of the GPU benchmarks, in Table 3 order."""
    return tuple(GPU_WORKLOADS)


def gpu_workload(name: str) -> Workload:
    """Look up a GPU benchmark by name."""
    try:
        return GPU_WORKLOADS[name.lower()]
    except KeyError:
        raise UnknownWorkloadError(
            f"unknown GPU workload {name!r}; available: {sorted(GPU_WORKLOADS)}"
        ) from None
