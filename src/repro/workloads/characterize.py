"""Bridge from executable kernels to execution-model characterizations.

``characterize_kernel`` turns a measured :class:`KernelReport` into a
:class:`~repro.perfmodel.phase.Phase` using pattern-class defaults for the
quantities a portable runtime cannot measure (activity, efficiencies), and
``validate_suite_intensities`` cross-checks the hand-characterized suite
entries against the analytic kernel accounting — the honesty test the
suites are held to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnknownWorkloadError
from repro.perfmodel.phase import Phase
from repro.workloads.base import Workload, WorkloadClass
from repro.workloads.cpu_suite import CPU_WORKLOADS
from repro.workloads.kernels import KERNELS, KernelReport, run_kernel

__all__ = [
    "PATTERN_DEFAULTS",
    "PatternDefaults",
    "characterize_kernel",
    "validate_suite_intensities",
]


@dataclass(frozen=True)
class PatternDefaults:
    """Per-class defaults for parameters kernels cannot measure portably."""

    activity: float
    stall_activity: float
    compute_efficiency: float
    memory_efficiency: float


#: Default activity/efficiency values by broad workload class, matching the
#: reasoning documented in :mod:`repro.workloads.cpu_suite`.
PATTERN_DEFAULTS: dict[WorkloadClass, PatternDefaults] = {
    WorkloadClass.COMPUTE_INTENSIVE: PatternDefaults(0.90, 0.25, 0.50, 0.80),
    WorkloadClass.MEMORY_INTENSIVE: PatternDefaults(0.45, 0.35, 0.02, 0.80),
    WorkloadClass.MIXED: PatternDefaults(0.70, 0.40, 0.20, 0.75),
    WorkloadClass.RANDOM_ACCESS: PatternDefaults(0.55, 0.45, 0.001, 0.10),
}


def characterize_kernel(
    report: KernelReport,
    workload_class: WorkloadClass,
    *,
    scale: float = 1.0,
) -> Phase:
    """Build an execution-model phase from a kernel run.

    Work volumes come from the kernel's analytic accounting (scaled by
    ``scale`` to reach production problem sizes); activity and efficiency
    fields use the pattern-class defaults.
    """
    defaults = PATTERN_DEFAULTS[workload_class]
    return Phase(
        name=report.name,
        flops=report.flops * scale,
        bytes_moved=report.bytes_moved * scale,
        activity=defaults.activity,
        stall_activity=defaults.stall_activity,
        compute_efficiency=defaults.compute_efficiency,
        memory_efficiency=defaults.memory_efficiency,
    )


def kernel_for_workload(workload: Workload) -> str:
    """The kernel name backing a suite workload, if one exists."""
    if workload.name in KERNELS:
        return workload.name
    raise UnknownWorkloadError(
        f"workload {workload.name!r} has no executable kernel; "
        f"kernels exist for: {sorted(KERNELS)}"
    )


def validate_suite_intensities(
    rel_tolerance: float = 4.0,
) -> dict[str, tuple[float, float]]:
    """Compare suite intensities against kernel analytic intensities.

    Returns ``{name: (suite_intensity, kernel_intensity)}`` for every CPU
    workload with a matching kernel.  Raises ``AssertionError`` if any pair
    disagrees by more than ``rel_tolerance``× — characterizations are
    order-of-magnitude statements about access patterns, so the default
    tolerance is deliberately loose but still catches unit mistakes.
    """
    out: dict[str, tuple[float, float]] = {}
    for name, workload in CPU_WORKLOADS.items():
        if name not in KERNELS:
            continue
        report = run_kernel(name)
        suite_i = workload.intensity
        kernel_i = report.intensity
        out[name] = (suite_i, kernel_i)
        ratio = suite_i / kernel_i if kernel_i else float("inf")
        if not (1.0 / rel_tolerance <= ratio <= rel_tolerance):
            raise AssertionError(
                f"{name}: suite intensity {suite_i:.4g} vs kernel "
                f"{kernel_i:.4g} FLOP/B disagree by more than "
                f"{rel_tolerance}x"
            )
    return out
