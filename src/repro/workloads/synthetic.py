"""Parametric synthetic workloads.

Used by property-based tests (hypothesis draws arbitrary-but-valid
characterizations and asserts library invariants hold for all of them) and
by users exploring the allocation space beyond the paper's fixed suite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.perfmodel.phase import Phase
from repro.util.seeds import spawn_rng
from repro.util.units import check_positive
from repro.workloads.base import MetricKind, Workload, WorkloadClass

__all__ = ["synthetic_workload", "random_workload"]


def _classify(intensity: float, memory_efficiency: float) -> WorkloadClass:
    if intensity >= 8.0:
        return WorkloadClass.COMPUTE_INTENSIVE
    if memory_efficiency <= 0.15:
        return WorkloadClass.RANDOM_ACCESS
    if intensity <= 0.5:
        return WorkloadClass.MEMORY_INTENSIVE
    return WorkloadClass.MIXED


def synthetic_workload(
    *,
    name: str = "synthetic",
    device: str = "cpu",
    intensity: float = 1.0,
    bytes_moved: float = 1.0e11,
    activity: float = 0.6,
    stall_activity: float = 0.35,
    compute_efficiency: float = 0.1,
    memory_efficiency: float = 0.6,
    n_phases: int = 1,
    phase_spread: float = 0.0,
    seed: int | None = None,
) -> Workload:
    """Build a single- or multi-phase workload from first-class parameters.

    ``phase_spread`` > 0 perturbs intensity and efficiencies across phases
    (deterministically from ``seed``) to emulate pseudo-applications like
    BT/MG whose phases differ; 0 gives ``n_phases`` identical phases.
    """
    check_positive(intensity, "intensity")
    check_positive(bytes_moved, "bytes_moved")
    if n_phases < 1:
        raise ConfigurationError(f"n_phases must be >= 1, got {n_phases}")
    if not 0.0 <= phase_spread < 1.0:
        raise ConfigurationError(f"phase_spread must be in [0, 1), got {phase_spread}")
    rng = spawn_rng(seed if seed is not None else 0, "synthetic", name)
    phases = []
    per_phase_bytes = bytes_moved / n_phases
    for i in range(n_phases):
        jitter = 1.0 + phase_spread * float(rng.uniform(-1.0, 1.0)) if phase_spread else 1.0
        phase_intensity = intensity * jitter
        meff = float(np.clip(memory_efficiency * (2.0 - jitter), 0.01, 1.0))
        ceff = float(np.clip(compute_efficiency * jitter, 1e-6, 1.0))
        phases.append(
            Phase(
                name=f"phase-{i}",
                flops=phase_intensity * per_phase_bytes,
                bytes_moved=per_phase_bytes,
                activity=activity,
                stall_activity=stall_activity,
                compute_efficiency=ceff,
                memory_efficiency=meff,
            )
        )
    return Workload(
        name=name,
        suite="synthetic",
        description=f"synthetic workload (intensity {intensity:g} FLOP/B)",
        device=device,
        workload_class=_classify(intensity, memory_efficiency),
        phases=tuple(phases),
        metric=MetricKind.GFLOPS,
    )


def random_workload(seed: int, device: str = "cpu") -> Workload:
    """Draw a random-but-plausible workload (fuzzing and demos)."""
    rng = spawn_rng(seed, "random-workload", device)
    intensity = float(10.0 ** rng.uniform(-2.2, 1.5))
    return synthetic_workload(
        name=f"random-{seed}",
        device=device,
        intensity=intensity,
        bytes_moved=float(10.0 ** rng.uniform(10.5, 12.0)),
        activity=float(rng.uniform(0.3, 1.0)),
        stall_activity=float(rng.uniform(0.1, 0.5)),
        compute_efficiency=float(10.0 ** rng.uniform(-3.5, -0.3)),
        memory_efficiency=float(rng.uniform(0.05, 0.9)),
        n_phases=int(rng.integers(1, 4)),
        phase_spread=float(rng.uniform(0.0, 0.5)),
        seed=seed,
    )
