"""Workload abstraction: a named, characterized parallel application.

A :class:`Workload` bundles the phases the execution model simulates with
the metadata experiments need: which device it targets, its broad
compute/memory class (used by the GPU COORD heuristic's compute-intensity
test), and how raw rates map onto the performance metric the paper reports
(GB/s for STREAM, GFLOPS for DGEMM, GUP/s for RandomAccess, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.perfmodel.metrics import ExecutionResult
from repro.perfmodel.phase import Phase, total_bytes, total_flops

__all__ = ["MetricKind", "Workload", "WorkloadClass"]


class WorkloadClass(enum.Enum):
    """Broad compute/memory character, as used throughout the paper."""

    COMPUTE_INTENSIVE = "compute-intensive"
    MEMORY_INTENSIVE = "memory-intensive"
    MIXED = "compute/memory"
    RANDOM_ACCESS = "random-access"


class MetricKind(enum.Enum):
    """How a workload's performance metric is derived from simulated rates."""

    #: Giga-FLOP/s (DGEMM, EP, BT, ...).
    GFLOPS = "GFLOPS"
    #: Gigabytes/s of delivered memory traffic (STREAM).
    GBPS = "GB/s"
    #: Giga-updates/s over ``work_units`` update operations (RandomAccess).
    GUPS = "GUP/s"
    #: Millions of work units per second (IS keys ranked, FT points, ...).
    MOPS = "Mop/s"


@dataclass(frozen=True)
class Workload:
    """A characterized parallel application.

    Parameters
    ----------
    name:
        Benchmark name as used in the paper's Table 3 (lowercase).
    suite:
        Origin suite: ``"hpcc"``, ``"npb"``, ``"stream"``, ``"cuda"``,
        ``"ecp"``.
    description:
        The Table 3 one-liner.
    device:
        ``"cpu"`` or ``"gpu"``.
    workload_class:
        Broad compute/memory character.
    phases:
        Execution phases in order.
    metric:
        How to report performance.
    work_units:
        Number of metric-defining operations (updates for GUPS, keys for
        MOPS); unused for GFLOPS/GBPS metrics.
    """

    name: str
    suite: str
    description: str
    device: str
    workload_class: WorkloadClass
    phases: tuple[Phase, ...]
    metric: MetricKind
    work_units: float | None = None

    def __post_init__(self) -> None:
        if self.device not in ("cpu", "gpu"):
            raise ConfigurationError(f"device must be 'cpu' or 'gpu', got {self.device!r}")
        if not self.phases:
            raise ConfigurationError(f"workload {self.name!r} has no phases")
        if self.metric in (MetricKind.GUPS, MetricKind.MOPS) and not self.work_units:
            raise ConfigurationError(
                f"workload {self.name!r} uses metric {self.metric.value} "
                "and must define work_units"
            )

    # ------------------------------------------------------------------
    # aggregate characterization
    # ------------------------------------------------------------------
    @property
    def total_flops(self) -> float:
        return total_flops(self.phases)

    @property
    def total_bytes(self) -> float:
        return total_bytes(self.phases)

    @property
    def intensity(self) -> float:
        """Aggregate arithmetic intensity (FLOPs per byte)."""
        b = self.total_bytes
        return float("inf") if b == 0.0 else self.total_flops / b

    @property
    def is_compute_intensive(self) -> bool:
        """The class test the GPU COORD heuristic branches on."""
        return self.workload_class is WorkloadClass.COMPUTE_INTENSIVE

    # ------------------------------------------------------------------
    # performance metric
    # ------------------------------------------------------------------
    @property
    def metric_unit(self) -> str:
        """Unit string for reports."""
        return self.metric.value

    def performance(self, result: ExecutionResult) -> float:
        """Convert a simulated run into the paper's metric for this benchmark."""
        if self.metric is MetricKind.GFLOPS:
            return result.flops_rate / 1e9
        if self.metric is MetricKind.GBPS:
            return result.bytes_rate / 1e9
        if self.metric is MetricKind.GUPS:
            assert self.work_units is not None
            return self.work_units / result.elapsed_s / 1e9
        if self.metric is MetricKind.MOPS:
            assert self.work_units is not None
            return self.work_units / result.elapsed_s / 1e6
        raise ConfigurationError(f"unhandled metric {self.metric!r}")

    def scaled(self, factor: float) -> "Workload":
        """A copy with ``factor``× the problem volume (rates are unchanged)."""
        scaled_units = None if self.work_units is None else self.work_units * factor
        return replace(
            self,
            phases=tuple(p.scaled(factor) for p in self.phases),
            work_units=scaled_units,
        )

    def __str__(self) -> str:
        return f"{self.name} [{self.device}, {self.workload_class.value}]"
