"""Aggregated CPU package domain with P-state, T-state and floor mechanisms.

Following the paper's simplification (Section 2.2, assumption (b)), all
processor packages on a node are modelled as one aggregated component whose
cap is distributed evenly over the cores.  The power model is::

    P(f, duty, a_eff) = P_idle + a_eff · duty · w(f) · P_dyn_max

where ``w(f)`` is the P-state table's voltage/frequency weight and ``a_eff``
is the workload's *effective activity*: its intrinsic switching activity
times the fraction of time the cores are not stalled on memory.  The stall
coupling is what makes the paper's Figure 3(b) "actual power" curves come
out: a memory-throttled run draws less CPU power even under a generous CPU
cap (scenario III).

Cap enforcement (:meth:`CpuDomain.operating_point`) mirrors Section 3.3:

1. cap ≥ demand at nominal frequency → no mechanism (scenario I/III side);
2. cap within the P-state power range → DVFS picks the highest frequency
   that fits (scenario II);
3. cap below the lowest P-state demand → T-state duty-cycle throttling
   (scenario IV);
4. cap below the duty floor → the package runs at its hardware floor and
   the cap is **not** respected (scenario VI).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.component import CappingMechanism, PowerBoundableComponent
from repro.hardware.pstate import PStateTable
from repro.util.units import check_fraction, check_positive, watts

__all__ = ["CpuDomain", "CpuOperatingPoint"]


@dataclass(frozen=True)
class CpuOperatingPoint:
    """Resolved hardware state for a CPU cap: frequency, duty cycle, mechanism."""

    freq_ghz: float
    duty: float
    mechanism: CappingMechanism

    @property
    def effective_freq_ghz(self) -> float:
        """Throughput-equivalent clock: frequency scaled by the duty cycle."""
        return self.freq_ghz * self.duty


class CpuDomain(PowerBoundableComponent):
    """The aggregated processor-package power domain of a compute node.

    Parameters
    ----------
    name:
        Domain label (``"package"`` by convention, matching RAPL).
    n_cores:
        Total physical cores across all sockets (hyperthreading disabled,
        as in the paper's methodology).
    pstates:
        DVFS table shared by all cores.
    idle_power_w:
        Hardware floor: power drawn while powered on but fully gated.  This
        is the paper's ``P_cpu_L4`` ("the same across all applications").
    max_dynamic_w:
        Dynamic power at nominal frequency with activity 1.0 — the headroom
        above idle a maximally switching workload (e.g. DGEMM) consumes.
    duty_min:
        Lowest T-state duty cycle (Intel exposes 12.5 % steps).
    duty_steps:
        Number of discrete duty positions between ``duty_min`` and 1.0.
    flops_per_core_cycle:
        Peak double-precision FLOPs per core per cycle (vector width ×
        FMA factor); per-workload efficiency factors scale this down.
    """

    def __init__(
        self,
        *,
        name: str = "package",
        n_cores: int,
        pstates: PStateTable,
        idle_power_w: float,
        max_dynamic_w: float,
        duty_min: float = 0.125,
        duty_steps: int = 8,
        flops_per_core_cycle: float = 8.0,
    ) -> None:
        if n_cores <= 0:
            raise ConfigurationError(f"n_cores must be positive, got {n_cores}")
        if duty_steps < 1:
            raise ConfigurationError(f"duty_steps must be >= 1, got {duty_steps}")
        self.name = str(name)
        self.n_cores = int(n_cores)
        self.pstates = pstates
        self.idle_power_w = watts(idle_power_w, "idle_power_w")
        self.max_dynamic_w = check_positive(max_dynamic_w, "max_dynamic_w")
        self.duty_min = check_fraction(duty_min, "duty_min")
        if self.duty_min <= 0.0:
            raise ConfigurationError("duty_min must be > 0")
        self.duty_steps = int(duty_steps)
        self.flops_per_core_cycle = check_positive(
            flops_per_core_cycle, "flops_per_core_cycle"
        )

    # ------------------------------------------------------------------
    # demand bounds
    # ------------------------------------------------------------------
    @property
    def floor_power_w(self) -> float:
        return self.idle_power_w

    @property
    def max_power_w(self) -> float:
        return self.idle_power_w + self.max_dynamic_w

    def demand_w(self, effective_activity: float, op: CpuOperatingPoint) -> float:
        """Power the package draws at ``op`` for a given effective activity."""
        check_fraction(effective_activity, "effective_activity")
        weight = float(self.pstates.power_weight(op.freq_ghz))
        return self.idle_power_w + effective_activity * op.duty * weight * self.max_dynamic_w

    # ------------------------------------------------------------------
    # cap enforcement
    # ------------------------------------------------------------------
    def _snap_duty(self, duty: float) -> float:
        """Snap a continuous duty cycle down onto the discrete T-state grid."""
        if self.duty_steps == 1:
            return self.duty_min
        span = 1.0 - self.duty_min
        step = span / (self.duty_steps - 1)
        # Round *down* so the snapped state never exceeds the cap.
        k = int((duty - self.duty_min) / step + 1e-9)
        return self.duty_min + max(0, min(self.duty_steps - 1, k)) * step

    def operating_point(
        self, cap_w: float, effective_activity: float
    ) -> CpuOperatingPoint:
        """Resolve a power cap into (frequency, duty, mechanism).

        ``effective_activity`` is the activity the enforcement loop observes
        — RAPL regulates *measured* power, so a stalled (memory-bound)
        workload is allowed to keep a high frequency under a tight cap.
        """
        cap_w = watts(cap_w, "cap_w")
        a = check_fraction(effective_activity, "effective_activity")
        f_nom = self.pstates.f_nom_ghz

        demand_nominal = self.idle_power_w + a * float(
            self.pstates.power_weight(f_nom)
        ) * self.max_dynamic_w
        if cap_w >= demand_nominal:
            return CpuOperatingPoint(f_nom, 1.0, CappingMechanism.NONE)

        dyn_budget = cap_w - self.idle_power_w
        if a <= 0.0 or self.max_dynamic_w <= 0.0:
            # No dynamic draw at all: any cap at or above idle is met.
            mech = CappingMechanism.NONE if cap_w >= self.idle_power_w else CappingMechanism.FLOOR
            return CpuOperatingPoint(f_nom, 1.0, mech)

        max_weight = dyn_budget / (a * self.max_dynamic_w)
        freq = self.pstates.highest_under_weight(max_weight)
        if freq is not None:
            return CpuOperatingPoint(freq, 1.0, CappingMechanism.DVFS)

        # Below the lowest P-state: clock throttling at f_min.
        f_min = self.pstates.f_min_ghz
        w_min = float(self.pstates.power_weight(f_min))
        duty = max_weight / w_min
        if duty >= self.duty_min:
            duty = self._snap_duty(min(duty, 1.0))
            return CpuOperatingPoint(f_min, duty, CappingMechanism.THROTTLE)

        # Below the duty floor: hardware runs at the floor regardless of cap.
        return CpuOperatingPoint(f_min, self.duty_min, CappingMechanism.FLOOR)

    # ------------------------------------------------------------------
    # rate model
    # ------------------------------------------------------------------
    def compute_rate_flops(
        self, op: CpuOperatingPoint, compute_efficiency: float
    ) -> float:
        """Aggregate FLOP/s at an operating point for a workload efficiency.

        ``compute_efficiency`` folds vectorization quality, ILP, and
        pipeline stalls *not* caused by main memory (those are modelled by
        the roofline coupling in the executor).
        """
        check_fraction(compute_efficiency, "compute_efficiency")
        cycles_per_s = op.effective_freq_ghz * 1e9
        return self.n_cores * cycles_per_s * self.flops_per_core_cycle * compute_efficiency

    # ------------------------------------------------------------------
    # critical power values (hardware side)
    # ------------------------------------------------------------------
    def pstate_power_w(self, f_ghz: float, activity: float) -> float:
        """Full-duty power at frequency ``f_ghz`` for an activity level."""
        check_fraction(activity, "activity")
        return self.idle_power_w + activity * float(
            self.pstates.power_weight(f_ghz)
        ) * self.max_dynamic_w

    def min_throttled_power_w(self, activity: float) -> float:
        """Power at the lowest T-state (duty floor at ``f_min``)."""
        check_fraction(activity, "activity")
        w_min = float(self.pstates.power_weight(self.pstates.f_min_ghz))
        return self.idle_power_w + activity * self.duty_min * w_min * self.max_dynamic_w

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CpuDomain(name={self.name!r}, n_cores={self.n_cores}, "
            f"f={self.pstates.f_min_ghz}-{self.pstates.f_nom_ghz} GHz, "
            f"idle={self.idle_power_w} W, dyn={self.max_dynamic_w} W)"
        )
