"""Calibrated presets for the paper's four experimental platforms (Table 2).

=====================  =================================  ==============
Platform               Processor                          Memory
=====================  =================================  ==============
CPU Platform I         2× Xeon 10-core IvyBridge          256 GB DDR3
CPU Platform II        2× Xeon 12-core Haswell            256 GB DDR4
GPU Platform I         Nvidia Titan XP                    12 GB GDDR5X
GPU Platform II        Nvidia Titan V                     12 GB HBM2
=====================  =================================  ==============

Calibration anchors are taken from numbers the paper states explicitly:

* IvyBridge: per-processor DVFS 1.2–2.5 GHz; CPU idle/hardware floor ≈ 48 W;
  RandomAccess draws ≈ 108–112 W on the packages and ≈ 116 W on DRAM; DGEMM's
  node demand flattens above ≈ 240 W; scenario V for RandomAccess begins
  below a DRAM cap of ≈ 68 W (the DRAM floor).
* Haswell: per-core DVFS 1.2–2.3 GHz; DDR4 "consumes less power" and delivers
  more bandwidth, so the Haswell node wins at small budgets but "the two
  systems consume similar power when performance reaches the maximum".
* Titan XP: caps settable 125–300 W (default 250); SGEMM demands > 300 W
  (its perf never flattens in range); MiniFE saturates near 180 W.
* Titan V: smaller total and DRAM power range than the XP (HBM2); SGEMM
  saturates near 180 W; memory-bound behaviour dominates.

The numeric values below are *model* parameters fitted to those anchors, not
datasheet transcriptions; ``tests/test_calibration.py`` asserts the anchors
hold within tolerance.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import UnknownPlatformError
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.hardware.gpu import GpuCard
from repro.hardware.gpu_mem import GpuMemDomain
from repro.hardware.gpu_sm import GpuSmDomain
from repro.hardware.node import ComputeNode
from repro.hardware.pstate import PStateTable

__all__ = [
    "PLATFORMS",
    "get_platform",
    "haswell_node",
    "ivybridge_node",
    "list_platforms",
    "titan_v_card",
    "titan_xp_card",
]


def ivybridge_node() -> ComputeNode:
    """CPU Platform I: 2× Xeon 10-core IvyBridge, 256 GB DDR3-1600."""
    cpu = CpuDomain(
        n_cores=20,
        pstates=PStateTable(f_min_ghz=1.2, f_nom_ghz=2.5, step_ghz=0.1, v_min_ratio=0.75),
        idle_power_w=48.0,
        max_dynamic_w=125.0,
        duty_min=0.0625,
        duty_steps=16,
        flops_per_core_cycle=8.0,  # AVX: 4-wide DP mul + add
    )
    dram = DramDomain(
        background_w=26.0,
        max_access_w=90.0,
        peak_bw_gbps=80.0,
        min_level=0.45,
        level_steps=32,
    )
    return ComputeNode(name="ivybridge", cpu=cpu, dram=dram)


def haswell_node() -> ComputeNode:
    """CPU Platform II: 2× Xeon 12-core Haswell, 256 GB DDR4-2133.

    Per-core DVFS is modelled as a finer frequency grid; DDR4 carries a
    lower background and per-access cost than the IvyBridge node's DDR3
    while delivering more bandwidth.
    """
    cpu = CpuDomain(
        n_cores=24,
        pstates=PStateTable(f_min_ghz=1.2, f_nom_ghz=2.3, step_ghz=0.05, v_min_ratio=0.78),
        idle_power_w=44.0,
        max_dynamic_w=140.0,
        duty_min=0.0625,
        duty_steps=16,
        flops_per_core_cycle=16.0,  # AVX2 FMA: 4-wide DP fused mul-add ×2
    )
    dram = DramDomain(
        background_w=16.0,
        max_access_w=64.0,
        peak_bw_gbps=110.0,
        min_level=0.40,
        level_steps=32,
    )
    return ComputeNode(name="haswell", cpu=cpu, dram=dram)


def titan_xp_card() -> GpuCard:
    """GPU Platform I: Nvidia Titan XP, 12 GB GDDR5X."""
    sm = GpuSmDomain(
        n_sm=30,
        pstates=PStateTable(f_min_ghz=1.0, f_nom_ghz=1.9, step_ghz=0.05, v_min_ratio=0.80),
        idle_power_w=20.0,
        max_dynamic_w=230.0,
        flops_per_sm_cycle=256.0,  # 128 FP32 lanes × FMA
    )
    mem = GpuMemDomain(
        nominal_mhz=5705.0,
        min_mhz=4100.0,
        step_mhz=50.0,
        idle_power_w=10.0,
        clock_power_w=32.0,
        access_power_w=28.0,
        peak_bw_gbps=480.0,
    )
    return GpuCard(
        name="titan-xp",
        sm=sm,
        mem=mem,
        board_static_w=17.0,
        min_cap_w=125.0,
        max_cap_w=300.0,
        default_cap_w=250.0,
    )


def titan_v_card() -> GpuCard:
    """GPU Platform II: Nvidia Titan V, 12 GB HBM2.

    HBM2 gives a much smaller memory power range than GDDR5X, and the
    12 nm SMs reach their full clock at a lower total power — which is why
    the paper sees SGEMM saturate near 180 W here but not on the XP.
    """
    sm = GpuSmDomain(
        n_sm=80,
        pstates=PStateTable(f_min_ghz=1.0, f_nom_ghz=1.455, step_ghz=0.035, v_min_ratio=0.84),
        idle_power_w=20.0,
        max_dynamic_w=125.0,
        flops_per_sm_cycle=128.0,  # 64 FP32 lanes × FMA
    )
    mem = GpuMemDomain(
        nominal_mhz=850.0,
        min_mhz=600.0,
        step_mhz=25.0,
        idle_power_w=8.0,
        clock_power_w=12.0,
        access_power_w=17.0,
        peak_bw_gbps=650.0,
    )
    return GpuCard(
        name="titan-v",
        sm=sm,
        mem=mem,
        board_static_w=18.0,
        min_cap_w=100.0,
        max_cap_w=300.0,
        default_cap_w=250.0,
    )


def titan_xp_node() -> ComputeNode:
    """Host node carrying the Titan XP (host domains sized like a workstation)."""
    node = ivybridge_node()
    return ComputeNode(
        name="titan-xp-host", cpu=node.cpu, dram=node.dram, gpus=(titan_xp_card(),)
    )


def titan_v_node() -> ComputeNode:
    """Host node carrying the Titan V."""
    node = ivybridge_node()
    return ComputeNode(
        name="titan-v-host", cpu=node.cpu, dram=node.dram, gpus=(titan_v_card(),)
    )


#: Registry mapping platform names to constructors (fresh instance per call,
#: so callers can mutate control state without cross-test leakage).
PLATFORMS: dict[str, Callable[[], ComputeNode | GpuCard]] = {
    "ivybridge": ivybridge_node,
    "haswell": haswell_node,
    "titan-xp": titan_xp_card,
    "titan-v": titan_v_card,
    "titan-xp-host": titan_xp_node,
    "titan-v-host": titan_v_node,
}


def list_platforms() -> tuple[str, ...]:
    """Names of all registered platform presets."""
    return tuple(PLATFORMS)


def get_platform(name: str) -> ComputeNode | GpuCard:
    """Instantiate a platform preset by name.

    Raises :class:`~repro.errors.UnknownPlatformError` for unknown names.
    """
    try:
        factory = PLATFORMS[name]
    except KeyError:
        raise UnknownPlatformError(
            f"unknown platform {name!r}; available: {sorted(PLATFORMS)}"
        ) from None
    return factory()
