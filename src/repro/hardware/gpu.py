"""Discrete GPU card: SM + device memory + board, with budget *reclaim*.

The key behavioural difference from the CPU side (paper Section 4): "unlike
independent management of processors and DRAM on the host, where unused power
budget on one component is simply wasted, the GPU power capping automatically
reclaims unused power budget and shifts it to another component".  The card
firmware regulates *total board power* against one cap; whatever the memory
does not draw at its configured clock is available to boost the SM clock.

:meth:`GpuCard.sm_budget_w` implements that reclaim: the SM share is the cap
minus board static power minus the memory's *actual* draw.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, PowerBoundError
from repro.hardware.gpu_mem import GpuMemDomain, GpuMemOperatingPoint
from repro.hardware.gpu_sm import GpuSmDomain
from repro.util.units import check_fraction, watts

__all__ = ["GpuCard"]


class GpuCard:
    """A power-capped discrete GPU accelerator.

    Parameters
    ----------
    name:
        Card label, e.g. ``"titan-xp"``.
    sm, mem:
        The two power domains the paper coordinates across.
    board_static_w:
        Fans, VRM losses, PCB — drawn regardless of activity.
    min_cap_w, max_cap_w, default_cap_w:
        Driver-enforced cap range and factory default.  The paper's cards
        default to 250 W with a user-settable maximum of 300 W.
    """

    def __init__(
        self,
        *,
        name: str,
        sm: GpuSmDomain,
        mem: GpuMemDomain,
        board_static_w: float,
        min_cap_w: float,
        max_cap_w: float,
        default_cap_w: float,
    ) -> None:
        self.name = str(name)
        self.sm = sm
        self.mem = mem
        self.board_static_w = watts(board_static_w, "board_static_w")
        self.min_cap_w = watts(min_cap_w, "min_cap_w")
        self.max_cap_w = watts(max_cap_w, "max_cap_w")
        self.default_cap_w = watts(default_cap_w, "default_cap_w")
        if not (self.min_cap_w <= self.default_cap_w <= self.max_cap_w):
            raise ConfigurationError(
                f"default cap {default_cap_w} W outside "
                f"[{min_cap_w}, {max_cap_w}] W"
            )

    # ------------------------------------------------------------------
    # demand bounds
    # ------------------------------------------------------------------
    @property
    def floor_power_w(self) -> float:
        """Lowest possible board draw (both domains at their floors, idle)."""
        return self.board_static_w + self.sm.idle_power_w + self.mem.idle_power_w

    @property
    def max_power_w(self) -> float:
        """Maximum possible board draw (both domains flat out)."""
        return self.board_static_w + self.sm.max_power_w + self.mem.max_power_w

    # ------------------------------------------------------------------
    # capping
    # ------------------------------------------------------------------
    def validate_cap(self, cap_w: float) -> float:
        """Check a requested cap against the driver-enforced range."""
        cap_w = watts(cap_w, "cap_w")
        if not (self.min_cap_w - 1e-9 <= cap_w <= self.max_cap_w + 1e-9):
            raise PowerBoundError(
                f"{self.name}: cap {cap_w:.1f} W outside driver range "
                f"[{self.min_cap_w:.0f}, {self.max_cap_w:.0f}] W"
            )
        return cap_w

    def sm_budget_w(
        self,
        cap_w: float,
        mem_op: GpuMemOperatingPoint,
        mem_busy_fraction: float,
    ) -> float:
        """Power available to the SMs after board and *actual* memory draw.

        This is the reclaim mechanism: when the memory bus is not busy (or
        is clocked down), its unspent share flows to the SM clock instead of
        being wasted, so "the actual total power consumption always matches
        the set power cap, unless the cap exceeds the application's demand"
        (paper Section 4).
        """
        check_fraction(mem_busy_fraction, "mem_busy_fraction")
        mem_actual = self.mem.demand_w(mem_op, mem_busy_fraction)
        return max(0.0, float(cap_w) - self.board_static_w - mem_actual)

    def total_power_w(
        self,
        sm_power_w: float,
        mem_power_w: float,
    ) -> float:
        """Board power given per-domain actual draws."""
        return self.board_static_w + watts(sm_power_w, "sm_power_w") + watts(
            mem_power_w, "mem_power_w"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GpuCard({self.name!r}, caps [{self.min_cap_w:.0f}, "
            f"{self.max_cap_w:.0f}] W, default {self.default_cap_w:.0f} W)"
        )
