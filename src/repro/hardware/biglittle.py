"""big.LITTLE-style heterogeneous CPU node (paper future work, Section 8).

The paper closes with "we plan to extend this study to other heterogeneous
systems such as big.LITTLE architectures".  This module provides that
substrate: a node with two core clusters sharing one DRAM domain —

* a **big** cluster: few wide, fast, power-hungry cores;
* a **little** cluster: more narrow, slow, efficient cores.

Unlike server packages (which idle at a hardware floor no cap can undercut),
mobile-style clusters can be **power gated**: an allocation below a
cluster's gate threshold turns it off entirely — zero power, zero
contribution.  That gate is what makes heterogeneous coordination
interesting: at tiny budgets the right answer is to run *only* the little
cluster, and the crossover budget where waking the big cores pays off is
workload specific.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.hardware.pstate import PStateTable

__all__ = ["BigLittleNode", "CoreCluster", "biglittle_node"]


@dataclass(frozen=True)
class CoreCluster:
    """A power-gateable cluster of homogeneous cores."""

    domain: CpuDomain
    #: Allocations below this are treated as "gate the cluster off".
    gate_threshold_w: float

    def __post_init__(self) -> None:
        if self.gate_threshold_w < 0:
            raise ConfigurationError("gate_threshold_w must be >= 0")
        if self.gate_threshold_w > self.domain.floor_power_w + 1e-9:
            raise ConfigurationError(
                "gate threshold above the cluster's idle floor would make "
                "some ungated allocations unrepresentable"
            )

    def is_gated(self, cap_w: float) -> bool:
        """Whether a power allocation turns this cluster off."""
        return cap_w < self.gate_threshold_w


class BigLittleNode:
    """A heterogeneous node: big + little clusters over shared DRAM."""

    def __init__(
        self,
        *,
        name: str,
        big: CoreCluster,
        little: CoreCluster,
        dram: DramDomain,
    ) -> None:
        self.name = str(name)
        self.big = big
        self.little = little
        self.dram = dram

    @property
    def min_productive_power_w(self) -> float:
        """Cheapest running configuration: little cluster + DRAM floor."""
        return self.little.gate_threshold_w + self.dram.background_w

    @property
    def max_power_w(self) -> float:
        """Everything on, flat out."""
        return (
            self.big.domain.max_power_w
            + self.little.domain.max_power_w
            + self.dram.max_power_w
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BigLittleNode({self.name!r}, big={self.big.domain.n_cores}c, "
            f"little={self.little.domain.n_cores}c)"
        )


def biglittle_node() -> BigLittleNode:
    """A mobile-class reference node (≈10 W SoC scale).

    Big: 4 wide cores, 0.6–2.4 GHz, up to ~6 W of dynamic power.
    Little: 4 narrow cores, 0.6–1.6 GHz, ~1.2 W dynamic — several times
    more energy-efficient per operation, several times slower per core.
    LPDDR-class memory: ~1.5 W of access power over a 0.3 W background.
    """
    # Efficiency ordering is the defining property: the little cluster
    # delivers ~19 GFLOP/W at full tilt while the big cluster manages
    # ~10-13 GFLOP/W across its DVFS range — so below the crossover budget
    # the right move is to leave the big cores gated.
    big = CoreCluster(
        domain=CpuDomain(
            name="big",
            n_cores=4,
            pstates=PStateTable(f_min_ghz=0.6, f_nom_ghz=2.4, step_ghz=0.1, v_min_ratio=0.60),
            idle_power_w=0.90,
            max_dynamic_w=6.5,
            duty_min=0.125,
            duty_steps=8,
            flops_per_core_cycle=8.0,
        ),
        gate_threshold_w=0.90,
    )
    little = CoreCluster(
        domain=CpuDomain(
            name="little",
            n_cores=4,
            pstates=PStateTable(f_min_ghz=0.6, f_nom_ghz=1.6, step_ghz=0.1, v_min_ratio=0.80),
            idle_power_w=0.12,
            max_dynamic_w=0.55,
            duty_min=0.125,
            duty_steps=8,
            flops_per_core_cycle=2.0,
        ),
        gate_threshold_w=0.12,
    )
    dram = DramDomain(
        name="lpddr",
        background_w=0.30,
        max_access_w=1.50,
        peak_bw_gbps=25.0,
        min_level=0.30,
        level_steps=16,
    )
    return BigLittleNode(name="biglittle", big=big, little=little, dram=dram)
