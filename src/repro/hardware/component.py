"""Common vocabulary for power-boundable components.

The paper defines a component as *power-boundable* "if it can and will always
operate under the specified power cap" (Section 2.2) — with the documented
exception that hardware floors (scenario VI for CPUs, scenario V for DRAM)
may override caps below the minimum operable power.  The
:class:`CappingMechanism` enum names which hardware mechanism a cap engaged;
Section 3.3 maps these mechanisms one-to-one onto the scenario categories.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod

__all__ = ["CappingMechanism", "PowerBoundableComponent"]


class CappingMechanism(enum.Enum):
    """Which hardware power-limiting mechanism a cap engaged.

    These correspond to the transitions described in Section 3.3 of the
    paper: as the cap shrinks, RAPL moves from doing nothing through DVFS
    (P-states), then clock throttling (T-states), and finally bottoms out at
    the hardware floor where the cap can no longer be honoured.
    """

    #: Cap is above the component's maximum demand; no mechanism engaged.
    NONE = "none"
    #: CPU/GPU frequency scaling (P-states) meets the cap.
    DVFS = "dvfs"
    #: Duty-cycle clock throttling (T-states) meets the cap.
    THROTTLE = "throttle"
    #: DRAM bandwidth throttling meets the cap.
    BANDWIDTH_THROTTLE = "bandwidth-throttle"
    #: Cap is below the hardware minimum; the component runs at its floor
    #: and the cap is *not* respected (paper scenarios V/VI).
    FLOOR = "floor"

    @property
    def respects_cap(self) -> bool:
        """Whether this mechanism guarantees actual power stays under the cap."""
        return self is not CappingMechanism.FLOOR


class PowerBoundableComponent(ABC):
    """Abstract base for components that accept a power cap.

    Concrete domains (CPU package, DRAM, GPU SMs, GPU memory) expose:

    * static *demand* bounds — the floor power they consume merely by being
      powered on, and the maximum power they can possibly draw;
    * an *operating point* resolver mapping a cap onto hardware state.

    The operating-point types are domain specific (frequency + duty for
    CPUs, a throttle level for DRAM, ...), so the resolver is declared on
    each concrete class; this ABC pins down the shared demand interface
    used by node-level budgeting.
    """

    #: Human-readable domain name, e.g. ``"package"`` or ``"dram"``.
    name: str

    @property
    @abstractmethod
    def floor_power_w(self) -> float:
        """Minimum power the component consumes while the system runs.

        Caps below this value are disregarded by the hardware (paper:
        ``P_cpu_L4`` and ``P_mem_L3`` are "the same across all applications
        and hardware controlled").
        """

    @property
    @abstractmethod
    def max_power_w(self) -> float:
        """Maximum power the component can draw at full activity."""

    def clamp_cap(self, cap_w: float) -> float:
        """Clamp a requested cap into the representable range.

        The returned value is what the hardware will actually try to
        enforce: never below the floor, never above the maximum draw.
        """
        return min(max(float(cap_w), self.floor_power_w), self.max_power_w)
