"""GPU streaming-multiprocessor (SM) power domain.

GPUs expose DVFS on the SM clock but — unlike Intel CPUs — no duty-cycle
throttling usable from the capping firmware, and the driver refuses caps
below a hardware minimum.  This is why the paper observes that "GPU hardware
excludes categories (IV & V & VI) that would deliver an unacceptably low
performance, by disallowing low power caps on SMs and memory" (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.component import CappingMechanism, PowerBoundableComponent
from repro.hardware.pstate import PStateTable
from repro.util.units import check_fraction, check_positive, watts

__all__ = ["GpuSmDomain", "GpuSmOperatingPoint"]


@dataclass(frozen=True)
class GpuSmOperatingPoint:
    """Resolved SM state for a power share: clock frequency and mechanism."""

    freq_ghz: float
    mechanism: CappingMechanism


class GpuSmDomain(PowerBoundableComponent):
    """The SM-array power domain of a discrete GPU.

    Parameters
    ----------
    n_sm:
        Number of streaming multiprocessors.
    pstates:
        SM clock grid (GHz); Nvidia bins are ~13 MHz, approximated here
        with a configurable step.
    idle_power_w:
        SM-array power when clock-gated but powered.
    max_dynamic_w:
        Additional power at the top clock with activity 1.0.
    flops_per_sm_cycle:
        Peak single-precision FLOPs per SM per cycle (2 × FP32 lanes).
    """

    def __init__(
        self,
        *,
        name: str = "sm",
        n_sm: int,
        pstates: PStateTable,
        idle_power_w: float,
        max_dynamic_w: float,
        flops_per_sm_cycle: float = 256.0,
    ) -> None:
        if n_sm <= 0:
            raise ConfigurationError(f"n_sm must be positive, got {n_sm}")
        self.name = str(name)
        self.n_sm = int(n_sm)
        self.pstates = pstates
        self.idle_power_w = watts(idle_power_w, "idle_power_w")
        self.max_dynamic_w = check_positive(max_dynamic_w, "max_dynamic_w")
        self.flops_per_sm_cycle = check_positive(
            flops_per_sm_cycle, "flops_per_sm_cycle"
        )

    @property
    def floor_power_w(self) -> float:
        """Power at the lowest allowed SM clock under full activity.

        The driver never lets the SM share fall below this, which is what
        removes the paper's scenarios IV–VI from GPU profiles.
        """
        w_min = float(self.pstates.power_weight(self.pstates.f_min_ghz))
        return self.idle_power_w + w_min * self.max_dynamic_w

    @property
    def max_power_w(self) -> float:
        return self.idle_power_w + self.max_dynamic_w

    def operating_point(
        self, budget_w: float, effective_activity: float
    ) -> GpuSmOperatingPoint:
        """Pick the highest SM clock whose draw fits the budget share."""
        budget_w = watts(budget_w, "budget_w")
        a = check_fraction(effective_activity, "effective_activity")
        f_max = self.pstates.f_nom_ghz
        demand_top = self.idle_power_w + a * float(
            self.pstates.power_weight(f_max)
        ) * self.max_dynamic_w
        if budget_w >= demand_top:
            return GpuSmOperatingPoint(f_max, CappingMechanism.NONE)
        if a <= 0.0:
            mech = (
                CappingMechanism.NONE
                if budget_w >= self.idle_power_w
                else CappingMechanism.FLOOR
            )
            return GpuSmOperatingPoint(f_max, mech)
        max_weight = (budget_w - self.idle_power_w) / (a * self.max_dynamic_w)
        freq = self.pstates.highest_under_weight(max_weight)
        if freq is not None:
            return GpuSmOperatingPoint(freq, CappingMechanism.DVFS)
        # Budget below the lowest clock's demand: hardware clamps to f_min.
        return GpuSmOperatingPoint(self.pstates.f_min_ghz, CappingMechanism.FLOOR)

    def demand_w(
        self, op: GpuSmOperatingPoint, effective_activity: float
    ) -> float:
        """Actual SM power at an operating point for an effective activity."""
        check_fraction(effective_activity, "effective_activity")
        weight = float(self.pstates.power_weight(op.freq_ghz))
        return self.idle_power_w + effective_activity * weight * self.max_dynamic_w

    def compute_rate_flops(
        self, op: GpuSmOperatingPoint, compute_efficiency: float
    ) -> float:
        """Aggregate FLOP/s at an SM clock for a workload efficiency."""
        check_fraction(compute_efficiency, "compute_efficiency")
        cycles_per_s = op.freq_ghz * 1e9
        return self.n_sm * cycles_per_s * self.flops_per_sm_cycle * compute_efficiency

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GpuSmDomain(n_sm={self.n_sm}, "
            f"f={self.pstates.f_min_ghz}-{self.pstates.f_nom_ghz} GHz)"
        )
