"""P-state (DVFS) tables with a voltage/frequency power model.

A P-state table holds the discrete frequency grid a processor exposes and the
relative dynamic-power weight of each state.  Dynamic CMOS power scales as
``C · V² · f``; within the DVFS range voltage scales roughly linearly with
frequency, so the weight of state *f* relative to the nominal state is::

    w(f) = (f / f_nom) * (V(f) / V_nom)**2

with ``V(f)`` interpolated linearly between ``v_min`` at ``f_min`` and
``v_nom`` at ``f_nom``.  Only the *ratio* ``v_min / v_nom`` matters, so
voltages are expressed relative to nominal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.util.units import as_ghz, check_fraction

__all__ = ["PStateTable"]


@dataclass(frozen=True)
class PStateTable:
    """Discrete DVFS frequency grid with per-state dynamic-power weights.

    Parameters
    ----------
    f_min_ghz, f_nom_ghz:
        Lowest and nominal (highest stable, turbo excluded — the paper
        disables turbo) frequencies in GHz.
    step_ghz:
        Grid spacing; Intel exposes 100 MHz bins.
    v_min_ratio:
        Core voltage at ``f_min`` relative to the voltage at ``f_nom``.
    """

    f_min_ghz: float
    f_nom_ghz: float
    step_ghz: float = 0.1
    v_min_ratio: float = 0.75
    _freqs: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        as_ghz(self.f_min_ghz, "f_min_ghz")
        as_ghz(self.f_nom_ghz, "f_nom_ghz")
        as_ghz(self.step_ghz, "step_ghz")
        check_fraction(self.v_min_ratio, "v_min_ratio")
        if self.f_min_ghz > self.f_nom_ghz:
            raise ConfigurationError(
                f"f_min ({self.f_min_ghz} GHz) exceeds f_nom ({self.f_nom_ghz} GHz)"
            )
        n_steps = int(round((self.f_nom_ghz - self.f_min_ghz) / self.step_ghz))
        freqs = self.f_min_ghz + self.step_ghz * np.arange(n_steps + 1)
        freqs[-1] = self.f_nom_ghz  # avoid fp drift on the top state
        freqs.setflags(write=False)
        object.__setattr__(self, "_freqs", freqs)

    @property
    def frequencies_ghz(self) -> np.ndarray:
        """All grid frequencies, ascending, including both endpoints."""
        return self._freqs

    def __len__(self) -> int:
        return int(self._freqs.size)

    def voltage_ratio(self, f_ghz: float | np.ndarray) -> float | np.ndarray:
        """Relative core voltage ``V(f)/V_nom`` (linear V-f interpolation)."""
        if self.f_nom_ghz == self.f_min_ghz:  # repro-lint: disable=RPL003 -- exact degenerate-grid sentinel guarding a zero span
            return np.ones_like(np.asarray(f_ghz, dtype=float)) + 0.0
        span = self.f_nom_ghz - self.f_min_ghz
        frac = (np.asarray(f_ghz, dtype=float) - self.f_min_ghz) / span
        return self.v_min_ratio + (1.0 - self.v_min_ratio) * frac

    def power_weight(self, f_ghz: float | np.ndarray) -> float | np.ndarray:
        """Dynamic-power weight ``w(f) = (f/f_nom)·(V(f)/V_nom)²`` in (0, 1]."""
        f = np.asarray(f_ghz, dtype=float)
        return (f / self.f_nom_ghz) * self.voltage_ratio(f) ** 2

    def nearest(self, f_ghz: float) -> float:
        """Snap an arbitrary frequency onto the grid (clamped to range)."""
        idx = int(np.argmin(np.abs(self._freqs - float(f_ghz))))
        return float(self._freqs[idx])

    def highest_under_weight(self, max_weight: float) -> float | None:
        """Highest grid frequency whose power weight is ≤ ``max_weight``.

        Returns ``None`` when even ``f_min`` exceeds the weight budget —
        the caller must then fall back to throttling (T-states).
        """
        weights = self.power_weight(self._freqs)
        mask = weights <= max_weight + 1e-12
        if not mask.any():
            return None
        return float(self._freqs[np.nonzero(mask)[0][-1]])
