"""Compute-node composition: CPU domain + DRAM domain (+ optional GPUs).

A :class:`ComputeNode` is the unit the paper budgets power for ("we focus on
power allocation on compute nodes which are the building blocks of HPC
systems").  It bundles the two host power domains with a RAPL control plane
and any attached accelerator cards, and exposes the node-level demand bounds
the coordinator and scheduler reason about.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.hardware.gpu import GpuCard
from repro.hardware.nvml import NvmlDevice
from repro.hardware.rapl import RaplInterface

__all__ = ["ComputeNode"]


class ComputeNode:
    """A power-bounded compute node with host domains and optional GPUs.

    Parameters
    ----------
    name:
        Platform label, e.g. ``"ivybridge"``.
    cpu, dram:
        The two host power domains coordinated in the CPU experiments.
    gpus:
        Attached accelerator cards (empty for the host-only platforms).
    """

    def __init__(
        self,
        *,
        name: str,
        cpu: CpuDomain,
        dram: DramDomain,
        gpus: tuple[GpuCard, ...] = (),
    ) -> None:
        self.name = str(name)
        if not self.name:
            raise ConfigurationError("node name must be non-empty")
        self.cpu = cpu
        self.dram = dram
        self.gpus = tuple(gpus)
        self.rapl = RaplInterface()
        self.nvml = tuple(NvmlDevice(card) for card in self.gpus)

    # ------------------------------------------------------------------
    # node-level demand bounds
    # ------------------------------------------------------------------
    @property
    def host_floor_power_w(self) -> float:
        """Lowest host power while running: both domain floors engaged.

        Budgets below this cannot be honoured (paper scenario VI: "this
        scenario cannot ensure the system power bound").
        """
        return self.cpu.floor_power_w + self.dram.floor_power_w

    @property
    def host_max_power_w(self) -> float:
        """Host power with both domains flat out — above this is surplus."""
        return self.cpu.max_power_w + self.dram.max_power_w

    def gpu(self, index: int = 0) -> GpuCard:
        """Convenience accessor for an attached card."""
        try:
            return self.gpus[index]
        except IndexError as exc:
            raise ConfigurationError(
                f"node {self.name!r} has {len(self.gpus)} GPU(s); "
                f"index {index} is out of range"
            ) from exc

    def nvml_device(self, index: int = 0) -> NvmlDevice:
        """The driver handle for an attached card."""
        try:
            return self.nvml[index]
        except IndexError as exc:
            raise ConfigurationError(
                f"node {self.name!r} has {len(self.nvml)} GPU(s); "
                f"index {index} is out of range"
            ) from exc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        gpu_part = f", gpus={[g.name for g in self.gpus]}" if self.gpus else ""
        return f"ComputeNode({self.name!r}, {self.cpu.n_cores} cores{gpu_part})"
