"""Sampling power meters over RAPL energy counters.

The paper's measurements difference RAPL's energy-status MSRs at a fixed
polling interval.  This module reproduces that measurement path — with its
real-world wrinkle, the 32-bit register wrap — so that everything reported
as "actual power" can also be observed the way a deployment would observe
it, rather than read out of the simulator's internals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.rapl import MsrEnergyCounter, RaplDomainName, RaplInterface
from repro.perfmodel.power_trace import PowerTrace
from repro.util.units import check_positive

__all__ = ["MeterReading", "RaplPowerMeter"]


@dataclass(frozen=True)
class MeterReading:
    """One polling window's measurement."""

    t_start_s: float
    t_end_s: float
    energy_j: float

    @property
    def power_w(self) -> float:
        return self.energy_j / (self.t_end_s - self.t_start_s)


class RaplPowerMeter:
    """Polls a RAPL domain's energy counter and reports per-window power.

    The meter never sees instantaneous power — only energy deltas between
    polls, reconstructed wrap-safely (valid as long as less than one full
    register wrap, 2¹⁶ J, passes between polls; at node-level powers that
    is several minutes, far above any sane polling interval).
    """

    def __init__(
        self,
        rapl: RaplInterface,
        domain: RaplDomainName,
        poll_interval_s: float = 0.1,
    ) -> None:
        self.rapl = rapl
        self.domain = domain
        self.poll_interval_s = check_positive(poll_interval_s, "poll_interval_s")

    def observe_trace(self, trace: PowerTrace, domain_select: str = "proc") -> list[MeterReading]:
        """Replay a sampled trace into the counter, polling as we go.

        ``domain_select`` picks which trace channel feeds this domain's
        counter (``"proc"``, ``"mem"`` or ``"total"``).  Returns one
        reading per polling window, reconstructed purely from raw counter
        values — the same arithmetic a real meter performs.
        """
        channel = {
            "proc": trace.proc_w,
            "mem": trace.mem_w,
            "total": trace.total_w,
        }.get(domain_select)
        if channel is None:
            raise ConfigurationError(
                f"domain_select must be proc/mem/total, got {domain_select!r}"
            )
        samples_per_poll = max(1, int(round(self.poll_interval_s / trace.dt_s)))
        readings: list[MeterReading] = []
        prev_raw = self.rapl.read_energy_raw(self.domain)
        t = 0.0
        for start in range(0, channel.size, samples_per_poll):
            chunk = channel[start : start + samples_per_poll]
            energy = float(chunk.sum() * trace.dt_s)
            self.rapl.record_energy(self.domain, energy)
            now_raw = self.rapl.read_energy_raw(self.domain)
            window = chunk.size * trace.dt_s
            readings.append(
                MeterReading(
                    t_start_s=t,
                    t_end_s=t + window,
                    energy_j=MsrEnergyCounter.delta_joules(prev_raw, now_raw),
                )
            )
            prev_raw = now_raw
            t += window
        return readings

    @staticmethod
    def average_power_w(readings: list[MeterReading]) -> float:
        """Time-weighted average power over a set of readings."""
        if not readings:
            raise ConfigurationError("no meter readings to average")
        total_t = sum(r.t_end_s - r.t_start_s for r in readings)
        total_e = sum(r.energy_j for r in readings)
        return total_e / total_t

    @staticmethod
    def max_window_power_w(readings: list[MeterReading]) -> float:
        """Worst single-window power — what a cap auditor checks."""
        if not readings:
            raise ConfigurationError("no meter readings to inspect")
        return max(r.power_w for r in readings)

    def as_array(self, readings: list[MeterReading]) -> np.ndarray:
        """Reading powers as an array (for compliance checks/plotting)."""
        return np.array([r.power_w for r in readings])
