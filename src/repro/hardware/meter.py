"""Sampling power meters over RAPL energy counters.

The paper's measurements difference RAPL's energy-status MSRs at a fixed
polling interval.  This module reproduces that measurement path — with its
real-world wrinkle, the 32-bit register wrap — so that everything reported
as "actual power" can also be observed the way a deployment would observe
it, rather than read out of the simulator's internals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, MeterReadError, TransientReadError
from repro.faults.injector import FaultInjector
from repro.faults.injector import active as _faults_active
from repro.faults.policies import retry_transient
from repro.faults.report import DegradationReport
from repro.hardware.rapl import (
    ENERGY_UNIT_J,
    MsrEnergyCounter,
    RaplDomainName,
    RaplInterface,
)
from repro.perfmodel.power_trace import PowerTrace
from repro.util.units import check_positive

__all__ = ["MeterReading", "RaplPowerMeter"]


@dataclass(frozen=True)
class MeterReading:
    """One polling window's measurement."""

    t_start_s: float
    t_end_s: float
    energy_j: float

    @property
    def power_w(self) -> float:
        return self.energy_j / (self.t_end_s - self.t_start_s)


class RaplPowerMeter:
    """Polls a RAPL domain's energy counter and reports per-window power.

    The meter never sees instantaneous power — only energy deltas between
    polls.  Single wraps are reconstructed modularly; *multiple* wraps in
    one window alias to a small residue, so each window's delta is
    disambiguated against an energy expectation (``expected_power_w``
    when given, else the previous window's measurement) — at sane polling
    rates the correction is exactly zero and the arithmetic is the plain
    single-wrap difference.

    ``max_power_w`` is a plausibility ceiling: a window implying more
    power than the node could physically draw (default 10 kW — an order
    of magnitude above any modeled platform) marks a broken counter and
    raises :class:`~repro.errors.MeterReadError` rather than reporting a
    phantom measurement.  The honest physics boundary: a phantom counter
    jump *below* the ceiling is indistinguishable from real energy by any
    single-counter meter — the chaos suite fuzzes the detectable regime.

    Under an armed fault plan the meter also defends each poll: transient
    read failures are retried within the plan's attempt budget, and a
    stuck register (zero delta while energy was recorded) is re-read;
    exhaustion raises :class:`~repro.errors.MeterReadError`.
    """

    def __init__(
        self,
        rapl: RaplInterface,
        domain: RaplDomainName,
        poll_interval_s: float = 0.1,
        *,
        max_power_w: float = 10_000.0,
        expected_power_w: float | None = None,
    ) -> None:
        self.rapl = rapl
        self.domain = domain
        self.poll_interval_s = check_positive(poll_interval_s, "poll_interval_s")
        self.max_power_w = check_positive(max_power_w, "max_power_w")
        self.expected_power_w = (
            None
            if expected_power_w is None
            else check_positive(expected_power_w, "expected_power_w")
        )

    def _poll_raw(
        self,
        injector: FaultInjector | None,
        report: DegradationReport | None,
    ) -> int:
        """One counter read, retried against transient faults when armed."""
        if injector is None:
            return self.rapl.read_energy_raw(self.domain)
        plan = injector.plan
        try:
            return retry_transient(
                lambda: self.rapl.read_energy_raw(self.domain),
                site="rapl.read",
                max_attempts=plan.max_attempts,
                report=report,
                backoff_base_s=plan.backoff_base_s,
            )
        except TransientReadError as exc:
            raise MeterReadError(
                f"RAPL {self.domain.value} counter unreadable after "
                f"{plan.max_attempts} attempt(s)"
            ) from exc

    def observe_trace(
        self,
        trace: PowerTrace,
        domain_select: str = "proc",
        *,
        report: DegradationReport | None = None,
    ) -> list[MeterReading]:
        """Replay a sampled trace into the counter, polling as we go.

        ``domain_select`` picks which trace channel feeds this domain's
        counter (``"proc"``, ``"mem"`` or ``"total"``).  Returns one
        reading per polling window, reconstructed purely from raw counter
        values — the same arithmetic a real meter performs.  ``report``,
        when given, records any fault recoveries the meter performed.
        """
        channel = {
            "proc": trace.proc_w,
            "mem": trace.mem_w,
            "total": trace.total_w,
        }.get(domain_select)
        if channel is None:
            raise ConfigurationError(
                f"domain_select must be proc/mem/total, got {domain_select!r}"
            )
        samples_per_poll = max(1, int(round(self.poll_interval_s / trace.dt_s)))
        readings: list[MeterReading] = []
        injector = _faults_active()
        prev_raw = self._poll_raw(injector, report)
        prev_energy_j: float | None = None
        t = 0.0
        for start in range(0, channel.size, samples_per_poll):
            chunk = channel[start : start + samples_per_poll]
            energy = float(chunk.sum() * trace.dt_s)
            self.rapl.record_energy(self.domain, energy)
            now_raw = self._poll_raw(injector, report)
            # A window below half a counter tick legitimately leaves the
            # register unmoved; anything larger that reads back unchanged
            # is a stuck register.
            if (
                injector is not None
                and now_raw == prev_raw
                and energy >= 0.5 * ENERGY_UNIT_J
            ):
                now_raw = self._reread_stuck(injector, report, prev_raw)
            window = chunk.size * trace.dt_s
            expected_j = prev_energy_j
            if self.expected_power_w is not None:
                expected_j = self.expected_power_w * window
            delta_j = MsrEnergyCounter.delta_joules(
                prev_raw, now_raw, expected_j=expected_j
            )
            if delta_j > self.max_power_w * window:
                raise MeterReadError(
                    f"RAPL {self.domain.value} window at t={t:.3f}s implies "
                    f"{delta_j / window:.0f} W, above the {self.max_power_w:.0f} W "
                    f"plausibility ceiling; counter is lying (phantom jump?)"
                )
            readings.append(
                MeterReading(t_start_s=t, t_end_s=t + window, energy_j=delta_j)
            )
            prev_raw = now_raw
            prev_energy_j = delta_j
            t += window
        return readings

    def _reread_stuck(
        self,
        injector: FaultInjector,
        report: DegradationReport | None,
        prev_raw: int,
    ) -> int:
        """Re-read a register that returned its previous value mid-run.

        Energy was recorded but the read did not move — either the
        register is stuck or a STUCK fault replayed the old value.  Extra
        reads within the plan's attempt budget resolve a transient; a
        register that stays frozen is a dead counter.
        """
        plan = injector.plan
        for attempt in range(1, plan.max_attempts):
            raw = self._poll_raw(injector, report)
            if raw != prev_raw:
                if report is not None:
                    report.record(
                        "rapl.read",
                        "retried",
                        attempts=attempt + 1,
                        detail="stuck register read recovered by re-read",
                    )
                return raw
        raise MeterReadError(
            f"RAPL {self.domain.value} counter frozen across "
            f"{plan.max_attempts} read(s) while energy was being consumed"
        )

    @staticmethod
    def average_power_w(readings: list[MeterReading]) -> float:
        """Time-weighted average power over a set of readings."""
        if not readings:
            raise ConfigurationError("no meter readings to average")
        total_t = sum(r.t_end_s - r.t_start_s for r in readings)
        total_e = sum(r.energy_j for r in readings)
        return total_e / total_t

    @staticmethod
    def max_window_power_w(readings: list[MeterReading]) -> float:
        """Worst single-window power — what a cap auditor checks."""
        if not readings:
            raise ConfigurationError("no meter readings to inspect")
        return max(r.power_w for r in readings)

    def as_array(self, readings: list[MeterReading]) -> np.ndarray:
        """Reading powers as an array (for compliance checks/plotting)."""
        return np.array([r.power_w for r in readings])
