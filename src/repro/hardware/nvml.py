"""NVML/nvidia-settings-style control interface for the GPU card model.

Mirrors the two knobs the paper drives on its Titan cards:

* ``nvidia-smi -pl`` → :meth:`NvmlDevice.set_power_limit` — the board-level
  cap, validated against the driver range (min ... 300 W);
* ``nvidia-settings`` memory frequency offsets →
  :meth:`NvmlDevice.set_mem_clock_offset`.

It also encodes the *default* Nvidia capping policy the paper criticizes in
Section 6.3: "it always runs memory at the nominal (the highest stable)
speed, no matter what is the imposed total power cap or what application is
running".  :meth:`NvmlDevice.apply_default_policy` resets the memory clock to
nominal; the COORD comparison in Figure 9 measures what that obliviousness
costs.
"""

from __future__ import annotations

from repro.errors import NvmlReadError, TransientReadError
from repro.faults.injector import active as _faults_active
from repro.faults.policies import retry_transient
from repro.faults.report import DegradationReport
from repro.hardware.gpu import GpuCard
from repro.hardware.gpu_mem import GpuMemOperatingPoint

__all__ = ["NvmlDevice"]


def _maybe_fail_read() -> None:
    """Fault-injection site ``"nvml.read"`` (transient query dropout).

    Mirrors how real NVML presents: ``nvmlDeviceGetPowerManagementLimit``
    and friends intermittently return ``NVML_ERROR_UNKNOWN`` /
    ``GPU_IS_LOST`` under driver load, and the standard response is a
    bounded retry.  Disarmed, this is a no-op.
    """
    injector = _faults_active()
    if injector is not None:
        event = injector.check("nvml.read")
        if event is not None:
            raise TransientReadError("nvml.read", event.call_index)


class NvmlDevice:
    """Stateful driver handle for one :class:`~repro.hardware.gpu.GpuCard`."""

    def __init__(self, card: GpuCard) -> None:
        self.card = card
        self._power_limit_w = card.default_cap_w
        self._mem_op = card.mem.operating_point(card.mem.nominal_mhz)

    # ------------------------------------------------------------------
    # power limit (nvidia-smi -pl)
    # ------------------------------------------------------------------
    @property
    def power_limit_w(self) -> float:
        """The active board power cap (raw query; may drop out under faults)."""
        _maybe_fail_read()
        return self._power_limit_w

    def read_power_limit_w(
        self, *, report: DegradationReport | None = None
    ) -> float:
        """The board cap, retried against transient query failures.

        Exhausting the armed plan's attempt budget raises
        :class:`~repro.errors.NvmlReadError`; disarmed this is exactly
        the :attr:`power_limit_w` property.
        """
        return self._read_resilient(lambda: self.power_limit_w, report)

    def _read_resilient(self, query, report: DegradationReport | None):
        injector = _faults_active()
        if injector is None:
            return query()
        plan = injector.plan
        try:
            return retry_transient(
                query,
                site="nvml.read",
                max_attempts=plan.max_attempts,
                report=report,
                backoff_base_s=plan.backoff_base_s,
            )
        except TransientReadError as exc:
            raise NvmlReadError(
                f"NVML query on {self.card.name!r} failed "
                f"{plan.max_attempts} consecutive attempt(s)"
            ) from exc

    def set_power_limit(self, cap_w: float) -> float:
        """Set the board cap; raises outside the driver-enforced range."""
        self._power_limit_w = self.card.validate_cap(cap_w)
        return self._power_limit_w

    def reset_power_limit(self) -> float:
        """Restore the factory default cap (250 W on the paper's cards)."""
        self._power_limit_w = self.card.default_cap_w
        return self._power_limit_w

    # ------------------------------------------------------------------
    # memory clock (nvidia-settings offsets)
    # ------------------------------------------------------------------
    @property
    def mem_operating_point(self) -> GpuMemOperatingPoint:
        """The active memory-clock operating point."""
        return self._mem_op

    @property
    def mem_clock_offset_mhz(self) -> float:
        """Current offset relative to the nominal memory clock."""
        _maybe_fail_read()
        return self._mem_op.offset_mhz(self.card.mem.nominal_mhz)

    def read_mem_clock_offset_mhz(
        self, *, report: DegradationReport | None = None
    ) -> float:
        """The memory-clock offset, retried against transient failures."""
        return self._read_resilient(lambda: self.mem_clock_offset_mhz, report)

    def set_mem_clock_offset(self, offset_mhz: float) -> GpuMemOperatingPoint:
        """Apply a frequency offset; the driver snaps it onto its grid."""
        target = self.card.mem.nominal_mhz + float(offset_mhz)
        self._mem_op = self.card.mem.operating_point(target)
        return self._mem_op

    def set_mem_power_target(self, target_w: float) -> GpuMemOperatingPoint:
        """Steer memory power via the clock, using the empirical model.

        This is the translation layer COORD needs: the heuristic reasons in
        watts, the driver knob is a frequency offset.
        """
        self._mem_op = self.card.mem.operating_point_for_power(target_w)
        return self._mem_op

    # ------------------------------------------------------------------
    # default policy
    # ------------------------------------------------------------------
    def apply_default_policy(self, cap_w: float | None = None) -> None:
        """The stock Nvidia behaviour: memory at nominal, cap on the board.

        Any power not used by the memory is reclaimed for the SM clock by
        the firmware (see :meth:`repro.hardware.gpu.GpuCard.sm_budget_w`),
        but the memory clock itself is never lowered — the application- and
        budget-oblivious strategy Figure 9 compares COORD against.
        """
        if cap_w is not None:
            self.set_power_limit(cap_w)
        self._mem_op = self.card.mem.operating_point(self.card.mem.nominal_mhz)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"NvmlDevice({self.card.name!r}, limit={self._power_limit_w:.0f} W, "
            f"mem={self._mem_op.freq_mhz:.0f} MHz)"
        )
