"""RAPL-style control interface with MSR energy-counter emulation.

The paper caps CPU-side components through Intel's Running Average Power
Limit interface.  This module reproduces the parts of that interface the
study relies on:

* named power domains (``package``, ``dram``) with settable power limits and
  averaging windows;
* monotonically increasing, fixed-unit, 32-bit wrapping energy counters
  (``MSR_PKG_ENERGY_STATUS`` semantics) that power meters difference and
  divide by elapsed time;
* a running-average enforcement check over a configurable window.

The actual actuation — which P/T-state or throttle level a limit engages —
lives in the component models (:mod:`repro.hardware.cpu`,
:mod:`repro.hardware.dram`); this module is the *control plane* the
coordinator layer talks to, mirroring how a real deployment would talk to
``/sys/class/powercap/intel-rapl``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, PowerBoundError, TransientReadError
from repro.faults.injector import active as _faults_active
from repro.faults.plan import FaultKind
from repro.util.units import check_positive, watts

__all__ = ["MsrEnergyCounter", "RaplDomainName", "RaplInterface", "RaplDomainStatus"]

#: RAPL energy status unit: 15.3 microjoules (2^-16 J), per Intel SDM Vol 3B.
ENERGY_UNIT_J = 2.0**-16

#: Energy-status registers are 32-bit and wrap silently.
_COUNTER_MODULUS = 2**32


class RaplDomainName(str, enum.Enum):
    """The RAPL domains this study caps (Section 3.3)."""

    PACKAGE = "package"
    DRAM = "dram"


@dataclass
class MsrEnergyCounter:
    """A wrapping, fixed-unit energy accumulator (MSR_*_ENERGY_STATUS).

    Real meters sample the 32-bit register and difference successive reads;
    at tens of watts the register wraps every few hours, so wrap handling is
    part of the contract and is exercised in the tests.
    """

    energy_unit_j: float = ENERGY_UNIT_J
    _raw: int = field(default=0, init=False)

    def accumulate(self, energy_j: float) -> None:
        """Add consumed energy (joules) to the register, wrapping at 2³²."""
        if energy_j < 0.0 or not np.isfinite(energy_j):
            raise ConfigurationError(f"energy must be finite and >= 0, got {energy_j}")
        ticks = int(round(energy_j / self.energy_unit_j))
        self._raw = (self._raw + ticks) % _COUNTER_MODULUS

    def read_raw(self) -> int:
        """Current 32-bit register value, in energy-status units."""
        return self._raw

    def read_joules(self) -> float:
        """Current register value converted to joules."""
        return self._raw * self.energy_unit_j

    def jump(self, ticks: int) -> None:
        """Advance the register by raw ticks (fault injection: phantom jump)."""
        self._raw = (self._raw + int(ticks)) % _COUNTER_MODULUS

    @staticmethod
    def delta_joules(
        earlier_raw: int,
        later_raw: int,
        energy_unit_j: float = ENERGY_UNIT_J,
        *,
        expected_j: float | None = None,
    ) -> float:
        """Energy between two raw reads, reconstructing counter wraps.

        The modular difference recovers exactly one wrap; *k* wraps in one
        polling window alias to the same small residue (the register loses
        ``k * 2**32`` ticks of information).  ``expected_j`` — an estimate
        of the window's energy, e.g. the previous window's measurement —
        disambiguates: the wrap multiple nearest the expectation is added
        back.  With no expectation (or one within half a wrap of the
        residue, which is every sane polling setup) the correction is
        exactly zero and the single-wrap arithmetic is unchanged.
        """
        diff = (later_raw - earlier_raw) % _COUNTER_MODULUS
        delta = diff * energy_unit_j
        if expected_j is not None:
            wrap_j = _COUNTER_MODULUS * energy_unit_j
            k = round((float(expected_j) - delta) / wrap_j)
            if k > 0:
                delta += k * wrap_j
        return delta


@dataclass
class RaplDomainStatus:
    """Per-domain control state: limit, window, and the energy counter."""

    name: RaplDomainName
    limit_w: float | None = None
    window_s: float = 0.01
    enabled: bool = True
    counter: MsrEnergyCounter = field(default_factory=MsrEnergyCounter)
    #: Last raw value returned to a reader (what a STUCK fault replays).
    last_read_raw: int = 0


class RaplInterface:
    """The node-level RAPL control plane.

    A coordinator sets per-domain power limits here; the execution model
    reads the limits back to decide which hardware mechanism engages, and
    writes consumed energy into the counters so that meters can observe
    actual power the same way the paper's measurements do.
    """

    def __init__(self, domains: tuple[RaplDomainName, ...] = (
        RaplDomainName.PACKAGE,
        RaplDomainName.DRAM,
    )) -> None:
        if not domains:
            raise ConfigurationError("RAPL interface needs at least one domain")
        self._domains: dict[RaplDomainName, RaplDomainStatus] = {
            d: RaplDomainStatus(name=d) for d in domains
        }

    # ------------------------------------------------------------------
    # limit control
    # ------------------------------------------------------------------
    def domains(self) -> tuple[RaplDomainName, ...]:
        """The domains this interface exposes."""
        return tuple(self._domains)

    def _status(self, domain: RaplDomainName) -> RaplDomainStatus:
        try:
            return self._domains[RaplDomainName(domain)]
        except (KeyError, ValueError) as exc:
            raise PowerBoundError(f"unknown RAPL domain: {domain!r}") from exc

    def set_power_limit(
        self,
        domain: RaplDomainName,
        limit_w: float,
        window_s: float = 0.01,
    ) -> None:
        """Program a running-average power limit for a domain."""
        status = self._status(domain)
        status.limit_w = watts(limit_w, "limit_w")
        status.window_s = check_positive(window_s, "window_s")
        status.enabled = True

    def clear_power_limit(self, domain: RaplDomainName) -> None:
        """Disable capping on a domain (cap reverts to unconstrained)."""
        status = self._status(domain)
        status.limit_w = None
        status.enabled = False

    def power_limit_w(self, domain: RaplDomainName) -> float | None:
        """Currently programmed limit, or ``None`` when uncapped."""
        status = self._status(domain)
        return status.limit_w if status.enabled else None

    # ------------------------------------------------------------------
    # energy accounting
    # ------------------------------------------------------------------
    def record_energy(self, domain: RaplDomainName, energy_j: float) -> None:
        """Accumulate consumed energy into a domain's MSR counter."""
        self._status(domain).counter.accumulate(energy_j)

    def read_energy_raw(self, domain: RaplDomainName) -> int:
        """Raw 32-bit energy-status register read.

        Fault-injection site ``"rapl.read"``: an armed
        :class:`~repro.faults.injector.FaultInjector` can make a read
        fail transiently (DROPOUT), replay the previous value (STUCK), or
        advance the register by a phantom jump (WRAP_JUMP) before the
        read.  Disarmed, this is a plain register read.
        """
        status = self._status(domain)
        injector = _faults_active()
        if injector is not None:
            event = injector.check("rapl.read")
            if event is not None:
                if event.kind is FaultKind.DROPOUT:
                    raise TransientReadError("rapl.read", event.call_index)
                if event.kind is FaultKind.STUCK:
                    return status.last_read_raw
                if event.kind is FaultKind.WRAP_JUMP:
                    status.counter.jump(int(event.amplitude * _COUNTER_MODULUS))
        raw = status.counter.read_raw()
        status.last_read_raw = raw
        return raw

    def read_energy_joules(self, domain: RaplDomainName) -> float:
        """Energy-status register in joules (still subject to wrap)."""
        return self._status(domain).counter.read_joules()

    # ------------------------------------------------------------------
    # compliance checking
    # ------------------------------------------------------------------
    def check_running_average(
        self,
        domain: RaplDomainName,
        power_trace_w: np.ndarray,
        dt_s: float,
        tolerance_w: float = 0.5,
    ) -> bool:
        """Verify a sampled power trace respects the domain's limit.

        Computes the running average over the programmed window and checks
        it never exceeds ``limit + tolerance``.  Uncapped domains trivially
        pass.  Used by tests and by the scheduler's compliance audit.
        """
        status = self._status(domain)
        if status.limit_w is None or not status.enabled:
            return True
        trace = np.asarray(power_trace_w, dtype=float)
        if trace.size == 0:
            return True
        dt_s = check_positive(dt_s, "dt_s")
        window_samples = max(1, int(round(status.window_s / dt_s)))
        if trace.size < window_samples:
            return bool(trace.mean() <= status.limit_w + tolerance_w)
        kernel = np.ones(window_samples) / window_samples
        running = np.convolve(trace, kernel, mode="valid")
        return bool(running.max() <= status.limit_w + tolerance_w)
