"""Hardware substrate: power-cappable component models and control interfaces.

This package implements the machinery the paper's testbed provided in silicon:

* CPU package model with P-states (DVFS), T-states (duty-cycle clock
  throttling) and a C-state/idle power floor (:mod:`repro.hardware.cpu`).
* DRAM subsystem with bandwidth throttling and a hardware minimum-power floor
  (:mod:`repro.hardware.dram`).
* A RAPL-like control interface with MSR-style energy counters
  (:mod:`repro.hardware.rapl`).
* GPU SM and device-memory models plus an NVML-like interface whose capping
  policy *reclaims* unused memory budget for the SMs
  (:mod:`repro.hardware.gpu`, :mod:`repro.hardware.nvml`).
* Node composition and the four calibrated platform presets of the paper's
  Table 2 (:mod:`repro.hardware.node`, :mod:`repro.hardware.platforms`).
"""

from repro.hardware.component import (
    CappingMechanism,
    PowerBoundableComponent,
)
from repro.hardware.biglittle import BigLittleNode, CoreCluster, biglittle_node
from repro.hardware.pstate import PStateTable
from repro.hardware.cpu import CpuDomain, CpuOperatingPoint
from repro.hardware.dram import DramDomain, DramOperatingPoint
from repro.hardware.gpu_sm import GpuSmDomain, GpuSmOperatingPoint
from repro.hardware.gpu_mem import GpuMemDomain, GpuMemOperatingPoint
from repro.hardware.gpu import GpuCard
from repro.hardware.node import ComputeNode
from repro.hardware.rapl import MsrEnergyCounter, RaplDomainName, RaplInterface
from repro.hardware.meter import MeterReading, RaplPowerMeter
from repro.hardware.nvml import NvmlDevice
from repro.hardware.platforms import (
    PLATFORMS,
    get_platform,
    haswell_node,
    ivybridge_node,
    list_platforms,
    titan_v_card,
    titan_xp_card,
)

__all__ = [
    "BigLittleNode",
    "CappingMechanism",
    "ComputeNode",
    "CoreCluster",
    "CpuDomain",
    "CpuOperatingPoint",
    "DramDomain",
    "DramOperatingPoint",
    "GpuCard",
    "GpuMemDomain",
    "GpuMemOperatingPoint",
    "GpuSmDomain",
    "GpuSmOperatingPoint",
    "MeterReading",
    "MsrEnergyCounter",
    "NvmlDevice",
    "PLATFORMS",
    "PStateTable",
    "PowerBoundableComponent",
    "RaplDomainName",
    "RaplInterface",
    "RaplPowerMeter",
    "biglittle_node",
    "get_platform",
    "haswell_node",
    "ivybridge_node",
    "list_platforms",
    "titan_v_card",
    "titan_xp_card",
]
