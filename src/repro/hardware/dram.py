"""Aggregated DRAM domain with bandwidth throttling and a power floor.

All DIMMs on a node are modelled as one aggregated component (paper
Section 2.2, assumption (c)).  The power model splits into a constant
background term (refresh, PLLs, I/O termination — drawn whenever the system
is up) and an access term proportional to how busy the memory bus is::

    P(level, busy) = P_bg + P_access_max · level · busy

``level`` is the throttle level the cap engaged (the fraction of command
slots the controller leaves enabled) and ``busy`` is the fraction of those
remaining slots the workload actually uses.  Two paper observations fall out
of this split:

* scenario III — a memory-bound run under a throttled cap has ``busy = 1``,
  so actual DRAM power tracks the cap and performance scales with the level;
* scenario IV — a CPU-throttled run issues few requests, ``busy « 1``, so
  "memory consumes much less power than its allocation".

Random-access workloads keep the bus busy with activates while delivering
few useful bytes; that is modelled by a per-phase *memory efficiency* on the
delivered-bandwidth side only (see :mod:`repro.perfmodel`), which is why
STREAM and RandomAccess both reach the same maximum DRAM power, as the paper
measures (~116 W on the IvyBridge node).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.component import CappingMechanism, PowerBoundableComponent
from repro.util.units import as_gbps, check_fraction, check_positive, watts

__all__ = ["DramDomain", "DramOperatingPoint"]


@dataclass(frozen=True)
class DramOperatingPoint:
    """Resolved hardware state for a DRAM cap: throttle level and mechanism."""

    level: float
    mechanism: CappingMechanism


class DramDomain(PowerBoundableComponent):
    """The aggregated main-memory power domain of a compute node.

    Parameters
    ----------
    name:
        Domain label (``"dram"`` by convention, matching RAPL).
    background_w:
        Constant power drawn while the system runs (refresh + I/O).
    max_access_w:
        Additional power at full bus utilization, unthrottled.
    peak_bw_gbps:
        Peak deliverable bandwidth for a perfectly streaming pattern.
    min_level:
        Lowest throttle level the controller supports.  The corresponding
        power, ``background_w + min_level · max_access_w``, is the paper's
        ``P_mem_L3`` floor: caps below it are disregarded.
    level_steps:
        Number of discrete throttle positions between ``min_level`` and 1.
    """

    def __init__(
        self,
        *,
        name: str = "dram",
        background_w: float,
        max_access_w: float,
        peak_bw_gbps: float,
        min_level: float = 0.45,
        level_steps: int = 32,
    ) -> None:
        self.name = str(name)
        self.background_w = watts(background_w, "background_w")
        self.max_access_w = check_positive(max_access_w, "max_access_w")
        self.peak_bw_gbps = check_positive(peak_bw_gbps, "peak_bw_gbps")
        self.min_level = check_fraction(min_level, "min_level")
        if self.min_level <= 0.0:
            raise ConfigurationError("min_level must be > 0")
        if level_steps < 1:
            raise ConfigurationError(f"level_steps must be >= 1, got {level_steps}")
        self.level_steps = int(level_steps)

    # ------------------------------------------------------------------
    # demand bounds
    # ------------------------------------------------------------------
    @property
    def floor_power_w(self) -> float:
        """``P_mem_L3``: power at the lowest throttle level, fully busy."""
        return self.background_w + self.min_level * self.max_access_w

    @property
    def max_power_w(self) -> float:
        return self.background_w + self.max_access_w

    # ------------------------------------------------------------------
    # cap enforcement
    # ------------------------------------------------------------------
    def snap_level(self, level: float) -> float:
        """Snap a continuous throttle level down onto the discrete grid."""
        if self.level_steps == 1:
            return self.min_level
        span = 1.0 - self.min_level
        step = span / (self.level_steps - 1)
        k = int((level - self.min_level) / step + 1e-9)
        return self.min_level + max(0, min(self.level_steps - 1, k)) * step

    def operating_point(self, cap_w: float) -> DramOperatingPoint:
        """Resolve a DRAM power cap into a bandwidth throttle level.

        The controller budgets for a fully busy bus (it cannot predict the
        workload), so the level is chosen such that worst-case power fits
        under the cap.
        """
        cap_w = watts(cap_w, "cap_w")
        if cap_w >= self.max_power_w:
            return DramOperatingPoint(1.0, CappingMechanism.NONE)
        level = (cap_w - self.background_w) / self.max_access_w
        if level >= self.min_level:
            level = self.snap_level(min(level, 1.0))
            return DramOperatingPoint(level, CappingMechanism.BANDWIDTH_THROTTLE)
        # Cap below the hardware minimum: disregarded, floor level applies.
        return DramOperatingPoint(self.min_level, CappingMechanism.FLOOR)

    # ------------------------------------------------------------------
    # power / rate models
    # ------------------------------------------------------------------
    def demand_w(self, op: DramOperatingPoint, busy_fraction: float) -> float:
        """Actual power at an operating point given bus busy fraction."""
        check_fraction(busy_fraction, "busy_fraction")
        return self.background_w + op.level * busy_fraction * self.max_access_w

    def bandwidth_ceiling_gbps(
        self, op: DramOperatingPoint, memory_efficiency: float
    ) -> float:
        """Deliverable bandwidth at a throttle level for a given access pattern.

        ``memory_efficiency`` is the fraction of peak bandwidth the pattern
        can extract (≈0.85 streaming, ≈0.08 random); throttling scales the
        ceiling multiplicatively, matching the paper's "DRAM bandwidth
        throttling reduces memory power proportionally [and] decreases
        memory access rate" (Section 3.3).
        """
        check_fraction(memory_efficiency, "memory_efficiency")
        return as_gbps(self.peak_bw_gbps * op.level * memory_efficiency)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DramDomain(name={self.name!r}, bg={self.background_w} W, "
            f"access={self.max_access_w} W, peak={self.peak_bw_gbps} GB/s)"
        )
