"""GPU device-memory (GDDR5X / HBM2) power domain.

Device-memory power is steered through *frequency offsets* (the paper uses
``nvidia-settings``), not direct caps.  Bandwidth scales with the memory
clock; power is estimated from the clock with an empirical model — exactly
how the paper produces the "memory power" axis of Figure 7 ("estimated using
memory frequency setting and empirical power models built from experiment
data on the card").

The power model has three terms::

    P(r, busy) = P_idle + P_clock · r² + P_access · r · busy

with ``r = freq / nominal``.  The clock term (PLL, PHY, I/O voltage that
rises with the clock) is drawn *regardless of traffic* — this is the watts a
coordinated policy recovers by downclocking memory for compute-bound
kernels, and what the budget-oblivious Nvidia default (memory always at
nominal) leaves on the table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, PowerBoundError
from repro.hardware.component import CappingMechanism, PowerBoundableComponent
from repro.util.units import check_fraction, check_positive, watts

__all__ = ["GpuMemDomain", "GpuMemOperatingPoint"]


@dataclass(frozen=True)
class GpuMemOperatingPoint:
    """Resolved device-memory state: clock in MHz and how it was reached."""

    freq_mhz: float
    mechanism: CappingMechanism

    def offset_mhz(self, nominal_mhz: float) -> float:
        """The ``nvidia-settings`` style offset relative to the nominal clock."""
        return self.freq_mhz - nominal_mhz


class GpuMemDomain(PowerBoundableComponent):
    """The global-memory power domain of a discrete GPU.

    Parameters
    ----------
    nominal_mhz:
        Default (highest stable) memory clock; the Nvidia default capping
        policy always runs here.
    min_mhz:
        Lowest clock the driver accepts via negative offsets.
    step_mhz:
        Offset granularity.
    idle_power_w:
        Clock-independent floor (refresh, cell retention).
    clock_power_w:
        Additional power at the nominal clock from PLL/PHY/I-O rails; scales
        with the square of the clock ratio and is traffic-independent.
    access_power_w:
        Additional power at the nominal clock with a fully busy bus.
    peak_bw_gbps:
        Deliverable bandwidth at the nominal clock for streaming access.
    """

    def __init__(
        self,
        *,
        name: str = "gpumem",
        nominal_mhz: float,
        min_mhz: float,
        step_mhz: float = 50.0,
        idle_power_w: float,
        clock_power_w: float,
        access_power_w: float,
        peak_bw_gbps: float,
    ) -> None:
        self.name = str(name)
        self.nominal_mhz = check_positive(nominal_mhz, "nominal_mhz")
        self.min_mhz = check_positive(min_mhz, "min_mhz")
        if self.min_mhz > self.nominal_mhz:
            raise ConfigurationError(
                f"min_mhz ({min_mhz}) exceeds nominal_mhz ({nominal_mhz})"
            )
        self.step_mhz = check_positive(step_mhz, "step_mhz")
        self.idle_power_w = watts(idle_power_w, "idle_power_w")
        self.clock_power_w = check_positive(clock_power_w, "clock_power_w")
        self.access_power_w = check_positive(access_power_w, "access_power_w")
        self.peak_bw_gbps = check_positive(peak_bw_gbps, "peak_bw_gbps")
        n_steps = int(round((self.nominal_mhz - self.min_mhz) / self.step_mhz))
        freqs = self.min_mhz + self.step_mhz * np.arange(n_steps + 1)
        freqs[-1] = self.nominal_mhz
        freqs.setflags(write=False)
        self._freqs = freqs

    @property
    def frequencies_mhz(self) -> np.ndarray:
        """All selectable memory clocks, ascending."""
        return self._freqs

    def _ratio(self, freq_mhz: float) -> float:
        return float(freq_mhz) / self.nominal_mhz

    # ------------------------------------------------------------------
    # demand bounds
    # ------------------------------------------------------------------
    @property
    def floor_power_w(self) -> float:
        """Estimated busy-bus power at the lowest selectable clock."""
        return self.allocated_power_w(self.min_mhz)

    @property
    def max_power_w(self) -> float:
        """Estimated busy-bus power at the nominal clock."""
        return self.allocated_power_w(self.nominal_mhz)

    @property
    def min_power_w(self) -> float:
        """Traffic-free power at the lowest clock — the true domain floor."""
        r = self._ratio(self.min_mhz)
        return self.idle_power_w + self.clock_power_w * r * r

    # ------------------------------------------------------------------
    # empirical power model (clock -> power)
    # ------------------------------------------------------------------
    def allocated_power_w(self, freq_mhz: float) -> float:
        """Empirical worst-case (busy bus) power estimate for a clock.

        This is the "memory power allocation" axis the paper plots: what
        running at ``freq_mhz`` would draw if the bus stayed fully busy.
        """
        r = self._ratio(freq_mhz)
        return self.idle_power_w + self.clock_power_w * r * r + self.access_power_w * r

    def demand_w(self, op: GpuMemOperatingPoint, busy_fraction: float) -> float:
        """Actual power at a clock given the measured bus busy fraction."""
        check_fraction(busy_fraction, "busy_fraction")
        r = self._ratio(op.freq_mhz)
        return (
            self.idle_power_w
            + self.clock_power_w * r * r
            + self.access_power_w * r * busy_fraction
        )

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def operating_point(self, freq_mhz: float) -> GpuMemOperatingPoint:
        """Snap a requested clock onto the driver's offset grid."""
        f = float(freq_mhz)
        if not (self.min_mhz - 1e-9 <= f <= self.nominal_mhz + 1e-9):
            raise PowerBoundError(
                f"memory clock {f} MHz outside driver range "
                f"[{self.min_mhz}, {self.nominal_mhz}] MHz"
            )
        idx = int(np.argmin(np.abs(self._freqs - f)))
        snapped = float(self._freqs[idx])
        mech = (
            CappingMechanism.NONE
            if snapped >= self.nominal_mhz
            else CappingMechanism.DVFS
        )
        return GpuMemOperatingPoint(snapped, mech)

    def operating_point_for_power(self, target_w: float) -> GpuMemOperatingPoint:
        """Invert the empirical power model: clock whose allocation ≈ target.

        Used by the GPU COORD heuristic, which reasons in watts and must be
        translated into the frequency-offset knob the driver exposes.  The
        result is the highest clock whose worst-case power fits ``target_w``
        (clamped to the driver range — caps below the floor are disallowed
        by hardware, matching the paper's Section 4 observation).
        """
        target_w = watts(target_w, "target_w")
        ratios = self._freqs / self.nominal_mhz
        powers = (
            self.idle_power_w
            + self.clock_power_w * ratios * ratios
            + self.access_power_w * ratios
        )
        mask = powers <= target_w + 1e-9
        if not mask.any():
            return GpuMemOperatingPoint(float(self._freqs[0]), CappingMechanism.FLOOR)
        freq = float(self._freqs[np.nonzero(mask)[0][-1]])
        mech = (
            CappingMechanism.NONE if freq >= self.nominal_mhz else CappingMechanism.DVFS
        )
        return GpuMemOperatingPoint(freq, mech)

    def bandwidth_ceiling_gbps(
        self, op: GpuMemOperatingPoint, memory_efficiency: float
    ) -> float:
        """Deliverable bandwidth at a clock for a given access pattern."""
        check_fraction(memory_efficiency, "memory_efficiency")
        return self.peak_bw_gbps * self._ratio(op.freq_mhz) * memory_efficiency

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GpuMemDomain({self.min_mhz:.0f}-{self.nominal_mhz:.0f} MHz, "
            f"{self.peak_bw_gbps} GB/s)"
        )
