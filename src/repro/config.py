"""Serialization of library objects to/from plain dicts and JSON.

Profiles are per (application, platform) pairs that deployments want to
persist between job submissions — the paper's "provided offline application
profiling, this method does not incur runtime overhead" workflow assumes
exactly this.  Workload characterizations are likewise shareable artifacts.

Round-tripping is exact for every supported type::

    blob = to_json(workload)
    assert from_json(blob) == workload
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.allocation import PowerAllocation
from repro.core.critical import CpuCriticalPowers, GpuCriticalPowers
from repro.errors import ConfigurationError
from repro.perfmodel.phase import Phase
from repro.workloads.base import MetricKind, Workload, WorkloadClass

__all__ = ["from_dict", "from_json", "to_dict", "to_json"]

#: Type tag -> class, for self-describing payloads.
_TYPES = {
    "phase": Phase,
    "workload": Workload,
    "cpu-critical-powers": CpuCriticalPowers,
    "gpu-critical-powers": GpuCriticalPowers,
    "power-allocation": PowerAllocation,
}


def to_dict(obj: Any) -> dict:
    """Serialize a supported object into a self-describing plain dict."""
    if isinstance(obj, Phase):
        return {
            "type": "phase",
            "name": obj.name,
            "flops": obj.flops,
            "bytes_moved": obj.bytes_moved,
            "activity": obj.activity,
            "stall_activity": obj.stall_activity,
            "compute_efficiency": obj.compute_efficiency,
            "memory_efficiency": obj.memory_efficiency,
        }
    if isinstance(obj, Workload):
        return {
            "type": "workload",
            "name": obj.name,
            "suite": obj.suite,
            "description": obj.description,
            "device": obj.device,
            "workload_class": obj.workload_class.value,
            "metric": obj.metric.name,
            "work_units": obj.work_units,
            "phases": [to_dict(p) for p in obj.phases],
        }
    if isinstance(obj, CpuCriticalPowers):
        return {"type": "cpu-critical-powers", **obj.as_dict()}
    if isinstance(obj, GpuCriticalPowers):
        return {"type": "gpu-critical-powers", **obj.as_dict()}
    if isinstance(obj, PowerAllocation):
        return {  # repro-lint: disable=RPL004 -- JSON snapshot of an already-validated PowerAllocation
            "type": "power-allocation", "proc_w": obj.proc_w, "mem_w": obj.mem_w,
        }
    raise ConfigurationError(
        f"cannot serialize objects of type {type(obj).__name__}"
    )


def from_dict(payload: dict) -> Any:
    """Reconstruct an object serialized by :func:`to_dict`."""
    if not isinstance(payload, dict) or "type" not in payload:
        raise ConfigurationError("payload is not a self-describing dict")
    kind = payload["type"]
    data = {k: v for k, v in payload.items() if k != "type"}
    if kind == "phase":
        return Phase(**data)
    if kind == "workload":
        return Workload(
            name=data["name"],
            suite=data["suite"],
            description=data["description"],
            device=data["device"],
            workload_class=WorkloadClass(data["workload_class"]),
            metric=MetricKind[data["metric"]],
            work_units=data["work_units"],
            phases=tuple(from_dict(p) for p in data["phases"]),
        )
    if kind == "cpu-critical-powers":
        return CpuCriticalPowers(**data)
    if kind == "gpu-critical-powers":
        return GpuCriticalPowers(**data)
    if kind == "power-allocation":
        return PowerAllocation(**data)
    raise ConfigurationError(
        f"unknown payload type {kind!r}; supported: {sorted(_TYPES)}"
    )


def to_json(obj: Any, *, indent: int | None = 2) -> str:
    """Serialize a supported object to a JSON string."""
    return json.dumps(to_dict(obj), indent=indent, sort_keys=True)


def from_json(blob: str) -> Any:
    """Reconstruct an object from :func:`to_json` output."""
    try:
        payload = json.loads(blob)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid JSON payload: {exc}") from exc
    return from_dict(payload)
