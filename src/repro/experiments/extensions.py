"""Extension studies beyond the paper's evaluation.

Four studies exercising the future-work directions the paper names:

* **(A) adaptive** — per-phase COORD vs static whole-application COORD on
  the multi-phase NPB codes ("the need of adaptive scheduling inside the
  application", Section 6.2);
* **(B) online** — profiling-free feedback power shifting (the Hanson-
  style related-work approach) vs COORD: final performance and the
  exploration epochs it burns;
* **(C) efficiency** — perf/W across budgets; the efficient budget band a
  global scheduler should target (Section 3.1's insights, quantified);
* **(D) coschedule** — two tenants sharing one node under one bound with
  asymmetric core/bandwidth slices ("multi-task and multi-tenant
  systems", Section 8);
* **(E) hybrid** — a GPU-offload application under one node bound: the
  budget-shifting coordinator vs a static host/device split ("hybrid
  computing", deferred in Section 2.2).
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptive import adaptive_vs_static
from repro.core.coord import coord_cpu
from repro.core.efficiency import efficiency_curve
from repro.core.online import online_power_shift
from repro.core.profiler import profile_cpu_workload
from repro.errors import SchedulerError
from repro.core.parallel import SweepEngine
from repro.experiments.report import ExperimentReport
from repro.hardware.platforms import ivybridge_node
from repro.perfmodel.executor import execute_on_host
from repro.sched.coschedule import coschedule_pair
from repro.util.tables import format_table
from repro.workloads import cpu_workload

__all__ = ["run"]


def _adaptive_study(report: ExperimentReport, node, fast: bool) -> None:
    rows = []
    data = {}
    budgets = (200.0,) if fast else (160.0, 180.0, 200.0, 220.0)
    for name in ("bt", "sp", "lu", "ft", "mg"):
        wl = cpu_workload(name)
        for budget in budgets:
            cmp = adaptive_vs_static(node.cpu, node.dram, wl, budget)
            rows.append(
                (name, budget, cmp.static_perf, cmp.adaptive_perf,
                 f"{(cmp.speedup - 1) * 100:+.1f}%")
            )
            data[(name, budget)] = cmp
    report.add_table(
        format_table(
            ["benchmark", "P_b (W)", "static COORD", "per-phase COORD", "gain"],
            rows,
            float_spec=".4g",
            title="(A) per-phase adaptive coordination on multi-phase codes",
        )
    )
    report.data["adaptive"] = data


def _online_study(report: ExperimentReport, node, fast: bool) -> None:
    rows = []
    data = {}
    budgets = (180.0,) if fast else (150.0, 180.0, 210.0)
    for name in ("stream", "sra", "mg", "dgemm", "cg"):
        wl = cpu_workload(name)
        critical = profile_cpu_workload(node.cpu, node.dram, wl)
        for budget in budgets:
            shift = online_power_shift(node.cpu, node.dram, wl, budget)
            decision = coord_cpu(critical, budget)
            if decision.accepted:
                r = execute_on_host(
                    node.cpu, node.dram, wl.phases,
                    decision.allocation.proc_w, decision.allocation.mem_w,
                )
                coord_perf = wl.performance(r)
            else:
                coord_perf = float("nan")
            rows.append(
                (name, budget, coord_perf, shift.performance, shift.epochs)
            )
            data[(name, budget)] = {
                "coord": coord_perf,
                "online": shift.performance,
                "epochs": shift.epochs,
            }
    report.add_table(
        format_table(
            ["benchmark", "P_b (W)", "COORD (profiled)", "online shifting",
             "search epochs"],
            rows,
            float_spec=".4g",
            title="(B) profiling-free feedback shifting vs COORD",
        )
    )
    report.data["online"] = data


def _efficiency_study(report: ExperimentReport, node, fast: bool) -> None:
    rows = []
    data = {}
    budgets = np.arange(130.0, 281.0, 30.0 if fast else 15.0)
    for name in ("sra", "dgemm", "mg"):
        wl = cpu_workload(name)
        curve = efficiency_curve(
            node.cpu, node.dram, wl, budgets, step_w=12.0 if fast else 6.0
        )
        band = curve.efficient_band_w()
        rows.append(
            (name, curve.peak_efficiency_budget_w, f"[{band[0]:.0f}, {band[1]:.0f}]",
             curve.perf_per_watt.max() / curve.perf_per_watt.min())
        )
        data[name] = curve
    report.add_table(
        format_table(
            ["benchmark", "peak perf/W budget (W)", "efficient band (W)",
             "perf/W max/min"],
            rows,
            float_spec=".3g",
            title="(C) energy efficiency across budgets (best allocation each)",
        )
    )
    report.data["efficiency"] = data


def _coschedule_study(report: ExperimentReport, node, fast: bool) -> None:
    rows = []
    data = {}
    pairs = [("dgemm", "stream"), ("ep", "sra")]
    if not fast:
        pairs.append(("bt", "mg"))
    for name_a, name_b in pairs:
        try:
            result = coschedule_pair(
                node.cpu, node.dram, cpu_workload(name_a), cpu_workload(name_b),
                260.0,
            )
        except SchedulerError:
            rows.append((f"{name_a}+{name_b}", None, None, None, "infeasible"))
            continue
        a, b = result.tenant_a, result.tenant_b
        rows.append(
            (
                f"{name_a}+{name_b}",
                f"{a.core_fraction:.2f}/{a.bw_fraction:.2f}",
                a.normalized_progress,
                b.normalized_progress,
                f"{result.weighted_speedup:.2f}",
            )
        )
        data[(name_a, name_b)] = result
    report.add_table(
        format_table(
            ["pair", "A cores/bw share", "A progress", "B progress",
             "weighted speedup"],
            rows,
            float_spec=".2f",
            title="(D) two tenants under one 260 W node bound",
        )
    )
    report.data["coschedule"] = data


def _hybrid_study(report: ExperimentReport, fast: bool) -> None:
    from repro.core.coord import coord_cpu
    from repro.core.coord_gpu import coord_gpu
    from repro.core.coord_hybrid import (
        HybridDecision,
        coord_hybrid,
        execute_hybrid,
        offload_workload,
    )
    from repro.core.profiler import profile_cpu_workload, profile_gpu_workload
    from repro.hardware.platforms import get_platform
    from repro.util.units import clamp

    node = get_platform("titan-xp-host")
    card = node.gpu(0)
    wl = offload_workload()
    host_critical = profile_cpu_workload(node.cpu, node.dram, wl.host_view())
    gpu_critical = profile_gpu_workload(card, wl.gpu_view())
    budgets = (360.0,) if fast else (330.0, 360.0, 400.0, 450.0)
    rows = []
    data = {}
    for budget in budgets:
        dynamic = execute_hybrid(
            node, wl,
            coord_hybrid(node, wl, budget,
                         host_critical=host_critical, gpu_critical=gpu_critical),
        )
        half = clamp(budget / 2.0, card.min_cap_w, card.max_cap_w)
        static = execute_hybrid(
            node, wl,
            HybridDecision(
                host=coord_cpu(host_critical, budget / 2.0),
                gpu=coord_gpu(gpu_critical, half, hardware_max_w=card.max_cap_w),
                gpu_cap_w=half,
                gpu_mem_freq_mhz=card.mem.nominal_mhz,
            ),
        )
        rows.append(
            (
                budget,
                dynamic.performance_gflops,
                static.performance_gflops,
                f"{(dynamic.performance_gflops / static.performance_gflops - 1) * 100:+.1f}%",
                dynamic.peak_node_power_w,
            )
        )
        data[budget] = {"dynamic": dynamic, "static": static}
    report.add_table(
        format_table(
            ["node bound (W)", "shifting coord (GFLOPS)", "static split (GFLOPS)",
             "gain", "peak node power (W)"],
            rows,
            float_spec=".4g",
            title="(E) GPU-offload application under one node bound",
        )
    )
    report.data["hybrid"] = data


def run(fast: bool = False, engine: "SweepEngine | None" = None) -> ExperimentReport:
    """Run the five extension studies."""
    report = ExperimentReport(
        "extensions",
        "Future-work studies: adaptive, online, efficiency, co-scheduling, hybrid",
    )
    node = ivybridge_node()
    _adaptive_study(report, node, fast)
    _online_study(report, node, fast)
    _efficiency_study(report, node, fast)
    _coschedule_study(report, node, fast)
    _hybrid_study(report, fast)
    return report
