"""Figure 5: balanced compute and memory access at the optimum.

DGEMM and STREAM on the IvyBridge node at ``P_b = 208`` W.  For each
allocation, each domain's *capacity* (its rate with the other domain
over-powered) is compared with its achieved rate.  The paper's signature
result: at the optimal allocation both utilizations approach 100 %, while
skewed allocations leave one domain's capacity idle.
"""

from __future__ import annotations

from repro.core.allocation import allocation_grid
from repro.core.analysis import balance_analysis
from repro.core.parallel import SweepEngine
from repro.core.sweep import sweep_cpu_allocations
from repro.experiments.report import ExperimentReport
from repro.hardware.platforms import ivybridge_node
from repro.util.tables import format_table
from repro.workloads import cpu_workload

__all__ = ["run", "BUDGET_W"]

#: The figure's fixed budget.
BUDGET_W = 208.0


def run(fast: bool = False, engine: SweepEngine | None = None) -> ExperimentReport:
    """Regenerate Figure 5's capacity/utilization bars."""
    report = ExperimentReport(
        "fig5", "Balanced compute and memory access for P_b = 208 W (IvyBridge)"
    )
    node = ivybridge_node()
    step = 24.0 if fast else 12.0
    for wl_name in ("dgemm", "stream"):
        wl = cpu_workload(wl_name)
        allocations = list(
            allocation_grid(BUDGET_W, mem_min_w=28.0, proc_min_w=40.0, step_w=step)
        )
        points = balance_analysis(node.cpu, node.dram, wl, allocations)
        sweep = sweep_cpu_allocations(
            node.cpu, node.dram, wl, BUDGET_W, step_w=step, engine=engine
        )
        best_mem = sweep.best.allocation.mem_w
        report.add_table(
            format_table(
                [
                    "P_mem (W)", "compute cap (GFLOP/s)", "compute util",
                    "mem cap (GB/s)", "mem util", "optimal?",
                ],
                [
                    (
                        bp.allocation.mem_w,
                        bp.compute_capacity / 1e9,
                        bp.compute_utilization,
                        bp.mem_capacity / 1e9,
                        bp.mem_utilization,
                        "<-- optimum" if abs(bp.allocation.mem_w - best_mem) < step / 2 else "",
                    )
                    for bp in points
                ],
                title=f"{wl_name.upper()}: capacity and utilization per allocation",
            )
        )
        report.data[wl_name] = {"points": points, "optimal_mem_w": best_mem}
    return report
