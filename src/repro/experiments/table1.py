"""Table 1: optimal allocation and critical component vs power budget.

The paper's Table 1 maps budget regimes onto the valid scenario set, the
category intersection the optimum sits at, and the critical component —
the one whose under-powering drastically degrades performance.  The table
is derived here for RandomAccess on the IvyBridge node (the paper's
running example), descending through budgets so the regime progression
I → II|III → III|IV → IV|VI is visible.
"""

from __future__ import annotations

from repro.core.analysis import table1_rows
from repro.core.parallel import SweepEngine
from repro.experiments.report import ExperimentReport
from repro.hardware.platforms import ivybridge_node
from repro.util.tables import format_table
from repro.workloads import cpu_workload

__all__ = ["run", "BUDGETS_W"]

#: Budget ladder, large to small, spanning all regimes of the paper's table.
BUDGETS_W = (280.0, 224.0, 176.0, 150.0, 132.0)


def run(fast: bool = False, engine: SweepEngine | None = None) -> ExperimentReport:
    """Regenerate Table 1 for RandomAccess on IvyBridge."""
    report = ExperimentReport(
        "table1", "Optimal allocation and critical component vs power budget (SRA)"
    )
    node = ivybridge_node()
    wl = cpu_workload("sra")
    rows = table1_rows(
        node.cpu, node.dram, wl, list(BUDGETS_W), step_w=8.0 if fast else 4.0,
        engine=engine,
    )
    report.add_table(
        format_table(
            [
                "P_b (W)", "valid scenarios", "optimum at", "critical comp.",
                "optimal (P_cpu, P_mem)", f"perf_max ({wl.metric_unit})",
            ],
            [
                (
                    r.budget_w,
                    "/".join(s.roman for s in r.valid_scenarios),
                    "|".join(s.roman for s in r.intersection),
                    r.critical or "none",
                    f"({r.optimal.proc_w:.0f}, {r.optimal.mem_w:.0f})",
                    r.perf_max,
                )
                for r in rows
            ],
            float_spec=".4g",
        )
    )
    report.data["rows"] = rows
    return report
