"""Figure 1: STREAM under power bounds, CPU and GPU computing.

Left panels: the upper performance bound vs the total power budget.
Right panels: performance across cross-component allocations at one fixed
budget — 208 W for CPU computing, 140 W for GPU computing.  CPU bandwidth
is reported per core, GPU bandwidth for the whole card, matching the
figure's caption.
"""

from __future__ import annotations

import numpy as np

from repro.core.parallel import SweepEngine
from repro.core.sweep import (
    cpu_budget_curve,
    gpu_budget_curve,
    sweep_cpu_allocations,
    sweep_gpu_allocations,
)
from repro.experiments.report import ExperimentReport
from repro.hardware.platforms import ivybridge_node, titan_xp_card
from repro.util.tables import format_series, format_table
from repro.workloads import cpu_workload, gpu_workload

__all__ = ["run", "CPU_FIXED_BUDGET_W", "GPU_FIXED_BUDGET_W"]

#: The fixed budgets of the figure's right-hand panels.
CPU_FIXED_BUDGET_W = 208.0
GPU_FIXED_BUDGET_W = 140.0


def run(fast: bool = False, engine: SweepEngine | None = None) -> ExperimentReport:
    """Regenerate Figure 1's four panels."""
    report = ExperimentReport(
        "fig1",
        "Performance of Stream with CPU and GPU computing under power bounds",
    )
    node = ivybridge_node()
    card = titan_xp_card()
    stream = cpu_workload("stream")
    gstream = gpu_workload("gpu-stream")
    n_cores = node.cpu.n_cores
    step = 16.0 if fast else 8.0

    # (a) left: CPU perf_max ~ P_b, per-core GB/s.
    budgets = np.arange(120.0, 292.0, 24.0 if fast else 12.0)
    curve = cpu_budget_curve(
        node.cpu, node.dram, stream, budgets, step_w=step, engine=engine
    )
    per_core = curve.perf_max / n_cores
    report.add_table(
        format_series(
            "P_b (W)", "GB/s per core", budgets, per_core,
            title="(a-left) CPU Stream: upper performance bound vs total budget",
        )
    )
    report.data["cpu_curve"] = {"budgets_w": budgets, "perf": per_core}

    # (a) right: CPU allocations at 208 W.
    sweep = sweep_cpu_allocations(
        node.cpu, node.dram, stream, CPU_FIXED_BUDGET_W, step_w=step, engine=engine
    )
    report.add_table(
        format_table(
            ["P_mem (W)", "P_cpu (W)", "GB/s per core", "actual total (W)"],
            [
                (p.allocation.mem_w, p.allocation.proc_w, p.performance / n_cores,
                 p.actual_total_w)
                for p in sweep.points
            ],
            title=f"(a-right) CPU Stream allocations at P_b = {CPU_FIXED_BUDGET_W:.0f} W",
        )
    )
    report.data["cpu_sweep"] = sweep

    # (b) left: GPU perf_max ~ cap.
    caps = np.arange(130.0, 301.0, 20.0 if fast else 10.0)
    gcurve = gpu_budget_curve(
        card, gstream, caps, freq_stride=4 if fast else 1, engine=engine
    )
    report.add_table(
        format_series(
            "cap (W)", "GB/s", caps, gcurve.perf_max,
            title="(b-left) GPU Stream: upper performance bound vs power cap",
        )
    )
    report.data["gpu_curve"] = {"caps_w": caps, "perf": gcurve.perf_max}

    # (b) right: GPU allocations at 140 W.
    gsweep = sweep_gpu_allocations(
        card, gstream, GPU_FIXED_BUDGET_W, freq_stride=4 if fast else 1, engine=engine
    )
    report.add_table(
        format_table(
            ["mem clock (MHz)", "P_mem est. (W)", "GB/s", "actual total (W)"],
            [
                (p, a, perf, r.result.total_power_w)
                for p, a, perf, r in zip(
                    gsweep.mem_freqs_mhz, gsweep.mem_alloc_w,
                    gsweep.performances, gsweep.points,
                )
            ],
            title=f"(b-right) GPU Stream allocations at cap = {GPU_FIXED_BUDGET_W:.0f} W",
        )
    )
    report.data["gpu_sweep"] = gsweep
    return report
