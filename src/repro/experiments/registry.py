"""Registry mapping paper artifact ids onto experiment runners."""

from __future__ import annotations

from collections.abc import Callable

from repro.core.parallel import SweepEngine
from repro.errors import ReproError
from repro.experiments import (
    ablation,
    biglittle,
    cluster_study,
    extensions,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    table1,
)
from repro.experiments.report import ExperimentReport

__all__ = ["EXPERIMENTS", "list_experiments", "run_experiment"]

#: Artifact id → runner.  Each runner accepts ``fast`` to trade sweep
#: resolution for runtime (used by the test suite; benchmarks run full).
EXPERIMENTS: dict[str, Callable[..., ExperimentReport]] = {
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "table1": table1.run,
    "ablation": ablation.run,
    "extensions": extensions.run,
    "biglittle": biglittle.run,
    "cluster": cluster_study.run,
}


def list_experiments() -> tuple[str, ...]:
    """All registered artifact ids, in paper order."""
    return tuple(EXPERIMENTS)


def run_experiment(
    experiment_id: str,
    fast: bool = False,
    *,
    jobs: int | None = None,
    engine: SweepEngine | None = None,
    mode: str | None = None,
    cache_dir: str | None = None,
) -> ExperimentReport:
    """Run one experiment by artifact id.

    ``engine`` routes the experiment's sweeps through an explicit
    :class:`SweepEngine` (pool + memo cache); ``jobs``, ``mode``
    (``"full"``/``"adaptive"``) and ``cache_dir`` (persistent disk cache
    root) are shorthands that build one.  With none of them, sweeps fall
    back to the process-wide default engine, which honours the
    ``REPRO_SWEEP`` and ``REPRO_CACHE_DIR`` environment variables.
    """
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    if engine is None and (
        jobs is not None or mode is not None or cache_dir is not None
    ):
        engine = SweepEngine(n_jobs=jobs, mode=mode, cache_dir=cache_dir)
    report = runner(fast=fast, engine=engine)
    if engine is not None:
        engine.flush()
    return report
