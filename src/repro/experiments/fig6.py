"""Figure 6: GPU upper performance bound vs power cap.

SGEMM and MiniFE on the Titan XP and Titan V cards.  Anchors from the
paper: on the XP, SGEMM's bound keeps rising through the full cap range
(it demands more than 300 W) while MiniFE saturates near 180 W; on the V,
SGEMM saturates near 180 W and MiniFE is flat across the studied range.
The report also notes where the Nvidia *default* policy (memory at the
nominal clock) falls short of the bound.
"""

from __future__ import annotations

import numpy as np

from repro.core.parallel import SweepEngine
from repro.core.sweep import gpu_budget_curve
from repro.experiments.report import ExperimentReport
from repro.hardware.platforms import titan_v_card, titan_xp_card
from repro.perfmodel.executor import execute_on_gpu
from repro.util.tables import format_table
from repro.workloads import gpu_workload

__all__ = ["run"]


def run(fast: bool = False, engine: SweepEngine | None = None) -> ExperimentReport:
    """Regenerate Figure 6's four curves."""
    report = ExperimentReport(
        "fig6", "Upper performance bound vs power cap (Titan XP and Titan V)"
    )
    stride = 4 if fast else 1
    for card_fn, card_label in ((titan_xp_card, "Titan XP"), (titan_v_card, "Titan V")):
        card = card_fn()
        caps = np.arange(card.min_cap_w + 5.0, card.max_cap_w + 1.0, 25.0 if fast else 10.0)
        for wl_name in ("sgemm", "minife"):
            wl = gpu_workload(wl_name)
            curve = gpu_budget_curve(card, wl, caps, freq_stride=stride, engine=engine)
            default_perf = np.array(
                [
                    wl.performance(execute_on_gpu(card, wl.phases, float(c), None))
                    for c in caps
                ]
            )
            report.add_table(
                format_table(
                    [
                        "cap (W)", f"perf_max ({wl.metric_unit})",
                        f"default policy ({wl.metric_unit})", "default shortfall",
                    ],
                    [
                        (c, p, d, f"{(1 - d / p) * 100:.1f}%")
                        for c, p, d in zip(caps, curve.perf_max, default_perf)
                    ],
                    title=f"{wl_name.upper()} on {card_label}",
                )
            )
            report.data[f"{card.name}/{wl_name}"] = {
                "caps_w": caps,
                "curve": curve,
                "default": default_perf,
            }
    return report
