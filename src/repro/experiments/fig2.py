"""Figure 2: upper performance bound ``perf_max`` vs total budget ``P_b``.

DGEMM and RandomAccess on both CPU platforms.  The paper's observations
this experiment must reproduce: monotone growth with slow/fast/slow
segments, saturation at an application-specific demand (≈240 W for DGEMM
on IvyBridge), DGEMM saturating later and higher than RandomAccess, and
the Haswell node winning at small budgets while both nodes consume similar
power at maximum performance.
"""

from __future__ import annotations

import numpy as np

from repro.core.parallel import SweepEngine
from repro.core.sweep import cpu_budget_curve
from repro.experiments.report import ExperimentReport
from repro.hardware.platforms import haswell_node, ivybridge_node
from repro.util.tables import format_table
from repro.workloads import cpu_workload

__all__ = ["run"]


def run(fast: bool = False, engine: SweepEngine | None = None) -> ExperimentReport:
    """Regenerate Figure 2's four curves."""
    report = ExperimentReport(
        "fig2", "Upper performance bound perf_max varies with P_b"
    )
    # Budgets start just above the node's hardware floor (~115 W on the
    # IvyBridge node): below it no allocation can respect the bound and
    # the upper performance bound is ill-defined.
    budgets = np.arange(120.0, 301.0, 20.0 if fast else 10.0)
    step = 16.0 if fast else 6.0
    platforms = {"ivybridge": ivybridge_node(), "haswell": haswell_node()}
    for wl_name in ("dgemm", "sra"):
        wl = cpu_workload(wl_name)
        curves = {}
        for plat_name, node in platforms.items():
            curves[plat_name] = cpu_budget_curve(
                node.cpu, node.dram, wl, budgets, step_w=step, engine=engine
            )
        rows = [
            (
                b,
                curves["ivybridge"].perf_max[i],
                curves["haswell"].perf_max[i],
            )
            for i, b in enumerate(budgets)
        ]
        report.add_table(
            format_table(
                ["P_b (W)", f"IvyBridge ({wl.metric_unit})", f"Haswell ({wl.metric_unit})"],
                rows,
                title=f"perf_max ~ P_b for {wl_name.upper()}",
            )
        )
        report.data[wl_name] = {
            "budgets_w": budgets,
            "ivybridge": curves["ivybridge"],
            "haswell": curves["haswell"],
        }
    return report
