"""Experiment reports: rendered tables plus raw data for assertions."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentReport"]


@dataclass
class ExperimentReport:
    """Output of one experiment run.

    Attributes
    ----------
    experiment_id:
        Paper artifact id, e.g. ``"fig3"`` or ``"table1"``.
    title:
        Human-readable description of what the artifact shows.
    tables:
        Rendered ASCII tables/series, in presentation order.
    data:
        Raw per-series data keyed by series name; used by tests and
        benchmarks to assert the paper's qualitative shapes.
    """

    experiment_id: str
    title: str
    tables: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def add_table(self, rendered: str) -> None:
        """Append a rendered table to the report."""
        self.tables.append(rendered)

    def render(self) -> str:
        """The full printable report."""
        header = f"=== {self.experiment_id}: {self.title} ==="
        return "\n\n".join([header, *self.tables])
