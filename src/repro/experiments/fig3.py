"""Figure 3: categorization of power-allocation scenarios.

RandomAccess on the IvyBridge node at ``P_b = 240`` W: application
performance (panel a) and actual per-component power (panel b) across
processor/memory allocations, with each point labelled by the scenario
category I–VI its mechanisms place it in.  The report also prints the span
each category occupies, mirroring the shaded regions of the figure.
"""

from __future__ import annotations

from repro.core.analysis import scenario_spans
from repro.core.parallel import SweepEngine
from repro.core.sweep import sweep_cpu_allocations
from repro.experiments.report import ExperimentReport
from repro.hardware.platforms import ivybridge_node
from repro.util.tables import format_table
from repro.workloads import cpu_workload

__all__ = ["run", "BUDGET_W"]

#: The figure's fixed budget.
BUDGET_W = 240.0


def run(fast: bool = False, engine: SweepEngine | None = None) -> ExperimentReport:
    """Regenerate Figure 3's two panels and the category spans."""
    report = ExperimentReport(
        "fig3", "Categorization of power allocation scenarios (SRA @ 240 W, IvyBridge)"
    )
    node = ivybridge_node()
    wl = cpu_workload("sra")
    sweep = sweep_cpu_allocations(
        node.cpu, node.dram, wl, BUDGET_W, step_w=8.0 if fast else 4.0, engine=engine
    )
    report.add_table(
        format_table(
            [
                "P_mem (W)", "P_cpu (W)", f"perf ({wl.metric_unit})",
                "actual CPU (W)", "actual DRAM (W)", "actual total (W)", "scenario",
            ],
            [
                (
                    p.allocation.mem_w,
                    p.allocation.proc_w,
                    p.performance,
                    p.result.proc_power_w,
                    p.result.mem_power_w,
                    p.actual_total_w,
                    p.scenario.roman,
                )
                for p in sweep.points
            ],
            float_spec=".4g",
            title="(a)+(b) performance and actual power vs allocation",
        )
    )
    spans = scenario_spans(sweep)
    report.add_table(
        format_table(
            ["scenario", "P_mem span (W)", "description"],
            [
                (s.roman, f"[{lo:.0f}, {hi:.0f}]", s.description)
                for s, (lo, hi) in sorted(spans.items())
            ],
            title="scenario spans over the memory allocation axis",
        )
    )
    report.data["sweep"] = sweep
    report.data["spans"] = spans
    return report
