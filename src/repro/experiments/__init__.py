"""Experiment harness: one module per paper figure/table.

Every experiment regenerates the corresponding artifact's rows/series and
returns an :class:`~repro.experiments.report.ExperimentReport` holding both
rendered ASCII tables (what the benchmark harness prints) and the raw data
(what tests assert shape properties against).

Use :func:`run_experiment` / :data:`EXPERIMENTS` for programmatic access::

    from repro.experiments import run_experiment
    report = run_experiment("fig3")
    print(report.render())
"""

from repro.experiments.report import ExperimentReport
from repro.experiments.registry import EXPERIMENTS, list_experiments, run_experiment

__all__ = ["EXPERIMENTS", "ExperimentReport", "list_experiments", "run_experiment"]
