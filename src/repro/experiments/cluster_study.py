"""Cluster study: power-bounded scheduling with and without rebalancing.

The paper's closing claim is that node-level coordination enables
higher-level power scheduling.  This study runs a fixed job mix through
the batch scheduler at several *global* power bounds and measures what the
coordination machinery buys at the cluster level:

* admission control (unproductive budgets rejected, surplus reclaimed);
* the global bound never exceeded while utilization stays high;
* dynamic rebalancing (boosting running jobs with freed watts) shortening
  the makespan over plain FCFS grants.
"""

from __future__ import annotations

from repro.core.parallel import SweepEngine
from repro.experiments.report import ExperimentReport
from repro.hardware.platforms import ivybridge_node
from repro.sched import Cluster, Job, PowerBoundedScheduler
from repro.sched.rebalance import RebalancingScheduler
from repro.util.seeds import spawn_rng
from repro.util.tables import format_table
from repro.workloads import cpu_workload, list_cpu_workloads

__all__ = ["run", "GLOBAL_BOUNDS_W", "N_NODES", "N_JOBS"]

#: Global power bounds studied (4 nodes of ≈290 W max each).
GLOBAL_BOUNDS_W = (450.0, 600.0, 750.0, 900.0)
N_NODES = 4
N_JOBS = 12


def _job_mix(n_jobs: int, seed: int = 7) -> list[Job]:
    """A deterministic mixed queue drawn from the CPU suite."""
    rng = spawn_rng(seed, "cluster-study")
    names = list(list_cpu_workloads())
    jobs = []
    t = 0.0
    for i in range(n_jobs):
        name = names[int(rng.integers(0, len(names)))]
        # Shrink the volumes so the study runs in seconds of simulated time.
        workload = cpu_workload(name).scaled(0.25)
        request = float(rng.uniform(150.0, 280.0))
        jobs.append(Job(i, workload, request, submit_time_s=t))
        t += float(rng.uniform(0.0, 1.0))
    return jobs


def run(fast: bool = False, engine: "SweepEngine | None" = None) -> ExperimentReport:
    """Run the cluster-level scheduling comparison."""
    report = ExperimentReport(
        "cluster", "Power-bounded batch scheduling: FCFS grants vs rebalancing"
    )
    bounds = GLOBAL_BOUNDS_W[1::2] if fast else GLOBAL_BOUNDS_W
    n_jobs = N_JOBS // 2 if fast else N_JOBS
    rows = []
    data = {}
    for bound in bounds:
        outcomes = {}
        for label, cls in (("fcfs", PowerBoundedScheduler),
                           ("rebalance", RebalancingScheduler)):
            cluster = Cluster(
                node_factory=ivybridge_node, n_nodes=N_NODES, global_bound_w=bound
            )
            sched = cls(cluster, engine=engine)
            for job in _job_mix(n_jobs):
                sched.submit(job)
            outcomes[label] = sched.run()
        base, dyn = outcomes["fcfs"], outcomes["rebalance"]
        rows.append(
            (
                bound,
                base.n_completed,
                base.n_rejected,
                base.makespan_s,
                dyn.makespan_s,
                f"{(1 - dyn.makespan_s / base.makespan_s) * 100:+.1f}%"
                if base.makespan_s > 0 else "-",
                getattr(dyn, "n_boosts", 0),
                base.reclaimed_w_total,
                base.peak_charged_w,
            )
        )
        data[bound] = outcomes
    report.add_table(
        format_table(
            [
                "global bound (W)", "completed", "rejected",
                "FCFS makespan (s)", "rebal. makespan (s)", "makespan gain",
                "boosts", "reclaimed (W)", "peak charged (W)",
            ],
            rows,
            float_spec=".4g",
        )
    )
    report.data["bounds"] = data
    return report
