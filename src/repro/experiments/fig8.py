"""Figure 8: performance profiles of all benchmarks on three platforms.

Every Table 3 benchmark is profiled across allocations on its platforms:
the 11 CPU benchmarks on IvyBridge and Haswell, the 6 GPU benchmarks on
the Titan XP.  The report summarizes, per benchmark and budget: the
achievable maximum, the best/worst spread (the cost of poor coordination),
the optimal memory share, and the categories present — the "universal
patterns with workload-specific features" the section argues.
"""

from __future__ import annotations

from repro.core.analysis import scenario_spans
from repro.core.parallel import SweepEngine
from repro.core.sweep import sweep_cpu_allocations, sweep_gpu_allocations
from repro.experiments.report import ExperimentReport
from repro.hardware.platforms import haswell_node, ivybridge_node, titan_xp_card
from repro.util.tables import format_table
from repro.workloads import list_cpu_workloads, list_gpu_workloads, get_workload

__all__ = ["run", "CPU_BUDGETS_W", "GPU_CAPS_W"]

#: Budgets profiled on the CPU platforms.
CPU_BUDGETS_W = (176.0, 208.0, 240.0)
#: Caps profiled on the GPU platform.
GPU_CAPS_W = (140.0, 180.0, 220.0, 260.0)


def run(fast: bool = False, engine: SweepEngine | None = None) -> ExperimentReport:
    """Regenerate Figure 8's per-benchmark profile summaries."""
    report = ExperimentReport(
        "fig8", "Performance profiles of all benchmarks on the three platforms"
    )
    step = 12.0 if fast else 6.0
    stride = 6 if fast else 2
    cpu_budgets = CPU_BUDGETS_W[1:2] if fast else CPU_BUDGETS_W
    gpu_caps = GPU_CAPS_W[1:3] if fast else GPU_CAPS_W

    for node, plat_label in ((ivybridge_node(), "IvyBridge"), (haswell_node(), "Haswell")):
        rows = []
        for name in list_cpu_workloads():
            wl = get_workload(name)
            for budget in cpu_budgets:
                sweep = sweep_cpu_allocations(
                    node.cpu, node.dram, wl, budget, step_w=step, engine=engine
                )
                spans = scenario_spans(sweep)
                rows.append(
                    (
                        name,
                        budget,
                        sweep.perf_max,
                        wl.metric_unit,
                        sweep.perf_spread,
                        sweep.best.allocation.mem_w,
                        "/".join(s.roman for s in sorted(spans)),
                    )
                )
                report.data[f"{plat_label.lower()}/{name}/{budget:.0f}"] = sweep
        report.add_table(
            format_table(
                [
                    "benchmark", "P_b (W)", "perf_max", "unit",
                    "best/worst", "opt P_mem (W)", "categories",
                ],
                rows,
                float_spec=".4g",
                title=f"CPU benchmark profiles on {plat_label}",
            )
        )

    card = titan_xp_card()
    rows = []
    for name in list_gpu_workloads():
        wl = get_workload(name)
        for cap in gpu_caps:
            sweep = sweep_gpu_allocations(card, wl, cap, freq_stride=stride, engine=engine)
            rows.append(
                (
                    name,
                    cap,
                    sweep.perf_max,
                    wl.metric_unit,
                    sweep.perf_max / max(sweep.worst.performance, 1e-12),
                    sweep.best.allocation.mem_w,
                    "/".join(sorted({s.roman for s in sweep.scenarios})),
                )
            )
            report.data[f"titan-xp/{name}/{cap:.0f}"] = sweep
    report.add_table(
        format_table(
            [
                "benchmark", "cap (W)", "perf_max", "unit",
                "best/worst", "opt P_mem (W)", "categories",
            ],
            rows,
            float_spec=".4g",
            title="GPU benchmark profiles on Titan XP",
        )
    )
    return report
