"""Figure 4: allocation patterns across total budgets.

Star RandomAccess and EP-DGEMM on the IvyBridge node, swept across several
total budgets.  The paper's observations: the general pattern persists
across budgets; the number of categories and each category's span shrink
with the budget; the first categories to disappear are the high-performing
ones (scenario I, then the II/III intersection region).
"""

from __future__ import annotations

from repro.core.analysis import scenario_spans
from repro.core.parallel import SweepEngine
from repro.core.sweep import sweep_cpu_allocations
from repro.experiments.report import ExperimentReport
from repro.hardware.platforms import ivybridge_node
from repro.util.tables import format_table
from repro.workloads import cpu_workload

__all__ = ["run", "BUDGETS_W"]

#: The budget series swept for both workloads.
BUDGETS_W = (176.0, 192.0, 208.0, 224.0, 240.0)


def run(fast: bool = False, engine: SweepEngine | None = None) -> ExperimentReport:
    """Regenerate Figure 4's per-budget performance curves."""
    report = ExperimentReport(
        "fig4", "Patterns of cross-component allocation impact vs total budget"
    )
    node = ivybridge_node()
    step = 8.0 if fast else 4.0
    for wl_name, label in (("sra", "Star RandomAccess"), ("dgemm", "EP-DGEMM")):
        wl = cpu_workload(wl_name)
        sweeps = {}
        rows = []
        for budget in BUDGETS_W:
            sweep = sweep_cpu_allocations(
                node.cpu, node.dram, wl, budget, step_w=step, engine=engine
            )
            sweeps[budget] = sweep
            spans = scenario_spans(sweep)
            rows.append(
                (
                    budget,
                    sweep.perf_max,
                    sweep.best.allocation.mem_w,
                    "/".join(s.roman for s in sorted(spans)),
                )
            )
        report.add_table(
            format_table(
                [
                    "P_b (W)", f"perf_max ({wl.metric_unit})",
                    "optimal P_mem (W)", "categories present",
                ],
                rows,
                title=f"({label}) per-budget optimum and visible categories",
            )
        )
        report.data[wl_name] = sweeps
    return report
