"""Figure 7: GPU performance trends vs memory power allocation.

For each card and workload, performance is plotted against the *estimated*
memory power (derived from the memory clock via the empirical model — the
paper's own method) under several total power caps.  The paper's three
patterns on the Titan XP:

* compute-intensive (SGEMM): best at minimum memory power; curves
  dispersed and diverging (categories I & II);
* memory-intensive (STREAM, MiniFE): rising with memory power at large
  caps (curves overlap, category III), falling at small caps (category II);
* in-between (CloverLeaf): rising at a small rate at large caps, rising
  then falling at small caps; curves diverge.

On the Titan V everything is memory-bound (category III).
"""

from __future__ import annotations

from repro.core.parallel import SweepEngine
from repro.core.sweep import sweep_gpu_allocations
from repro.experiments.report import ExperimentReport
from repro.hardware.platforms import titan_v_card, titan_xp_card
from repro.util.tables import format_table
from repro.workloads import gpu_workload

__all__ = ["run", "CAPS_W", "WORKLOADS"]

#: Total power caps swept per card (clamped to the card's range).
CAPS_W = (140.0, 170.0, 200.0, 230.0, 260.0)
#: Workloads shown in the figure.
WORKLOADS = ("sgemm", "gpu-stream", "minife", "cloverleaf")


def run(fast: bool = False, engine: SweepEngine | None = None) -> ExperimentReport:
    """Regenerate Figure 7's per-cap performance-vs-memory-power series."""
    report = ExperimentReport(
        "fig7", "Performance trends as memory power allocation increases"
    )
    stride = 6 if fast else 2
    for card_fn, card_label in ((titan_xp_card, "Titan XP"), (titan_v_card, "Titan V")):
        card = card_fn()
        caps = [c for c in CAPS_W if card.min_cap_w <= c <= card.max_cap_w]
        for wl_name in WORKLOADS:
            wl = gpu_workload(wl_name)
            sweeps = {}
            rows = []
            for cap in caps:
                sweep = sweep_gpu_allocations(
                    card, wl, cap, freq_stride=stride, engine=engine
                )
                sweeps[cap] = sweep
                for alloc, perf, scen in zip(
                    sweep.mem_alloc_w, sweep.performances, sweep.scenarios
                ):
                    rows.append((cap, alloc, perf, scen.roman))
            report.add_table(
                format_table(
                    ["cap (W)", "P_mem est. (W)", f"perf ({wl.metric_unit})", "cat."],
                    rows,
                    float_spec=".4g",
                    title=f"{wl_name} on {card_label}",
                )
            )
            report.data[f"{card.name}/{wl_name}"] = sweeps
    return report
