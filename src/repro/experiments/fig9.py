"""Figure 9: COORD vs the sweep oracle and the baseline strategies.

CPU side (IvyBridge): COORD against the best allocation found by the
exhaustive sweep and against the memory-first strategy of [19], across the
full benchmark suite and several budgets.  GPU side (Titan XP / Titan V):
COORD against the sweep oracle and the Nvidia default capping policy.

Paper claims this experiment must reproduce: COORD within ≈5 % of best at
large caps and ≈9.6 % on average on CPU; within ≈2 % on GPU; COORD
outperforming memory-first at small budgets and the Nvidia default by a
double-digit percentage for budget-starved memory-bound applications.
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import memory_first_allocation
from repro.core.coord import coord_cpu
from repro.core.coord_gpu import apply_gpu_decision, coord_gpu
from repro.core.parallel import SweepEngine
from repro.core.planner import sweep_cpu_best, sweep_gpu_best
from repro.core.profiler import profile_cpu_workload, profile_gpu_workload
from repro.experiments.report import ExperimentReport
from repro.hardware.nvml import NvmlDevice
from repro.hardware.platforms import ivybridge_node, titan_v_card, titan_xp_card
from repro.perfmodel.executor import execute_on_gpu, execute_on_host
from repro.util.tables import format_table
from repro.workloads import get_workload, list_cpu_workloads, list_gpu_workloads

__all__ = ["run", "CPU_BUDGETS_W", "GPU_CAPS_W"]

#: Budgets evaluated on the CPU platform.
CPU_BUDGETS_W = (144.0, 176.0, 208.0, 240.0)
#: Caps evaluated on the GPU platforms.
GPU_CAPS_W = (130.0, 150.0, 190.0, 250.0)


def run(fast: bool = False, engine: SweepEngine | None = None) -> ExperimentReport:
    """Regenerate Figure 9's COORD-vs-baselines comparison."""
    report = ExperimentReport(
        "fig9", "COORD vs best-found and baseline strategies"
    )
    node = ivybridge_node()
    step = 8.0 if fast else 4.0
    budgets = CPU_BUDGETS_W[1::2] if fast else CPU_BUDGETS_W

    cpu_rows = []
    cpu_data = {}
    for name in list_cpu_workloads():
        wl = get_workload(name)
        critical = profile_cpu_workload(node.cpu, node.dram, wl)
        for budget in budgets:
            best = sweep_cpu_best(
                node.cpu, node.dram, wl, budget, step_w=step, engine=engine
            ).performance
            decision = coord_cpu(critical, budget)
            if decision.accepted:
                r = execute_on_host(
                    node.cpu, node.dram, wl.phases,
                    decision.allocation.proc_w, decision.allocation.mem_w,
                )
                coord_perf = wl.performance(r)
            else:
                coord_perf = float("nan")
            mf = memory_first_allocation(critical, budget)
            r_mf = execute_on_host(node.cpu, node.dram, wl.phases, mf.proc_w, mf.mem_w)
            mf_perf = wl.performance(r_mf)
            cpu_rows.append(
                (
                    name, budget, best, coord_perf, mf_perf,
                    f"{(1 - coord_perf / best) * 100:.1f}%"
                    if np.isfinite(coord_perf) else "rejected",
                )
            )
            cpu_data[(name, budget)] = {
                "best": best, "coord": coord_perf, "memory_first": mf_perf,
            }
    report.add_table(
        format_table(
            ["benchmark", "P_b (W)", "best", "COORD", "memory-first", "COORD gap"],
            cpu_rows,
            float_spec=".4g",
            title="CPU computing on IvyBridge",
        )
    )
    report.data["cpu"] = cpu_data

    gpu_data = {}
    for card_fn, card_label in ((titan_xp_card, "Titan XP"), (titan_v_card, "Titan V")):
        card = card_fn()
        device = NvmlDevice(card)
        stride = 4 if fast else 1
        caps = [c for c in (GPU_CAPS_W[1::2] if fast else GPU_CAPS_W)
                if card.min_cap_w <= c <= card.max_cap_w]
        gpu_rows = []
        for name in list_gpu_workloads():
            wl = get_workload(name)
            critical = profile_gpu_workload(card, wl)
            for cap in caps:
                best = sweep_gpu_best(
                    card, wl, cap, freq_stride=stride, engine=engine
                ).performance
                decision = coord_gpu(critical, cap, hardware_max_w=card.max_cap_w)
                mem_op = apply_gpu_decision(device, decision, cap)
                coord_perf = wl.performance(
                    execute_on_gpu(card, wl.phases, cap, mem_op.freq_mhz)
                )
                default_perf = wl.performance(
                    execute_on_gpu(card, wl.phases, cap, None)
                )
                gpu_rows.append(
                    (
                        name, cap, best, coord_perf, default_perf,
                        f"{(1 - coord_perf / best) * 100:.1f}%",
                        f"{(coord_perf / default_perf - 1) * 100:+.1f}%",
                    )
                )
                gpu_data[(card.name, name, cap)] = {
                    "best": best, "coord": coord_perf, "default": default_perf,
                }
        report.add_table(
            format_table(
                [
                    "benchmark", "cap (W)", "best", "COORD", "nvidia default",
                    "COORD gap", "vs default",
                ],
                gpu_rows,
                float_spec=".4g",
                title=f"GPU computing on {card_label} (P_tot_ref marked per workload)",
            )
        )
    report.data["gpu"] = gpu_data
    return report
