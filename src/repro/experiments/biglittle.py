"""big.LITTLE study: three-way coordination on a heterogeneous node.

The paper's named future work (Section 8).  Regenerates, for a set of
workloads on the reference mobile-class node:

* the **perf_max ~ budget** curve with the big-cluster wake crossover —
  below it the optimum gates the big cores entirely;
* the accuracy of the candidate-probing heuristic
  (:func:`repro.core.coord_hetero.coord_biglittle`) against a fine sweep;
* the cost of *homogeneous thinking*: the best allocation that insists on
  powering both clusters proportionally, vs. the gate-aware optimum.
"""

from __future__ import annotations

from repro.core.coord_hetero import (
    coord_biglittle,
    profile_biglittle,
    sweep_biglittle,
)
from repro.core.parallel import SweepEngine
from repro.experiments.report import ExperimentReport
from repro.hardware.biglittle import biglittle_node
from repro.perfmodel.hetero import execute_on_biglittle
from repro.util.tables import format_table
from repro.workloads import cpu_workload

__all__ = ["run", "BUDGETS_W", "WORKLOADS"]

#: Budgets swept on the ~10 W mobile-class node.
BUDGETS_W = (1.0, 1.8, 2.6, 3.5, 5.0, 7.0, 9.5)
#: Workloads studied (reusing the Table 3 characterizations).
WORKLOADS = ("dgemm", "stream", "mg", "cg")


def run(fast: bool = False, engine: "SweepEngine | None" = None) -> ExperimentReport:
    """Regenerate the heterogeneous-node study."""
    report = ExperimentReport(
        "biglittle", "Three-way power coordination on a big.LITTLE node"
    )
    node = biglittle_node()
    step = 0.5 if fast else 0.25
    budgets = BUDGETS_W[1::2] if fast else BUDGETS_W
    rows = []
    data = {}
    for name in WORKLOADS if not fast else WORKLOADS[:2]:
        wl = cpu_workload(name)
        critical = profile_biglittle(node, wl)
        for budget in budgets:
            points = sweep_biglittle(node, wl, budget, step_w=step)
            best = max(points, key=lambda p: p.performance)
            # Homogeneous thinking: both clusters always powered, shares
            # proportional to their maximum demands.
            prop = [
                p for p in points
                if p.allocation.big_w >= node.big.gate_threshold_w
                and p.allocation.little_w >= node.little.gate_threshold_w
                and abs(
                    p.allocation.big_w / max(p.allocation.little_w, 1e-9)
                    - critical.big_l1 / max(critical.little_l1, 1e-9)
                ) < 2.0
            ]
            naive_perf = max((p.performance for p in prop), default=float("nan"))
            alloc = coord_biglittle(node, critical, budget, workload=wl)
            result = execute_on_biglittle(
                node, wl.phases, alloc.big_w, alloc.little_w, alloc.mem_w
            )
            coord_perf = wl.performance(result)
            big_gated = best.allocation.big_w < node.big.gate_threshold_w
            rows.append(
                (
                    name,
                    budget,
                    best.performance,
                    coord_perf,
                    naive_perf,
                    "gated" if big_gated else "on",
                    f"({best.allocation.big_w:.2f}/{best.allocation.little_w:.2f}/"
                    f"{best.allocation.mem_w:.2f})",
                )
            )
            data[(name, budget)] = {
                "best": best.performance,
                "coord": coord_perf,
                "naive": naive_perf,
                "best_alloc": best.allocation,
                "big_gated": big_gated,
            }
    report.add_table(
        format_table(
            [
                "benchmark", "P_b (W)", "best", "heuristic",
                "both-on naive", "big cluster", "best (big/little/mem)",
            ],
            rows,
            float_spec=".4g",
        )
    )
    report.data["rows"] = data

    # Crossover summary: smallest budget at which the optimum wakes big.
    crossover_rows = []
    for name in WORKLOADS if not fast else WORKLOADS[:2]:
        wake = [b for (n, b), d in data.items() if n == name and not d["big_gated"]]
        crossover_rows.append((name, min(wake) if wake else float("nan")))
    report.add_table(
        format_table(
            ["benchmark", "big-cluster wake budget (W)"],
            crossover_rows,
            float_spec=".2g",
            title="wake crossover per workload",
        )
    )
    report.data["crossover"] = dict(crossover_rows)
    return report
