"""Ablations on the design choices DESIGN.md calls out.

Three studies beyond the paper's own figures:

* **γ sweep** — the GPU COORD balance factor (the paper fixes γ = 0.5
  "empirically"); sweeping it quantifies how sensitive the in-between
  branch is to that choice.
* **Sweep stepping** — how coarse an oracle sweep can get before its
  "best" visibly degrades (the paper notes COORD can beat a coarse sweep).
* **Memory-first gap vs budget** — where on the budget axis the paper's
  earlier memory-first strategy [19] loses to COORD, and by how much.
* **Profiling-noise robustness** — how much COORD loses when its critical
  power values carry the < 5 % run-to-run measurement variation the paper
  reports (and beyond, up to 15 %).
* **Search cost vs quality** — every allocation policy in the library on
  one axis: how many (simulated) runs it spends to decide vs how close to
  the fine-sweep optimum it lands.  This is the paper's core pitch —
  "eliminates the need of exhaustive or fine-grain profiling" — made
  quantitative across *all* the alternatives.
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import memory_first_allocation
from repro.core.coord import coord_cpu
from repro.core.coord_gpu import apply_gpu_decision, coord_gpu
from repro.core.profiler import profile_cpu_workload, profile_gpu_workload
from repro.core.parallel import SweepEngine
from repro.core.sweep import sweep_cpu_allocations, sweep_gpu_allocations
from repro.experiments.report import ExperimentReport
from repro.hardware.nvml import NvmlDevice
from repro.hardware.platforms import ivybridge_node, titan_xp_card
from repro.perfmodel.executor import execute_on_gpu, execute_on_host
from repro.util.tables import format_table
from repro.workloads import cpu_workload, gpu_workload

__all__ = ["run", "GAMMAS", "STEPPINGS_W"]

#: Balance factors swept for the GPU in-between branch.
GAMMAS = (0.0, 0.25, 0.5, 0.75, 1.0)
#: Oracle sweep steppings compared (watts).
STEPPINGS_W = (2.0, 4.0, 8.0, 16.0, 32.0)


def _gamma_study(
    report: ExperimentReport, fast: bool, engine: SweepEngine | None = None
) -> None:
    card = titan_xp_card()
    device = NvmlDevice(card)
    caps = (130.0, 150.0, 170.0)
    rows = []
    data = {}
    for wl_name in ("cloverleaf", "minife", "gpu-stream"):
        wl = gpu_workload(wl_name)
        critical = profile_gpu_workload(card, wl)
        for cap in caps:
            best = sweep_gpu_allocations(
                card, wl, cap, freq_stride=4 if fast else 1, engine=engine
            ).perf_max
            for gamma in GAMMAS:
                decision = coord_gpu(
                    critical, cap, hardware_max_w=card.max_cap_w, gamma=gamma
                )
                mem_op = apply_gpu_decision(device, decision, cap)
                perf = wl.performance(
                    execute_on_gpu(card, wl.phases, cap, mem_op.freq_mhz)
                )
                rows.append((wl_name, cap, gamma, perf, f"{(1 - perf / best) * 100:.1f}%"))
                data[(wl_name, cap, gamma)] = {"perf": perf, "best": best}
    report.add_table(
        format_table(
            ["benchmark", "cap (W)", "gamma", "perf", "gap to best"],
            rows,
            float_spec=".4g",
            title="(A) GPU COORD balance factor gamma",
        )
    )
    report.data["gamma"] = data


def _stepping_study(
    report: ExperimentReport, fast: bool, engine: SweepEngine | None = None
) -> None:
    node = ivybridge_node()
    rows = []
    data = {}
    budgets = (176.0, 208.0)
    for wl_name in ("sra", "mg", "dgemm"):
        wl = cpu_workload(wl_name)
        for budget in budgets:
            reference = sweep_cpu_allocations(
                node.cpu, node.dram, wl, budget, step_w=1.0, engine=engine
            )
            for step in STEPPINGS_W if not fast else STEPPINGS_W[1::2]:
                sweep = sweep_cpu_allocations(
                    node.cpu, node.dram, wl, budget, step_w=step, engine=engine
                )
                loss = 1.0 - sweep.perf_max / reference.perf_max
                rows.append(
                    (wl_name, budget, step, len(sweep.points), f"{loss * 100:.2f}%")
                )
                data[(wl_name, budget, step)] = {
                    "perf": sweep.perf_max, "reference": reference.perf_max,
                }
    report.add_table(
        format_table(
            ["benchmark", "P_b (W)", "step (W)", "runs", "oracle loss vs 1 W sweep"],
            rows,
            title="(B) sweep-stepping granularity vs oracle quality",
        )
    )
    report.data["stepping"] = data


def _memory_first_study(report: ExperimentReport, fast: bool) -> None:
    node = ivybridge_node()
    rows = []
    data = {}
    budgets = np.arange(140.0, 261.0, 30.0 if fast else 15.0)
    for wl_name in ("sra", "stream", "mg", "ft"):
        wl = cpu_workload(wl_name)
        critical = profile_cpu_workload(node.cpu, node.dram, wl)
        for budget in budgets:
            decision = coord_cpu(critical, float(budget))
            if not decision.accepted:
                continue
            r_coord = execute_on_host(
                node.cpu, node.dram, wl.phases,
                decision.allocation.proc_w, decision.allocation.mem_w,
            )
            mf = memory_first_allocation(critical, float(budget))
            r_mf = execute_on_host(node.cpu, node.dram, wl.phases, mf.proc_w, mf.mem_w)
            coord_perf = wl.performance(r_coord)
            mf_perf = wl.performance(r_mf)
            rows.append(
                (
                    wl_name, float(budget), coord_perf, mf_perf,
                    f"{(coord_perf / mf_perf - 1) * 100:+.1f}%",
                )
            )
            data[(wl_name, float(budget))] = {"coord": coord_perf, "memory_first": mf_perf}
    report.add_table(
        format_table(
            ["benchmark", "P_b (W)", "COORD", "memory-first", "COORD advantage"],
            rows,
            float_spec=".4g",
            title="(C) COORD vs memory-first across the budget axis",
        )
    )
    report.data["memory_first"] = data


def _noise_study(
    report: ExperimentReport, fast: bool, engine: SweepEngine | None = None
) -> None:
    from repro.util.seeds import spawn_rng

    node = ivybridge_node()
    rows = []
    data = {}
    noise_levels = (0.05, 0.15) if fast else (0.02, 0.05, 0.10, 0.15)
    n_trials = 3 if fast else 8
    for wl_name in ("sra", "mg", "dgemm"):
        wl = cpu_workload(wl_name)
        clean = profile_cpu_workload(node.cpu, node.dram, wl)
        for budget in (176.0, 208.0):
            best = sweep_cpu_allocations(
                node.cpu, node.dram, wl, budget, step_w=8.0 if fast else 4.0,
                engine=engine,
            ).perf_max
            for noise in noise_levels:
                rng = spawn_rng(0, "noise", wl_name, str(budget), str(noise))
                gaps = []
                for _ in range(n_trials):
                    noisy = clean.perturbed(noise, rng)
                    decision = coord_cpu(noisy, budget)
                    if not decision.accepted:
                        continue
                    r = execute_on_host(
                        node.cpu, node.dram, wl.phases,
                        decision.allocation.proc_w, decision.allocation.mem_w,
                    )
                    gaps.append(1.0 - wl.performance(r) / best)
                mean_gap = sum(gaps) / len(gaps) if gaps else float("nan")
                worst_gap = max(gaps) if gaps else float("nan")
                rows.append(
                    (wl_name, budget, f"{noise * 100:.0f}%",
                     f"{mean_gap * 100:.1f}%", f"{worst_gap * 100:.1f}%")
                )
                data[(wl_name, budget, noise)] = {
                    "mean_gap": mean_gap, "worst_gap": worst_gap,
                }
    report.add_table(
        format_table(
            ["benchmark", "P_b (W)", "profile noise", "mean COORD gap",
             "worst COORD gap"],
            rows,
            title="(D) COORD robustness to profiling measurement noise",
        )
    )
    report.data["noise"] = data


def _search_cost_study(
    report: ExperimentReport, fast: bool, engine: SweepEngine | None = None
) -> None:
    from repro.core.baselines import interpolation_allocation
    from repro.core.online import online_power_shift
    from repro.core.optimize import golden_section_optimal

    node = ivybridge_node()
    rows = []
    data = {}
    budget = 190.0
    # Lightweight profiling spends ~2 runs + a short bisection (~10) once
    # per application; sweeps and searches pay per decision.
    profile_cost = 12
    for wl_name in ("sra", "stream", "mg", "dgemm"):
        wl = cpu_workload(wl_name)
        reference = sweep_cpu_allocations(
            node.cpu, node.dram, wl, budget, step_w=1.0 if not fast else 4.0,
            engine=engine,
        )
        best = reference.perf_max

        critical = profile_cpu_workload(node.cpu, node.dram, wl)
        decision = coord_cpu(critical, budget)
        r = execute_on_host(
            node.cpu, node.dram, wl.phases,
            decision.allocation.proc_w, decision.allocation.mem_w,
        )
        entries = [("COORD (profiled)", profile_cost, wl.performance(r))]

        coarse = sweep_cpu_allocations(
            node.cpu, node.dram, wl, budget, step_w=8.0, engine=engine
        )
        entries.append(("sweep @ 8 W", len(coarse.points), coarse.perf_max))

        gs = golden_section_optimal(node.cpu, node.dram, wl, budget, tol_w=2.0)
        entries.append(("golden section", gs.evaluations, gs.performance))

        interp = interpolation_allocation(
            node.cpu, node.dram, wl, budget, n_samples=6
        )
        r_i = execute_on_host(
            node.cpu, node.dram, wl.phases, interp.proc_w, interp.mem_w
        )
        entries.append(("interpolation [30]", 6, wl.performance(r_i)))

        shift = online_power_shift(node.cpu, node.dram, wl, budget)
        entries.append(("online shifting", shift.epochs, shift.performance))

        for label, cost, perf in entries:
            rows.append(
                (wl_name, label, cost, perf, f"{(1 - perf / best) * 100:.1f}%")
            )
            data[(wl_name, label)] = {"cost_runs": cost, "perf": perf, "best": best}
    report.add_table(
        format_table(
            ["benchmark", "policy", "cost (runs)", "perf", "gap to 1 W sweep"],
            rows,
            float_spec=".4g",
            title=f"(E) search cost vs quality at P_b = {budget:.0f} W",
        )
    )
    report.data["search_cost"] = data


def run(fast: bool = False, engine: SweepEngine | None = None) -> ExperimentReport:
    """Run all five ablation studies."""
    report = ExperimentReport(
        "ablation",
        "Design-choice ablations (gamma, stepping, memory-first, noise, search cost)",
    )
    _gamma_study(report, fast, engine)
    _stepping_study(report, fast, engine)
    _memory_first_study(report, fast)
    _noise_study(report, fast, engine)
    _search_cost_study(report, fast, engine)
    return report
