"""Execution on heterogeneous (big.LITTLE) nodes.

Work within each phase is dynamically balanced across the two clusters in
proportion to their delivered compute rates (the behaviour of a work-
stealing or chunk-self-scheduling runtime), and both clusters contend for
the shared DRAM domain.  A gated cluster contributes nothing and draws
nothing.

The enforcement per cluster reuses the host governor logic: highest state
whose measured power fits the cluster's cap.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import InfeasibleBudgetError, SweepError
from repro.hardware.biglittle import BigLittleNode
from repro.hardware.component import CappingMechanism
from repro.perfmodel.executor import _effective_activity, _resolve_cpu, _resolve_dram
from repro.perfmodel.metrics import ExecutionResult, PhaseResult
from repro.perfmodel.phase import Phase
from repro.util.units import watts

__all__ = ["execute_on_biglittle"]


def _cluster_rate(cluster, phase: Phase, cap_w: float, t_m: float):
    """(compute rate, operating point, gated) for one cluster under a cap."""
    if cluster.is_gated(cap_w):
        return 0.0, None, True
    op, _ = _resolve_cpu(cluster.domain, phase, cap_w, t_m)
    rate = (
        cluster.domain.compute_rate_flops(op, phase.compute_efficiency)
        if phase.flops > 0.0
        else 0.0
    )
    return rate, op, False


def _hetero_phase(
    node: BigLittleNode,
    phase: Phase,
    big_cap_w: float,
    little_cap_w: float,
    mem_cap_w: float,
) -> PhaseResult:
    dram = node.dram
    # DRAM governor: same two-regime logic as the homogeneous host; use
    # the combined compute time for the busy estimate, iterating once.
    dram_op = _resolve_dram(dram, phase, mem_cap_w, t_c=0.0)
    for _ in range(4):
        if phase.bytes_moved > 0.0:
            mem_rate = dram.bandwidth_ceiling_gbps(dram_op, phase.memory_efficiency) * 1e9
            t_m = phase.bytes_moved / mem_rate
        else:
            mem_rate = float("inf")
            t_m = 0.0
        big_rate, big_op, big_gated = _cluster_rate(node.big, phase, big_cap_w, t_m)
        little_rate, little_op, little_gated = _cluster_rate(
            node.little, phase, little_cap_w, t_m
        )
        combined = big_rate + little_rate
        if combined <= 0.0 and phase.flops > 0.0:
            raise InfeasibleBudgetError(
                "both clusters gated: no compute capacity for phase "
                f"{phase.name!r}"
            )
        t_c = phase.flops / combined if phase.flops > 0.0 else 0.0
        new_dram_op = _resolve_dram(dram, phase, mem_cap_w, t_c)
        if new_dram_op.level == dram_op.level:
            break
        dram_op = new_dram_op

    t = max(t_c, t_m)
    u = t_c / t if t > 0 else 0.0
    busy = t_m / t if t > 0 else 0.0
    a_eff = _effective_activity(phase, u)

    big_power = (
        node.big.domain.demand_w(a_eff, big_op) if not big_gated else 0.0
    )
    little_power = (
        node.little.domain.demand_w(a_eff, little_op) if not little_gated else 0.0
    )
    mem_power = dram.demand_w(dram_op, busy)

    # Report the big cluster's state as the "processor" state (the faster
    # cluster dominates); a gated big cluster reports the little one.
    rep_op = big_op if not big_gated else little_op
    rep_mech = rep_op.mechanism if rep_op is not None else CappingMechanism.FLOOR
    return PhaseResult(
        name=phase.name,
        time_s=t,
        t_compute_s=t_c,
        t_memory_s=t_m,
        utilization=u,
        mem_busy=busy,
        proc_freq_ghz=rep_op.freq_ghz if rep_op is not None else 0.0,
        proc_duty=rep_op.duty if rep_op is not None else 0.0,
        mem_throttle=dram_op.level,
        proc_mechanism=rep_mech,
        mem_mechanism=dram_op.mechanism,
        proc_power_w=big_power + little_power,
        mem_power_w=mem_power,
        board_power_w=0.0,
        flops=phase.flops,
        bytes_moved=phase.bytes_moved,
    )


def execute_on_biglittle(
    node: BigLittleNode,
    phases: Sequence[Phase],
    big_cap_w: float,
    little_cap_w: float,
    mem_cap_w: float,
) -> ExecutionResult:
    """Simulate a workload on a heterogeneous node under a 3-way allocation.

    Caps below a cluster's gate threshold power it off; the remaining
    cluster(s) carry the work.  Raises
    :class:`~repro.errors.InfeasibleBudgetError` when both clusters are
    gated but the workload needs compute.
    """
    big_cap_w = watts(big_cap_w, "big_cap_w")
    little_cap_w = watts(little_cap_w, "little_cap_w")
    mem_cap_w = watts(mem_cap_w, "mem_cap_w")
    if not phases:
        raise SweepError("cannot execute a workload with no phases")
    results = tuple(
        _hetero_phase(node, phase, big_cap_w, little_cap_w, mem_cap_w)
        for phase in phases
    )
    return ExecutionResult(
        results,
        proc_cap_w=big_cap_w + little_cap_w,
        mem_cap_w=mem_cap_w,
    )
