"""Per-phase workload characterization.

A phase is the unit the execution model simulates: a stretch of execution
with a stable compute/memory mix.  Kernel benchmarks (EP-DGEMM, STREAM) are
single-phase; pseudo-applications (BT, MG) comprise several phases with
different access patterns — which is why the paper observes "less regular
curves of BT and MG" (Section 6.2).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.util.units import check_fraction, check_non_negative

__all__ = ["Phase", "scale_phases", "total_bytes", "total_flops"]


@dataclass(frozen=True)
class Phase:
    """One execution phase of a workload.

    Parameters
    ----------
    name:
        Label for reports (``"triad"``, ``"smooth"``, ...).
    flops:
        Total floating-point (or integer, for IS/SRA) operations issued by
        the phase across all processing units.
    bytes_moved:
        Total bytes transferred to/from main (or device) memory.
    activity:
        Switching activity of the processor while *not* stalled, in [0, 1].
        DGEMM's dense FMA streams are near 1; pointer-chasing codes are low.
    stall_activity:
        Switching activity while memory-stalled (load/store units, miss
        queues, prefetchers, uncore).  Memory-level-parallel codes like
        RandomAccess keep this high — which is why the paper measures
        ≈ 112 W on the IvyBridge packages for a memory-bound kernel.
    compute_efficiency:
        Fraction of peak FLOPs/cycle achieved while not memory-stalled
        (vectorization quality, ILP, non-memory pipeline hazards).
    memory_efficiency:
        Fraction of peak bandwidth the access pattern can extract
        (≈0.8–0.9 streaming, ≈0.05–0.1 random).
    """

    name: str
    flops: float
    bytes_moved: float
    activity: float
    compute_efficiency: float
    memory_efficiency: float
    stall_activity: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("phase name must be non-empty")
        check_non_negative(self.flops, "flops")
        check_non_negative(self.bytes_moved, "bytes_moved")
        check_fraction(self.activity, "activity")
        check_fraction(self.stall_activity, "stall_activity")
        check_fraction(self.compute_efficiency, "compute_efficiency")
        check_fraction(self.memory_efficiency, "memory_efficiency")
        if self.flops == 0.0 and self.bytes_moved == 0.0:  # repro-lint: disable=RPL003 -- exact zero sentinel: validated "does no work at all"
            raise ConfigurationError(
                f"phase {self.name!r} does no work (flops == bytes_moved == 0)"
            )
        if self.flops > 0.0 and self.compute_efficiency == 0.0:  # repro-lint: disable=RPL003 -- exact zero sentinel on a validated fraction
            raise ConfigurationError(
                f"phase {self.name!r} has flops but zero compute efficiency"
            )
        if self.bytes_moved > 0.0 and self.memory_efficiency == 0.0:  # repro-lint: disable=RPL003 -- exact zero sentinel on a validated fraction
            raise ConfigurationError(
                f"phase {self.name!r} moves bytes but has zero memory efficiency"
            )

    @property
    def intensity(self) -> float:
        """Arithmetic intensity in FLOPs per byte (inf for compute-only)."""
        if self.bytes_moved == 0.0:  # repro-lint: disable=RPL003 -- exact zero sentinel: compute-only phase
            return float("inf")
        return self.flops / self.bytes_moved

    def scaled(self, factor: float) -> "Phase":
        """A copy with ``factor``× the work volume (same mix and pattern)."""
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be > 0, got {factor}")
        return replace(
            self, flops=self.flops * factor, bytes_moved=self.bytes_moved * factor
        )


def scale_phases(phases: Sequence[Phase], factor: float) -> tuple[Phase, ...]:
    """Scale every phase's work volume by ``factor`` (problem-size knob)."""
    return tuple(p.scaled(factor) for p in phases)


def total_flops(phases: Iterable[Phase]) -> float:
    """Sum of FLOPs across phases."""
    return float(sum(p.flops for p in phases))


def total_bytes(phases: Iterable[Phase]) -> float:
    """Sum of bytes moved across phases."""
    return float(sum(p.bytes_moved for p in phases))
