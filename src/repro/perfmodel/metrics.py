"""Execution results: per-phase records and run-level aggregates.

The fields mirror what the paper measures on its testbed: elapsed time
(hence application performance), per-domain *actual* power (Figure 3b), and
which capping mechanism each domain engaged (the raw material for scenario
classification in :mod:`repro.core.scenario`).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.component import CappingMechanism

__all__ = ["ExecutionResult", "PhaseResult"]


@dataclass(frozen=True)
class PhaseResult:
    """Simulation outcome for one workload phase.

    ``proc_*`` fields describe the processor domain (CPU package or GPU
    SMs); ``mem_*`` fields describe the memory domain (DRAM or device
    memory).  ``mem_throttle`` is the DRAM throttle level on hosts and the
    memory clock ratio on GPUs — both are "fraction of peak bandwidth
    ceiling" and live in (0, 1].
    """

    name: str
    time_s: float
    t_compute_s: float
    t_memory_s: float
    utilization: float
    mem_busy: float
    proc_freq_ghz: float
    proc_duty: float
    mem_throttle: float
    proc_mechanism: CappingMechanism
    mem_mechanism: CappingMechanism
    proc_power_w: float
    mem_power_w: float
    board_power_w: float
    flops: float
    bytes_moved: float

    @property
    def total_power_w(self) -> float:
        """Node/card power during this phase."""
        return self.proc_power_w + self.mem_power_w + self.board_power_w

    @property
    def energy_j(self) -> float:
        """Energy consumed by this phase."""
        return self.total_power_w * self.time_s

    @property
    def achieved_flops_rate(self) -> float:
        """Delivered FLOP/s during the phase."""
        return self.flops / self.time_s

    @property
    def achieved_bytes_rate(self) -> float:
        """Delivered bytes/s during the phase."""
        return self.bytes_moved / self.time_s


@dataclass(frozen=True)
class ExecutionResult:
    """Simulation outcome for a full run (all phases, one allocation).

    ``device`` selects the capping topology: hosts cap the two domains
    independently (``proc_cap_w`` and ``mem_cap_w`` are both caps), GPUs
    cap the whole board (``proc_cap_w`` is the board cap and ``mem_cap_w``
    records the memory-clock allocation *estimate*).
    """

    phases: tuple[PhaseResult, ...]
    proc_cap_w: float | None
    mem_cap_w: float | None
    device: str = "host"

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError("an execution result needs at least one phase")

    # ------------------------------------------------------------------
    # time / work totals
    # ------------------------------------------------------------------
    @property
    def elapsed_s(self) -> float:
        """Total wall time."""
        return sum(p.time_s for p in self.phases)

    @property
    def total_flops(self) -> float:
        return sum(p.flops for p in self.phases)

    @property
    def total_bytes(self) -> float:
        return sum(p.bytes_moved for p in self.phases)

    @property
    def flops_rate(self) -> float:
        """Run-level FLOP/s (work / wall time)."""
        return self.total_flops / self.elapsed_s

    @property
    def bytes_rate(self) -> float:
        """Run-level bytes/s."""
        return self.total_bytes / self.elapsed_s

    # ------------------------------------------------------------------
    # power / energy aggregates (time-weighted, matching a meter's view)
    # ------------------------------------------------------------------
    def _weighted(self, values: Sequence[float]) -> float:
        total_t = self.elapsed_s
        return sum(v * p.time_s for v, p in zip(values, self.phases)) / total_t

    @property
    def proc_power_w(self) -> float:
        """Time-averaged processor-domain power."""
        return self._weighted([p.proc_power_w for p in self.phases])

    @property
    def mem_power_w(self) -> float:
        """Time-averaged memory-domain power."""
        return self._weighted([p.mem_power_w for p in self.phases])

    @property
    def board_power_w(self) -> float:
        """Time-averaged board/static power (zero on host platforms)."""
        return self._weighted([p.board_power_w for p in self.phases])

    @property
    def total_power_w(self) -> float:
        """Time-averaged node/card power."""
        return self._weighted([p.total_power_w for p in self.phases])

    @property
    def energy_j(self) -> float:
        """Total energy over the run."""
        return sum(p.energy_j for p in self.phases)

    @property
    def proc_energy_j(self) -> float:
        return sum(p.proc_power_w * p.time_s for p in self.phases)

    @property
    def mem_energy_j(self) -> float:
        return sum(p.mem_power_w * p.time_s for p in self.phases)

    # ------------------------------------------------------------------
    # mechanism summaries (for scenario classification)
    # ------------------------------------------------------------------
    def _dominant(self, mechanisms: Sequence[CappingMechanism]) -> CappingMechanism:
        weights: dict[CappingMechanism, float] = {}
        for mech, p in zip(mechanisms, self.phases):
            weights[mech] = weights.get(mech, 0.0) + p.time_s
        return max(weights.items(), key=lambda kv: kv[1])[0]

    @property
    def proc_mechanism(self) -> CappingMechanism:
        """Time-dominant processor capping mechanism across phases."""
        return self._dominant([p.proc_mechanism for p in self.phases])

    @property
    def mem_mechanism(self) -> CappingMechanism:
        """Time-dominant memory capping mechanism across phases."""
        return self._dominant([p.mem_mechanism for p in self.phases])

    @property
    def respects_bound(self) -> bool:
        """Whether actual power stayed under the programmed cap(s).

        Power-based, not mechanism-based: a hardware floor only violates
        the bound if the floored domain actually *draws* more than its cap
        (a compute-bound app's DRAM can sit at the floor level yet draw
        under a tiny cap because its bus is idle).  Scenario VI — "this
        scenario cannot ensure the system power bound" — comes out False
        here.
        """
        eps = 1e-6
        if self.device == "gpu":
            if self.proc_cap_w is None:
                return True
            return all(p.total_power_w <= self.proc_cap_w + eps for p in self.phases)
        ok = True
        if self.proc_cap_w is not None:
            ok &= all(p.proc_power_w <= self.proc_cap_w + eps for p in self.phases)
        if self.mem_cap_w is not None:
            ok &= all(p.mem_power_w <= self.mem_cap_w + eps for p in self.phases)
        return bool(ok)

    @property
    def utilization(self) -> float:
        """Time-averaged compute (non-stalled) fraction."""
        return self._weighted([p.utilization for p in self.phases])

    @property
    def mem_busy(self) -> float:
        """Time-averaged memory-bus busy fraction."""
        return self._weighted([p.mem_busy for p in self.phases])
