"""Power-capped execution: the coupled enforcement/throughput fixed point.

The enforcement loops mirror how the real hardware regulates *measured*
power:

* RAPL keeps the highest processor state whose measured draw fits the cap —
  so a memory-stalled workload keeps a high clock under a tight CPU cap
  (that slack is what makes scenario III's "actual CPU power slightly below
  maximum" come out of the model);
* the DRAM controller throttles bandwidth only until measured DRAM power
  fits (throttling a compute-bound workload's bus saves nothing, so the
  controller goes straight to the memory-bound operating level);
* GPU firmware regulates one board-level cap and hands whatever the memory
  does not draw to the SM clock — the *reclaim* behaviour of Section 4.

Each resolver enumerates the (few dozen) hardware states from fastest to
slowest and takes the first that fits, exactly like a hill-descending
hardware governor; the CPU/DRAM pair iterates to a joint fixed point with
cycle detection.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConvergenceError, SweepError
from repro.hardware.component import CappingMechanism
from repro.hardware.cpu import CpuDomain, CpuOperatingPoint
from repro.hardware.dram import DramDomain, DramOperatingPoint
from repro.hardware.gpu import GpuCard
from repro.hardware.gpu_sm import GpuSmOperatingPoint
from repro.hardware.rapl import RaplDomainName, RaplInterface
from repro.perfmodel.metrics import ExecutionResult, PhaseResult
from repro.perfmodel.phase import Phase
from repro.util.units import watts

__all__ = ["cpu_candidate_table", "execute_on_host", "execute_on_gpu"]

#: Enforcement slack in watts: governors regulate to just under the limit.
_CAP_EPS_W = 1e-6

#: Upper bound on CPU<->DRAM joint-resolution iterations; the state spaces
#: are tiny and discrete, so convergence or a cycle occurs within a few.
_MAX_JOINT_ITERS = 16


def cpu_candidate_table(cpu: CpuDomain) -> tuple[np.ndarray, np.ndarray]:
    """``(freq_ghz, duty)`` columns of all CPU hardware states, fastest first.

    Row ``i`` is the state the governor tries at step ``i``: the P-states
    in descending frequency at full duty, then the T-states at ``f_min``
    in descending duty.  The last row is always ``(f_min, duty_min)`` —
    the FLOOR operating point — which is what lets both the scalar and the
    batch resolver treat "nothing fits" as "take the last row".

    Shared by the scalar resolver (:func:`_cpu_candidates`) and the
    vectorized kernel (:mod:`repro.perfmodel.batch`) so the two paths
    enumerate bit-identical states in the same order.
    """
    freqs_p = cpu.pstates.frequencies_ghz[::-1]
    f_min = cpu.pstates.f_min_ghz
    if cpu.duty_steps > 1:
        span = 1.0 - cpu.duty_min
        step = span / (cpu.duty_steps - 1)
        duties_t = cpu.duty_min + step * np.arange(cpu.duty_steps - 2, -1, -1)
    else:
        duties_t = np.array([cpu.duty_min])
    freq = np.concatenate([freqs_p, np.full(duties_t.size, f_min)])
    duty = np.concatenate([np.ones(freqs_p.size), duties_t])
    return freq, duty


def _cpu_candidates(cpu: CpuDomain) -> list[CpuOperatingPoint]:
    """All CPU hardware states, fastest first: P-states then T-states."""
    freq, duty = cpu_candidate_table(cpu)
    n_pstates = len(cpu.pstates)
    return [
        CpuOperatingPoint(
            float(f),
            float(d),
            CappingMechanism.DVFS if i < n_pstates else CappingMechanism.THROTTLE,
        )
        for i, (f, d) in enumerate(zip(freq, duty))
    ]


def _effective_activity(phase: Phase, utilization: float) -> float:
    """Power-relevant activity: busy activity while computing, stall activity
    (MLP machinery, prefetchers, uncore) while waiting on memory."""
    return phase.activity * utilization + phase.stall_activity * (1.0 - utilization)


def _phase_split(
    phase: Phase,
    compute_rate: float,
    mem_rate: float,
) -> tuple[float, float, float, float, float]:
    """(time, t_c, t_m, utilization, busy) for one phase at given rates."""
    t_c = phase.flops / compute_rate if phase.flops > 0.0 else 0.0
    t_m = phase.bytes_moved / mem_rate if phase.bytes_moved > 0.0 else 0.0
    t = max(t_c, t_m)
    return t, t_c, t_m, (t_c / t if t > 0 else 0.0), (t_m / t if t > 0 else 0.0)


def _resolve_cpu(
    cpu: CpuDomain,
    phase: Phase,
    cap_w: float,
    t_m: float,
) -> tuple[CpuOperatingPoint, float]:
    """Highest CPU state whose measured power fits the cap, given memory time.

    Returns the operating point (with the mechanism that selected it) and
    the compute time at that point.
    """
    candidates = _cpu_candidates(cpu)
    for i, op in enumerate(candidates):
        if phase.flops > 0.0:
            rate = cpu.compute_rate_flops(op, phase.compute_efficiency)
            t_c = phase.flops / rate
        else:
            t_c = 0.0
        t = max(t_c, t_m)
        u = t_c / t if t > 0 else 0.0
        power = cpu.demand_w(_effective_activity(phase, u), op)
        if power <= cap_w + _CAP_EPS_W:
            if i == 0:
                op = CpuOperatingPoint(op.freq_ghz, op.duty, CappingMechanism.NONE)
            return op, t_c
    floor = CpuOperatingPoint(
        cpu.pstates.f_min_ghz, cpu.duty_min, CappingMechanism.FLOOR
    )
    if phase.flops > 0.0:
        rate = cpu.compute_rate_flops(floor, phase.compute_efficiency)
        return floor, phase.flops / rate
    return floor, 0.0


def _resolve_dram(
    dram: DramDomain,
    phase: Phase,
    cap_w: float,
    t_c: float,
) -> DramOperatingPoint:
    """Highest DRAM throttle level whose measured power fits the cap.

    While the phase is compute-bound, measured DRAM power is independent of
    the level (throttling just spreads the same traffic out), so the
    governor either leaves the bus alone or throttles straight into the
    memory-bound regime where measured power equals ``bg + level·access``.
    """
    if phase.bytes_moved == 0.0:  # repro-lint: disable=RPL003 -- exact zero sentinel: memory-idle phase needs no throttle
        return DramOperatingPoint(1.0, CappingMechanism.NONE)
    if cap_w >= dram.max_power_w:
        return DramOperatingPoint(1.0, CappingMechanism.NONE)
    t_m_full = phase.bytes_moved / (
        dram.peak_bw_gbps * 1e9 * phase.memory_efficiency
    )
    busy_full = 1.0 if t_c <= 0 else min(1.0, t_m_full / max(t_m_full, t_c))
    measured_full = dram.background_w + busy_full * dram.max_access_w
    if measured_full <= cap_w + _CAP_EPS_W:
        return DramOperatingPoint(1.0, CappingMechanism.NONE)
    level = (cap_w - dram.background_w) / dram.max_access_w
    if level >= dram.min_level:
        level = dram.snap_level(min(level, 1.0))
        return DramOperatingPoint(level, CappingMechanism.BANDWIDTH_THROTTLE)
    return DramOperatingPoint(dram.min_level, CappingMechanism.FLOOR)


def _host_phase(
    cpu: CpuDomain,
    dram: DramDomain,
    phase: Phase,
    cpu_cap_w: float,
    dram_cap_w: float,
) -> PhaseResult:
    """Jointly resolve both governors for one phase and record the outcome."""
    dram_op = DramOperatingPoint(1.0, CappingMechanism.NONE)
    t_c = 0.0
    seen: list[tuple[float, float, float]] = []
    cpu_op = CpuOperatingPoint(
        cpu.pstates.f_nom_ghz, 1.0, CappingMechanism.NONE
    )
    for _ in range(_MAX_JOINT_ITERS):
        if phase.bytes_moved > 0.0:
            mem_rate = dram.bandwidth_ceiling_gbps(dram_op, phase.memory_efficiency) * 1e9
            t_m = phase.bytes_moved / mem_rate
        else:
            t_m = 0.0
        cpu_op, t_c = _resolve_cpu(cpu, phase, cpu_cap_w, t_m)
        new_dram_op = _resolve_dram(dram, phase, dram_cap_w, t_c)
        state = (cpu_op.freq_ghz, cpu_op.duty, new_dram_op.level)
        if new_dram_op.level == dram_op.level:
            dram_op = new_dram_op
            break
        if state in seen:
            # 2-cycle between adjacent discrete levels: keep the lower
            # (cap-safe) level, like a real governor settling downward.
            lower = min(dram_op.level, new_dram_op.level)
            dram_op = new_dram_op if new_dram_op.level == lower else dram_op
            break
        seen.append(state)
        dram_op = new_dram_op
    else:  # pragma: no cover - discrete state space precludes this
        raise ConvergenceError(_MAX_JOINT_ITERS, float("nan"))

    if phase.bytes_moved > 0.0:
        mem_rate = dram.bandwidth_ceiling_gbps(dram_op, phase.memory_efficiency) * 1e9
    else:
        mem_rate = float("inf")
    # Re-resolve the CPU against the settled DRAM level so the recorded
    # operating point is consistent with the final memory time.
    t_m_final = phase.bytes_moved / mem_rate if phase.bytes_moved > 0.0 else 0.0
    cpu_op, t_c = _resolve_cpu(cpu, phase, cpu_cap_w, t_m_final)
    compute_rate = (
        cpu.compute_rate_flops(cpu_op, phase.compute_efficiency)
        if phase.flops > 0.0
        else float("inf")
    )
    t, t_c, t_m, u, busy = _phase_split(phase, compute_rate, mem_rate)
    return PhaseResult(
        name=phase.name,
        time_s=t,
        t_compute_s=t_c,
        t_memory_s=t_m,
        utilization=u,
        mem_busy=busy,
        proc_freq_ghz=cpu_op.freq_ghz,
        proc_duty=cpu_op.duty,
        mem_throttle=dram_op.level,
        proc_mechanism=cpu_op.mechanism,
        mem_mechanism=dram_op.mechanism,
        proc_power_w=cpu.demand_w(_effective_activity(phase, u), cpu_op),
        mem_power_w=dram.demand_w(dram_op, busy),
        board_power_w=0.0,
        flops=phase.flops,
        bytes_moved=phase.bytes_moved,
    )


def execute_on_host(
    cpu: CpuDomain,
    dram: DramDomain,
    phases: Sequence[Phase],
    cpu_cap_w: float,
    dram_cap_w: float,
    rapl: RaplInterface | None = None,
) -> ExecutionResult:
    """Simulate a workload on a host node under per-domain power caps.

    When ``rapl`` is given, per-domain energy is accumulated into its MSR
    counters, so meters built on the RAPL interface observe the run the
    same way the paper's measurements do.
    """
    cpu_cap_w = watts(cpu_cap_w, "cpu_cap_w")
    dram_cap_w = watts(dram_cap_w, "dram_cap_w")
    if not phases:
        raise SweepError("cannot execute a workload with no phases")
    results = tuple(
        _host_phase(cpu, dram, phase, cpu_cap_w, dram_cap_w) for phase in phases
    )
    run = ExecutionResult(results, proc_cap_w=cpu_cap_w, mem_cap_w=dram_cap_w)
    if rapl is not None:
        rapl.record_energy(RaplDomainName.PACKAGE, run.proc_energy_j)
        rapl.record_energy(RaplDomainName.DRAM, run.mem_energy_j)
    return run


def _gpu_phase(
    card: GpuCard,
    phase: Phase,
    cap_w: float,
    mem_op,
) -> PhaseResult:
    """Resolve the board governor for one phase at a fixed memory clock."""
    sm = card.sm
    if phase.bytes_moved > 0.0:
        mem_rate = card.mem.bandwidth_ceiling_gbps(mem_op, phase.memory_efficiency) * 1e9
    else:
        mem_rate = float("inf")

    chosen: GpuSmOperatingPoint | None = None
    freqs = sm.pstates.frequencies_ghz[::-1]
    final = None
    for i, f in enumerate(freqs):
        op = GpuSmOperatingPoint(float(f), CappingMechanism.DVFS)
        rate = (
            sm.compute_rate_flops(op, phase.compute_efficiency)
            if phase.flops > 0.0
            else float("inf")
        )
        t, t_c, t_m, u, busy = _phase_split(phase, rate, mem_rate)
        sm_power = sm.demand_w(op, _effective_activity(phase, u))
        mem_power = card.mem.demand_w(mem_op, busy)
        total = card.total_power_w(sm_power, mem_power)
        if total <= cap_w + _CAP_EPS_W:
            mech = CappingMechanism.NONE if i == 0 else CappingMechanism.DVFS
            chosen = GpuSmOperatingPoint(float(f), mech)
            final = (t, t_c, t_m, u, busy, sm_power, mem_power)
            break
    if chosen is None:
        op = GpuSmOperatingPoint(sm.pstates.f_min_ghz, CappingMechanism.FLOOR)
        rate = (
            sm.compute_rate_flops(op, phase.compute_efficiency)
            if phase.flops > 0.0
            else float("inf")
        )
        t, t_c, t_m, u, busy = _phase_split(phase, rate, mem_rate)
        sm_power = sm.demand_w(op, _effective_activity(phase, u))
        mem_power = card.mem.demand_w(mem_op, busy)
        chosen = op
        final = (t, t_c, t_m, u, busy, sm_power, mem_power)

    t, t_c, t_m, u, busy, sm_power, mem_power = final
    return PhaseResult(
        name=phase.name,
        time_s=t,
        t_compute_s=t_c,
        t_memory_s=t_m,
        utilization=u,
        mem_busy=busy,
        proc_freq_ghz=chosen.freq_ghz,
        proc_duty=1.0,
        mem_throttle=mem_op.freq_mhz / card.mem.nominal_mhz,
        proc_mechanism=chosen.mechanism,
        mem_mechanism=mem_op.mechanism,
        proc_power_w=sm_power,
        mem_power_w=mem_power,
        board_power_w=card.board_static_w,
        flops=phase.flops,
        bytes_moved=phase.bytes_moved,
    )


def execute_on_gpu(
    card: GpuCard,
    phases: Sequence[Phase],
    cap_w: float,
    mem_freq_mhz: float | None = None,
) -> ExecutionResult:
    """Simulate a workload on a GPU card under a board cap and memory clock.

    ``mem_freq_mhz`` defaults to the nominal clock — the stock Nvidia
    policy.  The firmware's budget reclaim is implicit: the SM governor
    checks *total measured board power* against the cap, so memory watts
    not drawn are available to the SM clock.
    """
    cap_w = card.validate_cap(cap_w)
    if not phases:
        raise SweepError("cannot execute a workload with no phases")
    if mem_freq_mhz is None:
        mem_freq_mhz = card.mem.nominal_mhz
    mem_op = card.mem.operating_point(mem_freq_mhz)
    results = tuple(_gpu_phase(card, phase, cap_w, mem_op) for phase in phases)
    return ExecutionResult(
        results,
        proc_cap_w=cap_w,
        mem_cap_w=card.mem.allocated_power_w(mem_op.freq_mhz),
        device="gpu",
    )
