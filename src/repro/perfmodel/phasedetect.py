"""Phase-change detection from power-meter signals.

Per-phase adaptive coordination (:mod:`repro.core.adaptive`) needs to know
*when* the application changes phase.  Instrumenting the application is one
way; this module provides the non-intrusive alternative the meters already
enable: detect change points in the sampled per-domain power signals.

The detector is a two-sided CUSUM over the deviation from a running
baseline — the standard lightweight change-point scheme: robust to noise,
O(1) per sample, and tunable through exactly two parameters (drift guard
``slack`` and decision ``threshold``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.perfmodel.power_trace import PowerTrace
from repro.util.units import check_positive

__all__ = ["CusumDetector", "PhaseChange", "detect_phase_changes"]


@dataclass(frozen=True)
class PhaseChange:
    """One detected change point."""

    time_s: float
    sample_index: int
    direction: str  # "up" or "down"
    baseline_w: float
    new_level_w: float

    @property
    def magnitude_w(self) -> float:
        return abs(self.new_level_w - self.baseline_w)


class CusumDetector:
    """Two-sided CUSUM change detector over a power signal.

    Parameters
    ----------
    slack_w:
        Deviations below this are treated as noise (no accumulation).
    threshold_ws:
        Accumulated deviation (watt·samples) that triggers a detection.
    warmup_samples:
        Samples used to (re-)estimate the baseline after each detection.
    """

    def __init__(
        self,
        slack_w: float = 2.0,
        threshold_ws: float = 12.0,
        warmup_samples: int = 5,
    ) -> None:
        self.slack_w = check_positive(slack_w, "slack_w")
        self.threshold_ws = check_positive(threshold_ws, "threshold_ws")
        if warmup_samples < 1:
            raise ConfigurationError(
                f"warmup_samples must be >= 1, got {warmup_samples}"
            )
        self.warmup_samples = int(warmup_samples)
        self._reset()

    def _reset(self) -> None:
        self._baseline: float | None = None
        self._warmup: list[float] = []
        self._pos = 0.0
        self._neg = 0.0

    def update(self, sample_w: float) -> str | None:
        """Feed one sample; returns ``"up"``/``"down"`` on detection."""
        if self._baseline is None:
            self._warmup.append(float(sample_w))
            if len(self._warmup) >= self.warmup_samples:
                self._baseline = float(np.mean(self._warmup))
                self._warmup = []
            return None
        deviation = float(sample_w) - self._baseline
        self._pos = max(0.0, self._pos + deviation - self.slack_w)
        self._neg = max(0.0, self._neg - deviation - self.slack_w)
        if self._pos > self.threshold_ws:
            self._reset()
            return "up"
        if self._neg > self.threshold_ws:
            self._reset()
            return "down"
        return None

    @property
    def baseline_w(self) -> float | None:
        """Current baseline estimate (None while warming up)."""
        return self._baseline


def detect_phase_changes(
    trace: PowerTrace,
    *,
    channel: str = "proc",
    slack_w: float = 2.0,
    threshold_ws: float = 12.0,
    warmup_samples: int = 5,
) -> list[PhaseChange]:
    """Detect phase boundaries in a sampled power trace.

    Returns the change points in time order; the ``new_level_w`` of each
    is estimated from the post-change warmup window.
    """
    signal = {
        "proc": trace.proc_w,
        "mem": trace.mem_w,
        "total": trace.total_w,
    }.get(channel)
    if signal is None:
        raise ConfigurationError(
            f"channel must be proc/mem/total, got {channel!r}"
        )
    detector = CusumDetector(
        slack_w=slack_w, threshold_ws=threshold_ws, warmup_samples=warmup_samples
    )
    changes: list[PhaseChange] = []
    pending: tuple[int, str, float] | None = None
    for i, sample in enumerate(signal):
        baseline_before = detector.baseline_w
        verdict = detector.update(float(sample))
        if verdict is not None and baseline_before is not None:
            pending = (i, verdict, baseline_before)
        if pending is not None and detector.baseline_w is not None:
            idx, direction, old_baseline = pending
            changes.append(
                PhaseChange(
                    time_s=idx * trace.dt_s,
                    sample_index=idx,
                    direction=direction,
                    baseline_w=old_baseline,
                    new_level_w=detector.baseline_w,
                )
            )
            pending = None
    return changes
