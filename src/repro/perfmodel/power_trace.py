"""Sampled power traces, as a wall-plug meter or RAPL poller would see them.

The paper's measurement methodology samples component power over the run and
reports averages; this module turns an :class:`ExecutionResult` into evenly
sampled per-domain traces so the RAPL running-average compliance check (and
any plotting/analysis) can operate on meter-like data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.perfmodel.metrics import ExecutionResult
from repro.util.units import check_positive

__all__ = ["PowerTrace", "sample_power_trace"]


@dataclass(frozen=True)
class PowerTrace:
    """Evenly sampled per-domain power over a run."""

    dt_s: float
    proc_w: np.ndarray
    mem_w: np.ndarray
    board_w: np.ndarray

    @property
    def total_w(self) -> np.ndarray:
        """Node/card power per sample."""
        return self.proc_w + self.mem_w + self.board_w

    @property
    def duration_s(self) -> float:
        return self.dt_s * self.proc_w.size

    @property
    def times_s(self) -> np.ndarray:
        """Sample timestamps (left edge of each interval)."""
        return self.dt_s * np.arange(self.proc_w.size)

    def energy_j(self) -> float:
        """Trapezoid-free total energy (piecewise-constant samples)."""
        return float(self.total_w.sum() * self.dt_s)


def sample_power_trace(result: ExecutionResult, dt_s: float = 0.01) -> PowerTrace:
    """Sample a run's phase-level powers onto an even grid.

    Each sample takes the power of the phase active at its timestamp; the
    grid is sized to cover the full run with at least one sample per phase
    guaranteed by construction of the phase boundaries.
    """
    dt_s = check_positive(dt_s, "dt_s")
    total = result.elapsed_s
    n = max(1, int(np.ceil(total / dt_s)))
    times = (np.arange(n) + 0.5) * dt_s
    edges = np.cumsum([p.time_s for p in result.phases])
    idx = np.searchsorted(edges, np.minimum(times, total - 1e-15), side="right")
    idx = np.clip(idx, 0, len(result.phases) - 1)
    proc = np.array([result.phases[i].proc_power_w for i in idx])
    mem = np.array([result.phases[i].mem_power_w for i in idx])
    board = np.array([result.phases[i].board_power_w for i in idx])
    if proc.size == 0:  # pragma: no cover - n >= 1 by construction
        raise ConfigurationError("empty power trace")
    return PowerTrace(dt_s=dt_s, proc_w=proc, mem_w=mem, board_w=board)
