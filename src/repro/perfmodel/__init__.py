"""Execution model: roofline-with-stalls simulation under power caps.

Given a workload's per-phase characterization and a node's power caps, the
executor resolves a small fixed point between:

* the operating point the capping hardware selects (which depends on the
  power the workload *actually* draws), and
* the power the workload actually draws (which depends on how much it
  stalls, i.e. on the operating point of the *other* domain).

That coupling — not any hand-coded category table — is what produces the
paper's six CPU scenario categories and three GPU categories.
"""

from repro.perfmodel.phase import Phase, scale_phases, total_bytes, total_flops
from repro.perfmodel.roofline import (
    arithmetic_intensity,
    attainable_flops,
    phase_time_s,
    ridge_intensity,
)
from repro.perfmodel.metrics import ExecutionResult, PhaseResult
from repro.perfmodel.batch import execute_gpu_batch, execute_host_batch
from repro.perfmodel.executor import execute_on_gpu, execute_on_host
from repro.perfmodel.hetero import execute_on_biglittle
from repro.perfmodel.phasedetect import (
    CusumDetector,
    PhaseChange,
    detect_phase_changes,
)
from repro.perfmodel.power_trace import PowerTrace, sample_power_trace

__all__ = [
    "CusumDetector",
    "ExecutionResult",
    "Phase",
    "PhaseChange",
    "PhaseResult",
    "PowerTrace",
    "arithmetic_intensity",
    "attainable_flops",
    "detect_phase_changes",
    "execute_gpu_batch",
    "execute_host_batch",
    "execute_on_biglittle",
    "execute_on_gpu",
    "execute_on_host",
    "phase_time_s",
    "ridge_intensity",
    "sample_power_trace",
    "scale_phases",
    "total_bytes",
    "total_flops",
]
