"""Vectorized batch execution: resolve whole allocation grids in one pass.

The scalar executor (:mod:`repro.perfmodel.executor`) resolves one
``(P_cpu, P_mem)`` point at a time: enumerate a few dozen hardware states
fastest-first, take the first whose measured power fits, iterate the
CPU<->DRAM pair to a joint fixed point.  Every figure sweep repeats that
pure-Python loop hundreds of times, and PR 1's report shows thread fan-out
cannot hide it (the model is GIL-bound).

This module evaluates the *entire grid at once* with NumPy:

* the ``(n_points x n_candidates)`` power matrix is materialized and the
  governor's "first state that fits" becomes ``argmax`` over the boolean
  fit mask (``any`` over the mask distinguishes the FLOOR fallback, which
  by construction is the last candidate row);
* the CPU<->DRAM fixed point runs as whole-array iteration: converged rows
  freeze via a boolean mask, cycling rows settle to the lower (cap-safe)
  level, and the iteration bound/cycle semantics are exactly the scalar
  path's ``_MAX_JOINT_ITERS`` contract;
* per-phase splits (compute/memory time, utilization, busy fraction) are
  broadcast arithmetic.

Two call shapes share one implementation.  :func:`execute_host_batch` /
:func:`execute_gpu_batch` resolve a whole axis in one pass (the full
sweep's shape).  :class:`HostBatchKernel` / :class:`GpuBatchKernel` are
*gather* kernels over a fixed axis: construction validates the caps and
precomputes the per-phase candidate tables once, and
``execute_indices(rows)`` (or the :func:`batch_execute_indices` entry
point) resolves only the requested rows — the adaptive planner's probe
sets and per-iteration bracket/walk frontiers are sub-grids of one axis,
so repeated gathers pay only the row math, never the setup.  Every
operation is row-elementwise, so gathering commutes with executing:
``kernel.execute_indices(rows)[k]`` is bit-for-bit
``execute_host_batch(...)[rows[k]]``.

Equivalence with the scalar oracle is *bit-for-bit*, not approximate:
every arithmetic expression here reproduces the scalar code's operation
order (floating-point addition and multiplication are not associative, so
the expression trees must match, and they do — see
``tests/test_batch_equivalence.py`` for the differential lock).  Both
paths share :func:`~repro.perfmodel.executor.cpu_candidate_table` so the
candidate enumeration cannot drift.

The functions here are pure (no I/O, no clocks, no global state): they are
reachable from the memoized :class:`~repro.core.parallel.SweepEngine` and
therefore held to the RPL001 purity contract, like the scalar resolvers.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from numpy.typing import NDArray

from repro.errors import ConvergenceError, SweepError
from repro.hardware.component import CappingMechanism
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.hardware.gpu import GpuCard
from repro.perfmodel.executor import (
    _CAP_EPS_W,
    _MAX_JOINT_ITERS,
    cpu_candidate_table,
    execute_on_gpu,
)
from repro.perfmodel.metrics import ExecutionResult, PhaseResult
from repro.perfmodel.phase import Phase
from repro.util.units import watts

__all__ = [
    "GpuBatchKernel",
    "HostBatchKernel",
    "batch_execute_indices",
    "execute_gpu_batch",
    "execute_host_batch",
]

_F64 = NDArray[np.float64]
_I64 = NDArray[np.int64]
_Bool = NDArray[np.bool_]

#: Gather size at or below which the GPU kernel answers with the scalar
#: governor instead of the vector pass: a 1-2 row gather spends more on
#: array setup than the per-point oracle spends resolving, and the two
#: are locked bit-for-bit, so the dispatch is invisible in the outputs.
_GPU_GATHER_CROSSOVER = 2

#: Virtual-row count (axis rows x phases) at or below which the host
#: kernel resolves rows one at a time in plain Python instead of the
#: vector pass.  A whole-array pass costs a fixed ~100 µs in array setup
#: regardless of width, and the adaptive planner's walk frontiers are
#: overwhelmingly 1-2 rows wide — the dominant cost of a planned sweep is
#: that fixed overhead times the pass count.  The scalar transcription
#: below reuses the kernel's precomputed candidate/ladder tables (it is
#: NOT the per-point oracle, which re-derives them every call) and
#: replays the vector pass's expression trees term for term, so the
#: dispatch never moves an output bit.
_HOST_GATHER_CROSSOVER = 8

#: Integer codes the kernel keeps in its mechanism arrays; decoded back
#: into :class:`CappingMechanism` only when results are materialized.
_MECHS: tuple[CappingMechanism, ...] = (
    CappingMechanism.NONE,
    CappingMechanism.DVFS,
    CappingMechanism.THROTTLE,
    CappingMechanism.BANDWIDTH_THROTTLE,
    CappingMechanism.FLOOR,
)
_NONE, _DVFS, _THROTTLE, _BW_THROTTLE, _FLOOR = range(len(_MECHS))


# ---------------------------------------------------------------------------
# host (CPU + DRAM)
# ---------------------------------------------------------------------------

class _CpuTable:
    """Candidate-state columns for one CPU and every phase of a workload.

    Column ``k`` is the state the scalar governor tries at step ``k``
    (:func:`cpu_candidate_table` order).  The candidate axis is phase-
    independent; only the compute-time row differs per phase, so the
    table holds one ``(n_phases x n_candidates)`` compute-time matrix and
    the kernels resolve *all* phases of a call as one stacked batch.
    """

    def __init__(self, cpu: CpuDomain, phases: Sequence[Phase]) -> None:
        freq, duty = cpu_candidate_table(cpu)
        self.freq: _F64 = freq
        self.duty: _F64 = duty
        self.n_pstates = len(cpu.pstates)
        self.weight: _F64 = np.asarray(cpu.pstates.power_weight(freq), dtype=np.float64)
        # rate == ((n_cores * (freq*duty*1e9)) * flops_per_cycle) * eff,
        # grouped exactly as the scalar model writes it so the division
        # below reproduces its bits.
        rate_base = cpu.n_cores * (freq * duty * 1e9) * cpu.flops_per_core_cycle
        self.t_c_mat: _F64 = np.stack(
            [
                ph.flops / (rate_base * ph.compute_efficiency)
                if ph.flops > 0.0
                else np.zeros_like(freq)
                for ph in phases
            ]
        )
        # Row-broadcast views, shaped once: the planner's sub-grid batches
        # hit the resolver with 1-2 rows at a time, where per-call reshape
        # overhead is measurable.
        self.duty_row: _F64 = self.duty[None, :]
        self.weight_row: _F64 = self.weight[None, :]


class _PhaseCols:
    """Per-phase scalars of one workload, vectorized phase-major.

    A sub-grid call over ``r`` axis rows resolves as ``n_phases * r``
    virtual rows — rows ``k*r..(k+1)*r-1`` belong to phase ``k`` — so
    every per-phase scalar becomes a repeated column and the whole
    workload costs one kernel pass instead of one per phase.
    """

    def __init__(self, phases: Sequence[Phase]) -> None:
        self.phases = tuple(phases)
        self.p = len(self.phases)
        self.act: _F64 = np.asarray([ph.activity for ph in phases])
        self.stall: _F64 = np.asarray([ph.stall_activity for ph in phases])
        self.bytes_: _F64 = np.asarray([ph.bytes_moved for ph in phases])
        self.eff: _F64 = np.asarray([ph.memory_efficiency for ph in phases])
        self.any_bytes = bool((self.bytes_ > 0.0).any())
        self.zero_bytes: _Bool | None = (
            self.bytes_ <= 0.0 if self.any_bytes and (self.bytes_ <= 0.0).any()
            else None
        )
        self._stacks: dict[int, tuple] = {}
        self._first_tm: dict[int, _F64] = {}

    def stacked(self, r: int, t_c_mat: _F64) -> tuple:
        """The phase columns repeated for ``r`` axis rows, memoized per ``r``.

        The planner's walk rounds issue many calls of the same tiny row
        count against one kernel, so the repeated columns — which depend
        only on ``r`` — are built once per distinct size.
        """
        cached = self._stacks.get(r)
        if cached is None:
            zero = (
                np.repeat(self.zero_bytes, r)
                if self.zero_bytes is not None
                else None
            )
            cached = (
                np.repeat(self.act, r)[:, None],
                np.repeat(self.stall, r)[:, None],
                np.repeat(t_c_mat, r, axis=0),
                np.repeat(self.bytes_, r),
                np.repeat(self.eff, r),
                zero,
                np.arange(self.p * r),
            )
            self._stacks[r] = cached
        return cached

    def first_tm(
        self, r: int, dram: DramDomain, bytes_col: _F64, eff_col: _F64
    ) -> _F64:
        """Memory time per stacked row at throttle level 1.0, memoized.

        Every joint resolution starts from an all-ones level vector, so
        the first iteration's ``t_m`` depends only on the row count —
        the expression below is the loop's own, evaluated on the ones
        vector it would build, so the cached value is bit-identical.
        """
        cached = self._first_tm.get(r)
        if cached is None:
            level = np.ones(self.p * r)
            mem_rate = dram.peak_bw_gbps * level * eff_col * 1e9
            cached = bytes_col / mem_rate
            self._first_tm[r] = cached
        return cached


class _DramLadder:
    """Cap-side DRAM throttle ladder for one memory-cap axis.

    The throttle level a cap snaps to — and whether the cap clears the
    device's maximum draw outright — depends only on the cap column,
    never on the phase or the joint-iteration state, so it is computed
    once per axis and gathered per sub-grid call.
    """

    def __init__(self, dram: DramDomain, cap: _F64) -> None:
        level_raw = (cap - dram.background_w) / dram.max_access_w
        snapped = _snap_level_batch(dram, np.minimum(level_raw, 1.0))
        throttled = level_raw >= dram.min_level
        self.level: _F64 = np.where(throttled, snapped, dram.min_level)
        self.mech: _I64 = np.where(throttled, _BW_THROTTLE, _FLOOR)
        self.cap_ge_max: _Bool = cap >= dram.max_power_w

    def take(self, rows: NDArray[np.intp]) -> "_DramLadder":
        out = object.__new__(_DramLadder)
        out.level = self.level[rows]
        out.mech = self.mech[rows]
        out.cap_ge_max = self.cap_ge_max[rows]
        return out

    def tile(self, p: int) -> "_DramLadder":
        """The ladder repeated for ``p`` phase-major virtual-row blocks."""
        out = object.__new__(_DramLadder)
        out.level = np.tile(self.level, p)
        out.mech = np.tile(self.mech, p)
        out.cap_ge_max = np.tile(self.cap_ge_max, p)
        return out


def _resolve_cpu_batch(
    cpu: CpuDomain,
    table: _CpuTable,
    act_col: _F64,
    stall_col: _F64,
    t_c_rows: _F64,
    cap_eps: _F64,
    t_m: _F64,
) -> tuple[_I64, _Bool, _I64]:
    """Vectorized ``_resolve_cpu``: first candidate that fits, per row.

    ``act_col``/``stall_col`` are per-virtual-row phase activities and
    ``t_c_rows`` the matching compute-time rows, so one call resolves a
    whole phase-stacked batch.  Returns ``(selected column, fits-anywhere
    mask, first-fit column)``; rows where nothing fits select the last
    column, which is the FLOOR operating point ``(f_min, duty_min)`` by
    construction of the table.
    """
    t = np.maximum(t_c_rows, t_m[:, None])
    u = np.where(t > 0.0, t_c_rows / t, 0.0)
    a_eff = act_col * u + stall_col * (1.0 - u)
    power = (
        cpu.idle_power_w
        + a_eff * table.duty_row * table.weight_row * cpu.max_dynamic_w
    )
    fits = power <= cap_eps[:, None]
    first = fits.argmax(axis=1)
    fits_any = fits.any(axis=1)
    sel = np.where(fits_any, first, table.freq.size - 1)
    return sel, fits_any, first


def _cpu_mechanism_codes(table: _CpuTable, fits_any: _Bool, first: _I64) -> _I64:
    """Mechanism codes matching the scalar resolver's selection logic."""
    fitted = np.where(
        first == 0,
        _NONE,
        np.where(first < table.n_pstates, _DVFS, _THROTTLE),
    )
    return np.where(fits_any, fitted, _FLOOR)


def _snap_level_batch(dram: DramDomain, level: _F64) -> _F64:
    """Vectorized ``DramDomain.snap_level`` (round down onto the grid)."""
    if dram.level_steps == 1:
        return np.full_like(level, dram.min_level)
    span = 1.0 - dram.min_level
    step = span / (dram.level_steps - 1)
    k = np.floor((level - dram.min_level) / step + 1e-9)
    k = np.clip(k, 0, dram.level_steps - 1)
    return dram.min_level + k * step


def _resolve_dram_batch(
    dram: DramDomain,
    bytes_col: _F64,
    eff_col: _F64,
    zero_bytes: _Bool | None,
    cap_eps: _F64,
    t_c: _F64,
    ladder: _DramLadder,
) -> tuple[_F64, _I64]:
    """Vectorized ``_resolve_dram``: throttle level + mechanism per row.

    The scalar branch ladder (memory-idle / unconstrained / throttled /
    floor) becomes layered ``where`` masks applied floor-first so the
    higher-precedence branches overwrite the lower ones; the cap-side
    half of the ladder arrives precomputed in ``ladder``.  Rows belonging
    to a zero-byte phase (``zero_bytes``) are forced to the scalar path's
    memory-idle branch — level 1.0, mechanism NONE — because the general
    expressions do not subsume it (a tight cap below the background draw
    would otherwise throttle an idle memory).
    """
    t_m_full = bytes_col / ((dram.peak_bw_gbps * 1e9) * eff_col)
    busy_full = np.where(
        t_c <= 0.0, 1.0, np.minimum(1.0, t_m_full / np.maximum(t_m_full, t_c))
    )
    measured_full = dram.background_w + busy_full * dram.max_access_w
    unconstrained = ladder.cap_ge_max | (measured_full <= cap_eps)
    level = np.where(unconstrained, 1.0, ladder.level)
    mech = np.where(unconstrained, _NONE, ladder.mech)
    if zero_bytes is not None:
        level = np.where(zero_bytes, 1.0, level)
        mech = np.where(zero_bytes, _NONE, mech)
    return level, mech


def _host_phase_batch(
    cpu: CpuDomain,
    dram: DramDomain,
    cols: _PhaseCols,
    table: _CpuTable,
    cpu_cap_eps: _F64,
    dram_cap_eps: _F64,
    ladder: _DramLadder,
    r: int,
) -> list[list[PhaseResult]]:
    """Jointly resolve both governors for every phase over ``r`` grid rows.

    The cap arrays and ladder arrive phase-stacked (``n_phases * r``
    virtual rows, phase-major); all phases iterate to their joint fixed
    points in ONE whole-array loop, so a multi-phase workload costs the
    same number of kernel passes as a single-phase one.  Every operation
    stays row-elementwise, which is what keeps stacking — like gathering —
    bit-transparent.  Returns one row list per phase.
    """
    v = cpu_cap_eps.shape[0]
    act_col, stall_col, t_c_rows, bytes_col, eff_col, zero_bytes, rows_idx = (
        cols.stacked(r, table.t_c_mat)
    )

    level: _F64 = np.ones(v)
    mem_mech: _I64 = np.full(v, _NONE)
    if cols.any_bytes:
        active = np.ones(v, dtype=bool)
        seen: list[tuple[_F64, _F64, _F64, _Bool]] = []
        settled_lower = False
        for _ in range(_MAX_JOINT_ITERS):
            if seen:
                mem_rate = dram.peak_bw_gbps * level * eff_col * 1e9
                t_m = bytes_col / mem_rate
            else:
                # ``level`` is all ones before the first resolve; the
                # memoized column is that iteration's exact value.
                t_m = cols.first_tm(r, dram, bytes_col, eff_col)
            sel, fits_any, first = _resolve_cpu_batch(
                cpu, table, act_col, stall_col, t_c_rows, cpu_cap_eps, t_m
            )
            f_sel = table.freq[sel]
            d_sel = table.duty[sel]
            new_level, new_mech = _resolve_dram_batch(
                dram, bytes_col, eff_col, zero_bytes, dram_cap_eps,
                t_c_rows[rows_idx, sel], ladder,
            )
            converged = active & (new_level == level)
            if seen:
                repeated = np.zeros(v, dtype=bool)
                for s_f, s_d, s_level, s_valid in seen:
                    repeated |= (
                        s_valid
                        & (s_f == f_sel)
                        & (s_d == d_sel)
                        & (s_level == new_level)
                    )
                cycled = active & ~converged & repeated
                continuing = active & ~converged & ~cycled
                # Converged rows adopt the same-level new op; a 2-cycle
                # between adjacent discrete levels settles to the lower
                # (cap-safe) one, like the scalar governor; everything
                # else keeps iterating.
                settle = cycled & (new_level < level)
                take_new = converged | settle | continuing
                if settle.any():
                    settled_lower = True
            else:
                # First iteration: nothing to cycle against, every active
                # row either converged or continues — one mask either way.
                continuing = active & ~converged
                take_new = active
            level = np.where(take_new, new_level, level)
            mem_mech = np.where(take_new, new_mech, mem_mech)
            seen.append((f_sel, d_sel, new_level, continuing))
            active = continuing
            if not active.any():
                break
        if active.any():  # pragma: no cover - discrete state space precludes this
            raise ConvergenceError(_MAX_JOINT_ITERS, float("nan"))
        # Re-resolve the CPU against the settled DRAM level (the scalar
        # path's final consistency pass) — needed only when a cycle
        # settled a row to a lower level *after* its CPU op was selected.
        # In every other exit, each row's last in-loop resolve already ran
        # against its final level (the loop recomputes all rows every
        # iteration), so the re-resolve would reproduce ``sel``/``fits_any``
        # /``first``/``t_m`` bit-for-bit and is skipped.
        if settled_lower:
            mem_rate = dram.peak_bw_gbps * level * eff_col * 1e9
            t_m = bytes_col / mem_rate
            sel, fits_any, first = _resolve_cpu_batch(
                cpu, table, act_col, stall_col, t_c_rows, cpu_cap_eps, t_m
            )
    else:
        t_m = np.zeros(v)
        sel, fits_any, first = _resolve_cpu_batch(
            cpu, table, act_col, stall_col, t_c_rows, cpu_cap_eps, t_m
        )

    d_sel = table.duty[sel]
    t_c = t_c_rows[rows_idx, sel]
    t = np.maximum(t_c, t_m)
    u = np.where(t > 0.0, t_c / t, 0.0)
    busy = np.where(t > 0.0, t_m / t, 0.0)
    act_flat = act_col[:, 0]
    stall_flat = stall_col[:, 0]
    a_eff = act_flat * u + stall_flat * (1.0 - u)
    proc_power = (
        cpu.idle_power_w + a_eff * d_sel * table.weight[sel] * cpu.max_dynamic_w
    )
    mem_power = dram.background_w + level * busy * dram.max_access_w
    proc_mech = _cpu_mechanism_codes(table, fits_any, first)

    columns = (
        t, t_c, t_m, u, busy, table.freq[sel], d_sel, level, proc_power, mem_power,
    )
    t_l, t_c_l, t_m_l, u_l, busy_l, f_l, d_l, level_l, pp_l, mp_l = (
        c.tolist() for c in columns
    )
    proc_mech_l = proc_mech.tolist()
    mem_mech_l = mem_mech.tolist()
    return [
        [
            PhaseResult(
                name=phase.name,
                time_s=t_l[i],
                t_compute_s=t_c_l[i],
                t_memory_s=t_m_l[i],
                utilization=u_l[i],
                mem_busy=busy_l[i],
                proc_freq_ghz=f_l[i],
                proc_duty=d_l[i],
                mem_throttle=level_l[i],
                proc_mechanism=_MECHS[proc_mech_l[i]],
                mem_mechanism=_MECHS[mem_mech_l[i]],
                proc_power_w=pp_l[i],
                mem_power_w=mp_l[i],
                board_power_w=0.0,
                flops=phase.flops,
                bytes_moved=phase.bytes_moved,
            )
            for i in range(k * r, (k + 1) * r)
        ]
        for k, phase in enumerate(cols.phases)
    ]


class HostBatchKernel:
    """Reusable gather kernel over one host ``(proc_cap, mem_cap)`` axis.

    Construction validates the whole axis and precomputes the per-phase
    candidate tables; :meth:`execute_indices` then resolves any subset of
    rows with nothing but the row math.  The adaptive planner issues many
    small sub-grid batches against one axis (probe set, per-iteration
    walk frontiers, the plateau middle), so hoisting the setup out of the
    per-call path is what makes planned sweeps cheaper than the one-shot
    full pass — without changing a single output bit.
    """

    def __init__(
        self,
        cpu: CpuDomain,
        dram: DramDomain,
        phases: Sequence[Phase],
        proc_caps_w: Sequence[float],
        mem_caps_w: Sequence[float],
    ) -> None:
        self._cpu = cpu
        self._dram = dram
        self._phases = tuple(phases)
        self._proc_list = [watts(float(p), "cpu_cap_w") for p in proc_caps_w]
        self._mem_list = [watts(float(m), "dram_cap_w") for m in mem_caps_w]
        if len(self._proc_list) != len(self._mem_list):
            raise SweepError(
                f"mismatched cap columns: {len(self._proc_list)} processor "
                f"caps vs {len(self._mem_list)} memory caps"
            )
        if not self._phases:
            raise SweepError("cannot execute a workload with no phases")
        self._proc: _F64 = np.asarray(self._proc_list, dtype=np.float64)
        self._mem: _F64 = np.asarray(self._mem_list, dtype=np.float64)
        self._proc_eps: _F64 = self._proc + _CAP_EPS_W
        self._mem_eps: _F64 = self._mem + _CAP_EPS_W
        self._ladder = _DramLadder(dram, self._mem)
        self._table = _CpuTable(cpu, self._phases)
        self._cols = _PhaseCols(self._phases)
        # Phase-stacked cap columns, tiled once here so a sub-grid call
        # is a single fancy gather instead of gather-then-tile; tiling
        # the full axis first and gathering with offset indices selects
        # exactly the same elements, so the outputs cannot move a bit.
        p = self._cols.p
        if p > 1:
            self._proc_eps_stack: _F64 = np.tile(self._proc_eps, p)
            self._mem_eps_stack: _F64 = np.tile(self._mem_eps, p)
            self._ladder_stack = self._ladder.tile(p)
            self._row_offsets: NDArray[np.intp] | None = (
                np.arange(p, dtype=np.intp) * self._proc.size
            )[:, None]
        else:
            self._proc_eps_stack = self._proc_eps
            self._mem_eps_stack = self._mem_eps
            self._ladder_stack = self._ladder
            self._row_offsets = None
        # Python-scalar table mirrors for the small-gather path, built on
        # first use (full-sweep callers never pay for them).
        self._single: tuple | None = None
        self._single_ok: bool | None = None

    def __len__(self) -> int:
        return len(self._proc_list)

    def _single_tables(self) -> tuple | None:
        """Plain-Python mirrors of the precomputed tables, or ``None``.

        The scalar fast path runs on Python floats, whose division raises
        on zero and whose ``min``/``max`` are order-dependent under NaN
        where NumPy's propagate.  Positive efficiencies on every phase
        keep all intermediate rates finite and positive, so the two
        semantics coincide; any degenerate phase simply stays on the
        vector pass and bit-identity never rests on the edge cases.
        """
        if self._single_ok is None:
            self._single_ok = all(
                ph.memory_efficiency > 0.0 and ph.compute_efficiency > 0.0
                for ph in self._phases
            )
            if self._single_ok:
                cols = self._cols
                self._single = (
                    self._table.freq.tolist(),
                    self._table.duty.tolist(),
                    self._table.weight.tolist(),
                    [row.tolist() for row in self._table.t_c_mat],
                    self._proc_eps.tolist(),
                    self._mem_eps.tolist(),
                    self._ladder.level.tolist(),
                    self._ladder.mech.tolist(),
                    self._ladder.cap_ge_max.tolist(),
                    cols.act.tolist(),
                    cols.stall.tolist(),
                    cols.bytes_.tolist(),
                    cols.eff.tolist(),
                )
        return self._single

    def _execute_row_scalar(self, i: int, tabs: tuple) -> ExecutionResult:
        """One axis row resolved with scalar math on the precomputed tables.

        A line-for-line transcription of the vector pass for a single
        virtual row per phase: same candidate scan, same ladder lookup,
        same cycle-settling joint loop, every expression grouped exactly
        as the array code writes it (Python and NumPy share left-assoc
        float semantics, so matching the source text matches the bits).
        """
        (freq, duty, weight, t_c_mat, proc_eps, mem_eps,
         lad_level_l, lad_mech_l, lad_ge_l, act_l, stall_l, bytes_l, eff_l) = tabs
        cpu = self._cpu
        dram = self._dram
        idle = cpu.idle_power_w
        max_dyn = cpu.max_dynamic_w
        peak = dram.peak_bw_gbps
        bg = dram.background_w
        max_acc = dram.max_access_w
        n_pstates = self._table.n_pstates
        m = len(freq)
        cap_eps = proc_eps[i]
        dcap_eps = mem_eps[i]
        lad_level = lad_level_l[i]
        lad_mech = lad_mech_l[i]
        lad_ge = lad_ge_l[i]
        any_bytes = self._cols.any_bytes

        results = []
        for k, phase in enumerate(self._phases):
            t_c_row = t_c_mat[k]
            act = act_l[k]
            stall = stall_l[k]
            bytes_ = bytes_l[k]
            eff = eff_l[k]

            def resolve_cpu(t_m: float) -> tuple[int, bool, int]:
                # _resolve_cpu_batch per candidate: first fit wins, none
                # fitting selects the FLOOR column (last) with first=0,
                # matching argmax over an all-False mask.
                for j in range(m):
                    t_cj = t_c_row[j]
                    t = t_cj if t_cj >= t_m else t_m
                    u = t_cj / t if t > 0.0 else 0.0
                    a_eff = act * u + stall * (1.0 - u)
                    power = idle + a_eff * duty[j] * weight[j] * max_dyn
                    if power <= cap_eps:
                        return j, True, j
                return m - 1, False, 0

            def resolve_dram(t_c_sel: float) -> tuple[float, int]:
                # _resolve_dram_batch for one non-zero-byte row (zero-byte
                # phases branch before the call, as the mask override does).
                t_m_full = bytes_ / ((peak * 1e9) * eff)
                if t_c_sel <= 0.0:
                    busy_full = 1.0
                else:
                    mx = t_m_full if t_m_full >= t_c_sel else t_c_sel
                    ratio = t_m_full / mx
                    busy_full = ratio if ratio < 1.0 else 1.0
                measured_full = bg + busy_full * max_acc
                if lad_ge or measured_full <= dcap_eps:
                    return 1.0, _NONE
                return lad_level, lad_mech

            level = 1.0
            mem_mech = _NONE
            if any_bytes:
                zero_b = bytes_ <= 0.0
                active = True
                seen: list[tuple[float, float, float, bool]] = []
                settled_lower = False
                for _ in range(_MAX_JOINT_ITERS):
                    mem_rate = peak * level * eff * 1e9
                    t_m = bytes_ / mem_rate
                    sel, fits_any, first = resolve_cpu(t_m)
                    f_sel = freq[sel]
                    d_sel = duty[sel]
                    if zero_b:
                        new_level, new_mech = 1.0, _NONE
                    else:
                        new_level, new_mech = resolve_dram(t_c_row[sel])
                    converged = new_level == level
                    if seen:
                        repeated = any(
                            s_valid
                            and s_f == f_sel
                            and s_d == d_sel
                            and s_level == new_level
                            for s_f, s_d, s_level, s_valid in seen
                        )
                        cycled = not converged and repeated
                        continuing = not converged and not cycled
                        settle = cycled and new_level < level
                        take_new = converged or settle or continuing
                        if settle:
                            settled_lower = True
                    else:
                        continuing = not converged
                        take_new = True
                    if take_new:
                        level = new_level
                        mem_mech = new_mech
                    seen.append((f_sel, d_sel, new_level, continuing))
                    active = continuing
                    if not active:
                        break
                if active:  # pragma: no cover - discrete state space precludes this
                    raise ConvergenceError(_MAX_JOINT_ITERS, float("nan"))
                if settled_lower:
                    mem_rate = peak * level * eff * 1e9
                    t_m = bytes_ / mem_rate
                    sel, fits_any, first = resolve_cpu(t_m)
            else:
                t_m = 0.0
                sel, fits_any, first = resolve_cpu(t_m)

            t_c = t_c_row[sel]
            t = t_c if t_c >= t_m else t_m
            u = t_c / t if t > 0.0 else 0.0
            busy = t_m / t if t > 0.0 else 0.0
            a_eff = act * u + stall * (1.0 - u)
            proc_power = idle + a_eff * duty[sel] * weight[sel] * max_dyn
            mem_power = bg + level * busy * max_acc
            if fits_any:
                code = _NONE if first == 0 else (
                    _DVFS if first < n_pstates else _THROTTLE
                )
            else:
                code = _FLOOR
            results.append(
                PhaseResult(
                    name=phase.name,
                    time_s=t,
                    t_compute_s=t_c,
                    t_memory_s=t_m,
                    utilization=u,
                    mem_busy=busy,
                    proc_freq_ghz=freq[sel],
                    proc_duty=duty[sel],
                    mem_throttle=level,
                    proc_mechanism=_MECHS[code],
                    mem_mechanism=_MECHS[mem_mech],
                    proc_power_w=proc_power,
                    mem_power_w=mem_power,
                    board_power_w=0.0,
                    flops=phase.flops,
                    bytes_moved=phase.bytes_moved,
                )
            )
        return ExecutionResult(
            tuple(results),
            proc_cap_w=self._proc_list[i],
            mem_cap_w=self._mem_list[i],
        )

    def execute_indices(self, indices: Sequence[int]) -> list[ExecutionResult]:
        """Results for axis rows ``indices``, in the given order.

        Entry ``k`` is bit-for-bit ``execute_on_host`` at row
        ``indices[k]``: every kernel operation is row-elementwise, so the
        gathered sub-grid reproduces the full pass exactly.
        """
        rows = [int(i) for i in indices]
        if not rows:
            return []
        if len(rows) * self._cols.p <= _HOST_GATHER_CROSSOVER:
            # Below the crossover (in virtual rows) the vector pass's
            # fixed setup cost exceeds the whole resolution: run the
            # scalar transcription over the same precomputed tables.
            tabs = self._single_tables()
            if tabs is not None:
                return [self._execute_row_scalar(i, tabs) for i in rows]
        gather = np.asarray(rows, dtype=np.intp)
        if self._row_offsets is not None:
            gather = (self._row_offsets + gather).ravel()
        proc_eps = self._proc_eps_stack[gather]
        mem_eps = self._mem_eps_stack[gather]
        ladder = self._ladder_stack.take(gather)
        # One errstate frame for the whole pass: the resolvers' guarded
        # divisions (zero-time phases, idle memories) live inside, and
        # errstate only governs warning delivery — never computed values —
        # so hoisting it out of the per-iteration helpers is bit-free.
        with np.errstate(invalid="ignore", divide="ignore"):
            phase_rows = _host_phase_batch(
                self._cpu, self._dram, self._cols, self._table,
                proc_eps, mem_eps, ladder, len(rows),
            )
        return [
            ExecutionResult(
                tuple(row[k] for row in phase_rows),
                proc_cap_w=self._proc_list[i],
                mem_cap_w=self._mem_list[i],
            )
            for k, i in enumerate(rows)
        ]


def execute_host_batch(
    cpu: CpuDomain,
    dram: DramDomain,
    phases: Sequence[Phase],
    proc_caps_w: Sequence[float],
    mem_caps_w: Sequence[float],
) -> list[ExecutionResult]:
    """Simulate a workload at every ``(proc_cap, mem_cap)`` pair at once.

    Point ``i`` of the returned list is bit-for-bit equal to
    ``execute_on_host(cpu, dram, phases, proc_caps_w[i], mem_caps_w[i])``.
    """
    kernel = HostBatchKernel(cpu, dram, phases, proc_caps_w, mem_caps_w)
    return kernel.execute_indices(range(len(kernel)))


# ---------------------------------------------------------------------------
# GPU (SM + device memory)
# ---------------------------------------------------------------------------

class _GpuTable:
    """SM candidate columns for one card and every phase of a workload:
    the frequency ladder fastest-first, its power weights, and one
    compute-time row per phase, none of which depend on the memory clock
    being resolved."""

    def __init__(self, card: GpuCard, phases: Sequence[Phase]) -> None:
        sm = card.sm
        self.f_desc: _F64 = sm.pstates.frequencies_ghz[::-1]
        self.weight = np.asarray(
            sm.pstates.power_weight(self.f_desc), dtype=np.float64
        )
        # rate == ((n_sm * (f*1e9)) * flops_per_cycle) * eff, grouped as
        # the scalar model writes it.
        rate_base = sm.n_sm * (self.f_desc * 1e9) * sm.flops_per_sm_cycle
        self.t_c_mat: _F64 = np.stack(
            [
                ph.flops / (rate_base * ph.compute_efficiency)
                if ph.flops > 0.0
                else np.zeros_like(self.f_desc)
                for ph in phases
            ]
        )
        self.weight_row: _F64 = self.weight[None, :]


def _gpu_phase_batch(
    card: GpuCard,
    cols: _PhaseCols,
    cap_eps: float,
    table: _GpuTable,
    ratio: _F64,
    mem_mech_codes: _I64,
    t_m: _F64,
    mem_base: _F64,
    mem_ar: _F64,
    r: int,
) -> list[list[PhaseResult]]:
    """Resolve the board governor for every phase over ``r`` memory clocks.

    ``ratio`` is the snapped clock over nominal per row, phase-stacked
    like the host kernel's virtual rows; columns are the SM frequencies,
    fastest first, so "first that fits" is again an argmax and the FLOOR
    fallback is the last column.  ``t_m`` (memory time per row),
    ``mem_base`` (idle + clock power) and ``mem_ar`` (access power scaled
    by the clock ratio) arrive precomputed from the kernel: none of them
    depend on the SM candidate being tried.  Returns one row list per
    phase.
    """
    sm = card.sm
    f_desc = table.f_desc
    m = f_desc.size
    act_col, stall_col, t_c_rows, _, _, _, rows = cols.stacked(r, table.t_c_mat)

    t = np.maximum(t_c_rows, t_m[:, None])
    u = np.where(t > 0.0, t_c_rows / t, 0.0)
    busy = np.where(t > 0.0, t_m[:, None] / t, 0.0)
    a_eff = act_col * u + stall_col * (1.0 - u)
    sm_power = sm.idle_power_w + a_eff * table.weight_row * sm.max_dynamic_w
    mem_power = mem_base[:, None] + mem_ar[:, None] * busy
    total = card.board_static_w + sm_power + mem_power
    fits = total <= cap_eps
    first = fits.argmax(axis=1)
    fits_any = fits.any(axis=1)
    sel = np.where(fits_any, first, m - 1)
    proc_mech = np.where(fits_any, np.where(first == 0, _NONE, _DVFS), _FLOOR)

    columns = (
        t[rows, sel],
        t_c_rows[rows, sel],
        t_m,
        u[rows, sel],
        busy[rows, sel],
        f_desc[sel],
        ratio,
        sm_power[rows, sel],
        mem_power[rows, sel],
    )
    t_l, t_c_l, t_m_l, u_l, busy_l, f_l, r_l, sp_l, mp_l = (
        c.tolist() for c in columns
    )
    proc_mech_l = proc_mech.tolist()
    mem_mech_l = mem_mech_codes.tolist()
    return [
        [
            PhaseResult(
                name=phase.name,
                time_s=t_l[i],
                t_compute_s=t_c_l[i],
                t_memory_s=t_m_l[i],
                utilization=u_l[i],
                mem_busy=busy_l[i],
                proc_freq_ghz=f_l[i],
                proc_duty=1.0,
                mem_throttle=r_l[i],
                proc_mechanism=_MECHS[proc_mech_l[i]],
                mem_mechanism=_MECHS[mem_mech_l[i]],
                proc_power_w=sp_l[i],
                mem_power_w=mp_l[i],
                board_power_w=card.board_static_w,
                flops=phase.flops,
                bytes_moved=phase.bytes_moved,
            )
            for i in range(k * r, (k + 1) * r)
        ]
        for k, phase in enumerate(cols.phases)
    ]


class GpuBatchKernel:
    """Reusable gather kernel over one GPU memory-clock axis.

    The board cap is validated and the per-phase SM candidate tables,
    snapped clock ratios, and memory-side mechanisms are all resolved at
    construction; :meth:`execute_indices` gathers rows with no per-call
    setup.  Mirrors :class:`HostBatchKernel` for the GPU planner path.
    """

    def __init__(
        self,
        card: GpuCard,
        phases: Sequence[Phase],
        cap_w: float,
        mem_freqs_mhz: Sequence[float],
    ) -> None:
        self._card = card
        self._phases = tuple(phases)
        self._cap_in = float(cap_w)
        self._freqs_in = [float(f) for f in mem_freqs_mhz]
        self._cap = card.validate_cap(cap_w)
        if not self._phases:
            raise SweepError("cannot execute a workload with no phases")
        mem_ops = [card.mem.operating_point(float(f)) for f in mem_freqs_mhz]
        self._n = len(mem_ops)
        snapped = np.asarray([op.freq_mhz for op in mem_ops], dtype=np.float64)
        self._ratio: _F64 = snapped / card.mem.nominal_mhz
        self._mem_mech: _I64 = np.asarray(
            [_MECHS.index(op.mechanism) for op in mem_ops], dtype=np.int64
        )
        self._mem_caps = [
            card.mem.allocated_power_w(op.freq_mhz) for op in mem_ops
        ]
        self._cap_eps = self._cap + _CAP_EPS_W
        self._mem_base: _F64 = (
            card.mem.idle_power_w
            + card.mem.clock_power_w * self._ratio * self._ratio
        )
        self._mem_ar: _F64 = card.mem.access_power_w * self._ratio
        self._table = _GpuTable(card, self._phases)
        self._cols = _PhaseCols(self._phases)
        t_m_rows = []
        for ph in self._phases:
            if ph.bytes_moved > 0.0:
                mem_rate = (
                    card.mem.peak_bw_gbps * self._ratio * ph.memory_efficiency * 1e9
                )
                t_m_rows.append(ph.bytes_moved / mem_rate)
            else:
                t_m_rows.append(np.zeros(self._n))
        self._t_m_mat: _F64 = np.stack(t_m_rows)
        # Phase-stacked memory columns, tiled once at construction (see
        # HostBatchKernel): per-call work drops to one offset add plus
        # flat gathers over identical elements.
        p = self._cols.p
        self._t_m_flat: _F64 = self._t_m_mat.reshape(-1)
        if p > 1:
            self._ratio_stack: _F64 = np.tile(self._ratio, p)
            self._mech_stack: _I64 = np.tile(self._mem_mech, p)
            self._mem_base_stack: _F64 = np.tile(self._mem_base, p)
            self._mem_ar_stack: _F64 = np.tile(self._mem_ar, p)
            self._row_offsets: NDArray[np.intp] | None = (
                np.arange(p, dtype=np.intp) * self._n
            )[:, None]
        else:
            self._ratio_stack = self._ratio
            self._mech_stack = self._mem_mech
            self._mem_base_stack = self._mem_base
            self._mem_ar_stack = self._mem_ar
            self._row_offsets = None

    def __len__(self) -> int:
        return self._n

    def execute_indices(self, indices: Sequence[int]) -> list[ExecutionResult]:
        """Results for axis rows ``indices``, in the given order.

        Entry ``k`` is bit-for-bit ``execute_on_gpu`` at row
        ``indices[k]``: every kernel operation is row-elementwise, so the
        gathered sub-grid reproduces the full pass exactly.
        """
        rows = [int(i) for i in indices]
        if not rows:
            return []
        if len(rows) * self._cols.p <= _GPU_GATHER_CROSSOVER:
            # Below the crossover (in virtual rows — the scalar governor
            # pays per phase, the stacked pass does not) the vector
            # pass's fixed cost exceeds the scalar one: dispatch to the
            # per-point oracle, whose outputs this kernel is bit-for-bit
            # locked to anyway (the GPU analogue of SERIAL_CROSSOVER).
            return [
                execute_on_gpu(
                    self._card, self._phases, self._cap_in, self._freqs_in[i]
                )
                for i in rows
            ]
        gather = np.asarray(rows, dtype=np.intp)
        if self._row_offsets is not None:
            gather = (self._row_offsets + gather).ravel()
        ratio = self._ratio_stack[gather]
        mech = self._mech_stack[gather]
        mem_base = self._mem_base_stack[gather]
        mem_ar = self._mem_ar_stack[gather]
        t_m = self._t_m_flat[gather]
        # Single errstate frame per pass (see HostBatchKernel): value-free.
        with np.errstate(invalid="ignore", divide="ignore"):
            phase_rows = _gpu_phase_batch(
                self._card, self._cols, self._cap_eps, self._table,
                ratio, mech, t_m, mem_base, mem_ar, len(rows),
            )
        return [
            ExecutionResult(
                tuple(row[k] for row in phase_rows),
                proc_cap_w=self._cap,
                mem_cap_w=self._mem_caps[i],
                device="gpu",
            )
            for k, i in enumerate(rows)
        ]


def execute_gpu_batch(
    card: GpuCard,
    phases: Sequence[Phase],
    cap_w: float,
    mem_freqs_mhz: Sequence[float],
) -> list[ExecutionResult]:
    """Simulate a workload at every memory clock under one board cap.

    Point ``i`` of the returned list is bit-for-bit equal to
    ``execute_on_gpu(card, phases, cap_w, mem_freqs_mhz[i])``.
    """
    kernel = GpuBatchKernel(card, phases, cap_w, mem_freqs_mhz)
    return kernel.execute_indices(range(len(kernel)))


def batch_execute_indices(
    kernel: HostBatchKernel | GpuBatchKernel,
    indices: Sequence[int],
) -> list[ExecutionResult]:
    """Gather entry point: execute axis rows ``indices`` of a prepared kernel.

    This is the sub-grid door the sweep engine routes planner batches
    through; it exists as a module-level function so the engine's
    dispatch — and the purity lint that roots it — has one named seam
    rather than an attribute call on an opaque receiver.
    """
    return kernel.execute_indices(indices)
