"""Vectorized batch execution: resolve whole allocation grids in one pass.

The scalar executor (:mod:`repro.perfmodel.executor`) resolves one
``(P_cpu, P_mem)`` point at a time: enumerate a few dozen hardware states
fastest-first, take the first whose measured power fits, iterate the
CPU<->DRAM pair to a joint fixed point.  Every figure sweep repeats that
pure-Python loop hundreds of times, and PR 1's report shows thread fan-out
cannot hide it (the model is GIL-bound).

This module evaluates the *entire grid at once* with NumPy:

* the ``(n_points x n_candidates)`` power matrix is materialized and the
  governor's "first state that fits" becomes ``argmax`` over the boolean
  fit mask (``any`` over the mask distinguishes the FLOOR fallback, which
  by construction is the last candidate row);
* the CPU<->DRAM fixed point runs as whole-array iteration: converged rows
  freeze via a boolean mask, cycling rows settle to the lower (cap-safe)
  level, and the iteration bound/cycle semantics are exactly the scalar
  path's ``_MAX_JOINT_ITERS`` contract;
* per-phase splits (compute/memory time, utilization, busy fraction) are
  broadcast arithmetic.

Equivalence with the scalar oracle is *bit-for-bit*, not approximate:
every arithmetic expression here reproduces the scalar code's operation
order (floating-point addition and multiplication are not associative, so
the expression trees must match, and they do — see
``tests/test_batch_equivalence.py`` for the differential lock).  Both
paths share :func:`~repro.perfmodel.executor.cpu_candidate_table` so the
candidate enumeration cannot drift.

The functions here are pure (no I/O, no clocks, no global state): they are
reachable from the memoized :class:`~repro.core.parallel.SweepEngine` and
therefore held to the RPL001 purity contract, like the scalar resolvers.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from numpy.typing import NDArray

from repro.errors import ConvergenceError, SweepError
from repro.hardware.component import CappingMechanism
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.hardware.gpu import GpuCard
from repro.perfmodel.executor import _CAP_EPS_W, _MAX_JOINT_ITERS, cpu_candidate_table
from repro.perfmodel.metrics import ExecutionResult, PhaseResult
from repro.perfmodel.phase import Phase
from repro.util.units import watts

__all__ = ["execute_gpu_batch", "execute_host_batch"]

_F64 = NDArray[np.float64]
_I64 = NDArray[np.int64]
_Bool = NDArray[np.bool_]

#: Integer codes the kernel keeps in its mechanism arrays; decoded back
#: into :class:`CappingMechanism` only when results are materialized.
_MECHS: tuple[CappingMechanism, ...] = (
    CappingMechanism.NONE,
    CappingMechanism.DVFS,
    CappingMechanism.THROTTLE,
    CappingMechanism.BANDWIDTH_THROTTLE,
    CappingMechanism.FLOOR,
)
_NONE, _DVFS, _THROTTLE, _BW_THROTTLE, _FLOOR = range(len(_MECHS))


# ---------------------------------------------------------------------------
# host (CPU + DRAM)
# ---------------------------------------------------------------------------

class _CpuTable:
    """Candidate-state columns for one ``(cpu, phase)`` pair.

    Column ``k`` is the state the scalar governor tries at step ``k``
    (:func:`cpu_candidate_table` order); the compute time per candidate is
    precomputed once because it does not depend on the memory time.
    """

    def __init__(self, cpu: CpuDomain, phase: Phase) -> None:
        freq, duty = cpu_candidate_table(cpu)
        self.freq: _F64 = freq
        self.duty: _F64 = duty
        self.n_pstates = len(cpu.pstates)
        self.weight: _F64 = np.asarray(cpu.pstates.power_weight(freq), dtype=np.float64)
        if phase.flops > 0.0:
            rate = (
                cpu.n_cores
                * (freq * duty * 1e9)
                * cpu.flops_per_core_cycle
                * phase.compute_efficiency
            )
            self.t_c: _F64 = phase.flops / rate
        else:
            self.t_c = np.zeros_like(freq)


def _resolve_cpu_batch(
    cpu: CpuDomain,
    phase: Phase,
    table: _CpuTable,
    cap_eps: _F64,
    t_m: _F64,
) -> tuple[_I64, _Bool, _I64]:
    """Vectorized ``_resolve_cpu``: first candidate that fits, per row.

    Returns ``(selected column, fits-anywhere mask, first-fit column)``;
    rows where nothing fits select the last column, which is the FLOOR
    operating point ``(f_min, duty_min)`` by construction of the table.
    """
    t_c = table.t_c[None, :]
    t = np.maximum(t_c, t_m[:, None])
    with np.errstate(invalid="ignore", divide="ignore"):
        u = np.where(t > 0.0, t_c / t, 0.0)
    a_eff = phase.activity * u + phase.stall_activity * (1.0 - u)
    power = (
        cpu.idle_power_w
        + a_eff * table.duty[None, :] * table.weight[None, :] * cpu.max_dynamic_w
    )
    fits = power <= cap_eps[:, None]
    first = np.argmax(fits, axis=1)
    fits_any = fits.any(axis=1)
    sel = np.where(fits_any, first, table.freq.size - 1)
    return sel, fits_any, first


def _cpu_mechanism_codes(table: _CpuTable, fits_any: _Bool, first: _I64) -> _I64:
    """Mechanism codes matching the scalar resolver's selection logic."""
    fitted = np.where(
        first == 0,
        _NONE,
        np.where(first < table.n_pstates, _DVFS, _THROTTLE),
    )
    return np.where(fits_any, fitted, _FLOOR)


def _snap_level_batch(dram: DramDomain, level: _F64) -> _F64:
    """Vectorized ``DramDomain.snap_level`` (round down onto the grid)."""
    if dram.level_steps == 1:
        return np.full_like(level, dram.min_level)
    span = 1.0 - dram.min_level
    step = span / (dram.level_steps - 1)
    k = np.floor((level - dram.min_level) / step + 1e-9)
    k = np.clip(k, 0, dram.level_steps - 1)
    return dram.min_level + k * step


def _resolve_dram_batch(
    dram: DramDomain,
    phase: Phase,
    cap: _F64,
    cap_eps: _F64,
    t_c: _F64,
) -> tuple[_F64, _I64]:
    """Vectorized ``_resolve_dram``: throttle level + mechanism per row.

    The scalar branch ladder (memory-idle / unconstrained / throttled /
    floor) becomes layered ``where`` masks applied floor-first so the
    higher-precedence branches overwrite the lower ones.
    """
    n = cap.shape[0]
    if not phase.bytes_moved > 0.0:
        return np.ones(n), np.full(n, _NONE)
    t_m_full = phase.bytes_moved / (
        dram.peak_bw_gbps * 1e9 * phase.memory_efficiency
    )
    busy_full = np.where(
        t_c <= 0.0, 1.0, np.minimum(1.0, t_m_full / np.maximum(t_m_full, t_c))
    )
    measured_full = dram.background_w + busy_full * dram.max_access_w
    level_raw = (cap - dram.background_w) / dram.max_access_w
    snapped = _snap_level_batch(dram, np.minimum(level_raw, 1.0))
    throttled = level_raw >= dram.min_level
    level = np.where(throttled, snapped, dram.min_level)
    mech = np.where(throttled, _BW_THROTTLE, _FLOOR)
    unconstrained = (cap >= dram.max_power_w) | (measured_full <= cap_eps)
    level = np.where(unconstrained, 1.0, level)
    mech = np.where(unconstrained, _NONE, mech)
    return level, mech


def _host_phase_batch(
    cpu: CpuDomain,
    dram: DramDomain,
    phase: Phase,
    cpu_cap: _F64,
    dram_cap: _F64,
) -> list[PhaseResult]:
    """Jointly resolve both governors for one phase over all grid rows."""
    n = cpu_cap.shape[0]
    table = _CpuTable(cpu, phase)
    cpu_cap_eps = cpu_cap + _CAP_EPS_W
    dram_cap_eps = dram_cap + _CAP_EPS_W

    level: _F64 = np.ones(n)
    mem_mech: _I64 = np.full(n, _NONE)
    if phase.bytes_moved > 0.0:
        active = np.ones(n, dtype=bool)
        seen: list[tuple[_F64, _F64, _F64, _Bool]] = []
        for _ in range(_MAX_JOINT_ITERS):
            mem_rate = dram.peak_bw_gbps * level * phase.memory_efficiency * 1e9
            t_m = phase.bytes_moved / mem_rate
            sel, _, _ = _resolve_cpu_batch(cpu, phase, table, cpu_cap_eps, t_m)
            f_sel = table.freq[sel]
            d_sel = table.duty[sel]
            new_level, new_mech = _resolve_dram_batch(
                dram, phase, dram_cap, dram_cap_eps, table.t_c[sel]
            )
            converged = active & (new_level == level)
            repeated = np.zeros(n, dtype=bool)
            for s_f, s_d, s_level, s_valid in seen:
                repeated |= (
                    s_valid & (s_f == f_sel) & (s_d == d_sel) & (s_level == new_level)
                )
            cycled = active & ~converged & repeated
            continuing = active & ~converged & ~cycled
            # Converged rows adopt the same-level new op; a 2-cycle between
            # adjacent discrete levels settles to the lower (cap-safe) one,
            # like the scalar governor; everything else keeps iterating.
            take_new = converged | (cycled & (new_level < level)) | continuing
            level = np.where(take_new, new_level, level)
            mem_mech = np.where(take_new, new_mech, mem_mech)
            seen.append((f_sel, d_sel, new_level, continuing))
            active = continuing
            if not active.any():
                break
        if active.any():  # pragma: no cover - discrete state space precludes this
            raise ConvergenceError(_MAX_JOINT_ITERS, float("nan"))
        mem_rate = dram.peak_bw_gbps * level * phase.memory_efficiency * 1e9
        t_m = phase.bytes_moved / mem_rate
    else:
        t_m = np.zeros(n)

    # Re-resolve the CPU against the settled DRAM level, mirroring the
    # scalar path's final consistency pass.
    sel, fits_any, first = _resolve_cpu_batch(cpu, phase, table, cpu_cap_eps, t_m)
    d_sel = table.duty[sel]
    t_c = table.t_c[sel]
    t = np.maximum(t_c, t_m)
    with np.errstate(invalid="ignore", divide="ignore"):
        u = np.where(t > 0.0, t_c / t, 0.0)
        busy = np.where(t > 0.0, t_m / t, 0.0)
    a_eff = phase.activity * u + phase.stall_activity * (1.0 - u)
    proc_power = (
        cpu.idle_power_w + a_eff * d_sel * table.weight[sel] * cpu.max_dynamic_w
    )
    mem_power = dram.background_w + level * busy * dram.max_access_w
    proc_mech = _cpu_mechanism_codes(table, fits_any, first)

    columns = (
        t, t_c, t_m, u, busy, table.freq[sel], d_sel, level, proc_power, mem_power,
    )
    t_l, t_c_l, t_m_l, u_l, busy_l, f_l, d_l, level_l, pp_l, mp_l = (
        c.tolist() for c in columns
    )
    proc_mech_l = proc_mech.tolist()
    mem_mech_l = mem_mech.tolist()
    return [
        PhaseResult(
            name=phase.name,
            time_s=t_l[i],
            t_compute_s=t_c_l[i],
            t_memory_s=t_m_l[i],
            utilization=u_l[i],
            mem_busy=busy_l[i],
            proc_freq_ghz=f_l[i],
            proc_duty=d_l[i],
            mem_throttle=level_l[i],
            proc_mechanism=_MECHS[proc_mech_l[i]],
            mem_mechanism=_MECHS[mem_mech_l[i]],
            proc_power_w=pp_l[i],
            mem_power_w=mp_l[i],
            board_power_w=0.0,
            flops=phase.flops,
            bytes_moved=phase.bytes_moved,
        )
        for i in range(n)
    ]


def execute_host_batch(
    cpu: CpuDomain,
    dram: DramDomain,
    phases: Sequence[Phase],
    proc_caps_w: Sequence[float],
    mem_caps_w: Sequence[float],
) -> list[ExecutionResult]:
    """Simulate a workload at every ``(proc_cap, mem_cap)`` pair at once.

    Point ``i`` of the returned list is bit-for-bit equal to
    ``execute_on_host(cpu, dram, phases, proc_caps_w[i], mem_caps_w[i])``.
    """
    proc_list = [watts(float(p), "cpu_cap_w") for p in proc_caps_w]
    mem_list = [watts(float(m), "dram_cap_w") for m in mem_caps_w]
    if len(proc_list) != len(mem_list):
        raise SweepError(
            f"mismatched cap columns: {len(proc_list)} processor caps vs "
            f"{len(mem_list)} memory caps"
        )
    if not phases:
        raise SweepError("cannot execute a workload with no phases")
    if not proc_list:
        return []
    proc = np.asarray(proc_list, dtype=np.float64)
    mem = np.asarray(mem_list, dtype=np.float64)
    phase_rows = [_host_phase_batch(cpu, dram, ph, proc, mem) for ph in phases]
    return [
        ExecutionResult(
            tuple(row[i] for row in phase_rows),
            proc_cap_w=proc_list[i],
            mem_cap_w=mem_list[i],
        )
        for i in range(len(proc_list))
    ]


# ---------------------------------------------------------------------------
# GPU (SM + device memory)
# ---------------------------------------------------------------------------

def _gpu_phase_batch(
    card: GpuCard,
    phase: Phase,
    cap_w: float,
    ratio: _F64,
    mem_mech_codes: _I64,
) -> list[PhaseResult]:
    """Resolve the board governor for one phase over all memory clocks.

    ``ratio`` is the snapped clock over nominal per row; columns are the
    SM frequencies, fastest first, so "first that fits" is again an argmax
    and the FLOOR fallback is the last column.
    """
    sm = card.sm
    n = ratio.shape[0]
    f_desc: _F64 = sm.pstates.frequencies_ghz[::-1]
    m = f_desc.size
    weight = np.asarray(sm.pstates.power_weight(f_desc), dtype=np.float64)
    if phase.flops > 0.0:
        rate = (
            sm.n_sm * (f_desc * 1e9) * sm.flops_per_sm_cycle * phase.compute_efficiency
        )
        t_c_cols: _F64 = phase.flops / rate
    else:
        t_c_cols = np.zeros_like(f_desc)
    if phase.bytes_moved > 0.0:
        mem_rate = card.mem.peak_bw_gbps * ratio * phase.memory_efficiency * 1e9
        t_m = phase.bytes_moved / mem_rate
    else:
        t_m = np.zeros(n)

    t = np.maximum(t_c_cols[None, :], t_m[:, None])
    with np.errstate(invalid="ignore", divide="ignore"):
        u = np.where(t > 0.0, t_c_cols[None, :] / t, 0.0)
        busy = np.where(t > 0.0, t_m[:, None] / t, 0.0)
    a_eff = phase.activity * u + phase.stall_activity * (1.0 - u)
    sm_power = sm.idle_power_w + a_eff * weight[None, :] * sm.max_dynamic_w
    r_col = ratio[:, None]
    mem_power = (
        card.mem.idle_power_w
        + card.mem.clock_power_w * r_col * r_col
        + card.mem.access_power_w * r_col * busy
    )
    total = card.board_static_w + sm_power + mem_power
    fits = total <= cap_w + _CAP_EPS_W
    first = np.argmax(fits, axis=1)
    fits_any = fits.any(axis=1)
    sel = np.where(fits_any, first, m - 1)
    proc_mech = np.where(fits_any, np.where(first == 0, _NONE, _DVFS), _FLOOR)

    rows = np.arange(n)
    columns = (
        t[rows, sel],
        t_c_cols[sel],
        t_m,
        u[rows, sel],
        busy[rows, sel],
        f_desc[sel],
        ratio,
        sm_power[rows, sel],
        mem_power[rows, sel],
    )
    t_l, t_c_l, t_m_l, u_l, busy_l, f_l, r_l, sp_l, mp_l = (
        c.tolist() for c in columns
    )
    proc_mech_l = proc_mech.tolist()
    mem_mech_l = mem_mech_codes.tolist()
    return [
        PhaseResult(
            name=phase.name,
            time_s=t_l[i],
            t_compute_s=t_c_l[i],
            t_memory_s=t_m_l[i],
            utilization=u_l[i],
            mem_busy=busy_l[i],
            proc_freq_ghz=f_l[i],
            proc_duty=1.0,
            mem_throttle=r_l[i],
            proc_mechanism=_MECHS[proc_mech_l[i]],
            mem_mechanism=_MECHS[mem_mech_l[i]],
            proc_power_w=sp_l[i],
            mem_power_w=mp_l[i],
            board_power_w=card.board_static_w,
            flops=phase.flops,
            bytes_moved=phase.bytes_moved,
        )
        for i in range(n)
    ]


def execute_gpu_batch(
    card: GpuCard,
    phases: Sequence[Phase],
    cap_w: float,
    mem_freqs_mhz: Sequence[float],
) -> list[ExecutionResult]:
    """Simulate a workload at every memory clock under one board cap.

    Point ``i`` of the returned list is bit-for-bit equal to
    ``execute_on_gpu(card, phases, cap_w, mem_freqs_mhz[i])``.
    """
    cap = card.validate_cap(cap_w)
    if not phases:
        raise SweepError("cannot execute a workload with no phases")
    mem_ops = [card.mem.operating_point(float(f)) for f in mem_freqs_mhz]
    if not mem_ops:
        return []
    snapped = np.asarray([op.freq_mhz for op in mem_ops], dtype=np.float64)
    ratio = snapped / card.mem.nominal_mhz
    mem_mech_codes: _I64 = np.asarray(
        [_MECHS.index(op.mechanism) for op in mem_ops], dtype=np.int64
    )
    phase_rows = [
        _gpu_phase_batch(card, ph, cap, ratio, mem_mech_codes) for ph in phases
    ]
    mem_caps = [card.mem.allocated_power_w(op.freq_mhz) for op in mem_ops]
    return [
        ExecutionResult(
            tuple(row[i] for row in phase_rows),
            proc_cap_w=cap,
            mem_cap_w=mem_caps[i],
            device="gpu",
        )
        for i in range(len(mem_ops))
    ]
