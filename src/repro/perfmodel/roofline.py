"""Roofline primitives: attainable performance under compute/memory rooflines.

The execution model is a roofline with power-dependent ceilings: capping the
processor lowers the compute roof, throttling DRAM lowers the bandwidth
roof, and the phase's arithmetic intensity decides which roof binds.  These
helpers are shared by the executor, the balance analysis of Figure 5, and
several tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.util.units import check_non_negative, check_positive

__all__ = [
    "arithmetic_intensity",
    "attainable_flops",
    "phase_time_s",
    "ridge_intensity",
]


def arithmetic_intensity(flops: float, bytes_moved: float) -> float:
    """FLOPs per byte; ``inf`` for a phase that moves no data."""
    check_non_negative(flops, "flops")
    check_non_negative(bytes_moved, "bytes_moved")
    if bytes_moved == 0.0:  # repro-lint: disable=RPL003 -- exact zero sentinel: phase moves no data
        return float("inf")
    return flops / bytes_moved


def attainable_flops(
    intensity: float | np.ndarray,
    compute_roof_flops: float,
    mem_roof_bytes_per_s: float,
) -> float | np.ndarray:
    """Classic roofline: ``min(compute_roof, intensity · bandwidth_roof)``."""
    check_positive(compute_roof_flops, "compute_roof_flops")
    check_positive(mem_roof_bytes_per_s, "mem_roof_bytes_per_s")
    return np.minimum(compute_roof_flops, np.asarray(intensity) * mem_roof_bytes_per_s)


def ridge_intensity(compute_roof_flops: float, mem_roof_bytes_per_s: float) -> float:
    """The intensity at which the two roofs meet (the balance point).

    A power allocation is *balanced* for a phase exactly when it puts the
    ridge at the phase's own intensity — the condition Section 3.4.1 shows
    the optimal allocation satisfies (both utilizations ≈ 100 %).
    """
    check_positive(compute_roof_flops, "compute_roof_flops")
    check_positive(mem_roof_bytes_per_s, "mem_roof_bytes_per_s")
    return compute_roof_flops / mem_roof_bytes_per_s


def phase_time_s(
    flops: float,
    bytes_moved: float,
    compute_rate_flops: float,
    mem_rate_bytes_per_s: float,
) -> tuple[float, float, float]:
    """Execution time of one phase under both rooflines.

    Returns ``(time, t_compute, t_memory)`` where ``time = max(t_c, t_m)``
    (perfect overlap of compute with memory traffic — the standard roofline
    assumption, adequate for the steady-state throughput codes studied).
    """
    check_non_negative(flops, "flops")
    check_non_negative(bytes_moved, "bytes_moved")
    t_c = 0.0
    t_m = 0.0
    if flops > 0.0:
        check_positive(compute_rate_flops, "compute_rate_flops")
        t_c = flops / compute_rate_flops
    if bytes_moved > 0.0:
        check_positive(mem_rate_bytes_per_s, "mem_rate_bytes_per_s")
        t_m = bytes_moved / mem_rate_bytes_per_s
    t = max(t_c, t_m)
    if t <= 0.0:
        raise ConfigurationError("phase produced zero execution time")
    return t, t_c, t_m
