"""Client helpers for the coordination server.

Two flavours:

* :class:`ServeClient` — asyncio, supports any number of in-flight
  requests on one connection (replies are matched to callers by ``id``).
  This is what the load generator and the differential tests use.
* :func:`request_sync` — one blocking socket round-trip per call, for
  scripts and shells that do not want an event loop.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
from typing import Any, Mapping

from repro.errors import ProtocolError, ServeError
from repro.serve.protocol import decode_response, encode_frame

__all__ = ["ServeClient", "request_sync"]


class ServeClient:
    """One connection, many concurrent requests."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._waiters: dict[int, asyncio.Future[dict[str, Any]]] = {}
        self._pump: asyncio.Task[None] | None = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        self._closed = False

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                payload = decode_response(line)
                waiter = self._waiters.pop(payload.get("id"), None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(payload)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            for waiter in self._waiters.values():
                if not waiter.done():
                    waiter.set_exception(ServeError("connection closed by server"))
            self._waiters.clear()

    async def request(
        self, op: str, params: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        """Send one frame and await its reply envelope."""
        if self._closed:
            raise ServeError("client is closed")
        request_id = next(self._ids)
        future: asyncio.Future[dict[str, Any]] = (
            asyncio.get_running_loop().create_future()
        )
        self._waiters[request_id] = future
        frame: dict[str, Any] = {"id": request_id, "op": op}
        if params is not None:
            frame["params"] = dict(params)
        self._writer.write(encode_frame(frame))
        await self._writer.drain()
        return await future

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except asyncio.CancelledError:
                pass
            self._pump = None
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()


def request_sync(
    host: str,
    port: int,
    op: str,
    params: Mapping[str, Any] | None = None,
    *,
    timeout_s: float = 30.0,
) -> dict[str, Any]:
    """One blocking round-trip: connect, send, read one reply, close."""
    frame: dict[str, Any] = {"id": 0, "op": op}
    if params is not None:
        frame["params"] = dict(params)
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(encode_frame(frame))
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                raise ServeError("connection closed before a reply arrived")
            buf += chunk
    try:
        payload = json.loads(buf.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed reply frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("reply frame must be a JSON object")
    return payload
