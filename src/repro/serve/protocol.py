"""Wire protocol of the coordination server: newline-delimited JSON.

One TCP connection carries any number of frames in either direction; a
frame is one JSON object on one line (``\\n``-terminated, UTF-8).  The
protocol is deliberately stdlib-trivial — any language with a socket and
a JSON parser is a client — and every numeric value round-trips exactly:
:func:`json.dumps` renders floats with :func:`repr`-equivalent shortest
round-trip precision, which is what lets the differential test battery
assert served answers bit-identical to direct library calls.

Request frame::

    {"id": 7, "op": "sweep_best",
     "params": {"workload": "dgemm", "budget_w": 180.0}}

``id`` is an opaque client token echoed on the reply (replies on one
connection may arrive out of request order — the server resolves each
frame as its own task).  ``op`` is one of :data:`QUERY_OPS` (resolved
through the shared engine, micro-batched) or :data:`CONTROL_OPS`
(answered immediately, never batched).

Response envelope::

    {"id": 7, "ok": true, "op": "sweep_best", "result": {...},
     "degraded": false, "events": [], "served": {"batch_size": 12, ...}}

``ok: false`` replaces ``result`` with ``error: {type, message,
family}``; ``family`` is ``"repro"`` for the typed library/fault errors
the degradation contract allows and ``"internal"`` for anything else.
``degraded`` / ``events`` carry the PR 5 resilience outcome: a reply is
either bit-identical to the clean call or flagged here — a silently
wrong allocation is never served.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ProtocolError, ReproError

__all__ = [
    "CONTROL_OPS",
    "KNOWN_OPS",
    "PROTOCOL_VERSION",
    "QUERY_OPS",
    "Request",
    "ServedInfo",
    "canonical_key",
    "decode_request",
    "decode_response",
    "encode_frame",
    "error_payload",
    "response_envelope",
]

#: Bumped on any incompatible frame-shape change; reported by ``ping``.
PROTOCOL_VERSION = 1

#: Operations resolved through the shared engine stack (micro-batched).
QUERY_OPS = frozenset({"profile", "coord", "sweep_best", "budget_curve"})

#: Operations answered inline by the server itself (never batched).
CONTROL_OPS = frozenset({"ping", "stats", "shutdown"})

KNOWN_OPS = QUERY_OPS | CONTROL_OPS


@dataclass(frozen=True)
class Request:
    """One decoded query frame."""

    id: Any
    op: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)

    def require(self, name: str) -> Any:
        """The named parameter, or a :class:`ProtocolError` naming it."""
        if name not in self.params:
            raise ProtocolError(f"op {self.op!r} requires parameter {name!r}")
        return self.params[name]


@dataclass(frozen=True)
class ServedInfo:
    """How the batcher served one request (reported in the envelope)."""

    #: Requests in the flush this one rode in (1 == effectively unbatched).
    batch_size: int
    #: Distinct fingerprints in the flush (``< batch_size`` means dedup).
    n_unique: int
    #: What triggered the flush: ``"depth"``, ``"timeout"``, ``"drain"``.
    flush: str
    #: True when this request shared its resolution with an identical
    #: in-flight twin instead of resolving on its own.
    deduped: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "batch_size": self.batch_size,
            "n_unique": self.n_unique,
            "flush": self.flush,
            "deduped": self.deduped,
        }


def canonical_key(op: str, params: Mapping[str, Any]) -> str:
    """The dedup fingerprint of a query: canonical JSON of ``(op, params)``.

    Two requests coalesce iff their keys are equal; key order inside
    ``params`` is normalized away, the request ``id`` deliberately never
    participates (identical queries from different clients are the whole
    point of deduplication).
    """
    try:
        return json.dumps(
            {"op": op, "params": dict(params)}, sort_keys=True, default=str
        )
    except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
        raise ProtocolError(f"query parameters are not JSON-serializable: {exc}")


def decode_request(line: str | bytes) -> Request:
    """Parse one request frame; :class:`ProtocolError` on any malformation."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not valid UTF-8: {exc}") from None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    op = payload.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("frame is missing the 'op' field")
    if op not in KNOWN_OPS:
        raise ProtocolError(
            f"unknown op {op!r} (known: {', '.join(sorted(KNOWN_OPS))})"
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be a JSON object when present")
    return Request(id=payload.get("id"), op=op, params=params)


def response_envelope(
    request_id: Any,
    op: str | None,
    *,
    result: Mapping[str, Any] | None = None,
    error: Mapping[str, Any] | None = None,
    served: ServedInfo | None = None,
    degraded: bool = False,
    events: tuple[dict[str, Any], ...] | list[dict[str, Any]] = (),
) -> dict[str, Any]:
    """Assemble one reply payload (exactly one of ``result``/``error``)."""
    if (result is None) == (error is None):
        raise ProtocolError("a reply carries exactly one of result/error")
    payload: dict[str, Any] = {
        "id": request_id,
        "op": op,
        "ok": error is None,
        "degraded": bool(degraded),
        "events": list(events),
    }
    if error is None:
        payload["result"] = dict(result or {})
    else:
        payload["error"] = dict(error)
    if served is not None:
        payload["served"] = served.to_dict()
    return payload


def error_payload(exc: BaseException) -> dict[str, str]:
    """The ``error`` sub-object for an exception, typed per the contract."""
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "family": "repro" if isinstance(exc, ReproError) else "internal",
    }


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """Serialize one frame (request or reply) to its wire bytes."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_response(line: str | bytes) -> dict[str, Any]:
    """Parse one reply frame into its envelope dict."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"reply frame is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("reply frame must be a JSON object")
    return payload
