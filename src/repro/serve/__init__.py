"""Coordination-as-a-service: a long-lived allocation server.

Instead of paying engine construction, profile extraction, and kernel
compilation per CLI invocation, ``repro serve`` keeps one warm
:class:`~repro.core.parallel.SweepEngine` stack behind a tiny
newline-delimited-JSON TCP protocol and answers coordination queries
(``profile``, ``coord``, ``sweep_best``, ``budget_curve``) for any
number of concurrent clients.

The throughput story is the **micro-batching coalescer**
(:mod:`repro.serve.batching`): concurrent queries are admitted to a
queue that drains on a depth/latency trigger, identical in-flight
queries are deduplicated, and each flush's grid work is unioned into
single batch-kernel passes (:mod:`repro.serve.service`).  Served
answers stay bit-identical to direct library calls — the kernel pass
only primes the shared cache; the library call still produces the
reply.

See ``docs/serving.md`` for the protocol, the batching knobs, and the
latency-SLO methodology.
"""

from repro.serve.batching import BatchStats, MicroBatcher
from repro.serve.client import ServeClient, request_sync
from repro.serve.protocol import (
    CONTROL_OPS,
    PROTOCOL_VERSION,
    QUERY_OPS,
    Request,
    ServedInfo,
    canonical_key,
    decode_request,
    decode_response,
    encode_frame,
    error_payload,
    response_envelope,
)
from repro.serve.server import CoordServer, ServeConfig, run_server, run_smoke
from repro.serve.service import CoordinationService, Resolution

__all__ = [
    "BatchStats",
    "CONTROL_OPS",
    "CoordServer",
    "CoordinationService",
    "MicroBatcher",
    "PROTOCOL_VERSION",
    "QUERY_OPS",
    "Request",
    "Resolution",
    "ServeClient",
    "ServeConfig",
    "ServedInfo",
    "canonical_key",
    "decode_request",
    "decode_response",
    "encode_frame",
    "error_payload",
    "request_sync",
    "response_envelope",
    "run_server",
    "run_smoke",
]
