"""The micro-batching request coalescer.

Incoming query frames do not go straight to the engine: they join an
admission queue that drains as one **flush** whenever the queue reaches
``max_batch`` depth or the oldest queued request has waited
``max_wait_us`` — whichever comes first.  A flush is resolved off the
event loop in one executor job that

1. deduplicates requests by :func:`~repro.serve.protocol.canonical_key`
   (identical in-flight queries resolve once and share the answer),
2. primes the shared engine with the flush's coalesced kernel passes
   (:meth:`~repro.serve.service.CoordinationService.prefetch` — the
   union of every query's allocation grid runs as one
   ``host_subgrid`` pass per platform/workload partition), and
3. answers each unique query through the unchanged library calls,
   which now assemble from pure cache hits.

Latency/throughput trade-off is exactly the two knobs: ``max_wait_us``
bounds the queueing delay added to any request (an SLO floor), and
``max_batch`` bounds how much amortization a single flush can capture.
``max_batch=1`` degenerates to classic one-request-per-kernel-pass
serving — the baseline the benchmark compares against.

With a fault plan armed, coalescing is disabled for the whole flush:
requests resolve individually, in admission order, so each consumes its
own slice of the deterministic fault schedule and owns its own
degradation classification (PR 5 contract).  Identical queries are
*not* deduplicated in that mode — two clients may legitimately receive
different degradation outcomes for the same query.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ServeError
from repro.serve.protocol import Request, ServedInfo, canonical_key
from repro.serve.service import CoordinationService, Resolution

__all__ = ["BatchStats", "MicroBatcher"]


@dataclass
class BatchStats:
    """Coalescer counters (event-loop-thread only — no lock needed)."""

    submitted: int = 0
    resolved: int = 0
    deduped: int = 0
    flushes: int = 0
    flushes_depth: int = 0
    flushes_timeout: int = 0
    flushes_drain: int = 0
    prefetch_passes: int = 0
    max_depth_seen: int = 0
    _occupancy_sum: int = field(default=0, repr=False)

    @property
    def mean_occupancy(self) -> float:
        """Mean requests per flush — the amortization the batcher won."""
        return self._occupancy_sum / self.flushes if self.flushes else 0.0

    @property
    def dedup_ratio(self) -> float:
        """Fraction of submitted requests answered by an in-flight twin."""
        return self.deduped / self.submitted if self.submitted else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "resolved": self.resolved,
            "deduped": self.deduped,
            "dedup_ratio": self.dedup_ratio,
            "flushes": self.flushes,
            "flushes_depth": self.flushes_depth,
            "flushes_timeout": self.flushes_timeout,
            "flushes_drain": self.flushes_drain,
            "prefetch_passes": self.prefetch_passes,
            "mean_occupancy": self.mean_occupancy,
            "max_depth_seen": self.max_depth_seen,
        }


class MicroBatcher:
    """Admission queue + flush scheduler in front of one service.

    All mutable state (`_pending`, the timer handle, the stats) is
    touched exclusively from the event-loop thread; only the pure
    resolution work (service calls against the internally-locked engine
    caches) runs on the resolver executor.
    """

    def __init__(
        self,
        service: CoordinationService,
        *,
        max_batch: int = 32,
        max_wait_us: int = 2000,
        n_resolvers: int = 1,
    ) -> None:
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_us < 0:
            raise ServeError(f"max_wait_us must be >= 0, got {max_wait_us}")
        if n_resolvers < 1:
            raise ServeError(f"n_resolvers must be >= 1, got {n_resolvers}")
        self.service = service
        self.max_batch = int(max_batch)
        self.max_wait_us = int(max_wait_us)
        self.stats = BatchStats()
        self._pending: list[tuple[Request, asyncio.Future[tuple[Resolution, ServedInfo]]]] = []
        self._timer: asyncio.TimerHandle | None = None
        self._inflight: set[asyncio.Task[None]] = set()
        self._executor = ThreadPoolExecutor(
            max_workers=int(n_resolvers), thread_name_prefix="repro-serve"
        )
        self._closed = False

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    async def submit(self, request: Request) -> tuple[Resolution, ServedInfo]:
        """Queue one query and await its resolution."""
        if self._closed:
            raise ServeError("batcher is closed")
        loop = asyncio.get_running_loop()
        future: asyncio.Future[tuple[Resolution, ServedInfo]] = loop.create_future()
        self._pending.append((request, future))
        self.stats.submitted += 1
        depth = len(self._pending)
        if depth > self.stats.max_depth_seen:
            self.stats.max_depth_seen = depth
        if depth >= self.max_batch:
            self._flush("depth")
        elif self._timer is None:
            self._timer = loop.call_later(
                self.max_wait_us / 1e6, self._flush, "timeout"
            )
        return await future

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def _flush(self, reason: str) -> None:
        """Drain the admission queue into one resolver job."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.stats.flushes += 1
        self.stats._occupancy_sum += len(batch)
        if reason == "depth":
            self.stats.flushes_depth += 1
        elif reason == "timeout":
            self.stats.flushes_timeout += 1
        else:
            self.stats.flushes_drain += 1
        task = asyncio.get_running_loop().create_task(self._resolve_flush(batch, reason))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _resolve_flush(
        self,
        batch: list[tuple[Request, asyncio.Future[tuple[Resolution, ServedInfo]]]],
        reason: str,
    ) -> None:
        loop = asyncio.get_running_loop()
        coalesce = not self.service.faults_armed()
        if coalesce:
            # Dedup: the first request with a given fingerprint resolves;
            # its twins share the resolution object (and the answer).
            order: list[str] = []
            unique: dict[str, Request] = {}
            for request, _ in batch:
                key = canonical_key(request.op, request.params)
                if key not in unique:
                    unique[key] = request
                    order.append(key)
            n_unique = len(unique)
            try:
                resolved, passes = await loop.run_in_executor(
                    self._executor, self._resolve_unique, [unique[k] for k in order]
                )
            except Exception as exc:  # pragma: no cover - resolver crash guard
                for _, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                return
            self.stats.prefetch_passes += passes
            by_key = dict(zip(order, resolved))
            seen: set[str] = set()
            for request, future in batch:
                key = canonical_key(request.op, request.params)
                deduped = key in seen
                seen.add(key)
                info = ServedInfo(
                    batch_size=len(batch),
                    n_unique=n_unique,
                    flush=reason,
                    deduped=deduped,
                )
                if deduped:
                    self.stats.deduped += 1
                self.stats.resolved += 1
                if not future.done():
                    future.set_result((by_key[key], info))
        else:
            # Faults armed: strict per-request resolution, admission order.
            try:
                resolved, _ = await loop.run_in_executor(
                    self._executor,
                    self._resolve_unique,
                    [request for request, _ in batch],
                )
            except Exception as exc:  # pragma: no cover - resolver crash guard
                for _, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                return
            for (request, future), resolution in zip(batch, resolved):
                info = ServedInfo(
                    batch_size=len(batch),
                    n_unique=len(batch),
                    flush=reason,
                    deduped=False,
                )
                self.stats.resolved += 1
                if not future.done():
                    future.set_result((resolution, info))

    def _resolve_unique(
        self, requests: list[Request]
    ) -> tuple[list[Resolution], int]:
        """Executor-side: coalesced prime, then per-query resolution.

        A singleton flush (``max_batch=1``, or a drain straggler) skips
        the union prime: the library call already resolves its own grid
        in one kernel pass, so priming would just run that pass twice.
        """
        passes = self.service.prefetch(requests) if len(requests) > 1 else 0
        return [self.service.resolve(r) for r in requests], passes

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Flush the queue, await in-flight resolutions, stop the pool."""
        if self._closed:
            return
        self._closed = True
        self._flush("drain")
        while self._inflight:
            await asyncio.gather(*tuple(self._inflight), return_exceptions=True)
        self._executor.shutdown(wait=True)
