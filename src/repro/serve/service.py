"""The engine session: query resolution against a shared, warm stack.

One :class:`CoordinationService` owns (or borrows) a
:class:`~repro.core.parallel.SweepEngine` and answers the protocol's
query ops by calling the exact same library entry points a direct user
would — ``sweep_cpu_allocations``, ``cpu_budget_curve``,
``profile_*_resilient`` — so served answers are bit-identical to library
answers *by construction*, not by re-implementation.

The micro-batching win lives in :meth:`CoordinationService.prefetch`:
given one flush's worth of coalesced sweep-family queries, it unions
their allocation axes per ``(platform, workload, step)`` partition and
resolves each union in **one**
:meth:`~repro.core.parallel.SweepEngine.host_subgrid` kernel pass.  The
pass primes the engine's memo cache; the per-query library calls that
follow then assemble their answers from pure cache hits.  Equivalence is
inherited from PR 6's sub-grid contract (a gathered kernel pass is
bit-for-bit the scalar oracle, and it fills the cache point-by-point),
so the served reply *is* the library reply — the kernel just ran once
for the whole flush instead of once per query.

Resilience (PR 5): with a fault plan armed, prefetch and the profile
memo are bypassed — each query resolves individually through the
resilient wrappers / the engine's armed scalar fallback, and the
degradation outcome (report events or a typed ``FaultError``) is
attached to that query's envelope alone.  A flush never shares one
query's fault with its neighbours, and the server never dies on one.
"""
# shared-state

from __future__ import annotations

import threading
from typing import Any, Mapping

from repro.core.allocation import allocation_axis
from repro.core.coord import CoordDecision, coord_cpu
from repro.core.coord_gpu import coord_gpu
from repro.core.critical import CpuCriticalPowers, GpuCriticalPowers
from repro.core.parallel import MemoCache, SweepEngine
from repro.core.sweep import (
    AllocationSweep,
    BudgetCurve,
    GpuSweep,
    cpu_budget_curve,
    gpu_budget_curve,
    sweep_cpu_allocations,
    sweep_gpu_allocations,
)
from repro.errors import ProtocolError, ReproError
from repro.faults.injector import FaultInjector, active as _faults_active
from repro.faults.report import DegradationReport
from repro.faults.resilience import (
    coordinate_cpu_resilient,
    coordinate_gpu_resilient,
    profile_cpu_resilient,
    profile_gpu_resilient,
)
from repro.hardware.gpu import GpuCard
from repro.hardware.node import ComputeNode
from repro.hardware.platforms import get_platform
from repro.serve.protocol import QUERY_OPS, Request, error_payload
from repro.workloads import get_workload
from repro.workloads.base import Workload

__all__ = ["CoordinationService", "Resolution"]

#: Default host-sweep grid knobs — must match ``sweep_cpu_allocations``'s
#: signature defaults or prefetched axes would drift from served grids.
_DEFAULT_STEP_W = 4.0
_DEFAULT_MEM_MIN_W = 16.0
_DEFAULT_PROC_MIN_W = 8.0

#: Platform/workload objects resolved by name, shared by every service in
#: the process: resolution is pure (registry lookups construct
#: content-identical objects), and reusing one instance keeps the
#: engine's weak-keyed fingerprint memo hot across requests.
_RESOLVE_LOCK = threading.Lock()
_RESOLVED_PAIRS: dict[tuple[str, str | None], tuple[Workload, Any]] = {}


class Resolution:
    """The outcome of resolving one query (result XOR error, plus taint)."""

    __slots__ = ("result", "error", "degraded", "events")

    def __init__(
        self,
        result: dict[str, Any] | None = None,
        error: BaseException | None = None,
        report: DegradationReport | None = None,
    ) -> None:
        self.result = result
        self.error = error
        self.degraded = bool(report.degraded) if report is not None else False
        self.events: list[dict[str, Any]] = (
            [e.to_dict() for e in report.events] if report is not None else []
        )

    @property
    def ok(self) -> bool:
        return self.error is None

    def error_dict(self) -> dict[str, str]:
        assert self.error is not None
        return error_payload(self.error)


def _resolve_pair(workload_name: str, platform_name: str | None) -> tuple[Workload, Any]:
    """``(workload, platform)`` for the named pair, memoized process-wide."""
    key = (str(workload_name).lower(), platform_name)
    with _RESOLVE_LOCK:
        cached = _RESOLVED_PAIRS.get(key)
    if cached is not None:
        return cached
    workload = get_workload(workload_name)
    name = platform_name
    if name is None:
        name = "ivybridge" if workload.device == "cpu" else "titan-xp"
    platform = get_platform(name)
    if workload.device == "cpu" and not isinstance(platform, ComputeNode):
        raise ProtocolError(
            f"workload {workload.name!r} needs a CPU node, got {name!r}"
        )
    if workload.device == "gpu" and not isinstance(platform, GpuCard):
        raise ProtocolError(
            f"workload {workload.name!r} needs a GPU card, got {name!r}"
        )
    pair = (workload, platform)
    with _RESOLVE_LOCK:
        _RESOLVED_PAIRS[key] = pair
    return pair


def _float_param(request: Request, name: str, default: float | None = None) -> float:
    value = request.require(name) if default is None else request.param(name, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            f"parameter {name!r} of op {request.op!r} must be a number, "
            f"got {type(value).__name__}"
        )
    return float(value)


def _budget_list(request: Request) -> list[float]:
    raw = request.require("budgets_w")
    if not isinstance(raw, (list, tuple)) or not raw:
        raise ProtocolError(
            "parameter 'budgets_w' must be a non-empty list of numbers"
        )
    budgets: list[float] = []
    for value in raw:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError("parameter 'budgets_w' must contain only numbers")
        budgets.append(float(value))
    return budgets


class CoordinationService:
    """Query resolution against one shared engine stack.

    Thread-safety: :meth:`resolve` and :meth:`prefetch` are called from
    the server's resolver executor threads; everything they touch is
    either immutable (platforms, workloads), internally locked (the
    engine's :class:`~repro.core.parallel.MemoCache`, the module-level
    resolution memo), or a :class:`MemoCache` instance (the profile
    memo).
    """

    def __init__(self, engine: SweepEngine | None = None) -> None:
        self.engine = engine if engine is not None else SweepEngine()
        #: Clean profiles keyed by (device, platform, workload) — profiling
        #: does not route through the engine's point cache, so repeat
        #: profile/coord queries get their own memo tier.  There is
        #: deliberately no whole-answer memo: every reply is assembled by
        #: the library call itself (bit-identity stays structural), and
        #: redundant concurrent demand is collapsed by the batcher's
        #: in-flight dedup instead.
        self._profiles = MemoCache(256)

    # ------------------------------------------------------------------
    # fault awareness
    # ------------------------------------------------------------------
    def _injector(self) -> FaultInjector | None:
        """The armed injector governing this resolution, if any."""
        injector = self.engine.faults if self.engine.faults is not None else _faults_active()
        if injector is None or injector.plan.is_empty:
            return None
        return injector

    def faults_armed(self) -> bool:
        """True when a non-empty fault plan governs this service.

        The batcher consults this per flush: under an armed plan,
        request coalescing (prefetch *and* dedup) is disabled so each
        query consumes its own slice of the deterministic fault schedule
        and owns its own degradation classification.
        """
        return self._injector() is not None

    # ------------------------------------------------------------------
    # micro-batch prefetch (the coalesced kernel pass)
    # ------------------------------------------------------------------
    def prefetch(self, requests: list[Request]) -> int:
        """Prime the engine cache for one flush in coalesced kernel passes.

        Unions the host allocation axes of every CPU ``sweep_best`` /
        ``budget_curve`` query in ``requests`` per ``(platform,
        workload, step)`` partition and resolves each union through one
        :meth:`~repro.core.parallel.SweepEngine.host_subgrid` pass.
        Returns the number of partitions passed through the kernel.

        Skipped entirely (returns 0) when a fault plan is armed — the
        deterministic fault schedule belongs to the per-query resolution
        path — or when the engine runs in ``adaptive`` mode, where the
        planner's own point selection (with warm-start hints) is the
        cheaper way to resolve each query.  Resolution errors here are
        deliberately swallowed: the per-query path reproduces them with
        proper per-reply classification.
        """
        if self._injector() is not None or self.engine.mode == "adaptive":
            return 0
        if not self.engine.batch:
            return 0
        groups: dict[tuple[str, str, float], dict[str, Any]] = {}
        for request in requests:
            if request.op not in ("sweep_best", "budget_curve"):
                continue
            try:
                workload, platform = _resolve_pair(
                    str(request.require("workload")), request.param("platform")
                )
                if workload.device != "cpu":
                    continue
                step_w = _float_param(request, "step_w", _DEFAULT_STEP_W)
                budgets = (
                    [_float_param(request, "budget_w")]
                    if request.op == "sweep_best"
                    else _budget_list(request)
                )
            except ReproError:
                continue  # the per-query resolution classifies this one
            group_key = (platform.name, workload.name, step_w)
            group = groups.setdefault(
                group_key,
                {
                    "platform": platform,
                    "workload": workload,
                    "step_w": step_w,
                    "proc": [],
                    "mem": [],
                    "seen": set(),
                },
            )
            for budget in budgets:
                if budget in group["seen"]:
                    continue
                group["seen"].add(budget)
                try:
                    proc_w, mem_w = allocation_axis(
                        budget,
                        mem_min_w=_DEFAULT_MEM_MIN_W,
                        proc_min_w=_DEFAULT_PROC_MIN_W,
                        step_w=step_w,
                    )
                except ReproError:
                    continue
                group["proc"].extend(proc_w)
                group["mem"].extend(mem_w)
        passes = 0
        for group in groups.values():
            if not group["proc"]:
                continue
            platform = group["platform"]
            workload = group["workload"]
            try:
                executor = self.engine.host_subgrid(
                    platform.cpu,
                    platform.dram,
                    workload.phases,
                    group["proc"],
                    group["mem"],
                )
                executor.run(range(len(executor)))
                passes += 1
            except ReproError:
                continue
        return passes

    # ------------------------------------------------------------------
    # per-query resolution
    # ------------------------------------------------------------------
    def resolve(self, request: Request) -> Resolution:
        """Answer one query; never raises (errors become typed resolutions)."""
        if request.op not in QUERY_OPS:
            return Resolution(
                error=ProtocolError(f"op {request.op!r} is not a query operation")
            )
        try:
            result, report = self._dispatch(request)
        except ReproError as exc:
            return Resolution(error=exc)
        except Exception as exc:  # noqa: BLE001 - the server must answer
            return Resolution(error=exc)
        return Resolution(result=result, report=report)

    def _dispatch(
        self, request: Request
    ) -> tuple[dict[str, Any], DegradationReport | None]:
        workload, platform = _resolve_pair(
            str(request.require("workload")), request.param("platform")
        )
        if request.op == "profile":
            return self._op_profile(workload, platform)
        if request.op == "coord":
            return self._op_coord(request, workload, platform)
        if request.op == "sweep_best":
            return self._op_sweep_best(request, workload, platform)
        return self._op_budget_curve(request, workload, platform)

    # -- profile -------------------------------------------------------
    def _profile(
        self, workload: Workload, platform: Any
    ) -> tuple[CpuCriticalPowers | GpuCriticalPowers, DegradationReport]:
        """The resilient profile, memoized only when provably clean."""
        key = ("profile", workload.device, platform.name, workload.name)
        if self._injector() is None:
            hit, value = self._profiles.lookup(key)
            if hit:
                return value, DegradationReport()  # type: ignore[return-value]
        if workload.device == "cpu":
            critical, report = profile_cpu_resilient(
                platform.cpu, platform.dram, workload
            )
        else:
            critical, report = profile_gpu_resilient(platform, workload)
        if self._injector() is None and report.clean:
            self._profiles.store(key, critical)
        return critical, report

    def _op_profile(
        self, workload: Workload, platform: Any
    ) -> tuple[dict[str, Any], DegradationReport]:
        critical, report = self._profile(workload, platform)
        return (
            {
                "workload": workload.name,
                "platform": platform.name,
                "device": workload.device,
                "critical": critical.as_dict(),
            },
            report,
        )

    # -- coord ---------------------------------------------------------
    def _op_coord(
        self, request: Request, workload: Workload, platform: Any
    ) -> tuple[dict[str, Any], DegradationReport]:
        budget_w = _float_param(request, "budget_w")
        decision: CoordDecision
        if self._injector() is not None:
            # Armed: the resilient wrapper owns the repeat/vote schedule.
            if workload.device == "cpu":
                decision, report = coordinate_cpu_resilient(
                    platform.cpu, platform.dram, workload, budget_w
                )
            else:
                decision, report = coordinate_gpu_resilient(
                    platform, workload, budget_w
                )
        else:
            # Clean: COORD is pure arithmetic over the (memoized) profile,
            # so this is exactly the resilient wrapper's clean path.
            critical, report = self._profile(workload, platform)
            if workload.device == "cpu":
                assert isinstance(critical, CpuCriticalPowers)
                decision = coord_cpu(critical, budget_w)
            else:
                assert isinstance(critical, GpuCriticalPowers)
                decision = coord_gpu(
                    critical, budget_w, hardware_max_w=platform.max_cap_w
                )
        return (
            {  # repro-lint: disable=RPL004 -- wire snapshot of an already-validated CoordDecision allocation
                "workload": workload.name,
                "platform": platform.name,
                "budget_w": budget_w,
                "status": decision.status.value,
                "accepted": decision.accepted,
                "proc_w": decision.allocation.proc_w,
                "mem_w": decision.allocation.mem_w,
                "surplus_w": decision.surplus_w,
            },
            report,
        )

    # -- sweep_best ----------------------------------------------------
    def _op_sweep_best(
        self, request: Request, workload: Workload, platform: Any
    ) -> tuple[dict[str, Any], None]:
        budget_w = _float_param(request, "budget_w")
        if workload.device == "cpu":
            step_w = _float_param(request, "step_w", _DEFAULT_STEP_W)
            sweep: AllocationSweep | GpuSweep = sweep_cpu_allocations(
                platform.cpu,
                platform.dram,
                workload,
                budget_w,
                step_w=step_w,
                engine=self.engine,
            )
        else:
            stride = int(request.param("freq_stride", 1))
            sweep = sweep_gpu_allocations(
                platform, workload, budget_w, freq_stride=stride, engine=self.engine
            )
        best = sweep.best
        result: dict[str, Any] = {  # repro-lint: disable=RPL004 -- wire snapshot of the sweep's already-validated best allocation
            "workload": workload.name,
            "platform": platform.name,
            "budget_w": budget_w,
            "proc_w": best.allocation.proc_w,
            "mem_w": best.allocation.mem_w,
            "performance": best.performance,
            "metric_unit": workload.metric_unit,
            "scenario": best.scenario.roman,
            "actual_total_w": best.result.total_power_w,
            "n_points": len(sweep.points),
        }
        if isinstance(sweep, GpuSweep):
            result["mem_freq_mhz"] = float(
                sweep.mem_freqs_mhz[sweep.points.index(best)]
            )
        return result, None

    # -- budget_curve --------------------------------------------------
    def _op_budget_curve(
        self, request: Request, workload: Workload, platform: Any
    ) -> tuple[dict[str, Any], None]:
        budgets = _budget_list(request)
        curve: BudgetCurve
        if workload.device == "cpu":
            step_w = _float_param(request, "step_w", _DEFAULT_STEP_W)
            curve = cpu_budget_curve(
                platform.cpu,
                platform.dram,
                workload,
                budgets,
                step_w=step_w,
                engine=self.engine,
            )
        else:
            stride = int(request.param("freq_stride", 1))
            curve = gpu_budget_curve(
                platform, workload, budgets, freq_stride=stride, engine=self.engine
            )
        return (
            {
                "workload": workload.name,
                "platform": platform.name,
                "metric_unit": curve.metric_unit,
                "budgets_w": [float(b) for b in curve.budgets_w],
                "perf_max": [float(p) for p in curve.perf_max],
                "optimal_mem_w": [float(m) for m in curve.optimal_mem_w],
                "saturation_budget_w": curve.saturation_budget_w,
            },
            None,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict[str, Any]:
        """Engine + service-tier counters, JSON-ready."""
        profiles = self._profiles.stats
        return {
            "engine": self.engine.stats_snapshot(),
            "profiles": {
                "hits": profiles.hits,
                "misses": profiles.misses,
                "size": profiles.size,
                "hit_ratio": profiles.hit_ratio,
            },
        }
