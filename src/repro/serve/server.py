"""The coordination daemon: asyncio TCP front-end over the batcher.

One process, one shared :class:`~repro.core.parallel.SweepEngine`, any
number of clients.  Each connection is read line-by-line; every query
frame becomes its own task that rides the micro-batcher, so replies on
a connection may arrive out of request order (clients match on ``id``).
Control frames (``ping``/``stats``/``shutdown``) are answered inline —
they must stay responsive even while heavy flushes are resolving.

Nothing here ever lets one request kill the process: protocol
violations are answered with ``ok: false`` envelopes, library errors
are typed into the error family, and an armed fault plan degrades
individual replies (flagged in the envelope) while the listener keeps
accepting connections.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import sys
import time
from dataclasses import dataclass
from typing import Any, TextIO

from repro.core.parallel import SweepEngine
from repro.errors import ProtocolError, ServeError
from repro.serve.batching import MicroBatcher
from repro.serve.protocol import (
    CONTROL_OPS,
    PROTOCOL_VERSION,
    Request,
    decode_request,
    encode_frame,
    error_payload,
    response_envelope,
)
from repro.serve.service import CoordinationService

__all__ = ["ServeConfig", "CoordServer", "run_server", "run_smoke"]

#: Environment knobs, all overridable by CLI flags.
ENV_HOST = "REPRO_SERVE_HOST"
ENV_PORT = "REPRO_SERVE_PORT"
ENV_MAX_BATCH = "REPRO_SERVE_MAX_BATCH"
ENV_MAX_WAIT_US = "REPRO_SERVE_MAX_WAIT_US"
ENV_STATS_INTERVAL = "REPRO_SERVE_STATS_INTERVAL"
ENV_RESOLVERS = "REPRO_SERVE_RESOLVERS"


def _env_int(name: str, fallback: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return fallback
    try:
        return int(raw)
    except ValueError:
        raise ServeError(f"{name} must be an integer, got {raw!r}") from None


def _env_float(name: str, fallback: float) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return fallback
    try:
        return float(raw)
    except ValueError:
        raise ServeError(f"{name} must be a number, got {raw!r}") from None


@dataclass(frozen=True)
class ServeConfig:
    """Resolved server configuration (flags > environment > defaults)."""

    host: str = "127.0.0.1"
    port: int = 7077
    max_batch: int = 32
    max_wait_us: int = 2000
    stats_interval_s: float = 0.0
    n_resolvers: int = 1

    @classmethod
    def from_env(cls) -> "ServeConfig":
        """Defaults with every ``REPRO_SERVE_*`` override applied."""
        return cls(
            host=os.environ.get(ENV_HOST, cls.host) or cls.host,
            port=_env_int(ENV_PORT, cls.port),
            max_batch=_env_int(ENV_MAX_BATCH, cls.max_batch),
            max_wait_us=_env_int(ENV_MAX_WAIT_US, cls.max_wait_us),
            stats_interval_s=_env_float(ENV_STATS_INTERVAL, cls.stats_interval_s),
            n_resolvers=_env_int(ENV_RESOLVERS, cls.n_resolvers),
        )


class CoordServer:
    """One listening socket fronting one warm engine stack."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        engine: SweepEngine | None = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.service = CoordinationService(engine)
        self.batcher = MicroBatcher(
            self.service,
            max_batch=self.config.max_batch,
            max_wait_us=self.config.max_wait_us,
            n_resolvers=self.config.n_resolvers,
        )
        self.started_at = time.monotonic()
        self.connections_total = 0
        self.frames_total = 0
        self.protocol_errors = 0
        self._server: asyncio.Server | None = None
        self._stats_task: asyncio.Task[None] | None = None
        self._frame_tasks: set[asyncio.Task[None]] = set()
        self._conn_tasks: set[asyncio.Task[None]] = set()
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``.

        Port 0 binds an ephemeral port — the return value is the real
        one, which is what the tests and the smoke harness use.
        """
        if self._server is not None:
            raise ServeError("server is already started")
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        sockets = self._server.sockets
        host, port = sockets[0].getsockname()[:2]
        if self.config.stats_interval_s > 0:
            self._stats_task = asyncio.get_running_loop().create_task(
                self._stats_loop(self.config.stats_interval_s)
            )
        return str(host), int(port)

    async def stop(self) -> None:
        """Stop listening, drain in-flight work, release the executor."""
        if self._stats_task is not None:
            self._stats_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._stats_task
            self._stats_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        while self._frame_tasks:
            await asyncio.gather(*tuple(self._frame_tasks), return_exceptions=True)
        # Idle connections sit in readline() forever; reap them so loop
        # teardown never cancels a handler mid-close.
        for task in tuple(self._conn_tasks):
            task.cancel()
        while self._conn_tasks:
            await asyncio.gather(*tuple(self._conn_tasks), return_exceptions=True)
        await self.batcher.aclose()
        self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` frame arrives, then stop cleanly."""
        await self._shutdown.wait()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self.connections_total += 1
        # Replies from concurrent frame tasks interleave on one socket;
        # the lock keeps each frame's bytes contiguous.
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self.frames_total += 1
                frame_task = asyncio.get_running_loop().create_task(
                    self._handle_frame(line, writer, write_lock)
                )
                self._frame_tasks.add(frame_task)
                frame_task.add_done_callback(self._frame_tasks.discard)
        except asyncio.CancelledError:
            # Only stop() cancels connection tasks (reaping an idle
            # readline); finish normally so the streams protocol's
            # done-callback never trips over a cancelled task.
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                try:
                    await writer.wait_closed()
                except asyncio.CancelledError:
                    pass  # reaped at shutdown while the FIN was in flight

    async def _handle_frame(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            self.protocol_errors += 1
            await self._send(
                writer,
                write_lock,
                response_envelope(None, None, error=error_payload(exc)),
            )
            return
        if request.op in CONTROL_OPS:
            payload = self._control(request)
        else:
            resolution, served = await self.batcher.submit(request)
            if resolution.ok:
                payload = response_envelope(
                    request.id,
                    request.op,
                    result=resolution.result,
                    served=served,
                    degraded=resolution.degraded,
                    events=resolution.events,
                )
            else:
                payload = response_envelope(
                    request.id,
                    request.op,
                    error=resolution.error_dict(),
                    served=served,
                    degraded=resolution.degraded,
                    events=resolution.events,
                )
        await self._send(writer, write_lock, payload)
        if request.op == "shutdown":
            # Reply first, then tear the whole server down.
            asyncio.get_running_loop().create_task(self.stop())

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        payload: dict[str, Any],
    ) -> None:
        frame = encode_frame(payload)
        async with write_lock:
            try:
                writer.write(frame)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, RuntimeError):
                pass  # client went away mid-reply; nothing to salvage

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def _control(self, request: Request) -> dict[str, Any]:
        if request.op == "ping":
            result: dict[str, Any] = {
                "protocol": PROTOCOL_VERSION,
                "uptime_s": time.monotonic() - self.started_at,
            }
        elif request.op == "stats":
            result = self.stats_payload()
        else:  # shutdown
            result = {"stopping": True}
        return response_envelope(request.id, request.op, result=result)

    def stats_payload(self) -> dict[str, Any]:
        """One structured snapshot across every tier of the stack."""
        payload = self.service.stats_snapshot()
        payload["batcher"] = self.batcher.stats.to_dict()
        payload["server"] = {
            "uptime_s": time.monotonic() - self.started_at,
            "connections_total": self.connections_total,
            "frames_total": self.frames_total,
            "protocol_errors": self.protocol_errors,
            "faults_armed": self.service.faults_armed(),
        }
        return payload

    async def _stats_loop(self, interval_s: float) -> None:
        while True:
            await asyncio.sleep(interval_s)
            self.log_stats_line()

    def log_stats_line(self, stream: TextIO | None = None) -> None:
        """One human-grade stats line (the ``--stats-interval`` heartbeat)."""
        snapshot = self.stats_payload()
        cache = snapshot["engine"]["cache"]
        planner = snapshot["engine"]["planner"]
        batcher = snapshot["batcher"]
        profiles = snapshot["profiles"]
        print(
            "[serve] "
            f"frames={self.frames_total} "
            f"memo_hit={cache['hit_ratio']:.2f} "
            f"disk_hit={cache['disk_hit_ratio']:.2f} "
            f"profile_hit={profiles['hit_ratio']:.2f} "
            f"planner_saved={planner['savings_ratio']:.2f} "
            f"occupancy={batcher['mean_occupancy']:.1f} "
            f"dedup={batcher['dedup_ratio']:.2f}",
            file=stream if stream is not None else sys.stderr,
            flush=True,
        )


async def _amain(config: ServeConfig, engine: SweepEngine | None) -> None:
    server = CoordServer(config, engine=engine)
    host, port = await server.start()
    print(f"repro serve: listening on {host}:{port}", flush=True)
    try:
        await server.serve_until_shutdown()
    finally:
        await server.stop()


def run_server(config: ServeConfig, *, engine: SweepEngine | None = None) -> None:
    """Blocking entry point: serve until a ``shutdown`` frame (or Ctrl-C)."""
    try:
        asyncio.run(_amain(config, engine))
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down", flush=True)


# ----------------------------------------------------------------------
# smoke harness (``repro serve --smoke`` / ``make serve-smoke``)
# ----------------------------------------------------------------------

_SMOKE_QUERIES: tuple[tuple[str, dict[str, Any]], ...] = (
    ("coord", {"workload": "dgemm", "budget_w": 180.0}),
    ("coord", {"workload": "stream", "budget_w": 160.0}),
    ("profile", {"workload": "dgemm"}),
    ("sweep_best", {"workload": "dgemm", "budget_w": 180.0}),
    ("sweep_best", {"workload": "stream", "budget_w": 200.0}),
    ("budget_curve", {"workload": "dgemm", "budgets_w": [144.0, 176.0, 208.0]}),
    ("coord", {"workload": "sgemm", "budget_w": 200.0}),
    ("sweep_best", {"workload": "gpu-stream", "budget_w": 200.0}),
)


async def _smoke(config: ServeConfig, n_clients: int) -> dict[str, Any]:
    from repro.serve.client import ServeClient
    from repro.serve.service import CoordinationService

    server = CoordServer(config)
    host, port = await server.start()

    async def one_client(index: int) -> list[dict[str, Any]]:
        async with await ServeClient.connect(host, port) as client:
            op, params = _SMOKE_QUERIES[index % len(_SMOKE_QUERIES)]
            replies = [await client.request("ping")]
            replies.append(await client.request(op, params))
            return replies

    burst = await asyncio.gather(*(one_client(i) for i in range(n_clients)))
    replies = [reply for per_client in burst for reply in per_client]
    bad = [r for r in replies if not r.get("ok")]
    degraded = sum(1 for r in replies if r.get("degraded"))

    # Bit-identity spot check against a direct library call on a cold
    # engine — the served envelope must carry the exact same numbers.
    from repro.serve.protocol import Request

    spot_op, spot_params = _SMOKE_QUERIES[0]
    direct = CoordinationService(SweepEngine())
    want = direct.resolve(Request(id=None, op=spot_op, params=spot_params)).result
    async with await ServeClient.connect(host, port) as client:
        got = (await client.request(spot_op, spot_params)).get("result")
    identical = got == want

    async with await ServeClient.connect(host, port) as client:
        stats = (await client.request("stats"))["result"]
        await client.request("shutdown")
    await server.serve_until_shutdown()
    return {
        "replies": len(replies),
        "failed": len(bad),
        "degraded": degraded,
        "identical": identical,
        "mean_occupancy": stats["batcher"]["mean_occupancy"],
        "faults_armed": stats["server"]["faults_armed"],
    }


def run_smoke(config: ServeConfig, *, n_clients: int = 24) -> None:
    """Start a server, drive a concurrent burst over TCP, shut down clean.

    Raises :class:`ServeError` on any failed reply or identity drift, so
    the CI target fails loudly.  Under an armed fault plan, degraded
    replies are expected and reported, not fatal — that is the contract.
    """
    outcome = asyncio.run(_smoke(config, n_clients))
    print(
        "repro serve --smoke: "
        f"{outcome['replies']} replies, {outcome['failed']} failed, "
        f"{outcome['degraded']} degraded, "
        f"identical={outcome['identical']}, "
        f"occupancy={outcome['mean_occupancy']:.1f}, "
        f"faults_armed={outcome['faults_armed']}",
        flush=True,
    )
    if outcome["failed"]:
        raise ServeError(f"smoke burst had {outcome['failed']} failed replies")
    if not outcome["identical"] and not outcome["faults_armed"]:
        raise ServeError("served answer drifted from the direct library call")
