"""Dynamic power rebalancing scheduler."""

import pytest

from repro.hardware.platforms import ivybridge_node
from repro.sched import Cluster, Job
from repro.sched.rebalance import RebalancingScheduler
from repro.sched.scheduler import PowerBoundedScheduler
from repro.workloads import cpu_workload


def make_cluster(n_nodes=2, bound=400.0):
    return Cluster(node_factory=ivybridge_node, n_nodes=n_nodes, global_bound_w=bound)


def starved_pair():
    """Two jobs on two nodes under power for ~1.5 jobs: the second runs
    throttled until the first completes and frees its share."""
    jobs = [
        Job(0, cpu_workload("stream").scaled(0.3), 220.0, submit_time_s=0.0),
        Job(1, cpu_workload("dgemm"), 240.0, submit_time_s=0.0),
    ]
    return jobs


class TestRebalancing:
    def test_boost_happens_when_power_frees(self):
        sched = RebalancingScheduler(make_cluster(bound=330.0))
        for job in starved_pair():
            sched.submit(job)
        stats = sched.run()
        assert stats.n_completed == 2
        assert stats.n_boosts >= 1
        assert stats.boosted_w_total > 0
        boosted = sched.records[1]
        assert any("boosted" in line for line in boosted.events)

    def test_boost_speeds_up_the_survivor(self):
        jobs = starved_pair()
        base = PowerBoundedScheduler(make_cluster(bound=330.0))
        for job in jobs:
            base.submit(job)
        base_stats = base.run()

        dyn = RebalancingScheduler(make_cluster(bound=330.0))
        for job in starved_pair():
            dyn.submit(job)
        dyn_stats = dyn.run()
        # The boosted run finishes the queue strictly earlier.
        assert dyn_stats.makespan_s < base_stats.makespan_s - 1e-6

    def test_bound_respected_through_boosts(self):
        sched = RebalancingScheduler(make_cluster(n_nodes=3, bound=500.0))
        for i, name in enumerate(("stream", "dgemm", "mg", "sra")):
            sched.submit(Job(i, cpu_workload(name), 240.0, submit_time_s=float(i)))
        stats = sched.run()
        assert stats.peak_charged_w <= 500.0 + 1e-9
        assert stats.n_completed == 4

    def test_no_boost_when_grants_already_max(self):
        # Ample global bound: every job gets its full demand at admission;
        # completions free power nobody can use.
        sched = RebalancingScheduler(make_cluster(bound=1000.0))
        sched.submit(Job(0, cpu_workload("stream"), 300.0))
        sched.submit(Job(1, cpu_workload("sra"), 300.0))
        stats = sched.run()
        assert stats.n_boosts == 0

    def test_grant_never_exceeds_demand(self):
        sched = RebalancingScheduler(make_cluster(bound=330.0))
        for job in starved_pair():
            sched.submit(job)
        sched.run()
        for record in sched.records.values():
            critical = sched._profile_cache[record.job.workload.name]
            assert record.granted_budget_w <= critical.max_demand_w + 1e-6

    def test_stats_type_and_fields(self):
        sched = RebalancingScheduler(make_cluster(bound=330.0))
        for job in starved_pair():
            sched.submit(job)
        stats = sched.run()
        assert hasattr(stats, "n_boosts")
        assert stats.throughput_jobs_per_hour > 0

    def test_matches_base_scheduler_semantics_otherwise(self):
        # With nothing to boost, rebalancing degenerates to the base FCFS.
        jobs = [
            Job(0, cpu_workload("stream"), 300.0),
            Job(1, cpu_workload("mg"), 300.0, submit_time_s=1.0),
        ]
        base = PowerBoundedScheduler(make_cluster(bound=1000.0))
        dyn = RebalancingScheduler(make_cluster(bound=1000.0))
        for sched in (base, dyn):
            for job in jobs:
                sched.submit(
                    Job(job.job_id, job.workload, job.requested_budget_w,
                        job.submit_time_s)
                )
        s1, s2 = base.run(), dyn.run()
        assert s1.makespan_s == pytest.approx(s2.makespan_s)
        assert s1.n_completed == s2.n_completed
