"""Differential battery for the coordination server (``repro.serve``).

The server's whole contract is "the wire adds nothing": every served
answer must be bit-identical to the direct library call, whatever the
batching, dedup, or fault weather.  This module locks that contract
stage by stage — the protocol codec, config resolution, the coalescer's
flush triggers and dedup accounting, served-vs-library identity over
real TCP (full and adaptive engines, CPU and GPU ops), the control
plane, and the chaos pass: an armed fault plan may degrade individual
replies (flagged in the envelope) but never kills the server and never
silently changes an answer.
"""

from __future__ import annotations

import asyncio
import io

import pytest

from repro.core.coord import coord_cpu
from repro.core.parallel import SweepEngine
from repro.core.sweep import (
    cpu_budget_curve,
    sweep_cpu_allocations,
    sweep_gpu_allocations,
)
from repro.errors import ProtocolError, ReproError, ServeError
from repro.faults.injector import use_faults
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.resilience import profile_cpu_resilient
from repro.hardware.platforms import get_platform
from repro.serve.batching import MicroBatcher
from repro.serve.client import ServeClient, request_sync
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    Request,
    canonical_key,
    decode_request,
    decode_response,
    encode_frame,
    error_payload,
    response_envelope,
)
from repro.serve.server import (
    ENV_MAX_BATCH,
    ENV_MAX_WAIT_US,
    ENV_PORT,
    ENV_RESOLVERS,
    CoordServer,
    ServeConfig,
    run_smoke,
)
from repro.serve.service import CoordinationService
from repro.workloads import get_workload

# Small grids keep the battery fast; identity does not care about scale.
STEP_W = 8.0
CHAOS_PLAN = FaultPlan(
    seed=11,
    specs=(
        FaultSpec(site="rapl.read", kind=FaultKind.DROPOUT, probability=0.35),
    ),
)


def serve(coro_fn, *, config: ServeConfig | None = None, engine=None):
    """Start a server, run ``await coro_fn(server, host, port)``, stop it.

    Returns ``(server, value)`` so tests can inspect post-run counters.
    """

    async def main():
        server = CoordServer(config or ServeConfig(port=0), engine=engine)
        host, port = await server.start()
        try:
            value = await coro_fn(server, host, port)
        finally:
            await server.stop()
        return server, value

    return asyncio.run(main())


def run_batched(requests, *, max_batch, max_wait_us, engine=None):
    """Submit ``requests`` concurrently through one MicroBatcher."""

    async def main():
        service = CoordinationService(engine)
        batcher = MicroBatcher(
            service, max_batch=max_batch, max_wait_us=max_wait_us
        )
        try:
            outs = await asyncio.gather(*(batcher.submit(r) for r in requests))
        finally:
            await batcher.aclose()
        return outs, batcher.stats

    return asyncio.run(main())


def q(op: str, index: int = 0, **params) -> Request:
    return Request(id=index, op=op, params=params)


# ---------------------------------------------------------------------------
# protocol codec
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_canonical_key_normalizes_param_order(self):
        a = canonical_key("coord", {"workload": "dgemm", "budget_w": 180.0})
        b = canonical_key("coord", {"budget_w": 180.0, "workload": "dgemm"})
        assert a == b

    def test_canonical_key_separates_ops_params_and_ignores_id(self):
        base = canonical_key("coord", {"budget_w": 180.0})
        assert canonical_key("sweep_best", {"budget_w": 180.0}) != base
        assert canonical_key("coord", {"budget_w": 181.0}) != base
        # id never participates: it is not even an argument.
        assert "id" not in base

    @pytest.mark.parametrize(
        "frame, match",
        [
            (b"not json\n", "not valid JSON"),
            (b"[1, 2]\n", "must be a JSON object"),
            (b"{}\n", "missing the 'op'"),
            (b'{"op": 5}\n', "missing the 'op'"),
            (b'{"op": "frobnicate"}\n', "unknown op"),
            (b'{"op": "coord", "params": [1]}\n', "'params' must be"),
            (b"\xff\xfe\n", "not valid UTF-8"),
        ],
    )
    def test_decode_request_rejects_malformed(self, frame, match):
        with pytest.raises(ProtocolError, match=match):
            decode_request(frame)

    def test_decode_request_defaults(self):
        request = decode_request(b'{"op": "ping"}')
        assert request.id is None
        assert request.op == "ping"
        assert dict(request.params) == {}

    def test_request_require_names_the_missing_parameter(self):
        request = q("coord", workload="dgemm")
        assert request.param("budget_w", 100.0) == 100.0
        with pytest.raises(ProtocolError, match="requires parameter 'budget_w'"):
            request.require("budget_w")

    def test_envelope_roundtrips_exactly(self):
        payload = response_envelope("7", "coord", result={"proc_w": 104.5})
        assert decode_response(encode_frame(payload)) == payload

    def test_envelope_requires_exactly_one_of_result_and_error(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            response_envelope(1, "coord")
        with pytest.raises(ProtocolError, match="exactly one"):
            response_envelope(1, "coord", result={}, error={"type": "X"})

    def test_error_payload_families(self):
        assert error_payload(ReproError("x"))["family"] == "repro"
        assert error_payload(ValueError("x"))["family"] == "internal"


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------

class TestServeConfig:
    def test_defaults(self, monkeypatch):
        for name in (ENV_PORT, ENV_MAX_BATCH, ENV_MAX_WAIT_US, ENV_RESOLVERS):
            monkeypatch.delenv(name, raising=False)
        config = ServeConfig.from_env()
        assert config == ServeConfig()
        assert config.max_batch == 32

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(ENV_PORT, "0")
        monkeypatch.setenv(ENV_MAX_BATCH, "64")
        monkeypatch.setenv(ENV_MAX_WAIT_US, "500")
        monkeypatch.setenv(ENV_RESOLVERS, "2")
        config = ServeConfig.from_env()
        assert (config.port, config.max_batch) == (0, 64)
        assert (config.max_wait_us, config.n_resolvers) == (500, 2)

    def test_bad_env_value_is_a_typed_error(self, monkeypatch):
        monkeypatch.setenv(ENV_MAX_BATCH, "many")
        with pytest.raises(ServeError, match=ENV_MAX_BATCH):
            ServeConfig.from_env()

    @pytest.mark.parametrize(
        "kwargs", [{"max_batch": 0}, {"max_wait_us": -1}, {"n_resolvers": 0}]
    )
    def test_batcher_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ServeError):
            MicroBatcher(CoordinationService(), **kwargs)


# ---------------------------------------------------------------------------
# the coalescer: flush triggers, dedup, prefetch
# ---------------------------------------------------------------------------

class TestMicroBatcher:
    def test_flush_on_depth(self):
        requests = [
            q("coord", i, workload="dgemm", budget_w=150.0 + 10.0 * i)
            for i in range(3)
        ]
        # Wait is effectively infinite: only depth can trigger the flush.
        outs, stats = run_batched(requests, max_batch=3, max_wait_us=10**7)
        assert all(resolution.ok for resolution, _ in outs)
        assert stats.flushes_depth == 1 and stats.flushes_timeout == 0
        assert {served.flush for _, served in outs} == {"depth"}
        assert {served.batch_size for _, served in outs} == {3}

    def test_flush_on_timeout(self):
        requests = [
            q("coord", i, workload="dgemm", budget_w=150.0 + 10.0 * i)
            for i in range(3)
        ]
        # Depth is out of reach: only the timer can trigger the flush.
        outs, stats = run_batched(requests, max_batch=100, max_wait_us=1000)
        assert all(resolution.ok for resolution, _ in outs)
        assert stats.flushes_timeout == 1 and stats.flushes_depth == 0
        assert {served.flush for _, served in outs} == {"timeout"}

    def test_identical_inflight_queries_share_one_resolution(self):
        requests = [
            q("budget_curve", i, workload="dgemm",
              budgets_w=[120.0, 160.0], step_w=STEP_W)
            for i in range(4)
        ]
        outs, stats = run_batched(requests, max_batch=4, max_wait_us=10**7)
        assert [served.deduped for _, served in outs] == [
            False, True, True, True,
        ]
        assert {served.n_unique for _, served in outs} == {1}
        # Twins share the resolution object itself, not a copy.
        assert all(resolution is outs[0][0] for resolution, _ in outs)
        assert stats.deduped == 3 and stats.resolved == 4
        assert stats.dedup_ratio == pytest.approx(0.75)

    def test_distinct_queries_are_not_deduped(self):
        requests = [
            q("coord", 0, workload="dgemm", budget_w=150.0),
            q("coord", 1, workload="dgemm", budget_w=170.0),
        ]
        outs, stats = run_batched(requests, max_batch=2, max_wait_us=10**7)
        assert [served.deduped for _, served in outs] == [False, False]
        assert {served.n_unique for _, served in outs} == {2}
        assert stats.deduped == 0

    def test_coalesced_flush_prefetches_one_union_pass(self):
        # Two budgets of one workload on one step grid: one partition,
        # one host_subgrid kernel pass priming both queries.
        requests = [
            q("sweep_best", 0, workload="dgemm", budget_w=120.0, step_w=STEP_W),
            q("sweep_best", 1, workload="dgemm", budget_w=140.0, step_w=STEP_W),
        ]
        engine = SweepEngine(mode="full")
        outs, stats = run_batched(
            requests, max_batch=2, max_wait_us=10**7, engine=engine
        )
        assert stats.prefetch_passes == 1
        node = get_platform("ivybridge")
        workload = get_workload("dgemm")
        for (resolution, _), budget in zip(outs, (120.0, 140.0)):
            sweep = sweep_cpu_allocations(
                node.cpu, node.dram, workload, budget, step_w=STEP_W
            )
            assert resolution.ok
            assert resolution.result["proc_w"] == sweep.best.allocation.proc_w
            assert resolution.result["mem_w"] == sweep.best.allocation.mem_w
            assert resolution.result["performance"] == sweep.best.performance

    def test_singleton_flush_skips_the_union_pass(self):
        requests = [q("sweep_best", 0, workload="dgemm", budget_w=120.0,
                      step_w=STEP_W)]
        outs, stats = run_batched(
            requests, max_batch=1, max_wait_us=10**7,
            engine=SweepEngine(mode="full"),
        )
        assert outs[0][0].ok
        assert stats.prefetch_passes == 0

    def test_prefetch_is_skipped_in_adaptive_mode(self):
        service = CoordinationService(SweepEngine(mode="adaptive"))
        requests = [
            q("sweep_best", 0, workload="dgemm", budget_w=120.0, step_w=STEP_W),
            q("sweep_best", 1, workload="dgemm", budget_w=140.0, step_w=STEP_W),
        ]
        assert service.prefetch(requests) == 0

    def test_prefetch_is_skipped_while_faults_are_armed(self):
        service = CoordinationService(
            SweepEngine(mode="full", faults=CHAOS_PLAN)
        )
        assert service.faults_armed()
        requests = [
            q("sweep_best", 0, workload="dgemm", budget_w=120.0, step_w=STEP_W),
            q("sweep_best", 1, workload="dgemm", budget_w=140.0, step_w=STEP_W),
        ]
        assert service.prefetch(requests) == 0

    def test_use_faults_context_arms_an_engineless_service(self):
        service = CoordinationService()
        assert not service.faults_armed()
        with use_faults(CHAOS_PLAN):
            assert service.faults_armed()
        assert not service.faults_armed()


# ---------------------------------------------------------------------------
# served-vs-library identity over real TCP
# ---------------------------------------------------------------------------

class TestServedIdentity:
    def _expected_answers(self) -> list[tuple[str, dict, dict]]:
        """(op, params, expected-result) for every query op, from the
        direct library entry points — not from CoordinationService."""
        node = get_platform("ivybridge")
        dgemm = get_workload("dgemm")
        stream = get_workload("stream")
        critical, _ = profile_cpu_resilient(node.cpu, node.dram, dgemm)
        decision = coord_cpu(critical, 180.0)
        sweep = sweep_cpu_allocations(
            node.cpu, node.dram, dgemm, 150.0, step_w=STEP_W
        )
        curve = cpu_budget_curve(
            node.cpu, node.dram, stream, [120.0, 160.0], step_w=STEP_W
        )
        return [
            (
                "profile",
                {"workload": "dgemm"},
                {
                    "workload": dgemm.name,
                    "platform": node.name,
                    "device": "cpu",
                    "critical": critical.as_dict(),
                },
            ),
            (
                "coord",
                {"workload": "dgemm", "budget_w": 180.0},
                {
                    "workload": dgemm.name,
                    "platform": node.name,
                    "budget_w": 180.0,
                    "status": decision.status.value,
                    "accepted": decision.accepted,
                    "proc_w": decision.allocation.proc_w,
                    "mem_w": decision.allocation.mem_w,
                    "surplus_w": decision.surplus_w,
                },
            ),
            (
                "sweep_best",
                {"workload": "dgemm", "budget_w": 150.0, "step_w": STEP_W},
                {
                    "workload": dgemm.name,
                    "platform": node.name,
                    "budget_w": 150.0,
                    "proc_w": sweep.best.allocation.proc_w,
                    "mem_w": sweep.best.allocation.mem_w,
                    "performance": sweep.best.performance,
                    "metric_unit": dgemm.metric_unit,
                    "scenario": sweep.best.scenario.roman,
                    "actual_total_w": sweep.best.result.total_power_w,
                    "n_points": len(sweep.points),
                },
            ),
            (
                "budget_curve",
                {"workload": "stream", "budgets_w": [120.0, 160.0],
                 "step_w": STEP_W},
                {
                    "workload": stream.name,
                    "platform": node.name,
                    "metric_unit": curve.metric_unit,
                    "budgets_w": [float(b) for b in curve.budgets_w],
                    "perf_max": [float(p) for p in curve.perf_max],
                    "optimal_mem_w": [float(m) for m in curve.optimal_mem_w],
                    "saturation_budget_w": curve.saturation_budget_w,
                },
            ),
        ]

    def test_every_op_is_bit_identical_to_the_library(self):
        cases = self._expected_answers()

        async def drive(server, host, port):
            async with await ServeClient.connect(host, port) as client:
                return [await client.request(op, params) for op, params, _ in cases]

        _, replies = serve(drive)
        for (op, _, expected), reply in zip(cases, replies):
            assert reply["ok"], (op, reply)
            assert not reply["degraded"]
            assert reply["events"] == []
            # Full structural equality: every field, every float bit.
            assert reply["result"] == expected, op

    def test_identity_holds_with_an_adaptive_engine(self):
        # The adaptive planner selects its own points but is bit-identical
        # to the full sweep by contract — serving through it must be too.
        cases = [c for c in self._expected_answers() if c[0] != "profile"]

        async def drive(server, host, port):
            async with await ServeClient.connect(host, port) as client:
                return [await client.request(op, params) for op, params, _ in cases]

        _, replies = serve(drive, engine=SweepEngine(mode="adaptive"))
        for (op, _, expected), reply in zip(cases, replies):
            assert reply["ok"], (op, reply)
            assert reply["result"] == expected, op

    def test_gpu_sweep_identity(self):
        card = get_platform("titan-xp")
        workload = get_workload("gpu-stream")
        sweep = sweep_gpu_allocations(card, workload, 200.0, freq_stride=1)
        best = sweep.best

        async def drive(server, host, port):
            async with await ServeClient.connect(host, port) as client:
                return await client.request(
                    "sweep_best", {"workload": "gpu-stream", "budget_w": 200.0}
                )

        _, reply = serve(drive)
        assert reply["ok"], reply
        result = reply["result"]
        assert result["proc_w"] == best.allocation.proc_w
        assert result["mem_w"] == best.allocation.mem_w
        assert result["performance"] == best.performance
        assert result["mem_freq_mhz"] == float(
            sweep.mem_freqs_mhz[sweep.points.index(best)]
        )

    def test_concurrent_fan_in_served_from_one_resolution(self):
        params = {"workload": "dgemm", "budgets_w": [120.0, 160.0],
                  "step_w": STEP_W}

        async def drive(server, host, port):
            async def one_client():
                async with await ServeClient.connect(host, port) as client:
                    return await client.request("budget_curve", params)

            return await asyncio.gather(*(one_client() for _ in range(8)))

        config = ServeConfig(port=0, max_batch=8, max_wait_us=200_000)
        server, replies = serve(drive, config=config)
        assert all(reply["ok"] for reply in replies)
        first = replies[0]["result"]
        assert all(reply["result"] == first for reply in replies)
        assert server.batcher.stats.deduped > 0
        assert sum(reply["served"]["deduped"] for reply in replies) > 0


# ---------------------------------------------------------------------------
# control plane and wire robustness
# ---------------------------------------------------------------------------

class TestControlPlane:
    def test_ping_reports_the_protocol_version(self):
        async def drive(server, host, port):
            async with await ServeClient.connect(host, port) as client:
                return await client.request("ping")

        _, reply = serve(drive)
        assert reply["ok"]
        assert reply["result"]["protocol"] == PROTOCOL_VERSION
        assert reply["result"]["uptime_s"] >= 0.0

    def test_stats_query_snapshots_every_tier(self):
        async def drive(server, host, port):
            async with await ServeClient.connect(host, port) as client:
                await client.request(
                    "coord", {"workload": "dgemm", "budget_w": 180.0}
                )
                return await client.request("stats")

        _, reply = serve(drive)
        stats = reply["result"]
        assert {"engine", "profiles", "batcher", "server"} <= set(stats)
        assert {"cache", "planner"} <= set(stats["engine"])
        assert stats["batcher"]["submitted"] == 1
        assert stats["server"]["faults_armed"] is False
        assert stats["server"]["connections_total"] == 1

    def test_protocol_errors_are_answered_and_the_connection_survives(self):
        async def drive(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                bad = decode_response(await reader.readline())
                writer.write(encode_frame({"id": 1, "op": "ping"}))
                await writer.drain()
                good = decode_response(await reader.readline())
            finally:
                writer.close()
                await writer.wait_closed()
            return bad, good

        server, (bad, good) = serve(drive)
        assert bad["ok"] is False and bad["id"] is None
        assert bad["error"]["family"] == "repro"
        assert "not valid JSON" in bad["error"]["message"]
        assert good["ok"] is True  # same connection, still serving
        assert server.protocol_errors == 1

    def test_unknown_op_is_a_protocol_error(self):
        async def drive(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(encode_frame({"id": 1, "op": "frobnicate"}))
                await writer.drain()
                return decode_response(await reader.readline())
            finally:
                writer.close()
                await writer.wait_closed()

        _, reply = serve(drive)
        assert reply["ok"] is False
        assert "unknown op" in reply["error"]["message"]

    def test_query_errors_are_typed_not_fatal(self):
        async def drive(server, host, port):
            async with await ServeClient.connect(host, port) as client:
                missing = await client.request("coord", {"workload": "dgemm"})
                unknown = await client.request(
                    "coord", {"workload": "no-such-workload", "budget_w": 100.0}
                )
                alive = await client.request("ping")
            return missing, unknown, alive

        _, (missing, unknown, alive) = serve(drive)
        assert missing["ok"] is False
        assert missing["error"]["family"] == "repro"
        assert "budget_w" in missing["error"]["message"]
        assert unknown["ok"] is False
        assert unknown["error"]["family"] == "repro"
        assert alive["ok"] is True

    def test_shutdown_frame_stops_the_server(self):
        async def drive(server, host, port):
            async with await ServeClient.connect(host, port) as client:
                reply = await client.request("shutdown")
            await asyncio.wait_for(server.serve_until_shutdown(), timeout=10.0)
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)
            return reply

        _, reply = serve(drive)
        assert reply["ok"] and reply["result"] == {"stopping": True}

    def test_request_sync_round_trip(self):
        async def drive(server, host, port):
            return await asyncio.get_running_loop().run_in_executor(
                None, request_sync, host, port, "ping"
            )

        _, reply = serve(drive)
        assert reply["ok"] and reply["result"]["protocol"] == PROTOCOL_VERSION

    def test_stats_log_line_renders_every_ratio(self):
        stream = io.StringIO()
        CoordServer(ServeConfig(port=0)).log_stats_line(stream=stream)
        line = stream.getvalue()
        assert line.startswith("[serve] frames=0 ")
        for token in ("memo_hit=", "disk_hit=", "profile_hit=",
                      "planner_saved=", "occupancy=", "dedup="):
            assert token in line, token


# ---------------------------------------------------------------------------
# chaos: armed fault plans degrade replies, never the server
# ---------------------------------------------------------------------------

class TestChaos:
    # Saturating profiler noise: profiling can never certify a result, so
    # every profile-dependent query earns a deterministic typed refusal.
    NOISY_PROFILE_PLAN = FaultPlan(
        seed=13,
        specs=(
            FaultSpec(
                site="profiler.sample", kind=FaultKind.NOISE,
                probability=1.0, amplitude=0.5,
            ),
        ),
    )

    def test_armed_server_serves_classified_replies_and_survives(self):
        # Mixed burst under one armed plan: coord needs a profile, so it
        # must come back a typed repro-family error; sweep_best never
        # profiles, so it must come back clean.  Per-reply isolation —
        # and the server answers everything, including the stats frame.
        async def drive(server, host, port):
            async def one_client(op, params):
                async with await ServeClient.connect(host, port) as client:
                    return await client.request(op, params)

            queries = [
                ("coord", {"workload": "dgemm", "budget_w": 150.0 + 10.0 * i})
                for i in range(3)
            ] + [
                ("sweep_best",
                 {"workload": "dgemm", "budget_w": 150.0 + 10.0 * i,
                  "step_w": STEP_W})
                for i in range(3)
            ]
            replies = await asyncio.gather(
                *(one_client(op, params) for op, params in queries)
            )
            async with await ServeClient.connect(host, port) as client:
                stats = await client.request("stats")
            return replies, stats

        # Armed exactly the way `repro serve` under REPRO_FAULTS arms it:
        # the process-wide context, visible to the resolver threads.
        with use_faults(self.NOISY_PROFILE_PLAN):
            server, (replies, stats) = serve(drive)
        coord_replies, sweep_replies = replies[:3], replies[3:]
        for reply in coord_replies:
            assert reply["ok"] is False, reply
            assert reply["error"]["family"] == "repro", reply
            assert "Degraded" in reply["error"]["type"], reply
        for reply in sweep_replies:
            assert reply["ok"] is True, reply
            assert not reply["degraded"]
        assert stats["ok"]
        assert stats["result"]["server"]["faults_armed"] is True

    def test_armed_flushes_never_dedup(self):
        # Two clients asking the same question under faults may earn
        # different degradation outcomes: each request must consume its
        # own slice of the deterministic fault schedule.
        requests = [
            q("coord", i, workload="dgemm", budget_w=180.0) for i in range(4)
        ]
        outs, stats = run_batched(
            requests, max_batch=4, max_wait_us=10**7,
            engine=SweepEngine(faults=CHAOS_PLAN),
        )
        assert stats.deduped == 0
        assert [served.deduped for _, served in outs] == [False] * 4
        assert {served.n_unique for _, served in outs} == {4}


# ---------------------------------------------------------------------------
# smoke harness (what `repro serve --smoke` / `make serve-smoke` runs)
# ---------------------------------------------------------------------------

class TestSmokeHarness:
    def test_run_smoke_passes_clean(self, capsys):
        run_smoke(ServeConfig(port=0, max_batch=8), n_clients=6)
        out = capsys.readouterr().out
        assert "0 failed" in out
        assert "identical=True" in out
