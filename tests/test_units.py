"""Unit-validation helpers."""

import math

import pytest

from repro.errors import UnitError
from repro.util.units import (
    approx_equal,
    as_gbps,
    as_ghz,
    check_fraction,
    check_non_negative,
    check_positive,
    clamp,
    ghz_to_hz,
    hz_to_ghz,
    joules,
    watts,
    watts_close,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    def test_rejects_zero(self):
        with pytest.raises(UnitError, match="must be > 0"):
            check_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(UnitError):
            check_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(UnitError, match="finite"):
            check_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(UnitError, match="finite"):
            check_positive(float("inf"), "x")

    def test_error_names_the_quantity(self):
        with pytest.raises(UnitError, match="frequency"):
            check_positive(-3.0, "frequency")

    def test_coerces_int(self):
        out = check_positive(3, "x")
        assert isinstance(out, float) and out == 3.0


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(UnitError, match=">= 0"):
            check_non_negative(-0.1, "x")


class TestCheckFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_fraction(value, "x") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5.0])
    def test_rejects_outside(self, value):
        with pytest.raises(UnitError):
            check_fraction(value, "x")


class TestDomainAliases:
    def test_watts_validates(self):
        assert watts(30.0) == 30.0
        with pytest.raises(UnitError):
            watts(-1.0)

    def test_joules_validates(self):
        assert joules(1e6) == 1e6
        with pytest.raises(UnitError):
            joules(float("nan"))

    def test_as_ghz_requires_positive(self):
        assert as_ghz(1.2) == 1.2
        with pytest.raises(UnitError):
            as_ghz(0.0)

    def test_as_gbps_allows_zero(self):
        assert as_gbps(0.0) == 0.0


class TestConversions:
    def test_ghz_roundtrip(self):
        assert hz_to_ghz(ghz_to_hz(2.5)) == pytest.approx(2.5)

    def test_ghz_to_hz_scale(self):
        assert ghz_to_hz(1.0) == 1.0e9


class TestClamp:
    def test_inside(self):
        assert clamp(5.0, 0.0, 10.0) == 5.0

    def test_below(self):
        assert clamp(-5.0, 0.0, 10.0) == 0.0

    def test_above(self):
        assert clamp(15.0, 0.0, 10.0) == 10.0

    def test_inverted_interval_raises(self):
        with pytest.raises(UnitError, match="inverted"):
            clamp(1.0, 10.0, 0.0)

    def test_boundary_exact(self):
        assert clamp(10.0, 0.0, 10.0) == 10.0
        assert math.copysign(1.0, clamp(0.0, 0.0, 10.0)) == 1.0


class TestApproxEqual:
    def test_equal_values(self):
        assert approx_equal(1.0, 1.0)

    def test_accumulated_float_error(self):
        assert approx_equal(0.1 + 0.2, 0.3)

    def test_distinct_values(self):
        assert not approx_equal(100.0, 100.1)

    def test_zero_vs_tiny_uses_abs_tol(self):
        assert approx_equal(0.0, 1e-12)
        assert not approx_equal(0.0, 1e-6)

    def test_rel_tol_scales_with_magnitude(self):
        assert approx_equal(1e9, 1e9 + 0.5)
        assert not approx_equal(1e9, 1e9 + 10.0, rel_tol=1e-12, abs_tol=0.0)


class TestWattsClose:
    def test_within_default_microwatt(self):
        assert watts_close(112.0, 112.0 + 5e-7)

    def test_outside_default_tolerance(self):
        assert not watts_close(112.0, 112.001)

    def test_explicit_tolerance(self):
        assert watts_close(48.0, 48.4, tol_w=0.5)
        assert not watts_close(48.0, 48.6, tol_w=0.5)

    def test_symmetry(self):
        assert watts_close(10.0, 10.0000005) == watts_close(10.0000005, 10.0)
