"""Phase characterization validation and scaling."""

import pytest

from repro.errors import ConfigurationError, UnitError
from repro.perfmodel.phase import Phase, scale_phases, total_bytes, total_flops


def make_phase(**overrides):
    base = dict(
        name="p",
        flops=1e9,
        bytes_moved=1e10,
        activity=0.5,
        stall_activity=0.3,
        compute_efficiency=0.1,
        memory_efficiency=0.6,
    )
    base.update(overrides)
    return Phase(**base)


class TestValidation:
    def test_valid_phase(self):
        p = make_phase()
        assert p.intensity == pytest.approx(0.1)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_phase(name="")

    def test_no_work_rejected(self):
        with pytest.raises(ConfigurationError, match="no work"):
            make_phase(flops=0.0, bytes_moved=0.0)

    def test_flops_without_compute_efficiency_rejected(self):
        with pytest.raises(ConfigurationError, match="compute efficiency"):
            make_phase(compute_efficiency=0.0)

    def test_bytes_without_memory_efficiency_rejected(self):
        with pytest.raises(ConfigurationError, match="memory efficiency"):
            make_phase(memory_efficiency=0.0)

    def test_activity_bounds(self):
        with pytest.raises(UnitError):
            make_phase(activity=1.5)
        with pytest.raises(UnitError):
            make_phase(stall_activity=-0.1)

    def test_compute_only_phase_allowed(self):
        p = make_phase(bytes_moved=0.0, memory_efficiency=0.0)
        assert p.intensity == float("inf")

    def test_memory_only_phase_allowed(self):
        p = make_phase(flops=0.0, compute_efficiency=0.0)
        assert p.intensity == 0.0

    def test_default_stall_activity_zero(self):
        p = Phase(
            name="p", flops=1.0, bytes_moved=1.0, activity=0.5,
            compute_efficiency=0.1, memory_efficiency=0.5,
        )
        assert p.stall_activity == 0.0


class TestScaling:
    def test_scaled_preserves_intensity(self):
        p = make_phase()
        q = p.scaled(3.0)
        assert q.flops == pytest.approx(3e9)
        assert q.intensity == pytest.approx(p.intensity)
        assert q.activity == p.activity

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            make_phase().scaled(0.0)

    def test_scale_phases_and_totals(self):
        phases = (make_phase(), make_phase(name="q", flops=2e9))
        scaled = scale_phases(phases, 2.0)
        assert total_flops(scaled) == pytest.approx(2 * total_flops(phases))
        assert total_bytes(scaled) == pytest.approx(2 * total_bytes(phases))
