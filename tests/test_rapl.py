"""RAPL control plane: limits, MSR counters, running-average compliance."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PowerBoundError
from repro.hardware.rapl import (
    ENERGY_UNIT_J,
    MsrEnergyCounter,
    RaplDomainName,
    RaplInterface,
)


class TestMsrEnergyCounter:
    def test_starts_at_zero(self):
        assert MsrEnergyCounter().read_raw() == 0

    def test_accumulates_in_units(self):
        c = MsrEnergyCounter()
        c.accumulate(1.0)
        assert c.read_joules() == pytest.approx(1.0, abs=ENERGY_UNIT_J)

    def test_rejects_negative_energy(self):
        with pytest.raises(ConfigurationError):
            MsrEnergyCounter().accumulate(-1.0)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            MsrEnergyCounter().accumulate(float("nan"))

    def test_wraps_at_32_bits(self):
        c = MsrEnergyCounter()
        # 2^32 units of energy is 2^16 J; push just past the wrap.
        c.accumulate(2**16 - 1.0)
        before = c.read_raw()
        c.accumulate(2.0)
        after = c.read_raw()
        assert after < before  # wrapped

    def test_delta_handles_single_wrap(self):
        c = MsrEnergyCounter()
        c.accumulate(2**16 - 1.0)
        first = c.read_raw()
        c.accumulate(5.0)
        second = c.read_raw()
        delta = MsrEnergyCounter.delta_joules(first, second)
        assert delta == pytest.approx(5.0, abs=2 * ENERGY_UNIT_J)

    def test_delta_without_wrap(self):
        assert MsrEnergyCounter.delta_joules(100, 300) == pytest.approx(
            200 * ENERGY_UNIT_J
        )


class TestRaplInterface:
    def test_default_domains(self):
        rapl = RaplInterface()
        assert RaplDomainName.PACKAGE in rapl.domains()
        assert RaplDomainName.DRAM in rapl.domains()

    def test_needs_a_domain(self):
        with pytest.raises(ConfigurationError):
            RaplInterface(domains=())

    def test_set_and_read_limit(self):
        rapl = RaplInterface()
        rapl.set_power_limit(RaplDomainName.PACKAGE, 120.0, window_s=0.05)
        assert rapl.power_limit_w(RaplDomainName.PACKAGE) == 120.0

    def test_clear_limit(self):
        rapl = RaplInterface()
        rapl.set_power_limit(RaplDomainName.DRAM, 80.0)
        rapl.clear_power_limit(RaplDomainName.DRAM)
        assert rapl.power_limit_w(RaplDomainName.DRAM) is None

    def test_unknown_domain_rejected(self):
        rapl = RaplInterface()
        with pytest.raises(PowerBoundError):
            rapl.set_power_limit("gpu", 100.0)  # type: ignore[arg-type]

    def test_string_domain_coerces(self):
        rapl = RaplInterface()
        rapl.set_power_limit("package", 100.0)  # type: ignore[arg-type]
        assert rapl.power_limit_w(RaplDomainName.PACKAGE) == 100.0

    def test_energy_recording(self):
        rapl = RaplInterface()
        rapl.record_energy(RaplDomainName.PACKAGE, 50.0)
        assert rapl.read_energy_joules(RaplDomainName.PACKAGE) == pytest.approx(
            50.0, abs=ENERGY_UNIT_J
        )
        assert rapl.read_energy_raw(RaplDomainName.DRAM) == 0


class TestRunningAverage:
    def test_uncapped_domain_passes(self):
        rapl = RaplInterface()
        trace = np.full(100, 500.0)
        assert rapl.check_running_average(RaplDomainName.PACKAGE, trace, 0.01)

    def test_compliant_trace_passes(self):
        rapl = RaplInterface()
        rapl.set_power_limit(RaplDomainName.PACKAGE, 100.0, window_s=0.1)
        trace = np.full(100, 99.0)
        assert rapl.check_running_average(RaplDomainName.PACKAGE, trace, 0.01)

    def test_violating_trace_fails(self):
        rapl = RaplInterface()
        rapl.set_power_limit(RaplDomainName.PACKAGE, 100.0, window_s=0.1)
        trace = np.full(100, 120.0)
        assert not rapl.check_running_average(RaplDomainName.PACKAGE, trace, 0.01)

    def test_short_spike_within_window_average_passes(self):
        # A 1-sample spike is fine if the window average stays under.
        rapl = RaplInterface()
        rapl.set_power_limit(RaplDomainName.PACKAGE, 100.0, window_s=0.1)
        trace = np.full(100, 95.0)
        trace[50] = 130.0
        assert rapl.check_running_average(RaplDomainName.PACKAGE, trace, 0.01)

    def test_trace_shorter_than_window(self):
        rapl = RaplInterface()
        rapl.set_power_limit(RaplDomainName.PACKAGE, 100.0, window_s=10.0)
        assert rapl.check_running_average(
            RaplDomainName.PACKAGE, np.array([99.0, 101.0]), 0.01
        )

    def test_empty_trace_passes(self):
        rapl = RaplInterface()
        rapl.set_power_limit(RaplDomainName.PACKAGE, 100.0)
        assert rapl.check_running_average(RaplDomainName.PACKAGE, np.array([]), 0.01)
