"""Power allocations and allocation grids."""

import pytest

from repro.core.allocation import (
    PowerAllocation,
    allocation_grid,
    bounded_allocation,
)
from repro.errors import PowerBoundError, SweepError, UnitError


class TestPowerAllocation:
    def test_total(self):
        assert PowerAllocation(100.0, 50.0).total_w == 150.0

    def test_negative_rejected(self):
        with pytest.raises(UnitError):
            PowerAllocation(-1.0, 50.0)

    def test_within_budget(self):
        a = PowerAllocation(100.0, 50.0)
        assert a.within(150.0)
        assert a.within(160.0)
        assert not a.within(149.0)

    def test_shift_toward_memory(self):
        a = PowerAllocation(100.0, 50.0).shifted(24.0)
        assert a.proc_w == 76.0
        assert a.mem_w == 74.0
        assert a.total_w == 150.0

    def test_shift_toward_processor(self):
        a = PowerAllocation(100.0, 50.0).shifted(-24.0)
        assert a.proc_w == 124.0 and a.mem_w == 26.0

    def test_over_shift_rejected(self):
        with pytest.raises(UnitError):
            PowerAllocation(100.0, 50.0).shifted(-60.0)

    def test_str(self):
        assert "P_mem=50.0" in str(PowerAllocation(100.0, 50.0))


class TestAllocationGrid:
    def test_budget_preserved(self):
        grid = allocation_grid(200.0, mem_min_w=20.0, step_w=10.0)
        assert all(a.total_w == pytest.approx(200.0) for a in grid)

    def test_step_respected(self):
        grid = allocation_grid(200.0, mem_min_w=20.0, step_w=10.0)
        mems = [a.mem_w for a in grid]
        assert mems == sorted(mems)
        diffs = {round(b - a, 9) for a, b in zip(mems, mems[1:])}
        assert diffs == {10.0}

    def test_proc_floor_respected(self):
        grid = allocation_grid(200.0, mem_min_w=20.0, proc_min_w=50.0, step_w=10.0)
        assert all(a.proc_w >= 50.0 - 1e-9 for a in grid)

    def test_explicit_mem_max(self):
        grid = allocation_grid(200.0, mem_min_w=20.0, mem_max_w=60.0, step_w=10.0)
        assert max(a.mem_w for a in grid) == pytest.approx(60.0)

    def test_empty_grid_raises(self):
        with pytest.raises(SweepError):
            allocation_grid(50.0, mem_min_w=60.0)

    def test_zero_step_raises(self):
        with pytest.raises(SweepError):
            allocation_grid(200.0, mem_min_w=20.0, step_w=0.0)

    def test_infeasible_floors_raise(self):
        with pytest.raises(SweepError):
            allocation_grid(60.0, mem_min_w=40.0, proc_min_w=40.0)


class TestBoundedAllocation:
    def test_within_budget(self):
        a = bounded_allocation(100.0, 50.0, 150.0)
        assert isinstance(a, PowerAllocation)
        assert a.proc_w == 100.0
        assert a.mem_w == 50.0

    def test_exactly_at_budget(self):
        a = bounded_allocation(100.0, 50.0, 150.0)
        assert a.total_w == pytest.approx(150.0)

    def test_overdraw_raises(self):
        with pytest.raises(PowerBoundError, match="overdraws"):
            bounded_allocation(100.0, 51.0, 150.0)

    def test_tolerance_absorbs_float_noise(self):
        bounded_allocation(100.0, 50.0 + 1e-12, 150.0)

    def test_explicit_tolerance(self):
        bounded_allocation(100.0, 50.05, 150.0, tolerance_w=0.1)
        with pytest.raises(PowerBoundError):
            bounded_allocation(100.0, 50.2, 150.0, tolerance_w=0.1)

    def test_invalid_budget_rejected(self):
        with pytest.raises(UnitError):
            bounded_allocation(100.0, 50.0, float("nan"))

    def test_negative_components_rejected(self):
        with pytest.raises(UnitError):
            bounded_allocation(-1.0, 50.0, 150.0)
