"""Robustness of COORD to profiling measurement noise."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coord import coord_cpu
from repro.core.critical import CpuCriticalPowers
from repro.core.profiler import profile_cpu_workload
from repro.core.sweep import sweep_cpu_allocations
from repro.errors import ConfigurationError
from repro.hardware.platforms import ivybridge_node
from repro.perfmodel.executor import execute_on_host
from repro.util.seeds import spawn_rng
from repro.workloads import cpu_workload

NODE = ivybridge_node()


@pytest.fixture(scope="module")
def sra_clean():
    return profile_cpu_workload(NODE.cpu, NODE.dram, cpu_workload("sra"))


class TestPerturbed:
    def test_zero_noise_identity(self, sra_clean):
        rng = spawn_rng(1, "robustness")
        assert sra_clean.perturbed(0.0, rng) == sra_clean

    def test_orderings_preserved(self, sra_clean):
        rng = spawn_rng(2, "robustness")
        for _ in range(50):
            noisy = sra_clean.perturbed(0.3, rng)
            assert noisy.cpu_l1 >= noisy.cpu_l2 >= noisy.cpu_l3 >= noisy.cpu_l4

    def test_hardware_constants_exact(self, sra_clean):
        rng = spawn_rng(3, "robustness")
        noisy = sra_clean.perturbed(0.2, rng)
        assert noisy.cpu_l4 == sra_clean.cpu_l4
        assert noisy.mem_l3 == sra_clean.mem_l3

    def test_noise_bounded(self, sra_clean):
        rng = spawn_rng(4, "robustness")
        for _ in range(50):
            noisy = sra_clean.perturbed(0.1, rng)
            assert noisy.mem_l1 == pytest.approx(sra_clean.mem_l1, rel=0.101)

    def test_negative_noise_rejected(self, sra_clean):
        rng = spawn_rng(5, "robustness")
        with pytest.raises(ConfigurationError):
            sra_clean.perturbed(-0.1, rng)


class TestCoordUnderNoise:
    @pytest.mark.parametrize("name", ["sra", "stream", "mg"])
    def test_paper_level_noise_costs_little(self, name):
        # The paper reports < 5 % run-to-run variation; at that noise
        # level COORD's decisions stay within a few percent of its
        # clean-profile quality at a comfortable budget.
        wl = cpu_workload(name)
        clean = profile_cpu_workload(NODE.cpu, NODE.dram, wl)
        budget = 208.0
        best = sweep_cpu_allocations(NODE.cpu, NODE.dram, wl, budget, step_w=4.0).perf_max
        rng = spawn_rng(6, "robustness", name)
        for _ in range(10):
            noisy = clean.perturbed(0.05, rng)
            decision = coord_cpu(noisy, budget)
            assert decision.accepted
            r = execute_on_host(
                NODE.cpu, NODE.dram, wl.phases,
                decision.allocation.proc_w, decision.allocation.mem_w,
            )
            assert wl.performance(r) >= 0.80 * best

    @settings(max_examples=40, deadline=None)
    @given(noise=st.floats(0.0, 0.3), seed=st.integers(0, 100))
    def test_noisy_decisions_still_respect_budget(self, sra_clean, noise, seed):
        rng = spawn_rng(seed, "robustness-budget")
        noisy = sra_clean.perturbed(noise, rng)
        decision = coord_cpu(noisy, 200.0)
        if decision.accepted:
            assert decision.allocation.total_w <= 200.0 + 1e-6

    def test_noisy_profile_valid_for_serialization(self, sra_clean):
        from repro.config import from_json, to_json

        rng = spawn_rng(7, "robustness")
        noisy = sra_clean.perturbed(0.1, rng)
        assert from_json(to_json(noisy)) == noisy
