"""Allocation sweeps and budget curves."""

import numpy as np
import pytest

from repro.core.allocation import PowerAllocation
from repro.core.scenario import Scenario
from repro.core.sweep import (
    SweepPoint,
    cpu_budget_curve,
    gpu_budget_curve,
    optimal_plateau,
    sweep_cpu_allocations,
    sweep_gpu_allocations,
)
from repro.errors import SweepError
from repro.hardware.component import CappingMechanism
from repro.perfmodel.metrics import ExecutionResult, PhaseResult


class TestCpuSweep:
    def test_budget_preserved_across_points(self, ivb, sra):
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 208.0, step_w=8.0)
        assert all(
            p.allocation.total_w == pytest.approx(208.0) for p in sweep.points
        )

    def test_array_views_consistent(self, ivb, sra):
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 208.0, step_w=8.0)
        n = len(sweep.points)
        assert sweep.mem_alloc_w.shape == (n,)
        assert sweep.performances.shape == (n,)
        assert np.allclose(sweep.mem_alloc_w + sweep.proc_alloc_w, 208.0)

    def test_best_and_worst(self, ivb, sra):
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 208.0, step_w=8.0)
        assert sweep.best.performance == sweep.performances.max()
        assert sweep.worst.performance == sweep.performances.min()
        assert sweep.perf_spread >= 1.0

    def test_best_is_mid_plateau(self, ivb, sra):
        # At an ample budget the optimum plateau spans scenario I; the
        # reported best must sit strictly inside it, not at an edge.
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 280.0, step_w=4.0)
        perfs = sweep.performances
        best_idx = sweep.points.index(sweep.best)
        top = perfs.max()
        assert perfs[best_idx] == top
        assert best_idx > 0 and best_idx < len(perfs) - 1
        assert perfs[best_idx - 1] == top or perfs[best_idx + 1] == top

    def test_actual_power_under_budget_except_floor(self, ivb, stream):
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, stream, 208.0, step_w=8.0)
        for p in sweep.points:
            if p.result.respects_bound:
                assert p.actual_total_w <= 208.0 + 1e-6

    def test_scenarios_align_with_points(self, ivb, sra):
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 240.0, step_w=8.0)
        assert len(sweep.scenarios) == len(sweep.points)


class TestCpuBudgetCurve:
    def test_monotone_nondecreasing(self, ivb, dgemm):
        budgets = np.arange(120.0, 281.0, 20.0)
        curve = cpu_budget_curve(ivb.cpu, ivb.dram, dgemm, budgets, step_w=8.0)
        assert np.all(np.diff(curve.perf_max) >= -1e-9)

    def test_saturation_detection(self, ivb, sra):
        budgets = np.arange(140.0, 301.0, 20.0)
        curve = cpu_budget_curve(ivb.cpu, ivb.dram, sra, budgets, step_w=8.0)
        sat = curve.saturation_budget_w
        # SRA's node demand is ~225 W.
        assert 200.0 <= sat <= 245.0

    def test_empty_budgets_rejected(self, ivb, sra):
        with pytest.raises(SweepError):
            cpu_budget_curve(ivb.cpu, ivb.dram, sra, [])


class TestGpuSweep:
    def test_covers_clock_grid(self, xp, minife):
        sweep = sweep_gpu_allocations(xp, minife, 200.0, freq_stride=1)
        assert sweep.mem_freqs_mhz[0] == pytest.approx(xp.mem.min_mhz)
        assert sweep.mem_freqs_mhz[-1] == pytest.approx(xp.mem.nominal_mhz)

    def test_stride_keeps_nominal(self, xp, minife):
        sweep = sweep_gpu_allocations(xp, minife, 200.0, freq_stride=7)
        assert sweep.mem_freqs_mhz[-1] == pytest.approx(xp.mem.nominal_mhz)

    def test_bad_stride_rejected(self, xp, minife):
        with pytest.raises(SweepError):
            sweep_gpu_allocations(xp, minife, 200.0, freq_stride=0)

    def test_alloc_axis_is_empirical_estimate(self, xp, minife):
        sweep = sweep_gpu_allocations(xp, minife, 200.0, freq_stride=2)
        for f, alloc in zip(sweep.mem_freqs_mhz, sweep.mem_alloc_w):
            assert alloc == pytest.approx(xp.mem.allocated_power_w(float(f)))

    def test_memory_intensive_prefers_high_clock_at_large_cap(self, xp, minife):
        sweep = sweep_gpu_allocations(xp, minife, 260.0, freq_stride=1)
        assert sweep.best.result.phases[0].mem_throttle == pytest.approx(1.0)

    def test_compute_intensive_prefers_low_clock_under_binding_cap(self, xp, sgemm):
        sweep = sweep_gpu_allocations(xp, sgemm, 200.0, freq_stride=1)
        assert sweep.best.result.phases[0].mem_throttle < 1.0


class TestGpuBudgetCurve:
    def test_monotone(self, xp, sgemm):
        caps = np.arange(130.0, 301.0, 20.0)
        curve = gpu_budget_curve(xp, sgemm, caps, freq_stride=2)
        assert np.all(np.diff(curve.perf_max) >= -1e-9)

    def test_sgemm_unsaturated_on_xp(self, xp, sgemm):
        caps = np.arange(130.0, 301.0, 10.0)
        curve = gpu_budget_curve(xp, sgemm, caps, freq_stride=2)
        # Still rising at the top of the range (paper: demands > 300 W).
        assert curve.perf_max[-1] > curve.perf_max[-3]

    def test_minife_saturates_on_xp(self, xp, minife):
        caps = np.arange(130.0, 301.0, 10.0)
        curve = gpu_budget_curve(xp, minife, caps, freq_stride=2)
        assert curve.saturation_budget_w <= 200.0


def _fake_point(performance: float, *, overdrawn: bool = False) -> SweepPoint:
    """A synthetic sweep point whose bound compliance is set directly.

    ``overdrawn`` makes the processor domain draw past its cap, which is
    exactly what ``respects_bound`` checks on hosts.
    """
    proc_cap = 100.0
    phase = PhaseResult(
        name="synthetic",
        time_s=1.0,
        t_compute_s=0.6,
        t_memory_s=0.4,
        utilization=0.6,
        mem_busy=0.4,
        proc_freq_ghz=2.0,
        proc_duty=1.0,
        mem_throttle=1.0,
        proc_mechanism=CappingMechanism.NONE,
        mem_mechanism=CappingMechanism.NONE,
        proc_power_w=proc_cap + 25.0 if overdrawn else proc_cap - 25.0,
        mem_power_w=20.0,
        board_power_w=0.0,
        flops=1e9,
        bytes_moved=1e8,
    )
    result = ExecutionResult(phases=(phase,), proc_cap_w=proc_cap, mem_cap_w=30.0)
    assert result.respects_bound is (not overdrawn)
    return SweepPoint(
        allocation=PowerAllocation(proc_cap, 30.0),
        result=result,
        performance=performance,
        scenario=Scenario.I,
    )


class TestOptimalPlateau:
    """Edge cases of the plateau picker on hand-built point sequences."""

    def test_single_point_grid(self, ivb, sra):
        # Budget 24 W leaves exactly one grid point (16 W mem floor +
        # 8 W proc floor); the plateau degenerates to that point.
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 24.0, step_w=4.0)
        assert len(sweep.points) == 1
        assert optimal_plateau(sweep.points) == (0, 0)
        assert sweep.best is sweep.points[0]

    def test_single_synthetic_point(self):
        assert optimal_plateau((_fake_point(1.0),)) == (0, 0)
        assert optimal_plateau((_fake_point(1.0, overdrawn=True),)) == (0, 0)

    def test_all_points_overdrawn_falls_back_to_all_eligible(self, ivb, sra):
        # At starvation budgets every point overdraws (DRAM floor alone
        # exceeds its share); the plateau must still be well-defined over
        # the full index range rather than raising.
        for budget in (40.0, 60.0, 80.0):
            sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, budget,
                                          step_w=4.0)
            assert all(not p.result.respects_bound for p in sweep.points)
            lo, hi = optimal_plateau(sweep.points)
            assert 0 <= lo <= hi < len(sweep.points)
            assert sweep.best in sweep.points

    def test_all_synthetic_overdrawn_picks_top_performer(self):
        points = tuple(
            _fake_point(perf, overdrawn=True) for perf in (1.0, 3.0, 2.0)
        )
        assert optimal_plateau(points) == (1, 1)

    def test_overdrawn_points_excluded_when_compliant_exist(self):
        # The overdrawn point performs best but is not a legitimate
        # choice; the plateau forms over the compliant runner-up.
        points = (
            _fake_point(5.0, overdrawn=True),
            _fake_point(2.0),
            _fake_point(1.0),
        )
        assert optimal_plateau(points) == (1, 1)

    def test_tie_within_tolerance_extends_plateau(self):
        # tol = 1e-9 * top; a 5e-10 relative dip still counts as the top.
        points = (_fake_point(1.0), _fake_point(1.0 - 5e-10), _fake_point(0.5))
        assert optimal_plateau(points) == (0, 1)

    def test_gap_just_past_tolerance_breaks_plateau(self):
        points = (_fake_point(1.0), _fake_point(1.0 - 2e-9), _fake_point(0.5))
        assert optimal_plateau(points) == (0, 0)

    def test_plateau_does_not_bridge_noncompliant_gap(self):
        # Equal performance on both sides of an overdrawn point: the
        # plateau is contiguous *eligible* indices, so it stops at the gap.
        points = (
            _fake_point(1.0),
            _fake_point(1.0, overdrawn=True),
            _fake_point(1.0),
        )
        lo, hi = optimal_plateau(points)
        assert (lo, hi) in ((0, 0), (2, 2))

    def test_mid_plateau_best_on_ties(self):
        points = tuple(_fake_point(2.0) for _ in range(5))
        assert optimal_plateau(points) == (0, 4)

    def test_near_tie_at_right_edge_anchors_on_exact_top(self):
        # The 5e-10 point is within tolerance of the top but must not
        # pull the plateau leftwards past the non-top middle point: the
        # plateau grows outward from an exact top performer.
        points = (_fake_point(1.0 - 5e-10), _fake_point(0.5), _fake_point(1.0))
        assert optimal_plateau(points) == (2, 2)

    def test_near_tie_at_left_edge_anchors_on_exact_top(self):
        points = (_fake_point(1.0), _fake_point(0.5), _fake_point(1.0 - 5e-10))
        assert optimal_plateau(points) == (0, 0)

    def test_near_tie_adjacent_to_top_joins_plateau(self):
        # Same 5e-10 dip, but contiguous with the exact top: it extends
        # the plateau instead of being stranded across a gap.
        points = (_fake_point(0.5), _fake_point(1.0 - 5e-10), _fake_point(1.0))
        assert optimal_plateau(points) == (1, 2)
