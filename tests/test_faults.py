"""The chaos suite: deterministic fault injection and the degradation contract.

Locks the headline invariant of :mod:`repro.faults`: under any fault
plan, every public API either returns a result bit-identical to the
clean run or surfaces a typed degradation (``FaultError`` /
``DegradationReport``) — silent drift is never an outcome.  Fault
schedules are hypothesis-fuzzed (strategies shared from ``conftest``)
across both hardware registries (RAPL/CPU and NVML/GPU), and every
fault kind also gets a deterministic single-kind battery run.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallel import SweepEngine
from repro.core.planner import plan_cpu_sweep
from repro.core.sweep import sweep_cpu_allocations
from repro.errors import (
    FaultError,
    FaultPlanError,
    MeterReadError,
    NvmlReadError,
    ProfilingDegradedError,
    TransientReadError,
    WorkerRetryExhaustedError,
)
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    active,
    backoff_schedule_s,
    retry_transient,
    strict_majority,
    use_faults,
)
from repro.faults.contract import run_chaos
from repro.faults.report import DegradationReport
from repro.faults.resilience import (
    coordinate_cpu_resilient,
    online_shift_resilient,
    profile_cpu_resilient,
)
from repro.hardware.meter import RaplPowerMeter
from repro.hardware.nvml import NvmlDevice
from repro.hardware.rapl import RaplDomainName, RaplInterface
from repro.perfmodel.executor import execute_on_host
from repro.perfmodel.power_trace import sample_power_trace
from repro.workloads import cpu_workload

from tests.conftest import fault_plans, sweep_signature

#: A site that understands each fault kind (for single-kind batteries).
_KIND_SITE = {
    FaultKind.DROPOUT: "rapl.read",
    FaultKind.STUCK: "rapl.read",
    FaultKind.WRAP_JUMP: "rapl.read",
    FaultKind.TORN_WRITE: "diskcache.write",
    FaultKind.CORRUPT_WRITE: "diskcache.write",
    FaultKind.WORKER_CRASH: "parallel.worker",
    FaultKind.WORKER_TIMEOUT: "parallel.worker",
    FaultKind.NOISE: "profiler.sample",
}


def plan_for(site: str, kind: FaultKind, **kwargs) -> FaultPlan:
    defaults = {"probability": 0.25}
    defaults.update(kwargs)
    return FaultPlan(seed=11, specs=(FaultSpec(site=site, kind=kind, **defaults),))


# ---------------------------------------------------------------------------
# plans: validation and serialization
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown injection site"):
            FaultSpec(site="flux.capacitor", kind=FaultKind.DROPOUT, probability=0.5)

    def test_kind_must_match_site(self):
        with pytest.raises(FaultPlanError, match="does not understand"):
            FaultSpec(site="nvml.read", kind=FaultKind.STUCK, probability=0.5)

    def test_never_firing_spec_rejected(self):
        with pytest.raises(FaultPlanError, match="can never fire"):
            FaultSpec(site="rapl.read", kind=FaultKind.DROPOUT)

    def test_bad_probability_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(site="rapl.read", kind=FaultKind.DROPOUT, probability=1.5)

    def test_wrap_jump_amplitude_floor(self):
        # Sub-ceiling phantom jumps are physically undetectable; the plan
        # schema keeps modeled jumps in the detectable regime.
        with pytest.raises(FaultPlanError, match="detectable regime"):
            FaultSpec(
                site="rapl.read", kind=FaultKind.WRAP_JUMP,
                at_calls=(1,), amplitude=0.01,
            )

    def test_even_profile_repeats_rejected(self):
        with pytest.raises(FaultPlanError, match="odd"):
            FaultPlan(profile_repeats=4)
        with pytest.raises(FaultPlanError, match="odd"):
            FaultPlan(profile_repeats=1)

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault-plan field"):
            FaultPlan.from_dict({"seed": 1, "bogus": True})
        with pytest.raises(FaultPlanError, match="unknown fault-spec field"):
            FaultSpec.from_dict(
                {"site": "rapl.read", "kind": "dropout", "oops": 1}
            )

    @settings(max_examples=50, deadline=None)
    @given(plan=fault_plans())
    def test_json_roundtrip_is_lossless(self, plan):
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_load_save_roundtrip(self, tmp_path):
        plan = plan_for("rapl.read", FaultKind.DROPOUT)
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan

    def test_canned_example_plan_loads(self):
        plan = FaultPlan.load("examples/faults/chaos_smoke.json")
        assert not plan.is_empty
        assert len({spec.site for spec in plan.specs}) >= 5


# ---------------------------------------------------------------------------
# injector: deterministic firing
# ---------------------------------------------------------------------------

class TestInjector:
    @settings(max_examples=25, deadline=None)
    @given(plan=fault_plans(), calls=st.integers(min_value=1, max_value=64))
    def test_firing_schedule_is_deterministic(self, plan, calls):
        sites = sorted({spec.site for spec in plan.specs})
        logs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            for i in range(calls):
                injector.check(sites[i % len(sites)])
            logs.append(
                [(e.site, e.kind, e.spec_index, e.call_index)
                 for e in injector.events()]
            )
        assert logs[0] == logs[1]

    def test_at_calls_fires_exactly_there(self):
        plan = plan_for(
            "rapl.read", FaultKind.DROPOUT, probability=0.0, at_calls=(2, 5)
        )
        injector = FaultInjector(plan)
        fired = [i for i in range(8) if injector.check("rapl.read") is not None]
        assert fired == [2, 5]

    def test_max_fires_caps_the_burst(self):
        plan = plan_for(
            "rapl.read", FaultKind.DROPOUT, probability=1.0, max_fires=3
        )
        injector = FaultInjector(plan)
        fired = sum(injector.check("rapl.read") is not None for _ in range(10))
        assert fired == 3

    def test_reset_replays_the_same_schedule(self):
        plan = plan_for("rapl.read", FaultKind.DROPOUT, probability=0.4)
        injector = FaultInjector(plan)
        first = [injector.check("rapl.read") is not None for _ in range(20)]
        injector.reset()
        second = [injector.check("rapl.read") is not None for _ in range(20)]
        assert first == second

    def test_use_faults_restores_previous(self):
        assert active() is None
        outer = FaultInjector(FaultPlan.empty())
        with use_faults(outer):
            assert active() is outer
            with use_faults(plan_for("rapl.read", FaultKind.DROPOUT)):
                assert active() is not outer
            assert active() is outer
        assert active() is None

    def test_noise_is_seed_keyed_and_bounded(self):
        plan = plan_for("online.signal", FaultKind.NOISE)
        injector = FaultInjector(plan)
        draws = [injector.noise("online.signal", i) for i in range(100)]
        assert all(-1.0 <= u < 1.0 for u in draws)
        assert len(set(draws)) == 100  # keyed to call index: all distinct
        assert draws == [
            FaultInjector(plan).noise("online.signal", i) for i in range(100)
        ]


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------

class TestPolicies:
    def test_backoff_schedule_is_exponential(self):
        assert backoff_schedule_s(0.5, 4) == (0.5, 1.0, 2.0, 4.0)

    def test_retry_transient_recovers_and_reports(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientReadError("rapl.read", calls["n"])
            return 42

        report = DegradationReport()
        assert retry_transient(
            flaky, site="rapl.read", max_attempts=3, report=report
        ) == 42
        assert not report.degraded  # recovered: result is the clean one
        assert report.events and report.events[0].action == "retried"

    def test_retry_transient_exhaustion_reraises(self):
        def dead():
            raise TransientReadError("nvml.read", 0)

        with pytest.raises(TransientReadError):
            retry_transient(dead, site="nvml.read", max_attempts=2)

    def test_strict_majority(self):
        assert strict_majority([1, 1, 2]) == 1
        assert strict_majority([1, 2, 3]) is None
        # `total` counts errored repeats against the majority.
        assert strict_majority([1, 1], total=4) is None
        assert strict_majority([1, 1, 1], total=5) == 1


# ---------------------------------------------------------------------------
# the degradation contract (the headline invariant)
# ---------------------------------------------------------------------------

class TestDegradationContract:
    def test_empty_plan_is_bit_identical_everywhere(self):
        report = run_chaos(FaultPlan.empty(), scale="smoke")
        assert report.ok
        assert all(c.outcome == "identical" for c in report.checks), (
            report.summary()
        )

    @pytest.mark.parametrize("kind", list(FaultKind))
    def test_single_kind_battery_upholds_contract(self, kind):
        plan = plan_for(_KIND_SITE[kind], kind, probability=0.3)
        report = run_chaos(plan, scale="smoke")
        assert report.ok, report.summary()

    @settings(max_examples=10, deadline=None)
    @given(plan=fault_plans())
    def test_fuzzed_plans_uphold_contract(self, plan):
        report = run_chaos(plan, scale="smoke")
        assert report.ok, report.summary()
        for check in report.checks:
            assert check.outcome in ("identical", "degraded", "typed-error")

    def test_battery_covers_both_registries(self):
        report = run_chaos(FaultPlan.empty(), scale="smoke")
        names = {check.name for check in report.checks}
        assert {"cpu.sweep-curve", "meter.observe"} <= names  # RAPL/CPU
        assert {"gpu.sweep-curve", "nvml.read"} <= names  # NVML/GPU

    def test_report_serializes(self):
        report = run_chaos(FaultPlan.empty(), scale="smoke")
        payload = report.to_dict()
        assert payload["ok"] is True
        assert len(payload["checks"]) == len(report.checks)
        assert "chaos contract: OK" in report.summary()


# ---------------------------------------------------------------------------
# sweep engine: worker resubmission and retry exhaustion
# ---------------------------------------------------------------------------

class TestWorkerFaults:
    def test_recovered_crashes_keep_sweeps_bit_identical(self, ivb, stream):
        clean = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, stream, 176.0, engine=SweepEngine(n_jobs=1)
        )
        engine = SweepEngine(
            n_jobs=1,
            faults=plan_for(
                "parallel.worker", FaultKind.WORKER_CRASH,
                probability=0.3,
            ),
        )
        faulted = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, stream, 176.0, engine=engine
        )
        assert sweep_signature(faulted) == sweep_signature(clean)
        assert engine.faults.events()  # the schedule did fire
        assert not engine.fault_report.degraded
        assert any(
            e.action == "resubmitted" for e in engine.fault_report.events
        )

    def test_retry_exhaustion_is_typed(self, ivb, stream):
        engine = SweepEngine(
            n_jobs=1,
            faults=plan_for(
                "parallel.worker", FaultKind.WORKER_TIMEOUT, probability=1.0
            ),
        )
        with pytest.raises(WorkerRetryExhaustedError) as excinfo:
            sweep_cpu_allocations(ivb.cpu, ivb.dram, stream, 176.0, engine=engine)
        assert excinfo.value.attempts == 3  # the plan's max_attempts
        assert isinstance(excinfo.value, FaultError)

    def test_worker_retry_budget_overrides_plan(self, ivb, stream):
        engine = SweepEngine(
            n_jobs=1,
            faults=plan_for(
                "parallel.worker", FaultKind.WORKER_CRASH, probability=1.0
            ),
            worker_retry_budget=5,
        )
        with pytest.raises(WorkerRetryExhaustedError) as excinfo:
            sweep_cpu_allocations(ivb.cpu, ivb.dram, stream, 176.0, engine=engine)
        assert excinfo.value.attempts == 5

    def test_bad_retry_budget_rejected(self):
        from repro.errors import SweepError

        with pytest.raises(SweepError):
            SweepEngine(n_jobs=1, worker_retry_budget=0)

    def test_global_arming_reaches_default_engines(self, ivb, stream):
        clean = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, stream, 176.0, engine=SweepEngine(n_jobs=1)
        )
        plan = plan_for(
            "parallel.worker", FaultKind.WORKER_CRASH, probability=0.2
        )
        with use_faults(plan) as injector:
            faulted = sweep_cpu_allocations(
                ivb.cpu, ivb.dram, stream, 176.0, engine=SweepEngine(n_jobs=1)
            )
            assert injector.calls("parallel.worker") > 0
        assert sweep_signature(faulted) == sweep_signature(clean)

    def test_empty_plan_keeps_batch_path(self, ivb, stream):
        # An armed-but-empty plan must not force the serial fallback.
        engine = SweepEngine(n_jobs=1, faults=FaultPlan.empty())
        assert engine._worker_injector() is None


# ---------------------------------------------------------------------------
# meter and NVML resilience
# ---------------------------------------------------------------------------

def _package_meter():
    return RaplPowerMeter(
        RaplInterface(), RaplDomainName.PACKAGE, poll_interval_s=0.1
    )


@pytest.fixture(scope="module")
def bt_trace(ivb):
    wl = cpu_workload("bt")
    result = execute_on_host(ivb.cpu, ivb.dram, wl.phases, 150.0, 100.0)
    return sample_power_trace(result, dt_s=0.01)


class TestMeterResilience:
    def test_dropout_recovery_is_bit_identical(self, bt_trace):
        clean = _package_meter().observe_trace(bt_trace, "proc")
        # Isolated dropouts (never back-to-back) so the bounded retry is
        # guaranteed to recover; sustained dropout is the typed case below.
        plan = plan_for(
            "rapl.read", FaultKind.DROPOUT,
            probability=0.0, at_calls=(2, 8, 15),
        )
        report = DegradationReport()
        with use_faults(plan):
            faulted = _package_meter().observe_trace(
                bt_trace, "proc", report=report
            )
        assert faulted == clean
        assert report.events and not report.degraded

    def test_stuck_register_recovery_is_bit_identical(self, bt_trace):
        clean = _package_meter().observe_trace(bt_trace, "proc")
        plan = plan_for(
            "rapl.read", FaultKind.STUCK, probability=0.0, at_calls=(3, 9)
        )
        with use_faults(plan):
            faulted = _package_meter().observe_trace(bt_trace, "proc")
        assert faulted == clean

    def test_permanent_dropout_is_typed(self, bt_trace):
        plan = plan_for("rapl.read", FaultKind.DROPOUT, probability=1.0)
        with use_faults(plan):
            with pytest.raises(MeterReadError):
                _package_meter().observe_trace(bt_trace, "proc")

    def test_wrap_jump_trips_plausibility_ceiling(self, bt_trace):
        plan = plan_for(
            "rapl.read", FaultKind.WRAP_JUMP,
            probability=0.0, at_calls=(4,), amplitude=0.25,
        )
        with use_faults(plan):
            with pytest.raises(MeterReadError, match="plausibility ceiling"):
                _package_meter().observe_trace(bt_trace, "proc")


class TestNvmlResilience:
    def test_transient_dropout_retries_to_clean_value(self, xp):
        clean = NvmlDevice(xp).read_power_limit_w()
        plan = plan_for("nvml.read", FaultKind.DROPOUT, probability=0.5)
        report = DegradationReport()
        with use_faults(plan):
            value = NvmlDevice(xp).read_power_limit_w(report=report)
        assert value == clean
        assert not report.degraded

    def test_permanent_dropout_is_typed(self, xp):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="nvml.read", kind=FaultKind.DROPOUT, probability=1.0
                ),
            ),
            max_attempts=2,
        )
        with use_faults(plan):
            with pytest.raises(NvmlReadError):
                NvmlDevice(xp).read_power_limit_w()

    def test_raw_property_raises_transient_when_armed(self, xp):
        plan = plan_for("nvml.read", FaultKind.DROPOUT, probability=1.0)
        with use_faults(plan):
            with pytest.raises(TransientReadError):
                _ = NvmlDevice(xp).power_limit_w


# ---------------------------------------------------------------------------
# profiling and online resilience
# ---------------------------------------------------------------------------

class TestProfilingResilience:
    def test_sparse_noise_is_outvoted(self, ivb, stream):
        clean = profile_cpu_resilient(ivb.cpu, ivb.dram, stream)[0]
        plan = FaultPlan(
            seed=3,
            specs=(
                FaultSpec(
                    site="profiler.sample", kind=FaultKind.NOISE,
                    probability=0.0, at_calls=(2,), max_fires=1, amplitude=0.3,
                ),
            ),
        )
        with use_faults(plan):
            certified, report = profile_cpu_resilient(ivb.cpu, ivb.dram, stream)
        assert certified == clean
        assert not report.degraded

    def test_heavy_noise_never_silently_drifts(self, ivb, stream):
        clean = profile_cpu_resilient(ivb.cpu, ivb.dram, stream)[0]
        plan = plan_for(
            "profiler.sample", FaultKind.NOISE, probability=0.9, amplitude=0.4
        )
        with use_faults(plan):
            try:
                certified, report = profile_cpu_resilient(
                    ivb.cpu, ivb.dram, stream
                )
            except FaultError:
                return  # typed refusal: the contract's other allowed outcome
        assert certified == clean  # a certified profile must be the clean one

    def test_coordinate_decision_matches_clean_when_certified(self, ivb, stream):
        clean = coordinate_cpu_resilient(ivb.cpu, ivb.dram, stream, 176.0)[0]
        plan = FaultPlan(
            seed=5,
            specs=(
                FaultSpec(
                    site="profiler.sample", kind=FaultKind.NOISE,
                    probability=0.0, at_calls=(7,), max_fires=1,
                ),
            ),
        )
        with use_faults(plan):
            decision, report = coordinate_cpu_resilient(
                ivb.cpu, ivb.dram, stream, 176.0
            )
        assert decision == clean
        assert not report.degraded

    def test_profiling_degraded_error_carries_samples(self, ivb, stream):
        plan = FaultPlan(
            seed=13,
            specs=(
                FaultSpec(
                    site="profiler.sample", kind=FaultKind.NOISE,
                    probability=1.0, amplitude=0.5,
                ),
            ),
        )
        with use_faults(plan):
            with pytest.raises(ProfilingDegradedError) as excinfo:
                profile_cpu_resilient(ivb.cpu, ivb.dram, stream)
        assert isinstance(excinfo.value.samples, tuple)


class TestOnlineResilience:
    def test_noisy_signal_flags_degraded(self, ivb, stream):
        plan = plan_for(
            "online.signal", FaultKind.NOISE, probability=1.0, amplitude=0.8
        )
        with use_faults(plan):
            result, report = online_shift_resilient(
                ivb.cpu, ivb.dram, stream, 180.0
            )
        assert report.degraded
        assert result.allocation.total_w <= 180.0 + 1e-9  # still valid

    def test_quiet_run_stays_clean(self, ivb, stream):
        clean, _ = online_shift_resilient(ivb.cpu, ivb.dram, stream, 180.0)
        plan = plan_for(
            "online.signal", FaultKind.NOISE,
            probability=0.0, at_calls=(400,),  # beyond any epoch count
        )
        with use_faults(plan):
            result, report = online_shift_resilient(
                ivb.cpu, ivb.dram, stream, 180.0
            )
        assert result == clean
        assert report.clean


# ---------------------------------------------------------------------------
# the vectorized planner path under armed fault plans
# ---------------------------------------------------------------------------

class TestBatchedPlannerFallback:
    """Armed worker plans force the planner's scalar path (PR 5 contract).

    The vectorized kernel has no per-task boundary to inject worker
    faults at, so a ``SubgridExecutor`` on an engine whose worker
    injector is armed must resolve point-by-point through the scalar
    executor — where crash/timeout schedules fire, retries resubmit, and
    exhaustion raises typed errors — while still producing the clean
    run's exact answer when every fault recovers.
    """

    def _armed_engine(self, **plan_kwargs) -> SweepEngine:
        return SweepEngine(
            n_jobs=1,
            batch=True,
            faults=plan_for("parallel.worker", FaultKind.WORKER_CRASH,
                            **plan_kwargs),
        )

    def test_armed_cpu_plan_bypasses_batch_kernel(self, ivb, stream,
                                                  monkeypatch):
        clean = plan_cpu_sweep(
            ivb.cpu, ivb.dram, stream, 176.0, engine=SweepEngine(n_jobs=1)
        )

        def forbidden(*args, **kwargs):  # pragma: no cover - contract trip
            raise AssertionError("batch kernel ran under an armed plan")

        monkeypatch.setattr(
            "repro.core.parallel.batch_execute_indices", forbidden
        )
        engine = self._armed_engine(probability=0.3)
        planned = plan_cpu_sweep(
            ivb.cpu, ivb.dram, stream, 176.0, engine=engine
        )
        assert planned.best == clean.best
        assert planned.plateau == clean.plateau
        assert planned.perf_max == clean.perf_max
        assert engine.faults.events()  # the schedule did fire
        assert any(
            e.action == "resubmitted" for e in engine.fault_report.events
        )

    def test_armed_gpu_plan_bypasses_batch_kernel(self, monkeypatch):
        from repro.core.planner import plan_gpu_sweep
        from repro.hardware.platforms import titan_v_card
        from repro.workloads import gpu_workload

        card = titan_v_card()
        wl = gpu_workload("minife")
        clean = plan_gpu_sweep(card, wl, 200.0, engine=SweepEngine(n_jobs=1))
        monkeypatch.setattr(
            "repro.core.parallel.batch_execute_indices",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("batched")),
        )
        engine = self._armed_engine(probability=0.3)
        planned = plan_gpu_sweep(card, wl, 200.0, engine=engine)
        assert planned.best == clean.best
        assert planned.plateau == clean.plateau

    def test_disarmed_engine_keeps_batch_kernel(self, ivb, stream,
                                                monkeypatch):
        """Sanity inverse: without an armed plan the kernel does run."""
        from repro.core import parallel as parallel_mod

        calls = []
        original = parallel_mod.batch_execute_indices

        def counting(kernel, rows):
            calls.append(len(rows))
            return original(kernel, rows)

        monkeypatch.setattr(
            "repro.core.parallel.batch_execute_indices", counting
        )
        plan_cpu_sweep(
            ivb.cpu, ivb.dram, stream, 176.0,
            engine=SweepEngine(n_jobs=1, batch=True),
        )
        assert calls  # at least the probe stage went through the kernel

    def test_exhaustion_on_batched_planner_is_typed(self, ivb, stream):
        engine = SweepEngine(
            n_jobs=1,
            batch=True,
            faults=plan_for(
                "parallel.worker", FaultKind.WORKER_TIMEOUT, probability=1.0
            ),
        )
        with pytest.raises(WorkerRetryExhaustedError):
            plan_cpu_sweep(ivb.cpu, ivb.dram, stream, 176.0, engine=engine)


# ---------------------------------------------------------------------------
# the chaos battery under the adaptive planner
# ---------------------------------------------------------------------------

def _classification(report) -> dict[str, str]:
    return {check.name: check.outcome for check in report.checks}


class TestChaosUnderAdaptivePlanner:
    """``REPRO_SWEEP=adaptive`` must not move a single chaos verdict.

    The sweep-curve checks route through the adaptive planner when the
    engine resolves ``"adaptive"`` mode from the environment, so this
    locks the full battery — all eight checks — to classify identically
    to the full-sweep run for the empty plan and for every single-kind
    battery.
    """

    @pytest.mark.parametrize(
        "kind", [None] + list(FaultKind),
        ids=["empty"] + [k.name for k in FaultKind],
    )
    def test_battery_classifies_identically(self, kind, monkeypatch):
        plan = (
            FaultPlan.empty() if kind is None
            else plan_for(_KIND_SITE[kind], kind, probability=0.3)
        )
        monkeypatch.delenv("REPRO_SWEEP", raising=False)
        full = run_chaos(plan, scale="smoke")
        monkeypatch.setenv("REPRO_SWEEP", "adaptive")
        adaptive = run_chaos(plan, scale="smoke")
        assert len(adaptive.checks) == 8
        assert _classification(adaptive) == _classification(full)
        assert adaptive.ok is full.ok
