"""Shared fixtures and differential-testing helpers.

Domain models are immutable after construction, so platform fixtures are
module-scoped for speed; anything stateful (NVML devices, RAPL interfaces,
clusters) is built fresh per test.

The module-level helpers (:func:`sweep_signature`, :func:`plateau_span`,
:func:`seeded_rng`) are importable as ``from tests.conftest import ...``
and back the parallel-vs-serial equivalence harness: they canonicalize a
sweep into plain comparable data and give deterministic randomness for
the fuzzing tests.
"""

from __future__ import annotations

import random

import pytest

from repro.core.sweep import optimal_plateau
from repro.hardware.platforms import (
    haswell_node,
    ivybridge_node,
    titan_v_card,
    titan_xp_card,
)
from repro.workloads import cpu_workload, gpu_workload


# ---------------------------------------------------------------------------
# differential-harness helpers (plain functions, importable from tests)
# ---------------------------------------------------------------------------

def sweep_signature(sweep) -> tuple:
    """Canonical, order-sensitive snapshot of a sweep's observable outcome.

    Two sweeps are equivalent iff their signatures compare equal: every
    allocation, every per-phase execution record, every performance value,
    and every scenario label — exact float equality, no tolerances, since
    the parallel engine promises bit-for-bit identity with the serial
    oracle.
    """
    return tuple(
        (
            point.allocation.proc_w,
            point.allocation.mem_w,
            point.performance,
            point.scenario,
            point.result,
        )
        for point in sweep.points
    )


def plateau_span(sweep) -> tuple[int, int]:
    """The sweep's optimal-plateau index span (serial-oracle definition)."""
    return optimal_plateau(sweep.points)


def seeded_rng(*seed_parts) -> random.Random:
    """A deterministic PRNG derived from ``seed_parts`` (for fuzz tests)."""
    return random.Random(repr(seed_parts))


@pytest.fixture(scope="module")
def ivb():
    """The IvyBridge node (CPU Platform I)."""
    return ivybridge_node()


@pytest.fixture(scope="module")
def has():
    """The Haswell node (CPU Platform II)."""
    return haswell_node()


@pytest.fixture(scope="module")
def xp():
    """The Titan XP card (GPU Platform I)."""
    return titan_xp_card()


@pytest.fixture(scope="module")
def tv():
    """The Titan V card (GPU Platform II)."""
    return titan_v_card()


@pytest.fixture(scope="module")
def sra():
    return cpu_workload("sra")


@pytest.fixture(scope="module")
def stream():
    return cpu_workload("stream")


@pytest.fixture(scope="module")
def dgemm():
    return cpu_workload("dgemm")


@pytest.fixture(scope="module")
def sgemm():
    return gpu_workload("sgemm")


@pytest.fixture(scope="module")
def minife():
    return gpu_workload("minife")


@pytest.fixture(scope="module")
def gpu_stream():
    return gpu_workload("gpu-stream")
