"""Shared fixtures.

Domain models are immutable after construction, so platform fixtures are
module-scoped for speed; anything stateful (NVML devices, RAPL interfaces,
clusters) is built fresh per test.
"""

from __future__ import annotations

import pytest

from repro.hardware.platforms import (
    haswell_node,
    ivybridge_node,
    titan_v_card,
    titan_xp_card,
)
from repro.workloads import cpu_workload, gpu_workload


@pytest.fixture(scope="module")
def ivb():
    """The IvyBridge node (CPU Platform I)."""
    return ivybridge_node()


@pytest.fixture(scope="module")
def has():
    """The Haswell node (CPU Platform II)."""
    return haswell_node()


@pytest.fixture(scope="module")
def xp():
    """The Titan XP card (GPU Platform I)."""
    return titan_xp_card()


@pytest.fixture(scope="module")
def tv():
    """The Titan V card (GPU Platform II)."""
    return titan_v_card()


@pytest.fixture(scope="module")
def sra():
    return cpu_workload("sra")


@pytest.fixture(scope="module")
def stream():
    return cpu_workload("stream")


@pytest.fixture(scope="module")
def dgemm():
    return cpu_workload("dgemm")


@pytest.fixture(scope="module")
def sgemm():
    return gpu_workload("sgemm")


@pytest.fixture(scope="module")
def minife():
    return gpu_workload("minife")


@pytest.fixture(scope="module")
def gpu_stream():
    return gpu_workload("gpu-stream")
