"""Shared fixtures and differential-testing helpers.

Domain models are immutable after construction, so platform fixtures are
module-scoped for speed; anything stateful (NVML devices, RAPL interfaces,
clusters) is built fresh per test.

The module-level helpers (:func:`sweep_signature`, :func:`plateau_span`,
:func:`seeded_rng`) are importable as ``from tests.conftest import ...``
and back the parallel-vs-serial equivalence harness: they canonicalize a
sweep into plain comparable data and give deterministic randomness for
the fuzzing tests.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.core.sweep import optimal_plateau
from repro.faults.plan import SITES, FaultPlan, FaultSpec
from repro.hardware.cpu import CpuDomain
from repro.hardware.dram import DramDomain
from repro.hardware.platforms import (
    haswell_node,
    ivybridge_node,
    titan_v_card,
    titan_xp_card,
)
from repro.hardware.pstate import PStateTable
from repro.perfmodel.phase import Phase
from repro.sched.job import Job
from repro.sched.traces import (
    TraceJob,
    bursty_trace,
    diurnal_trace,
    poisson_trace,
)
from repro.workloads import cpu_workload, gpu_workload, list_cpu_workloads


# ---------------------------------------------------------------------------
# differential-harness helpers (plain functions, importable from tests)
# ---------------------------------------------------------------------------

def sweep_signature(sweep) -> tuple:
    """Canonical, order-sensitive snapshot of a sweep's observable outcome.

    Two sweeps are equivalent iff their signatures compare equal: every
    allocation, every per-phase execution record, every performance value,
    and every scenario label — exact float equality, no tolerances, since
    the parallel engine promises bit-for-bit identity with the serial
    oracle.
    """
    return tuple(
        (
            point.allocation.proc_w,
            point.allocation.mem_w,
            point.performance,
            point.scenario,
            point.result,
        )
        for point in sweep.points
    )


def plateau_span(sweep) -> tuple[int, int]:
    """The sweep's optimal-plateau index span (serial-oracle definition)."""
    return optimal_plateau(sweep.points)


def seeded_rng(*seed_parts) -> random.Random:
    """A deterministic PRNG derived from ``seed_parts`` (for fuzz tests)."""
    return random.Random(repr(seed_parts))


# ---------------------------------------------------------------------------
# synthetic planner-domain strategies (hypothesis; shared by the planner
# equivalence and stage-differential suites)
# ---------------------------------------------------------------------------

class SyntheticWorkload:
    """One-phase throughput workload over a fuzzed :class:`Phase`.

    Performance is ``work / elapsed`` with ``work`` fixed at construction,
    exactly as the inline fuzz workloads historically computed it, so
    fuzzed planner answers stay bit-comparable across suites.
    """

    name = "fuzz"
    metric_unit = "ops/s"

    def __init__(self, phases: tuple[Phase, ...]) -> None:
        self.phases = phases
        head = phases[0]
        self._work = head.flops if head.flops else head.bytes_moved

    def performance(self, result) -> float:
        return self._work / result.elapsed_s


@st.composite
def planner_cpu_cases(draw) -> dict:
    """One synthetic CPU planner case: platform, workload, grid knobs.

    The parameter space intentionally includes degenerate corners — a
    single P-state (``f_span == 0``), one duty/level step, zero-flop and
    zero-byte phases — because those are where certificate violations and
    governor quantization dips live.  Returns keyword arguments for
    ``plan_cpu_sweep`` / ``sweep_cpu_allocations`` plus the built domain
    objects under ``cpu``/``dram``/``workload``.
    """
    flops = draw(st.sampled_from([0.0, 1e12, 5e13]))
    bytes_moved = draw(st.sampled_from([0.0, 1e11, 8e12]))
    if flops == 0.0 and bytes_moved == 0.0:
        flops = 1e12  # a phase must do some work
    idle_w = draw(st.sampled_from([10.0, 25.0, 40.0]))
    f_min = draw(st.sampled_from([0.8, 1.2, 1.6]))
    bg_w = draw(st.sampled_from([8.0, 20.0]))
    cpu = CpuDomain(
        n_cores=draw(st.integers(min_value=1, max_value=32)),
        pstates=PStateTable(
            f_min, f_min + draw(st.sampled_from([0.0, 0.4, 1.2]))
        ),
        idle_power_w=idle_w,
        max_dynamic_w=draw(st.sampled_from([40.0, 90.0, 140.0])),
        duty_steps=draw(st.integers(min_value=1, max_value=8)),
    )
    dram = DramDomain(
        background_w=bg_w,
        max_access_w=draw(st.sampled_from([30.0, 90.0])),
        peak_bw_gbps=60.0,
        level_steps=draw(st.integers(min_value=1, max_value=32)),
    )
    phase = Phase(
        name="fuzz",
        flops=flops,
        bytes_moved=bytes_moved,
        activity=0.9,
        stall_activity=0.35,
        compute_efficiency=0.7 if flops else 0.0,
        memory_efficiency=0.8 if bytes_moved else 0.0,
    )
    return {
        "cpu": cpu,
        "dram": dram,
        "workload": SyntheticWorkload((phase,)),
        "budget_w": 4.0 * draw(st.integers(min_value=20, max_value=80)),
        "step_w": draw(st.sampled_from([2.0, 4.0, 6.0])),
        "mem_min_w": float(bg_w),
        "proc_min_w": float(idle_w) / 2.0,
    }


# ---------------------------------------------------------------------------
# fault-plan strategies (hypothesis; shared by test_faults / test_diskcache)
# ---------------------------------------------------------------------------

@st.composite
def fault_specs(draw, sites: tuple[str, ...] | None = None) -> FaultSpec:
    """One valid :class:`FaultSpec`, optionally restricted to ``sites``.

    Every draw satisfies the plan schema (kind allowed at the site,
    amplitude within the wrap-jump detectability floor, schedule that can
    actually fire), so shrinking explores only well-formed plans and
    failures point at the contract, not at validation.
    """
    site = draw(st.sampled_from(sorted(sites) if sites else sorted(SITES)))
    kind = draw(st.sampled_from(SITES[site]))
    schedule = draw(st.sampled_from(("probability", "at_calls", "both")))
    probability = 0.0
    at_calls: tuple[int, ...] = ()
    if schedule in ("probability", "both"):
        probability = draw(
            st.floats(min_value=0.01, max_value=0.5, allow_nan=False)
        )
    if schedule in ("at_calls", "both"):
        at_calls = tuple(
            sorted(draw(st.sets(st.integers(0, 40), min_size=1, max_size=4)))
        )
    return FaultSpec(
        site=site,
        kind=kind,
        probability=probability,
        at_calls=at_calls,
        max_fires=draw(st.one_of(st.none(), st.integers(1, 3))),
        amplitude=draw(st.floats(min_value=0.05, max_value=1.0)),
    )


def fault_plans(
    sites: tuple[str, ...] | None = None, max_specs: int = 4
) -> st.SearchStrategy[FaultPlan]:
    """Whole fault plans: seeded spec lists plus valid policy knobs."""
    return st.builds(
        FaultPlan,
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        specs=st.lists(fault_specs(sites=sites), min_size=1, max_size=max_specs).map(
            tuple
        ),
        max_attempts=st.integers(min_value=2, max_value=5),
        backoff_base_s=st.just(0.001),
        profile_repeats=st.sampled_from((3, 5)),
    )


# ---------------------------------------------------------------------------
# scheduler-domain strategies (hypothesis; shared by test_sched_properties
# and the fleet differential/property battery in test_fleet)
# ---------------------------------------------------------------------------

#: Every registered CPU workload — the job-mix sampling space.
SCHED_WORKLOAD_NAMES: tuple[str, ...] = tuple(list_cpu_workloads())


@st.composite
def job_mixes(draw, max_jobs: int = 6, multi_node: bool = False) -> list[Job]:
    """A small batch of :class:`Job` submissions over the CPU suite.

    The distribution matches the historical ad-hoc generator in
    ``test_sched_properties`` (1..6 jobs, 60-320 W asks, 0-20 s submit
    window) so replacing it does not shift what hypothesis explores.
    ``multi_node=True`` additionally draws 1-2 node jobs.
    """
    n = draw(st.integers(1, max_jobs))
    jobs = []
    for i in range(n):
        name = draw(st.sampled_from(SCHED_WORKLOAD_NAMES))
        request = draw(st.floats(60.0, 320.0))
        submit = draw(st.floats(0.0, 20.0))
        n_nodes = draw(st.integers(1, 2)) if multi_node else 1
        jobs.append(
            Job(i, cpu_workload(name), request, submit_time_s=submit,
                n_nodes=n_nodes)
        )
    return jobs


@st.composite
def cluster_shapes(draw, max_nodes: int = 4) -> dict:
    """Keyword arguments for a small :class:`~repro.sched.Cluster`."""
    return {
        "node_factory": draw(st.sampled_from((ivybridge_node, haswell_node))),
        "n_nodes": draw(st.integers(1, max_nodes)),
        "global_bound_w": draw(
            st.floats(150.0, 900.0, allow_nan=False, allow_infinity=False)
        ),
    }


@st.composite
def fleet_traces(draw, max_jobs: int = 30) -> tuple[TraceJob, ...]:
    """A seeded synthetic trace from any of the three fleet generators.

    Drawing the *generator inputs* (not the jobs) keeps every example a
    genuine replayable trace — the replay-identity property re-runs the
    same generator with the same seed and demands equality.
    """
    n = draw(st.integers(1, max_jobs))
    seed = draw(st.integers(0, 2**32 - 1))
    kind = draw(st.sampled_from(("poisson", "bursty", "diurnal")))
    if kind == "poisson":
        return poisson_trace(
            n_jobs=n,
            rate_per_s=draw(st.sampled_from((0.5, 2.0, 8.0))),
            seed=seed,
        )
    if kind == "bursty":
        return bursty_trace(
            n_jobs=n,
            burst_size=draw(st.integers(1, 6)),
            gap_s=draw(st.sampled_from((2.0, 10.0))),
            seed=seed,
        )
    return diurnal_trace(
        n_jobs=n,
        base_rate_per_s=0.5,
        peak_rate_per_s=draw(st.sampled_from((1.0, 4.0))),
        period_s=120.0,
        seed=seed,
    )


@pytest.fixture(scope="module")
def ivb():
    """The IvyBridge node (CPU Platform I)."""
    return ivybridge_node()


@pytest.fixture(scope="module")
def has():
    """The Haswell node (CPU Platform II)."""
    return haswell_node()


@pytest.fixture(scope="module")
def xp():
    """The Titan XP card (GPU Platform I)."""
    return titan_xp_card()


@pytest.fixture(scope="module")
def tv():
    """The Titan V card (GPU Platform II)."""
    return titan_v_card()


@pytest.fixture(scope="module")
def sra():
    return cpu_workload("sra")


@pytest.fixture(scope="module")
def stream():
    return cpu_workload("stream")


@pytest.fixture(scope="module")
def dgemm():
    return cpu_workload("dgemm")


@pytest.fixture(scope="module")
def sgemm():
    return gpu_workload("sgemm")


@pytest.fixture(scope="module")
def minife():
    return gpu_workload("minife")


@pytest.fixture(scope="module")
def gpu_stream():
    return gpu_workload("gpu-stream")
