"""ASCII table rendering."""

import pytest

from repro.util.tables import format_series, format_table


class TestFormatTable:
    def test_alignment_and_headers(self):
        out = format_table(["name", "value"], [("a", 1.0), ("bb", 22.5)])
        lines = out.splitlines()
        assert lines[0].endswith("value")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title_prepended(self):
        out = format_table(["x"], [(1,)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_spec_applied(self):
        out = format_table(["v"], [(3.14159,)], float_spec=".2f")
        assert "3.14" in out and "3.142" not in out

    def test_none_renders_dash(self):
        out = format_table(["v"], [(None,)])
        assert out.splitlines()[-1].strip() == "-"

    def test_bool_not_formatted_as_float(self):
        out = format_table(["v"], [(True,)])
        assert "True" in out

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [(1,)])

    def test_string_cells_untouched(self):
        out = format_table(["s"], [("I/II",)])
        assert "I/II" in out


class TestFormatSeries:
    def test_pairs_rendered(self):
        out = format_series("x", "y", [1, 2], [10.0, 20.0])
        assert "10.000" in out and "20.000" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            format_series("x", "y", [1, 2], [1.0])
