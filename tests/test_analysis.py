"""Analysis: scenario spans, critical components, Table 1, Figure 5."""

import pytest

from repro.core.allocation import PowerAllocation
from repro.core.analysis import (
    balance_analysis,
    critical_component,
    optimal_intersection,
    scenario_spans,
    table1_rows,
)
from repro.core.scenario import Scenario
from repro.core.sweep import sweep_cpu_allocations
from repro.errors import SweepError


@pytest.fixture(scope="module")
def sweep_240(ivb, sra):
    return sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 240.0, step_w=4.0)


class TestScenarioSpans:
    def test_all_six_present_at_240(self, sweep_240):
        spans = scenario_spans(sweep_240)
        assert set(spans) == set(Scenario)

    def test_spans_ordered_like_figure3(self, sweep_240):
        spans = scenario_spans(sweep_240)
        # Along the memory axis: V < III < I < II < IV < VI.
        order = [Scenario.V, Scenario.III, Scenario.I, Scenario.II, Scenario.IV, Scenario.VI]
        mids = [sum(spans[s]) / 2 for s in order]
        assert mids == sorted(mids)

    def test_scenario_i_span_matches_paper(self, sweep_240):
        lo, hi = scenario_spans(sweep_240)[Scenario.I]
        # Paper: P_mem in [120, 132] W.
        assert lo == pytest.approx(120.0, abs=8.0)
        assert hi == pytest.approx(130.0, abs=8.0)

    def test_low_budget_drops_scenario_i(self, ivb, sra):
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 176.0, step_w=4.0)
        assert Scenario.I not in scenario_spans(sweep)


class TestOptimalIntersection:
    def test_ample_budget_optimum_in_i(self, ivb, sra):
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 280.0, step_w=4.0)
        assert optimal_intersection(sweep) == (Scenario.I,)

    def test_moderate_budget_ii_iii(self, ivb, sra):
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 224.0, step_w=4.0)
        inter = optimal_intersection(sweep)
        assert Scenario.II in inter and Scenario.III in inter


class TestCriticalComponent:
    def test_dram_critical_at_224(self, ivb, sra):
        # Paper Section 3.4.2: DRAM is critical for SRA at 224 W.
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 224.0, step_w=4.0)
        assert critical_component(ivb.cpu, ivb.dram, sra, sweep) == "DRAM"

    def test_cpu_critical_at_150(self, ivb, sra):
        # Once the budget pushes the optimum to the III|IV intersection,
        # the CPU becomes the critical component (Table 1, row 3).
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 150.0, step_w=4.0)
        assert critical_component(ivb.cpu, ivb.dram, sra, sweep) == "CPU"

    def test_none_at_ample_budget(self, ivb, sra):
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 290.0, step_w=4.0)
        assert critical_component(ivb.cpu, ivb.dram, sra, sweep) is None

    def test_asymmetry_matches_paper(self, ivb, sra):
        # From the paper's 224 W optimum (the plateau's low-memory edge),
        # shifting 24 W away from DRAM costs far more than shifting 24 W
        # away from the CPU (paper: 50 % vs 10 %).
        from repro.core.analysis import _optimal_plateau
        from repro.perfmodel.executor import execute_on_host

        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, sra, 224.0, step_w=4.0)
        lo, _ = _optimal_plateau(sweep)
        opt = sweep.points[lo].allocation
        base = sweep.perf_max
        to_cpu = opt.shifted(-24.0)
        to_mem = opt.shifted(24.0)
        loss_mem_starved = 1 - sra.performance(
            execute_on_host(ivb.cpu, ivb.dram, sra.phases, to_cpu.proc_w, to_cpu.mem_w)
        ) / base
        loss_cpu_starved = 1 - sra.performance(
            execute_on_host(ivb.cpu, ivb.dram, sra.phases, to_mem.proc_w, to_mem.mem_w)
        ) / base
        assert loss_mem_starved > 2 * loss_cpu_starved

    def test_tiny_sweep_rejected(self, ivb, sra):
        tiny = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, sra, 40.0, step_w=8.0, mem_min_w=16.0, proc_min_w=8.0
        )
        with pytest.raises(SweepError):
            critical_component(ivb.cpu, ivb.dram, sra, tiny, shift_w=24.0)


class TestTable1:
    def test_regime_progression(self, ivb, sra):
        rows = table1_rows(ivb.cpu, ivb.dram, sra, [280.0, 224.0, 150.0], step_w=4.0)
        # Large budget: optimum in I, no critical component.
        assert Scenario.I in rows[0].intersection
        assert rows[0].critical is None
        # Middle: II|III with DRAM critical (paper's row 2).
        assert set(rows[1].intersection) == {Scenario.II, Scenario.III}
        assert rows[1].critical == "DRAM"
        # Small: optimum moves to III|IV.
        assert Scenario.IV in rows[2].intersection or Scenario.III in rows[2].intersection

    def test_perf_max_decreases_with_budget(self, ivb, sra):
        rows = table1_rows(ivb.cpu, ivb.dram, sra, [280.0, 200.0, 150.0], step_w=8.0)
        perfs = [r.perf_max for r in rows]
        assert perfs == sorted(perfs, reverse=True)

    def test_valid_scenarios_shrink(self, ivb, sra):
        rows = table1_rows(ivb.cpu, ivb.dram, sra, [280.0, 150.0], step_w=8.0)
        assert len(rows[1].valid_scenarios) < len(rows[0].valid_scenarios)


class TestBalanceAnalysis:
    def test_optimum_is_balanced(self, ivb, stream):
        # Figure 5: at the optimum both utilizations approach 100 %.
        sweep = sweep_cpu_allocations(ivb.cpu, ivb.dram, stream, 208.0, step_w=4.0)
        opt = sweep.best.allocation
        [bp] = balance_analysis(ivb.cpu, ivb.dram, stream, [opt])
        assert bp.compute_utilization > 0.9
        assert bp.mem_utilization > 0.9

    def test_cpu_starved_allocation_underuses_memory(self, ivb, stream):
        starved = PowerAllocation(56.0, 152.0)
        [bp] = balance_analysis(ivb.cpu, ivb.dram, stream, [starved])
        assert bp.compute_utilization > 0.9  # the bottleneck runs flat out
        assert bp.mem_utilization < 0.7  # the other capacity idles

    def test_mem_starved_allocation_underuses_compute(self, ivb, dgemm):
        starved = PowerAllocation(48.0 + 20.0, 208.0 - 68.0)
        # DGEMM with CPU near its floor: compute is the bottleneck.
        [bp] = balance_analysis(ivb.cpu, ivb.dram, dgemm, [starved])
        assert bp.compute_utilization > bp.mem_utilization

    def test_capacity_exceeds_rate(self, ivb, stream):
        pts = balance_analysis(
            ivb.cpu, ivb.dram, stream,
            [PowerAllocation(120.0, 88.0), PowerAllocation(92.0, 116.0)],
        )
        for bp in pts:
            assert bp.compute_rate <= bp.compute_capacity * (1 + 1e-9)
            assert bp.mem_rate <= bp.mem_capacity * (1 + 1e-9)
