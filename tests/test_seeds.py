"""Deterministic RNG management."""

import numpy as np

from repro.util.seeds import DEFAULT_SEED, derive_seed, spawn_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_label_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_base_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_boundary_is_unambiguous(self):
        # ("ab", "c") must differ from ("a", "bc") — separator matters.
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(2**120, "x") < 2**64


class TestSpawnRng:
    def test_same_path_same_stream(self):
        a = spawn_rng(7, "x").random(8)
        b = spawn_rng(7, "x").random(8)
        assert np.array_equal(a, b)

    def test_different_paths_diverge(self):
        a = spawn_rng(7, "x").random(8)
        b = spawn_rng(7, "y").random(8)
        assert not np.array_equal(a, b)

    def test_default_seed_used(self):
        a = spawn_rng().random(4)
        b = spawn_rng(DEFAULT_SEED).random(4)
        assert np.array_equal(a, b)
