"""Per-phase adaptive coordination."""

import pytest

from repro.core.adaptive import (
    adaptive_coord,
    adaptive_vs_static,
    execute_adaptive,
    profile_phases,
)
from repro.workloads import cpu_workload


class TestProfilePhases:
    def test_one_profile_per_phase(self, ivb):
        bt = cpu_workload("bt")
        criticals = profile_phases(ivb.cpu, ivb.dram, bt)
        assert len(criticals) == len(bt.phases)

    def test_phase_demands_differ(self, ivb):
        # BT's solve phase is compute-hungry, its rhs phase memory-hungry;
        # their profiled demands must reflect that.
        bt = cpu_workload("bt")
        solve, rhs = profile_phases(ivb.cpu, ivb.dram, bt)
        assert solve.cpu_l1 > rhs.cpu_l1
        assert rhs.mem_l1 > solve.mem_l1

    def test_single_phase_matches_whole_profile(self, ivb, stream):
        from repro.core.profiler import profile_cpu_workload

        [per_phase] = profile_phases(ivb.cpu, ivb.dram, stream)
        whole = profile_cpu_workload(ivb.cpu, ivb.dram, stream)
        assert per_phase.cpu_l1 == pytest.approx(whole.cpu_l1, abs=1.0)
        assert per_phase.mem_l1 == pytest.approx(whole.mem_l1, abs=1.0)


class TestAdaptiveSchedule:
    def test_every_phase_allocated(self, ivb):
        mg = cpu_workload("mg")
        criticals = profile_phases(ivb.cpu, ivb.dram, mg)
        schedule = adaptive_coord(criticals, 200.0)
        assert len(schedule.allocations) == len(mg.phases)
        assert schedule.accepted
        for alloc in schedule.allocations:
            assert alloc.total_w <= 200.0 + 1e-6

    def test_allocations_track_phase_character(self, ivb):
        bt = cpu_workload("bt")
        criticals = profile_phases(ivb.cpu, ivb.dram, bt)
        schedule = adaptive_coord(criticals, 180.0)
        solve_alloc, rhs_alloc = schedule.allocations
        # The compute phase gets more CPU watts than the streaming phase.
        assert solve_alloc.proc_w > rhs_alloc.proc_w

    def test_execute_adaptive_runs_all_phases(self, ivb):
        ft = cpu_workload("ft")
        criticals = profile_phases(ivb.cpu, ivb.dram, ft)
        schedule = adaptive_coord(criticals, 200.0)
        result = execute_adaptive(ivb.cpu, ivb.dram, ft, schedule)
        assert len(result.phases) == len(ft.phases)
        assert result.elapsed_s > 0


class TestAdaptiveVsStatic:
    def test_wins_for_divergent_phases(self, ivb):
        # BT at a budget below its full demand: per-phase shifting beats
        # the static compromise.
        cmp = adaptive_vs_static(ivb.cpu, ivb.dram, cpu_workload("bt"), 200.0)
        assert cmp.speedup > 1.1

    def test_never_much_worse(self, ivb):
        for name in ("bt", "sp", "lu", "ft", "mg"):
            for budget in (160.0, 200.0):
                cmp = adaptive_vs_static(ivb.cpu, ivb.dram, cpu_workload(name), budget)
                assert cmp.speedup > 0.90, (name, budget)

    def test_no_gain_for_single_phase(self, ivb, stream):
        cmp = adaptive_vs_static(ivb.cpu, ivb.dram, stream, 180.0)
        assert cmp.speedup == pytest.approx(1.0, abs=0.02)

    def test_no_gain_at_ample_budget(self, ivb):
        # With power for everything, static == adaptive (both case A).
        cmp = adaptive_vs_static(ivb.cpu, ivb.dram, cpu_workload("mg"), 280.0)
        assert cmp.speedup == pytest.approx(1.0, abs=0.02)
