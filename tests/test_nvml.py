"""NVML-style driver handle behaviour."""

import pytest

from repro.errors import PowerBoundError
from repro.hardware.nvml import NvmlDevice
from repro.hardware.platforms import titan_xp_card


@pytest.fixture
def device():
    return NvmlDevice(titan_xp_card())


class TestPowerLimit:
    def test_default_is_factory_cap(self, device):
        assert device.power_limit_w == 250.0

    def test_set_within_range(self, device):
        assert device.set_power_limit(180.0) == 180.0
        assert device.power_limit_w == 180.0

    def test_out_of_range_rejected(self, device):
        with pytest.raises(PowerBoundError):
            device.set_power_limit(80.0)
        assert device.power_limit_w == 250.0  # unchanged after failure

    def test_reset_restores_default(self, device):
        device.set_power_limit(300.0)
        assert device.reset_power_limit() == 250.0


class TestMemClock:
    def test_starts_at_nominal(self, device):
        assert device.mem_operating_point.freq_mhz == pytest.approx(5705.0)
        assert device.mem_clock_offset_mhz == pytest.approx(0.0)

    def test_negative_offset(self, device):
        op = device.set_mem_clock_offset(-500.0)
        # The driver snaps onto its offset grid; within half a step.
        assert op.freq_mhz == pytest.approx(5205.0, abs=device.card.mem.step_mhz / 2)
        assert op.freq_mhz in device.card.mem.frequencies_mhz
        assert device.mem_clock_offset_mhz == pytest.approx(
            -500.0, abs=device.card.mem.step_mhz / 2
        )

    def test_offset_below_driver_range_rejected(self, device):
        with pytest.raises(PowerBoundError):
            device.set_mem_clock_offset(-3000.0)

    def test_power_target_steering(self, device):
        op = device.set_mem_power_target(50.0)
        assert device.card.mem.allocated_power_w(op.freq_mhz) <= 50.0 + 1e-9


class TestDefaultPolicy:
    def test_resets_memory_to_nominal(self, device):
        device.set_mem_clock_offset(-1000.0)
        device.apply_default_policy()
        assert device.mem_operating_point.freq_mhz == pytest.approx(5705.0)

    def test_optionally_sets_cap(self, device):
        device.apply_default_policy(cap_w=200.0)
        assert device.power_limit_w == 200.0
