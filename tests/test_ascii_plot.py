"""Terminal plotting helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.util.ascii_plot import block_chart, sparkline


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(line) == 8

    def test_flat_series_mid_height(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_pinned_scale(self):
        line = sparkline([5.0], lo=0.0, hi=10.0)
        assert line in "▄▅"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([])

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([1.0, float("nan")])

    def test_shape_of_fig2_curve(self, ivb, dgemm):
        # The budget curve's rising-then-flat shape is visible at a glance.
        import numpy as np

        from repro.core.sweep import cpu_budget_curve

        curve = cpu_budget_curve(
            ivb.cpu, ivb.dram, dgemm, np.arange(140.0, 281.0, 20.0), step_w=8.0
        )
        line = sparkline(curve.perf_max)
        assert line[0] == "▁" and line.endswith("██")


class TestBlockChart:
    def test_renders_rows(self):
        out = block_chart(["a", "bb"], [1.0, 2.0], width=10, unit=" W")
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("█") == 10  # max fills the width
        assert " W" in lines[0]

    def test_zero_values(self):
        out = block_chart(["x"], [0.0], width=5)
        assert "·····" in out

    def test_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            block_chart(["a"], [1.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            block_chart(["a"], [-1.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            block_chart([], [])
