"""Public API surface: every exported name resolves and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.hardware",
    "repro.perfmodel",
    "repro.workloads",
    "repro.sched",
    "repro.experiments",
    "repro.util",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), package
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_sorted(self, package):
        module = importlib.import_module(package)
        assert list(module.__all__) == sorted(module.__all__), package

    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, package

    def test_public_callables_documented(self):
        # Every public function/class reachable from the top level has a
        # docstring.
        import repro

        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not getattr(obj, "__doc__", None):
                undocumented.append(name)
        assert not undocumented, undocumented

    def test_version_present(self):
        import repro

        assert repro.__version__.count(".") == 2


class TestExamplesRun:
    """Every shipped example executes cleanly (smoke integration)."""

    @pytest.mark.parametrize(
        "example, argv",
        [
            ("quickstart", ["208"]),
            ("scenario_atlas", ["sra", "224"]),
            ("gpu_power_steering", ["minife"]),
            ("cluster_scheduling", ["650"]),
            ("characterize_and_coordinate", ["cg"]),
            ("biglittle_crossover", ["cg"]),
            ("hybrid_offload", []),
            ("adaptive_phases", ["mg", "200"]),
        ],
    )
    def test_example(self, example, argv, capsys, monkeypatch):
        import runpy
        import sys
        from pathlib import Path

        script = Path(__file__).parent.parent / "examples" / f"{example}.py"
        assert script.exists(), script
        monkeypatch.setattr(sys, "argv", [str(script), *argv])
        runpy.run_path(str(script), run_name="__main__")
        out = capsys.readouterr().out
        assert len(out) > 100  # produced a real report
