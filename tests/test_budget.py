"""Budget advice for higher-level schedulers."""

import pytest

from repro.core.budget import BudgetVerdict, advise_budget
from repro.core.critical import CpuCriticalPowers


@pytest.fixture
def critical():
    return CpuCriticalPowers(
        cpu_l1=112.0, cpu_l2=66.0, cpu_l3=50.0, cpu_l4=48.0,
        mem_l1=116.0, mem_l2=30.0, mem_l3=66.0,
    )


class TestVerdicts:
    def test_below_threshold_rejected(self, critical):
        advice = advise_budget(critical, 90.0)
        assert advice.verdict is BudgetVerdict.REJECT
        assert advice.reclaimable_w == 90.0

    def test_productive_band_accepted(self, critical):
        advice = advise_budget(critical, 180.0)
        assert advice.verdict is BudgetVerdict.ACCEPT
        assert advice.surplus_w == 0.0
        assert advice.reclaimable_w == 0.0

    def test_above_demand_surplus(self, critical):
        advice = advise_budget(critical, 260.0)
        assert advice.verdict is BudgetVerdict.ACCEPT_WITH_SURPLUS
        assert advice.surplus_w == pytest.approx(32.0)
        assert advice.reclaimable_w == pytest.approx(32.0)

    def test_boundaries(self, critical):
        assert advise_budget(critical, 96.0).verdict is BudgetVerdict.ACCEPT
        assert advise_budget(critical, 95.99).verdict is BudgetVerdict.REJECT
        assert advise_budget(critical, 228.0).verdict is BudgetVerdict.ACCEPT

    def test_productive_band_reported(self, critical):
        advice = advise_budget(critical, 150.0)
        assert advice.productive_band_w == (pytest.approx(96.0), pytest.approx(228.0))


class TestEndToEnd:
    def test_advice_consistent_with_coord(self, ivb, sra):
        from repro.core.coord import coord_cpu
        from repro.core.profiler import profile_cpu_workload

        critical = profile_cpu_workload(ivb.cpu, ivb.dram, sra)
        for budget in (80.0, 120.0, 200.0, 300.0):
            advice = advise_budget(critical, budget)
            decision = coord_cpu(critical, budget)
            assert decision.accepted == (advice.verdict is not BudgetVerdict.REJECT)
            if advice.verdict is BudgetVerdict.ACCEPT_WITH_SURPLUS:
                assert decision.surplus_w == pytest.approx(advice.surplus_w)
