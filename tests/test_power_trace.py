"""Power-trace sampling."""

import numpy as np
import pytest

from repro.errors import UnitError
from repro.perfmodel.executor import execute_on_host
from repro.perfmodel.power_trace import sample_power_trace
from repro.workloads import cpu_workload


@pytest.fixture(scope="module")
def result(ivb):
    bt = cpu_workload("bt")
    return execute_on_host(ivb.cpu, ivb.dram, bt.phases, 1000.0, 1000.0)


class TestSampling:
    def test_covers_run(self, result):
        trace = sample_power_trace(result, dt_s=0.05)
        assert trace.duration_s >= result.elapsed_s - 1e-9

    def test_energy_close_to_result(self, result):
        trace = sample_power_trace(result, dt_s=0.01)
        assert trace.energy_j() == pytest.approx(result.energy_j, rel=0.02)

    def test_total_is_sum_of_domains(self, result):
        trace = sample_power_trace(result, dt_s=0.05)
        assert np.allclose(trace.total_w, trace.proc_w + trace.mem_w + trace.board_w)

    def test_phase_transition_visible(self, result):
        # BT's two phases draw different powers; both must appear.
        trace = sample_power_trace(result, dt_s=0.01)
        assert np.unique(trace.proc_w.round(6)).size >= 2

    def test_timestamps(self, result):
        trace = sample_power_trace(result, dt_s=0.5)
        times = trace.times_s
        assert times[0] == 0.0
        assert np.all(np.diff(times) == pytest.approx(0.5))

    def test_rejects_bad_dt(self, result):
        with pytest.raises(UnitError):
            sample_power_trace(result, dt_s=0.0)

    def test_running_average_compliance_integration(self, ivb):
        from repro.hardware.rapl import RaplDomainName

        stream = cpu_workload("stream")
        caps = (100.0, 90.0)
        r = execute_on_host(ivb.cpu, ivb.dram, stream.phases, caps[0], caps[1])
        trace = sample_power_trace(r, dt_s=0.01)
        ivb.rapl.set_power_limit(RaplDomainName.PACKAGE, caps[0])
        ivb.rapl.set_power_limit(RaplDomainName.DRAM, caps[1])
        assert ivb.rapl.check_running_average(RaplDomainName.PACKAGE, trace.proc_w, 0.01)
        assert ivb.rapl.check_running_average(RaplDomainName.DRAM, trace.mem_w, 0.01)
