"""Hybrid CPU+GPU coordination."""

import pytest

from repro.core.coord_hybrid import (
    HybridStep,
    HybridWorkload,
    coord_hybrid,
    execute_hybrid,
    offload_workload,
)
from repro.errors import ConfigurationError, InfeasibleBudgetError
from repro.hardware.platforms import get_platform, ivybridge_node
from repro.perfmodel.phase import Phase


@pytest.fixture(scope="module")
def node():
    return get_platform("titan-xp-host")


@pytest.fixture(scope="module")
def wl():
    return offload_workload()


def simple_phase():
    return Phase(
        name="p", flops=1e9, bytes_moved=1e10, activity=0.5,
        compute_efficiency=0.05, memory_efficiency=0.5,
    )


class TestHybridWorkload:
    def test_views_partition_steps(self, wl):
        host = wl.host_view()
        gpu = wl.gpu_view()
        assert len(host.phases) + len(gpu.phases) == len(wl.steps)
        assert host.device == "cpu" and gpu.device == "gpu"

    def test_bad_device_rejected(self):
        with pytest.raises(ConfigurationError):
            HybridStep("tpu", simple_phase())

    def test_gpu_free_workload_rejected(self):
        with pytest.raises(ConfigurationError, match="never uses the GPU"):
            HybridWorkload(name="x", steps=(HybridStep("cpu", simple_phase()),))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            HybridWorkload(name="x", steps=())


class TestCoordination:
    def test_decision_structure(self, node, wl):
        decision = coord_hybrid(node, wl, 400.0)
        assert decision.host.accepted
        card = node.gpu(0)
        assert card.min_cap_w <= decision.gpu_cap_w <= card.max_cap_w
        assert card.mem.min_mhz <= decision.gpu_mem_freq_mhz <= card.mem.nominal_mhz

    def test_budget_shifts_to_active_side(self, node, wl):
        # The GPU cap exceeds a static half-split because the host is
        # idle during device steps.
        decision = coord_hybrid(node, wl, 400.0)
        assert decision.gpu_cap_w > 200.0

    def test_infeasible_budget(self, node, wl):
        with pytest.raises(InfeasibleBudgetError):
            coord_hybrid(node, wl, 150.0)

    def test_gpuless_node_rejected(self, wl):
        with pytest.raises(ConfigurationError, match="no GPU"):
            coord_hybrid(ivybridge_node(), wl, 400.0)


class TestExecution:
    def test_peak_power_respects_bound(self, node, wl):
        budget = 400.0
        decision = coord_hybrid(node, wl, budget)
        result = execute_hybrid(node, wl, decision)
        assert result.peak_node_power_w <= budget + 1e-6

    def test_times_partition(self, node, wl):
        decision = coord_hybrid(node, wl, 420.0)
        result = execute_hybrid(node, wl, decision)
        assert result.elapsed_s == pytest.approx(
            result.host_time_s + result.gpu_time_s
        )
        assert result.gpu_time_s > 0 and result.host_time_s > 0

    def test_performance_improves_with_budget(self, node, wl):
        lo = execute_hybrid(node, wl, coord_hybrid(node, wl, 330.0))
        hi = execute_hybrid(node, wl, coord_hybrid(node, wl, 450.0))
        assert hi.performance_gflops >= lo.performance_gflops

    def test_beats_static_split(self, node, wl):
        # The shifting coordinator beats a static half/half division of
        # the node budget at a tight bound.
        from repro.core.coord import coord_cpu
        from repro.core.coord_gpu import coord_gpu
        from repro.core.coord_hybrid import HybridDecision
        from repro.core.profiler import profile_cpu_workload, profile_gpu_workload
        from repro.util.units import clamp

        budget = 360.0
        card = node.gpu(0)
        dynamic = execute_hybrid(node, wl, coord_hybrid(node, wl, budget))

        host_critical = profile_cpu_workload(node.cpu, node.dram, wl.host_view())
        gpu_critical = profile_gpu_workload(card, wl.gpu_view())
        half = budget / 2.0
        static = HybridDecision(
            host=coord_cpu(host_critical, half),
            gpu=coord_gpu(gpu_critical, clamp(half, card.min_cap_w, card.max_cap_w),
                          hardware_max_w=card.max_cap_w),
            gpu_cap_w=clamp(half, card.min_cap_w, card.max_cap_w),
            gpu_mem_freq_mhz=card.mem.nominal_mhz,
        )
        static_result = execute_hybrid(node, wl, static)
        assert dynamic.performance_gflops > static_result.performance_gflops
        # Static also pays its worst-case concurrent peak for nothing.
        assert static_result.peak_node_power_w <= budget + 1e-6

    def test_energy_accounting(self, node, wl):
        decision = coord_hybrid(node, wl, 400.0)
        result = execute_hybrid(node, wl, decision)
        assert result.energy_j > 0
        assert result.energy_j <= result.peak_node_power_w * result.elapsed_s + 1e-6
