"""RAPL power meter: counter-based measurement with wrap handling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.meter import RaplPowerMeter
from repro.hardware.rapl import RaplDomainName, RaplInterface
from repro.perfmodel.executor import execute_on_host
from repro.perfmodel.power_trace import sample_power_trace
from repro.workloads import cpu_workload


@pytest.fixture
def observed(ivb):
    wl = cpu_workload("bt")
    result = execute_on_host(ivb.cpu, ivb.dram, wl.phases, 150.0, 100.0)
    trace = sample_power_trace(result, dt_s=0.01)
    rapl = RaplInterface()
    meter = RaplPowerMeter(rapl, RaplDomainName.PACKAGE, poll_interval_s=0.1)
    readings = meter.observe_trace(trace, "proc")
    return result, trace, meter, readings


class TestObservation:
    def test_reconstructs_average_power(self, observed):
        result, trace, meter, readings = observed
        measured = RaplPowerMeter.average_power_w(readings)
        assert measured == pytest.approx(result.proc_power_w, rel=0.02)

    def test_windows_tile_the_run(self, observed):
        result, trace, meter, readings = observed
        total = sum(r.t_end_s - r.t_start_s for r in readings)
        assert total == pytest.approx(trace.duration_s, rel=1e-9)

    def test_max_window_at_least_average(self, observed):
        _, _, meter, readings = observed
        assert RaplPowerMeter.max_window_power_w(readings) >= (
            RaplPowerMeter.average_power_w(readings) - 1e-9
        )

    def test_as_array(self, observed):
        _, _, meter, readings = observed
        arr = meter.as_array(readings)
        assert arr.shape == (len(readings),)
        assert np.all(arr > 0)

    def test_phase_power_difference_visible(self, observed):
        # BT's phases draw different power; the meter should see both.
        _, _, meter, readings = observed
        powers = meter.as_array(readings)
        assert powers.max() - powers.min() > 1.0

    def test_survives_counter_wrap(self, ivb):
        wl = cpu_workload("stream")
        result = execute_on_host(ivb.cpu, ivb.dram, wl.phases, 150.0, 100.0)
        trace = sample_power_trace(result, dt_s=0.01)
        rapl = RaplInterface()
        # Pre-load the counter close to the 32-bit wrap (2^16 J capacity).
        rapl.record_energy(RaplDomainName.PACKAGE, 2**16 - 5.0)
        meter = RaplPowerMeter(rapl, RaplDomainName.PACKAGE, poll_interval_s=0.1)
        readings = meter.observe_trace(trace, "proc")
        measured = RaplPowerMeter.average_power_w(readings)
        assert measured == pytest.approx(result.proc_power_w, rel=0.02)


class TestValidation:
    def test_bad_channel(self, observed, ivb):
        _, trace, meter, _ = observed
        with pytest.raises(ConfigurationError):
            meter.observe_trace(trace, "gpu")

    def test_empty_readings_rejected(self):
        with pytest.raises(ConfigurationError):
            RaplPowerMeter.average_power_w([])
        with pytest.raises(ConfigurationError):
            RaplPowerMeter.max_window_power_w([])

    def test_bad_interval(self):
        with pytest.raises(Exception):
            RaplPowerMeter(RaplInterface(), RaplDomainName.PACKAGE, poll_interval_s=0.0)
