"""RAPL power meter: counter-based measurement with wrap handling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.meter import RaplPowerMeter
from repro.hardware.rapl import (
    _COUNTER_MODULUS,
    ENERGY_UNIT_J,
    MsrEnergyCounter,
    RaplDomainName,
    RaplInterface,
)
from repro.perfmodel.executor import execute_on_host
from repro.perfmodel.power_trace import PowerTrace, sample_power_trace
from repro.workloads import cpu_workload

WRAP_J = _COUNTER_MODULUS * ENERGY_UNIT_J  # 65536 J of counter capacity


@pytest.fixture
def observed(ivb):
    wl = cpu_workload("bt")
    result = execute_on_host(ivb.cpu, ivb.dram, wl.phases, 150.0, 100.0)
    trace = sample_power_trace(result, dt_s=0.01)
    rapl = RaplInterface()
    meter = RaplPowerMeter(rapl, RaplDomainName.PACKAGE, poll_interval_s=0.1)
    readings = meter.observe_trace(trace, "proc")
    return result, trace, meter, readings


class TestObservation:
    def test_reconstructs_average_power(self, observed):
        result, trace, meter, readings = observed
        measured = RaplPowerMeter.average_power_w(readings)
        assert measured == pytest.approx(result.proc_power_w, rel=0.02)

    def test_windows_tile_the_run(self, observed):
        result, trace, meter, readings = observed
        total = sum(r.t_end_s - r.t_start_s for r in readings)
        assert total == pytest.approx(trace.duration_s, rel=1e-9)

    def test_max_window_at_least_average(self, observed):
        _, _, meter, readings = observed
        assert RaplPowerMeter.max_window_power_w(readings) >= (
            RaplPowerMeter.average_power_w(readings) - 1e-9
        )

    def test_as_array(self, observed):
        _, _, meter, readings = observed
        arr = meter.as_array(readings)
        assert arr.shape == (len(readings),)
        assert np.all(arr > 0)

    def test_phase_power_difference_visible(self, observed):
        # BT's phases draw different power; the meter should see both.
        _, _, meter, readings = observed
        powers = meter.as_array(readings)
        assert powers.max() - powers.min() > 1.0

    def test_survives_counter_wrap(self, ivb):
        wl = cpu_workload("stream")
        result = execute_on_host(ivb.cpu, ivb.dram, wl.phases, 150.0, 100.0)
        trace = sample_power_trace(result, dt_s=0.01)
        rapl = RaplInterface()
        # Pre-load the counter close to the 32-bit wrap (2^16 J capacity).
        rapl.record_energy(RaplDomainName.PACKAGE, 2**16 - 5.0)
        meter = RaplPowerMeter(rapl, RaplDomainName.PACKAGE, poll_interval_s=0.1)
        readings = meter.observe_trace(trace, "proc")
        measured = RaplPowerMeter.average_power_w(readings)
        assert measured == pytest.approx(result.proc_power_w, rel=0.02)


class TestDoubleWrap:
    """Pinned regression: two 32-bit wraps inside one polling window.

    A modular delta only carries ``delta mod 2**32`` ticks of
    information, so a window consuming more than two counter capacities
    aliases to a small value.  ``expected_j`` recovers the lost wrap
    count ``k``; without it the undershoot is physically unavoidable —
    both behaviors are pinned here.
    """

    def test_counter_level_double_wrap_disambiguated(self):
        true_j = 2.0 * WRAP_J + 100.0
        now_raw = round(true_j / ENERGY_UNIT_J) % _COUNTER_MODULUS
        # The raw modular delta aliases two full wraps down to ~100 J...
        aliased = MsrEnergyCounter.delta_joules(0, now_raw)
        assert aliased == pytest.approx(100.0, abs=1e-6)
        # ...and the energy expectation reconstructs the true delta.
        recovered = MsrEnergyCounter.delta_joules(0, now_raw, expected_j=true_j)
        assert recovered == pytest.approx(true_j, abs=1e-6)

    def test_expectation_is_noop_without_wraps(self):
        raw = round(500.0 / ENERGY_UNIT_J)
        # A rough expectation (k rounds to 0) must not perturb the delta.
        assert MsrEnergyCounter.delta_joules(
            0, raw, expected_j=480.0
        ) == pytest.approx(500.0, abs=1e-6)

    @staticmethod
    def _constant_trace(power_w: float, duration_s: float) -> PowerTrace:
        n = int(round(duration_s / 0.1))
        return PowerTrace(
            dt_s=0.1,
            proc_w=np.full(n, power_w),
            mem_w=np.zeros(n),
            board_w=np.zeros(n),
        )

    def test_meter_reconstructs_through_double_wrap(self):
        # 2200 W x 60 s windows = 132 kJ per poll: more than two full
        # counter capacities (131072 J) between consecutive reads.
        trace = self._constant_trace(2200.0, 180.0)
        meter = RaplPowerMeter(
            RaplInterface(),
            RaplDomainName.PACKAGE,
            poll_interval_s=60.0,
            expected_power_w=2200.0,
        )
        readings = meter.observe_trace(trace, "proc")
        measured = RaplPowerMeter.average_power_w(readings)
        assert measured == pytest.approx(2200.0, rel=1e-6)

    def test_meter_aliases_without_expectation(self):
        # The undershoot this meter shows *without* an energy
        # expectation is the bug being pinned: 132 kJ windows alias to
        # 132000 mod 65536 = 928 J, i.e. ~15 W instead of 2200 W.
        trace = self._constant_trace(2200.0, 180.0)
        meter = RaplPowerMeter(
            RaplInterface(), RaplDomainName.PACKAGE, poll_interval_s=60.0
        )
        readings = meter.observe_trace(trace, "proc")
        measured = RaplPowerMeter.average_power_w(readings)
        assert measured < 20.0


class TestValidation:
    def test_bad_channel(self, observed, ivb):
        _, trace, meter, _ = observed
        with pytest.raises(ConfigurationError):
            meter.observe_trace(trace, "gpu")

    def test_empty_readings_rejected(self):
        with pytest.raises(ConfigurationError):
            RaplPowerMeter.average_power_w([])
        with pytest.raises(ConfigurationError):
            RaplPowerMeter.max_window_power_w([])

    def test_bad_interval(self):
        with pytest.raises(Exception):
            RaplPowerMeter(RaplInterface(), RaplDomainName.PACKAGE, poll_interval_s=0.0)
