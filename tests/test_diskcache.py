"""The persistent cross-process sweep cache.

Locks the three hard requirements of :mod:`repro.core.diskcache`:
atomicity under concurrent writer processes (no interleaving ever
corrupts the store), corruption tolerance (truncated/garbage/stale
segments are skipped with a warning, never raised), and invalidation
(segments from a different format/schema/package are never served).
Also covers the codec's bit-for-bit float round-trip and the MemoCache /
SweepEngine integration (``disk_hits``, write-through, env plumbing).
"""

from __future__ import annotations

import json
import math
import multiprocessing
import warnings

import pytest
from hypothesis import given, settings

from repro.core.diskcache import (
    CACHE_FORMAT,
    CACHE_SCHEMA_VERSION,
    CacheIntegrityWarning,
    DiskCache,
    DiskCacheError,
    decode_result,
    digest_key,
    encode_result,
)
from repro.core.parallel import (
    CACHE_DIR_ENV_VAR,
    MemoCache,
    SweepEngine,
    resolve_cache_dir,
)
from repro.core.sweep import sweep_cpu_allocations
from repro.errors import SweepError
from repro.faults import FaultKind, FaultPlan, FaultSpec, use_faults
from repro.hardware.component import CappingMechanism
from repro.perfmodel.metrics import ExecutionResult, PhaseResult

from tests.conftest import fault_plans


def make_result(seed: float, *, device: str = "host") -> ExecutionResult:
    """A synthetic, content-distinct ExecutionResult."""
    phase = PhaseResult(
        name=f"phase-{seed}",
        time_s=1.0 + seed,
        t_compute_s=0.5 + seed,
        t_memory_s=0.5,
        utilization=0.6,
        mem_busy=0.4,
        proc_freq_ghz=2.0,
        proc_duty=1.0,
        mem_throttle=1.0,
        proc_mechanism=CappingMechanism.DVFS,
        mem_mechanism=CappingMechanism.NONE,
        proc_power_w=90.0 + seed,
        mem_power_w=20.0,
        board_power_w=110.0 + seed if device == "gpu" else 0.0,
        flops=1e9,
        bytes_moved=1e8,
    )
    return ExecutionResult(
        phases=(phase,),
        proc_cap_w=100.0 + seed,
        mem_cap_w=30.0,
        device=device,
    )


def _writer_process(root: str, worker: int, n_keys: int) -> None:
    """Store overlapping + distinct keys, flushing a segment per record."""
    cache = DiskCache(root, flush_every=1)
    for k in range(n_keys):
        cache.store(("shared", k), make_result(float(k)))
        cache.store(("worker", worker, k), make_result(worker * 100.0 + k))
    cache.flush()


# ---------------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------------

class TestCodec:
    @pytest.mark.parametrize("device", ["host", "gpu"])
    def test_roundtrip_is_exact(self, device):
        result = make_result(1.25, device=device)
        assert decode_result(encode_result(result)) == result

    def test_roundtrip_through_json_keeps_floats_bitwise(self):
        result = make_result(0.1)  # 0.1 is not dyadic: repr must carry it
        payload = json.loads(json.dumps(encode_result(result)))
        decoded = decode_result(payload)
        assert decoded == result
        assert decoded.phases[0].time_s == result.phases[0].time_s

    def test_roundtrip_none_caps(self):
        result = ExecutionResult(
            phases=make_result(0.0).phases, proc_cap_w=None, mem_cap_w=None
        )
        assert decode_result(encode_result(result)) == result

    def test_roundtrip_inf_and_nan(self):
        base = make_result(0.0).phases[0]
        phase = PhaseResult(
            **{
                **{f: getattr(base, f) for f in base.__dataclass_fields__},
                "flops": math.inf,
                "bytes_moved": math.nan,
            }
        )
        result = ExecutionResult(phases=(phase,), proc_cap_w=1.0, mem_cap_w=1.0)
        payload = json.loads(json.dumps(encode_result(result)))
        decoded = decode_result(payload)
        assert decoded.phases[0].flops == math.inf
        assert math.isnan(decoded.phases[0].bytes_moved)

    def test_mechanisms_stored_by_name(self):
        payload = encode_result(make_result(0.0))
        assert payload["phases"][0]["proc_mechanism"] == "DVFS"
        assert payload["phases"][0]["mem_mechanism"] == "NONE"

    def test_decode_rejects_malformed(self):
        with pytest.raises((TypeError, KeyError)):
            decode_result({"device": "host", "phases": "nope"})

    def test_digest_is_stable_and_distinct(self):
        key = ("host", ("fp", 1.0), 144.0, 16.0)
        assert digest_key(key) == digest_key(("host", ("fp", 1.0), 144.0, 16.0))
        assert digest_key(key) != digest_key(("host", ("fp", 1.0), 144.0, 20.0))


# ---------------------------------------------------------------------------
# store basics: cross-instance persistence, refresh, compaction
# ---------------------------------------------------------------------------

class TestDiskCacheStore:
    def test_cross_instance_roundtrip(self, tmp_path):
        first = DiskCache(tmp_path)
        value = make_result(3.0)
        first.store(("k", 3), value)
        first.flush()
        second = DiskCache(tmp_path)
        hit, loaded = second.lookup(("k", 3))
        assert hit and loaded == value
        assert second.stats.records_loaded == 1

    def test_unflushed_records_are_invisible_to_other_instances(self, tmp_path):
        first = DiskCache(tmp_path)
        first.store(("k", 1), make_result(1.0))
        assert DiskCache(tmp_path).lookup(("k", 1)) == (False, None)
        first.flush()
        assert DiskCache(tmp_path).lookup(("k", 1))[0]

    def test_flush_every_publishes_automatically(self, tmp_path):
        cache = DiskCache(tmp_path, flush_every=2)
        cache.store(("k", 1), make_result(1.0))
        assert not list(tmp_path.glob("seg-*.jsonl"))
        cache.store(("k", 2), make_result(2.0))
        assert len(list(tmp_path.glob("seg-*.jsonl"))) == 1

    def test_flush_on_empty_is_a_noop(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.flush()
        assert not list(tmp_path.glob("seg-*.jsonl"))
        assert cache.stats.flushes == 0

    def test_refresh_sees_segments_from_other_writers(self, tmp_path):
        reader = DiskCache(tmp_path)
        writer = DiskCache(tmp_path)
        writer.store(("k", 7), make_result(7.0))
        writer.flush()
        assert reader.lookup(("k", 7)) == (False, None)
        assert reader.refresh() == 1
        assert reader.lookup(("k", 7))[0]

    def test_duplicate_digests_are_stored_once(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store(("k", 1), make_result(1.0))
        cache.store(("k", 1), make_result(1.0))
        cache.flush()
        assert cache.stats.stores == 1
        assert len(cache) == 1

    def test_compact_merges_segments(self, tmp_path):
        cache = DiskCache(tmp_path, flush_every=1)
        for k in range(5):
            cache.store(("k", k), make_result(float(k)))
        assert len(list(tmp_path.glob("seg-*.jsonl"))) == 5
        assert cache.compact() == 5
        assert len(list(tmp_path.glob("seg-*.jsonl"))) == 1
        fresh = DiskCache(tmp_path)
        assert len(fresh) == 5
        assert fresh.stats.segments_loaded == 1

    def test_bad_root_rejected(self, tmp_path):
        target = tmp_path / "afile"
        target.write_text("not a directory")
        with pytest.raises(DiskCacheError):
            DiskCache(target)
        with pytest.raises(DiskCacheError):
            DiskCache(tmp_path, flush_every=0)


# ---------------------------------------------------------------------------
# corruption tolerance: skipped with a warning, never raised
# ---------------------------------------------------------------------------

class TestCorruptionTolerance:
    def _publish(self, root, n=3):
        cache = DiskCache(root)
        for k in range(n):
            cache.store(("k", k), make_result(float(k)))
        cache.flush()
        return sorted(root.glob("seg-*.jsonl"))

    def test_truncated_segment_skips_only_the_torn_record(self, tmp_path):
        (segment,) = self._publish(tmp_path)
        text = segment.read_text()
        segment.write_text(text[: len(text) - 40])  # tear the final record
        with pytest.warns(CacheIntegrityWarning, match="corrupt record"):
            fresh = DiskCache(tmp_path)
        assert fresh.stats.records_loaded == 2
        assert fresh.stats.records_skipped == 1
        assert fresh.lookup(("k", 0))[0]
        assert fresh.lookup(("k", 2)) == (False, None)  # recomputes

    def test_garbage_file_is_skipped_wholesale(self, tmp_path):
        self._publish(tmp_path)
        (tmp_path / "seg-999-1-deadbeef.jsonl").write_text("not json at all\n")
        with pytest.warns(CacheIntegrityWarning, match="missing or stale header"):
            fresh = DiskCache(tmp_path)
        assert fresh.stats.segments_skipped == 1
        assert fresh.stats.records_loaded == 3  # the good segment still serves

    def test_stale_schema_is_never_served(self, tmp_path):
        (segment,) = self._publish(tmp_path)
        lines = segment.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == CACHE_FORMAT
        header["schema"] = CACHE_SCHEMA_VERSION + 1
        segment.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.warns(CacheIntegrityWarning):
            fresh = DiskCache(tmp_path)
        assert len(fresh) == 0
        assert fresh.stats.segments_skipped == 1

    def test_stale_package_version_is_never_served(self, tmp_path):
        (segment,) = self._publish(tmp_path)
        lines = segment.read_text().splitlines()
        header = json.loads(lines[0])
        header["package"] = "0.0.0-other"
        segment.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.warns(CacheIntegrityWarning):
            assert len(DiskCache(tmp_path)) == 0

    def test_unknown_mechanism_name_recomputes_not_raises(self, tmp_path):
        (segment,) = self._publish(tmp_path, n=1)
        text = segment.read_text().replace('"DVFS"', '"WARP_DRIVE"')
        segment.write_text(text)
        with pytest.warns(CacheIntegrityWarning, match="corrupt record"):
            fresh = DiskCache(tmp_path)
        assert len(fresh) == 0

    def test_foreign_files_are_ignored_silently(self, tmp_path):
        self._publish(tmp_path)
        (tmp_path / "notes.jsonl").write_text("unrelated\n")
        (tmp_path / "README").write_text("hands off\n")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            fresh = DiskCache(tmp_path)
        assert len(fresh) == 3


# ---------------------------------------------------------------------------
# concurrency: parallel writer processes never corrupt the store
# ---------------------------------------------------------------------------

class TestConcurrentWriters:
    def test_parallel_writer_processes(self, tmp_path):
        # The store gets its own per-test subdirectory: nothing else
        # (pytest artifacts, sibling fixtures, a previous flaky run's
        # leftovers) can ever be scanned as a segment, and every run
        # starts from a provably empty root.
        root = tmp_path / "shared-store"
        root.mkdir()
        n_workers, n_keys = 4, 8
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_writer_process, args=(str(root), w, n_keys))
            for w in range(n_workers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
        hung = [p for p in procs if p.is_alive()]
        for p in hung:  # never leak a live writer into later tests
            p.terminate()
            p.join(timeout=10)
        assert not hung, f"{len(hung)} writer(s) hung past the join deadline"
        assert [p.exitcode for p in procs] == [0] * n_workers
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # zero integrity warnings allowed
            reader = DiskCache(root)
        stats = reader.stats
        assert stats.segments_skipped == 0
        assert stats.records_skipped == 0
        # Every distinct key is served; shared keys deduplicate on load.
        assert len(reader) == n_keys + n_workers * n_keys
        for k in range(n_keys):
            hit, value = reader.lookup(("shared", k))
            assert hit and value == make_result(float(k))
        for w in range(n_workers):
            for k in range(n_keys):
                assert reader.lookup(("worker", w, k))[0]

    def test_concurrent_threads_on_one_instance(self, tmp_path):
        import threading

        root = tmp_path / "shared-store"
        root.mkdir()
        cache = DiskCache(root, flush_every=4)
        errors: list[Exception] = []

        def hammer(worker: int) -> None:
            try:
                for k in range(32):
                    cache.store((worker, k), make_result(worker * 1000.0 + k))
                    cache.lookup((worker, k))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        cache.flush()
        assert not errors
        fresh = DiskCache(root)
        assert len(fresh) == 8 * 32
        assert fresh.stats.records_skipped == 0


# ---------------------------------------------------------------------------
# injected write faults: torn/corrupt segments degrade, never lie
# ---------------------------------------------------------------------------

class TestFaultedWrites:
    def test_torn_write_poisons_only_the_disk_tier(self, tmp_path):
        plan = FaultPlan(
            seed=7,
            specs=(
                FaultSpec(
                    site="diskcache.write",
                    kind=FaultKind.TORN_WRITE,
                    probability=1.0,
                ),
            ),
        )
        value = make_result(0.0)
        with use_faults(plan):
            cache = DiskCache(tmp_path, flush_every=1)
            cache.store(("k", 0), value)
        # The writer's own in-memory copy is untouched by the torn disk.
        assert cache.lookup(("k", 0)) == (True, value)
        with pytest.warns(CacheIntegrityWarning, match="corrupt record"):
            fresh = DiskCache(tmp_path)
        assert fresh.lookup(("k", 0)) == (False, None)  # recomputes

    def test_quarantine_isolates_the_mangled_segment(self, tmp_path):
        plan = FaultPlan(
            seed=7,
            specs=(
                FaultSpec(
                    site="diskcache.write",
                    kind=FaultKind.CORRUPT_WRITE,
                    probability=1.0,
                ),
            ),
        )
        with use_faults(plan):
            cache = DiskCache(tmp_path, flush_every=1)
            cache.store(("k", 0), make_result(0.0))
        with pytest.warns(CacheIntegrityWarning):
            quarantining = DiskCache(tmp_path, quarantine=True)
        assert quarantining.lookup(("k", 0)) == (False, None)
        assert list((tmp_path / "quarantine").glob("seg-*.jsonl"))
        # The poisoned segment is out of the scan path: re-opens are clean.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            DiskCache(tmp_path)

    @settings(max_examples=15, deadline=None)
    @given(plan=fault_plans(sites=("diskcache.write",)))
    def test_mangled_writes_never_serve_wrong_values(
        self, plan, tmp_path_factory
    ):
        # The degradation contract, fuzzed over write-fault schedules: a
        # reader of a store written under ANY torn/corrupt plan may miss
        # (recompute), but a hit must be the bit-exact stored value.
        root = tmp_path_factory.mktemp("faulted-store")
        values = {("k", k): make_result(float(k)) for k in range(4)}
        with use_faults(plan):
            cache = DiskCache(root, flush_every=1)
            for key, value in values.items():
                cache.store(key, value)
            cache.flush()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", CacheIntegrityWarning)
            fresh = DiskCache(root)
        for key, value in values.items():
            hit, loaded = fresh.lookup(key)
            if hit:
                assert loaded == value


# ---------------------------------------------------------------------------
# MemoCache / SweepEngine integration
# ---------------------------------------------------------------------------

class TestTwoTierCache:
    def test_memory_miss_falls_through_and_promotes(self, tmp_path):
        seed = DiskCache(tmp_path)
        seed.store(("k", 1), make_result(1.0))
        seed.flush()
        memo = MemoCache(maxsize=8, backing=DiskCache(tmp_path))
        hit, value = memo.lookup(("k", 1))
        assert hit and value == make_result(1.0)
        assert memo.stats.disk_hits == 1
        memo.lookup(("k", 1))  # now promoted: served from memory
        assert memo.stats.hits == 2
        assert memo.stats.disk_hits == 1

    def test_eviction_never_loses_a_result(self, tmp_path):
        memo = MemoCache(maxsize=1, backing=DiskCache(tmp_path))
        memo.store(("k", 1), make_result(1.0))
        memo.store(("k", 2), make_result(2.0))  # evicts ("k", 1) from memory
        assert memo.stats.evictions == 1
        hit, value = memo.lookup(("k", 1))
        assert hit and value == make_result(1.0)
        assert memo.stats.disk_hits == 1

    def test_engine_cache_dir_warms_across_engines(self, tmp_path, ivb, stream):
        cold = SweepEngine(n_jobs=1, cache_dir=tmp_path)
        first = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, stream, 208.0, step_w=8.0, engine=cold
        )
        cold.flush()
        assert cold.stats.disk_hits == 0
        warm = SweepEngine(n_jobs=1, cache_dir=tmp_path)
        second = sweep_cpu_allocations(
            ivb.cpu, ivb.dram, stream, 208.0, step_w=8.0, engine=warm
        )
        assert warm.stats.disk_hits == len(first.points)
        assert second.points == first.points

    def test_engine_flush_publishes_disk_segments(self, tmp_path, ivb, stream):
        engine = SweepEngine(n_jobs=1, cache_dir=tmp_path)
        sweep_cpu_allocations(
            ivb.cpu, ivb.dram, stream, 144.0, step_w=8.0, engine=engine
        )
        engine.flush()
        assert list(tmp_path.glob("seg-*.jsonl"))

    def test_cache_and_cache_dir_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SweepError):
            SweepEngine(n_jobs=1, cache=MemoCache(8), cache_dir=tmp_path)

    def test_env_var_resolution(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        assert resolve_cache_dir(None) is None
        assert SweepEngine(n_jobs=1).disk_cache is None
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path))
        assert resolve_cache_dir(None) == tmp_path
        engine = SweepEngine(n_jobs=1)
        assert engine.disk_cache is not None
        assert engine.disk_cache.root == tmp_path
        # Explicit argument wins over the environment.
        other = tmp_path / "explicit"
        assert SweepEngine(n_jobs=1, cache_dir=other).disk_cache.root == other
